//! Materialization vs. rewriting (the trade-off behind Section 1's
//! FO-rewritability story): the chase pays per-database and grows with the
//! data, the rewriting is computed once per query and evaluates on the raw
//! tables.
//!
//! ```text
//! cargo run --release --example chase_vs_rewriting
//! ```

use std::time::Instant;

use nyaya::chase::{chase, ChaseConfig, Instance};
use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::prelude::*;

fn main() {
    let bench = load(BenchmarkId::U);
    let (_, query) = &bench.queries[3]; // q4: Person, worksFor, Organization

    // Rewriting: once, data-independent.
    let t0 = Instant::now();
    let mut opts = RewriteOptions::nyaya_star();
    opts.hidden_predicates = bench.hidden_predicates.clone();
    let rewriting = tgd_rewrite(query, &bench.normalized, &[], &opts);
    let rewrite_time = t0.elapsed();
    println!(
        "rewriting computed once: {} CQs in {:.2?}\n",
        rewriting.ucq.size(),
        rewrite_time
    );

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>10}",
        "facts", "chase atoms", "chase time", "exec time", "answers"
    );
    for facts in [250usize, 1_000, 4_000] {
        let abox = generate_abox(
            &bench,
            &AboxConfig {
                individuals: facts / 5,
                facts,
                seed: 99,
            },
        );

        // Materialization: chase the whole database, then query it.
        let instance = Instance::from_atoms(abox.clone());
        let t1 = Instant::now();
        let out = chase(
            &instance,
            &bench.normalized,
            ChaseConfig {
                max_rounds: 16,
                max_atoms: 5_000_000,
                ..Default::default()
            },
        );
        let chase_time = t1.elapsed();
        assert!(out.saturated);

        // Rewriting: evaluate the precompiled UCQ on the *raw* tables.
        let db = Database::from_facts(abox);
        let t2 = Instant::now();
        let answers = execute_ucq(&db, &rewriting.ucq);
        let exec_time = t2.elapsed();

        // Both strategies agree (Theorem 10).
        let chase_answers = nyaya::chase::answers(&out.instance, query);
        assert_eq!(answers, chase_answers);

        println!(
            "{:>8} {:>14} {:>14.2?} {:>12.2?} {:>10}",
            facts,
            out.instance.len(),
            chase_time,
            exec_time,
            answers.len()
        );
    }
    println!("\nthe chase re-pays reasoning on every database; the rewriting never does");
}
