//! Materialization vs. rewriting (the trade-off behind Section 1's
//! FO-rewritability story): the chase pays per-database and grows with the
//! data; the rewriting is compiled once per query — and with the knowledge
//! base's prepared-query cache, *exactly* once — then evaluates on the raw
//! tables.
//!
//! ```text
//! cargo run --release --example chase_vs_rewriting
//! ```

use std::time::Instant;

use nyaya::chase::ChaseConfig;
use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::prelude::*;

fn main() {
    let bench = load(BenchmarkId::U);
    let (_, query) = &bench.queries[3]; // q4: Person, worksFor, Organization

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "facts", "chase atoms", "chase time", "1st exec", "2nd exec", "answers"
    );
    for facts in [250usize, 1_000, 4_000] {
        let abox = generate_abox(
            &bench,
            &AboxConfig {
                individuals: facts / 5,
                facts,
                seed: 99,
            },
        );
        let kb = KnowledgeBase::builder()
            .ontology(bench.raw.clone())
            .facts(abox)
            .chase_config(ChaseConfig {
                max_rounds: 16,
                max_atoms: 5_000_000,
                ..Default::default()
            })
            .build()
            .expect("U builds");
        let prepared = kb.prepare(query).expect("q4 prepares");

        // Materialization: chase the whole database.
        let t1 = Instant::now();
        let out = kb.materialize();
        let chase_time = t1.elapsed();
        assert!(out.saturated);

        // Rewriting: the first execution compiles the UCQ (cache miss)…
        let t2 = Instant::now();
        let answers = kb.execute(&prepared).expect("executes");
        let first_exec = t2.elapsed();
        // …the second is pure database work (cache hit).
        let t3 = Instant::now();
        let again = kb.execute(&prepared).expect("executes again");
        let second_exec = t3.elapsed();
        assert_eq!(answers.tuples, again.tuples);
        assert_eq!(kb.stats().cache_misses, 1);
        assert_eq!(kb.stats().cache_hits, 1);

        // Both strategies agree (Theorem 10).
        let oracle = kb
            .execute_on(&prepared, ExecutorKind::Chase)
            .expect("chase backend");
        assert!(oracle.complete);
        assert_eq!(answers.tuples, oracle.tuples);

        println!(
            "{:>8} {:>14} {:>14.2?} {:>12.2?} {:>12.2?} {:>10}",
            facts,
            out.instance.len(),
            chase_time,
            first_exec,
            second_exec,
            answers.tuples.len()
        );
    }
    println!("\nthe chase re-pays reasoning on every database; the prepared query never does");
}
