//! The paper's running example (Section 1), end to end on the facade.
//!
//! Reproduces the Section 1 narrative: the naive perfect rewriting of the
//! example query is large; query elimination prunes the redundant atoms
//! (`fin_ins`, `company`, `fin_idx`) *before* rewriting, and the final
//! rewriting is exactly two CQs with one join each.
//!
//! ```text
//! cargo run --example stock_exchange
//! ```

use nyaya::ontologies::running_example;
use nyaya::prelude::*;

fn main() {
    let ontology = running_example::ontology();
    let query = running_example::query();
    println!(
        "Σ = {} TGDs, {} NC",
        ontology.tgds.len(),
        ontology.ncs.len()
    );
    println!("q  = {query}\n");

    // Build once: normalization, classification, elimination context and
    // the documented stock-exchange catalog all live in the knowledge base.
    let kb = KnowledgeBase::builder()
        .ontology(ontology)
        .facts(running_example::database_facts())
        .catalog(Catalog::stock_exchange())
        .build()
        .expect("running example builds");
    println!(
        "normalized: {} TGDs ({} auxiliary predicates)",
        kb.normalized_tgds().len(),
        kb.aux_predicates().len()
    );

    // Full rewritings, plain vs. starred. The auxiliary predicates are not
    // part of the relational schema, so they are hidden from the final UCQ.
    let ny = kb.prepare_with(&query, Algorithm::Nyaya).unwrap();
    let ny_star = kb.prepare_with(&query, Algorithm::NyayaStar).unwrap();
    let plain = kb.rewriting(&ny).expect("NY compiles");
    let starred = kb.rewriting(&ny_star).expect("NY* compiles");
    println!(
        "\nTGD-rewrite   : {:>3} CQs, {:>3} atoms, {:>3} joins",
        plain.ucq.size(),
        plain.ucq.length(),
        plain.ucq.width()
    );
    println!(
        "TGD-rewrite*  : {:>3} CQs, {:>3} atoms, {:>3} joins ({} atoms eliminated)",
        starred.ucq.size(),
        starred.ucq.length(),
        starred.ucq.width(),
        starred.stats.atoms_eliminated
    );
    println!("\nperfect rewriting (TGD-rewrite*):");
    print!("{}", starred.ucq);
    // Section 1: exactly two CQs executing only two joins, and the
    // elimination step did real work on the 5-atom input query.
    assert_eq!(starred.ucq.size(), 2);
    assert_eq!(starred.ucq.width(), 2);
    assert!(starred.stats.atoms_eliminated > 0);

    // SQL over the documented stock-exchange schema.
    let sql = kb.sql(&ny_star).expect("schema covers the rewriting");
    println!("\nSQL:\n{sql}\n");

    // Execute over the sample database and cross-check against the chase
    // backend (Theorem 10: they agree).
    let fast = kb.execute(&ny_star).expect("in-memory execution");
    let oracle = kb
        .execute_on(&ny_star, ExecutorKind::Chase)
        .expect("chase execution");
    assert!(oracle.complete, "running-example chase terminates");

    println!("answers (rewriting == chase): {}", fast.tuples.len());
    for tuple in &fast.tuples {
        println!(
            "  ({})",
            tuple
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    assert_eq!(fast.tuples, oracle.tuples);

    // Consistency checking with δ1 (legal persons ∩ financial instruments
    // must be empty).
    kb.check_consistency()
        .expect("sample database is consistent");
    println!("\nconsistency: ok");
}
