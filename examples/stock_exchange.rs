//! The paper's running example (Section 1), end to end.
//!
//! Reproduces the Section 1 narrative: the naive perfect rewriting of the
//! example query is large; query elimination prunes the redundant atoms
//! (`fin_ins`, `company`, `fin_idx`) *before* rewriting, and the final
//! rewriting is exactly two CQs with one join each.
//!
//! ```text
//! cargo run --example stock_exchange
//! ```

use nyaya::ontologies::running_example;
use nyaya::prelude::*;
use nyaya::rewrite;

fn main() {
    let ontology = running_example::ontology();
    let query = running_example::query();
    println!("Σ = {} TGDs, {} NC", ontology.tgds.len(), ontology.ncs.len());
    println!("q  = {query}\n");

    let norm = normalize(&ontology.tgds);
    println!(
        "normalized: {} TGDs ({} auxiliary predicates)",
        norm.tgds.len(),
        norm.aux_predicates.len()
    );

    // Query elimination on the input query alone (Section 1 / Example 7
    // flavour): fin_ins, company and fin_idx are implied by stock_portf and
    // list_comp.
    let ctx = rewrite::EliminationContext::new(&norm.tgds);
    let reduced = ctx.eliminate(&query);
    println!("\neliminate(q) = {reduced}");
    assert_eq!(reduced.body.len(), 2);

    // Full rewritings. The auxiliary predicates are not part of the
    // relational schema, so they are hidden from the final UCQ.
    let hidden = norm.aux_predicates.clone();
    let mut plain = RewriteOptions::nyaya();
    plain.hidden_predicates = hidden.clone();
    let mut star = RewriteOptions::nyaya_star();
    star.hidden_predicates = hidden;

    let ny = tgd_rewrite(&query, &norm.tgds, &ontology.ncs, &plain);
    let ny_star = tgd_rewrite(&query, &norm.tgds, &ontology.ncs, &star);
    println!(
        "\nTGD-rewrite   : {:>3} CQs, {:>3} atoms, {:>3} joins",
        ny.ucq.size(),
        ny.ucq.length(),
        ny.ucq.width()
    );
    println!(
        "TGD-rewrite*  : {:>3} CQs, {:>3} atoms, {:>3} joins",
        ny_star.ucq.size(),
        ny_star.ucq.length(),
        ny_star.ucq.width()
    );
    println!("\nperfect rewriting (TGD-rewrite*):");
    print!("{}", ny_star.ucq);
    // Section 1: exactly two CQs executing only two joins.
    assert_eq!(ny_star.ucq.size(), 2);
    assert_eq!(ny_star.ucq.width(), 2);

    // SQL over the documented stock-exchange schema.
    let catalog = Catalog::stock_exchange();
    let sql = ucq_to_sql(&ny_star.ucq, &catalog).expect("schema covers the rewriting");
    println!("\nSQL:\n{sql}\n");

    // Execute over the sample database and cross-check against the chase.
    let facts = running_example::database_facts();
    let db = Database::from_facts(facts.clone());
    let sql_answers = execute_ucq(&db, &ny_star.ucq);

    let instance = Instance::from_atoms(facts);
    let certain = certain_answers(&instance, &norm.tgds, &query, ChaseConfig::default());
    assert!(certain.saturated, "running-example chase terminates");
    let chase_answers: std::collections::BTreeSet<_> = certain.answers;

    println!("answers (rewriting == chase): {}", sql_answers.len());
    for tuple in &sql_answers {
        println!(
            "  ({})",
            tuple
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    assert_eq!(sql_answers, chase_answers);

    // Consistency checking with δ1 (legal persons ∩ financial instruments
    // must be empty).
    let consistent = nyaya::chase::check_consistency(&instance, &ontology, ChaseConfig::default());
    println!("\nconsistency: {consistent:?}");
    assert_eq!(consistent, nyaya::chase::Consistency::Consistent);
}
