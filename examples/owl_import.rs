//! OBDA from an OWL 2 QL document: the knowledge base parses the W3C
//! functional-style syntax, translates it to linear Datalog± (Section 2:
//! DL-Lite underlies the OWL-QL profile; Section 4.2: linear Datalog±
//! subsumes it), and answers conjunctive queries over the document's ABox.
//!
//! ```text
//! cargo run --example owl_import
//! ```

use nyaya::prelude::*;

const UNIVERSITY_OWL: &str = r#"
Prefix(:=<http://example.org/uni#>)
Prefix(owl:=<http://www.w3.org/2002/07/owl#>)
Ontology(<http://example.org/uni>
  Declaration(Class(:Person))
  Declaration(Class(:Student))
  Declaration(Class(:Teacher))
  Declaration(Class(:Course))
  Declaration(ObjectProperty(:teaches))
  Declaration(ObjectProperty(:taughtBy))
  Declaration(ObjectProperty(:takesCourse))

  SubClassOf(:Student :Person)
  SubClassOf(:Teacher :Person)
  SubClassOf(:Teacher ObjectSomeValuesFrom(:teaches :Course))
  SubClassOf(:Student ObjectSomeValuesFrom(:takesCourse :Course))
  ObjectPropertyDomain(:teaches :Teacher)
  ObjectPropertyRange(:teaches :Course)
  ObjectPropertyRange(:takesCourse :Course)
  InverseObjectProperties(:teaches :taughtBy)
  DisjointClasses(:Person :Course)

  ClassAssertion(:Teacher :turing)
  ClassAssertion(:Student :alice)
  ObjectPropertyAssertion(:takesCourse :alice :computability)
  ObjectPropertyAssertion(:taughtBy :computability :turing)
)
"#;

fn main() {
    let kb = KnowledgeBase::builder()
        .owl_ql_text(UNIVERSITY_OWL)
        .expect("valid OWL 2 QL")
        .build()
        .expect("knowledge base builds");
    println!(
        "imported {} TGDs, {} NCs, {} ABox facts from OWL",
        kb.ontology().tgds.len(),
        kb.ontology().ncs.len(),
        kb.snapshot().len()
    );

    // The QL profile lands in linear Datalog± — FO-rewritable, so the
    // in-memory UCQ backend was selected automatically.
    assert!(kb.classification().linear && kb.classification().fo_rewritable());
    assert_eq!(kb.executor_kind(), ExecutorKind::InMemory);
    println!("translation is linear Datalog± ✓");

    // Consistency first (Section 4.2 workflow), then the NCs can be
    // ignored for query answering (they still prune the rewriting).
    kb.check_consistency().expect("ABox consistent with TBox");
    println!("ABox is consistent with the TBox ✓\n");

    // Who teaches something? `turing` must be found even though the only
    // evidence is the *inverse* role assertion taughtBy(computability,
    // turing) — the rewriting compiles the TBox into the UCQ.
    let prepared = kb
        .prepare_text("q(A) :- teaches(A, B).")
        .expect("query parses");
    println!("perfect rewriting of q(A) :- teaches(A,B):");
    print!("{}", kb.rewriting(&prepared).expect("compiles").ucq);

    let answers = kb.execute(&prepared).expect("executes");
    println!("\nanswers: {:?}", answers.tuples);
    let expected: Vec<Vec<Term>> = vec![vec![Term::constant("turing")]];
    assert_eq!(answers.tuples.into_iter().collect::<Vec<_>>(), expected);
    println!("turing teaches ✓ (derived through taughtBy⁻ and Teacher ⊑ ∃teaches)");
}
