//! OBDA from an OWL 2 QL document: parse the W3C functional-style syntax,
//! translate to linear Datalog± (Section 2: DL-Lite underlies the OWL-QL
//! profile; Section 4.2: linear Datalog± subsumes it), rewrite a
//! conjunctive query and answer it over the document's ABox.
//!
//! ```text
//! cargo run --example owl_import
//! ```

use nyaya::chase::{check_consistency, ChaseConfig, Consistency, Instance};
use nyaya::core::{classify, normalize};
use nyaya::parser::{parse_owl_ql, parse_query};
use nyaya::rewrite::{tgd_rewrite, RewriteOptions};
use nyaya::sql::{execute_ucq, Database};

const UNIVERSITY_OWL: &str = r#"
Prefix(:=<http://example.org/uni#>)
Prefix(owl:=<http://www.w3.org/2002/07/owl#>)
Ontology(<http://example.org/uni>
  Declaration(Class(:Person))
  Declaration(Class(:Student))
  Declaration(Class(:Teacher))
  Declaration(Class(:Course))
  Declaration(ObjectProperty(:teaches))
  Declaration(ObjectProperty(:taughtBy))
  Declaration(ObjectProperty(:takesCourse))

  SubClassOf(:Student :Person)
  SubClassOf(:Teacher :Person)
  SubClassOf(:Teacher ObjectSomeValuesFrom(:teaches :Course))
  SubClassOf(:Student ObjectSomeValuesFrom(:takesCourse :Course))
  ObjectPropertyDomain(:teaches :Teacher)
  ObjectPropertyRange(:teaches :Course)
  ObjectPropertyRange(:takesCourse :Course)
  InverseObjectProperties(:teaches :taughtBy)
  DisjointClasses(:Person :Course)

  ClassAssertion(:Teacher :turing)
  ClassAssertion(:Student :alice)
  ObjectPropertyAssertion(:takesCourse :alice :computability)
  ObjectPropertyAssertion(:taughtBy :computability :turing)
)
"#;

fn main() {
    let program = parse_owl_ql(UNIVERSITY_OWL).expect("valid OWL 2 QL");
    println!(
        "imported {} TGDs, {} NCs, {} ABox facts from OWL",
        program.ontology.tgds.len(),
        program.ontology.ncs.len(),
        program.facts.len()
    );

    // The QL profile lands in linear Datalog± — FO-rewritable.
    let classification = classify(&program.ontology.tgds);
    assert!(classification.linear && classification.fo_rewritable());
    println!("translation is linear Datalog± ✓");

    // Consistency first (Section 4.2 workflow), then the NCs can be
    // ignored for query answering.
    let instance = Instance::from_atoms(program.facts.clone());
    assert_eq!(
        check_consistency(&instance, &program.ontology, ChaseConfig::default()),
        Consistency::Consistent
    );
    println!("ABox is consistent with the TBox ✓\n");

    // Who teaches something? `turing` must be found even though the only
    // evidence is the *inverse* role assertion taughtBy(computability,
    // turing) — the rewriting compiles the TBox into the UCQ.
    let q = parse_query("q(A) :- teaches(A, B).").unwrap();
    let norm = normalize(&program.ontology.tgds);
    let mut opts = RewriteOptions::nyaya_star();
    opts.hidden_predicates = norm.aux_predicates.clone();
    let rewriting = tgd_rewrite(&q, &norm.tgds, &program.ontology.ncs, &opts);
    println!("perfect rewriting of q(A) :- teaches(A,B):");
    print!("{}", rewriting.ucq);

    let db = Database::from_facts(program.facts);
    let answers = execute_ucq(&db, &rewriting.ucq);
    println!("\nanswers: {answers:?}");
    let expected: Vec<Vec<nyaya::core::Term>> =
        vec![vec![nyaya::core::Term::constant("turing")]];
    assert_eq!(answers.into_iter().collect::<Vec<_>>(), expected);
    println!("turing teaches ✓ (derived through taughtBy⁻ and Teacher ⊑ ∃teaches)");
}
