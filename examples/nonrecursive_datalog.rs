//! Rewriting into a non-recursive Datalog program (Sections 2 and 8).
//!
//! Section 2 explains the trade-off between UCQ rewritings (parallelizable,
//! DBMS-optimizable, but exponentially large) and non-recursive Datalog
//! programs that "hide" the exponential blow-up inside rules. This example
//! rewrites a STOCKEXCHANGE query both ways through one knowledge base,
//! shows the size gap, proves on a generated ABox that the answers
//! coincide, and prints the program as SQL `CREATE VIEW` statements.
//!
//! ```text
//! cargo run --example nonrecursive_datalog
//! ```

use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::prelude::*;
use nyaya::rewrite::ProgramStrategy;
use nyaya::sql::program_to_sql_views;

fn main() {
    let bench = load(BenchmarkId::S);
    // S-q5 of Table 2: instruments, companies, stocks and listings.
    let (name, query) = &bench.queries[4];
    println!("ontology S (STOCKEXCHANGE), query {name}:\n  {query}\n");

    let kb = KnowledgeBase::builder()
        .ontology(bench.raw.clone())
        .facts(generate_abox(
            &bench,
            &AboxConfig {
                individuals: 120,
                facts: 800,
                seed: 1,
            },
        ))
        .algorithm(Algorithm::Nyaya)
        // Force the flat-UCQ form for the comparison below; Strategy::Auto
        // would route the decomposable q5 to the program target itself.
        .strategy(Strategy::Ucq)
        .build()
        .expect("S builds");

    // The classical UCQ rewriting: the full disjunctive normal form.
    let prepared = kb.prepare(query).expect("q5 prepares");
    let ucq = &kb.rewriting(&prepared).expect("q5 compiles").ucq;
    println!(
        "UCQ rewriting (NY):        {:>6} CQs, {:>6} atoms, {:>6} joins",
        ucq.size(),
        ucq.length(),
        ucq.width()
    );

    // The non-recursive Datalog program: one intensional predicate per
    // independent interaction cluster of the query body.
    let out = kb.program(&prepared).expect("program compiles");
    match out.strategy {
        ProgramStrategy::Clustered { clusters } => {
            println!(
                "NR-Datalog program:        {:>6} rules, {:>6} atoms ({clusters} clusters)",
                out.program.num_rules(),
                out.program.total_atoms()
            );
        }
        ProgramStrategy::Monolithic => {
            println!(
                "NR-Datalog program:        {:>6} rules (monolithic — no split possible)",
                out.program.num_rules()
            );
        }
    }
    println!("\nprogram:\n{}", out.program);

    // Both representations answer identically on the loaded database
    // (the program evaluated bottom-up, layered over the pinned snapshot).
    let via_ucq = kb.execute(&prepared).expect("UCQ executes");
    let via_program = kb.execute_program(&out.program).expect("program executes");
    assert_eq!(via_ucq.tuples, via_program);
    println!(
        "both representations return {} answers over a {}-fact ABox\n",
        via_ucq.tuples.len(),
        kb.snapshot().len()
    );

    // Ship the program to an RDBMS as views (the knowledge base's catalog
    // already covers every predicate of the normalized ontology).
    let sql = program_to_sql_views(&out.program, kb.snapshot().catalog())
        .expect("catalog covers all predicates");
    println!("SQL views:\n{sql}");
}
