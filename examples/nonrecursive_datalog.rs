//! Rewriting into a non-recursive Datalog program (Sections 2 and 8).
//!
//! Section 2 explains the trade-off between UCQ rewritings (parallelizable,
//! DBMS-optimizable, but exponentially large) and non-recursive Datalog
//! programs that "hide" the exponential blow-up inside rules. This example
//! rewrites a STOCKEXCHANGE query both ways, shows the size gap, proves on
//! a generated ABox that the answers coincide, and prints the program as
//! SQL `CREATE VIEW` statements.
//!
//! ```text
//! cargo run --example nonrecursive_datalog
//! ```

use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::rewrite::{nr_datalog_rewrite, tgd_rewrite, ProgramStrategy, RewriteOptions};
use nyaya::sql::{execute_program, execute_ucq, program_to_sql_views, Catalog, Database};

fn main() {
    let bench = load(BenchmarkId::S);
    // S-q5 of Table 2: instruments, companies, stocks and listings.
    let (name, query) = &bench.queries[4];
    println!("ontology S (STOCKEXCHANGE), query {name}:\n  {query}\n");

    let mut opts = RewriteOptions::nyaya();
    opts.hidden_predicates = bench.hidden_predicates.clone();

    // The classical UCQ rewriting: the full disjunctive normal form.
    let ucq = tgd_rewrite(query, &bench.normalized, &[], &opts).ucq;
    println!(
        "UCQ rewriting (NY):        {:>6} CQs, {:>6} atoms, {:>6} joins",
        ucq.size(),
        ucq.length(),
        ucq.width()
    );

    // The non-recursive Datalog program: one intensional predicate per
    // independent interaction cluster of the query body.
    let out = nr_datalog_rewrite(query, &bench.normalized, &[], &opts);
    match out.strategy {
        ProgramStrategy::Clustered { clusters } => {
            println!(
                "NR-Datalog program:        {:>6} rules, {:>6} atoms ({clusters} clusters)",
                out.program.num_rules(),
                out.program.total_atoms()
            );
        }
        ProgramStrategy::Monolithic => {
            println!(
                "NR-Datalog program:        {:>6} rules (monolithic — no split possible)",
                out.program.num_rules()
            );
        }
    }
    println!("\nprogram:\n{}", out.program);

    // Both representations answer identically on a concrete database.
    let config = AboxConfig {
        individuals: 120,
        facts: 800,
        seed: 1,
    };
    let db = Database::from_facts(generate_abox(&bench, &config));
    let via_ucq = execute_ucq(&db, &ucq);
    let via_program = execute_program(&db, &out.program);
    assert_eq!(via_ucq, via_program);
    println!(
        "both representations return {} answers over a {}-fact ABox\n",
        via_ucq.len(),
        db.len()
    );

    // Ship the program to an RDBMS as views.
    let mut catalog = Catalog::new();
    catalog.register_defaults(bench.normalized.iter().flat_map(|t| t.predicates()));
    let sql = program_to_sql_views(&out.program, &catalog).expect("catalog covers all predicates");
    println!("SQL views:\n{sql}");
}
