//! The Path5 exponential blow-up (Section 7): rewriting sizes for the edge
//! chain queries under P5 (auxiliary predicates hidden) and P5X (auxiliary
//! predicates in the schema).
//!
//! P5 reproduces the paper's NY column exactly (6, 10, 13, 15, 16), while
//! P5X shows the combinatorial explosion that query elimination cannot
//! touch — these instances were "intentionally created in order to generate
//! perfect rewritings of exponential size".
//!
//! ```text
//! cargo run --release --example path5_blowup
//! ```

use std::time::Instant;

use nyaya::ontologies::{load, BenchmarkId};
use nyaya::prelude::*;

fn main() {
    let p5 = load(BenchmarkId::P5);
    let p5x = load(BenchmarkId::P5X);

    println!(
        "{:<4} {:>8} {:>8} {:>10} {:>10}   {:>9}",
        "", "P5 NY", "P5 NY*", "P5X NY", "P5X NY*", "time"
    );
    for qi in 0..p5.queries.len() {
        let start = Instant::now();
        let row: Vec<usize> = [
            (&p5, false),
            (&p5, true),
            (&p5x, false),
            (&p5x, true),
        ]
        .into_iter()
        .map(|(bench, star)| {
            let mut opts = if star {
                RewriteOptions::nyaya_star()
            } else {
                RewriteOptions::nyaya()
            };
            opts.hidden_predicates = bench.hidden_predicates.clone();
            tgd_rewrite(&bench.queries[qi].1, &bench.normalized, &[], &opts)
                .ucq
                .size()
        })
        .collect();
        println!(
            "q{:<3} {:>8} {:>8} {:>10} {:>10}   {:>7.0}ms",
            qi + 1,
            row[0],
            row[1],
            row[2],
            row[3],
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // The headline check: Table 1's P5 NY column, reproduced exactly.
    let expected = [6usize, 10, 13, 15, 16];
    for (qi, want) in expected.iter().enumerate() {
        let mut opts = RewriteOptions::nyaya();
        opts.hidden_predicates = p5.hidden_predicates.clone();
        let got = tgd_rewrite(&p5.queries[qi].1, &p5.normalized, &[], &opts)
            .ucq
            .size();
        assert_eq!(got, *want, "P5 q{} must match Table 1", qi + 1);
    }
    println!("\nP5 NY sizes match Table 1 exactly (6, 10, 13, 15, 16) ✓");
}
