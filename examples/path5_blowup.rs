//! The Path5 exponential blow-up (Section 7): rewriting sizes for the edge
//! chain queries under P5 (auxiliary predicates hidden) and P5X (auxiliary
//! predicates in the schema).
//!
//! P5 reproduces the paper's NY column exactly (6, 10, 13, 15, 16), while
//! P5X shows the combinatorial explosion that query elimination cannot
//! touch — these instances were "intentionally created in order to generate
//! perfect rewritings of exponential size".
//!
//! ```text
//! cargo run --release --example path5_blowup
//! ```

use std::time::Instant;

use nyaya::ontologies::{load, BenchmarkId};
use nyaya::prelude::*;

fn main() {
    let p5 = load(BenchmarkId::P5);
    // Same TGDs both times; the X-variant keeps the Lemma 1/2 auxiliary
    // predicates in the schema (`show_aux`), nothing else changes.
    let kb_p5 = KnowledgeBase::builder()
        .ontology(p5.raw.clone())
        .build()
        .expect("P5 builds");
    let kb_p5x = KnowledgeBase::builder()
        .ontology(p5.raw.clone())
        .show_aux(true)
        .build()
        .expect("P5X builds");

    println!(
        "{:<4} {:>8} {:>8} {:>10} {:>10}   {:>9}",
        "", "P5 NY", "P5 NY*", "P5X NY", "P5X NY*", "time"
    );
    for (qi, (_, query)) in p5.queries.iter().enumerate() {
        let start = Instant::now();
        let row: Vec<usize> = [
            (&kb_p5, Algorithm::Nyaya),
            (&kb_p5, Algorithm::NyayaStar),
            (&kb_p5x, Algorithm::Nyaya),
            (&kb_p5x, Algorithm::NyayaStar),
        ]
        .into_iter()
        .map(|(kb, alg)| {
            let prepared = kb.prepare_with(query, alg).expect("prepares");
            kb.rewriting(&prepared).expect("compiles").ucq.size()
        })
        .collect();
        println!(
            "q{:<3} {:>8} {:>8} {:>10} {:>10}   {:>7.0}ms",
            qi + 1,
            row[0],
            row[1],
            row[2],
            row[3],
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // The headline check: Table 1's P5 NY column, reproduced exactly —
    // straight from the cache this time (every pair was compiled above).
    let expected = [6usize, 10, 13, 15, 16];
    let before = kb_p5.stats();
    for (qi, want) in expected.iter().enumerate() {
        let prepared = kb_p5
            .prepare_with(&p5.queries[qi].1, Algorithm::Nyaya)
            .expect("prepares");
        let got = kb_p5.rewriting(&prepared).expect("compiles").ucq.size();
        assert_eq!(got, *want, "P5 q{} must match Table 1", qi + 1);
    }
    let after = kb_p5.stats();
    assert_eq!(before.cache_misses, after.cache_misses, "no recompilation");
    assert_eq!(after.cache_hits, before.cache_hits + 5);
    println!("\nP5 NY sizes match Table 1 exactly (6, 10, 13, 15, 16) ✓ — served from cache");
}
