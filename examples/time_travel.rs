//! Durability and time travel: build a knowledge base on a durable
//! ledger, write a few epochs, "restart" by reopening the same data
//! directory, and answer the query *as of* any historical epoch.
//!
//! ```text
//! cargo run --example time_travel
//! ```

use nyaya::prelude::*;
use nyaya::UpdateBatch;

fn main() {
    let dir = std::env::temp_dir().join(format!("nyaya_time_travel_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let program = "
        sigma1: manager(X) -> employee(X).
        sigma2: employee(X) -> person(X).

        manager(ann).

        q(A) :- person(A).
    ";

    // Epochs 1..=3 as they will look from the query's point of view.
    let hires = ["bob", "carol", "dave"];

    // --- first process lifetime -------------------------------------
    {
        // `.durable(dir)` puts every applied batch in a write-ahead log
        // (fsynced before the new snapshot becomes visible) and lets a
        // background compactor flush index segments. A fresh directory
        // is seeded from the program's facts as epoch 0.
        let kb = KnowledgeBase::builder()
            .program_text(program)
            .expect("valid program")
            .durable(&dir)
            .build()
            .expect("durable build");
        let q = kb.prepare(&kb.queries()[0].clone()).expect("prepares");
        assert_eq!(kb.execute(&q).expect("runs").tuples.len(), 1);

        for hire in hires {
            kb.apply(UpdateBatch::new().insert(Atom::make("manager", [hire])))
                .expect("batch applies");
        }
        println!(
            "wrote epochs 0..={} into {}",
            kb.epoch(),
            kb.data_dir().expect("durable").display()
        );
        // The knowledge base drops here — as far as the ledger is
        // concerned this is the same as the process dying: everything
        // already applied is on disk, fsynced.
    }

    // --- second process lifetime ------------------------------------
    // Reopening the same directory recovers the newest segment (if the
    // compactor got to flush one) and replays the WAL tail. The on-disk
    // state wins over the program's facts.
    let kb = KnowledgeBase::builder()
        .program_text(program)
        .expect("valid program")
        .durable(&dir)
        .build()
        .expect("recovery");
    let q = kb.prepare(&kb.queries()[0].clone()).expect("prepares");
    assert_eq!(kb.epoch(), hires.len() as u64);
    println!("recovered at epoch {}", kb.epoch());

    // Time travel: every epoch ever published is still answerable —
    // `snapshot_at` materializes it from segment + logged batches.
    for epoch in 0..=kb.epoch() {
        let then = kb.execute_at_epoch(&q, epoch).expect("historical epoch");
        println!("  as of epoch {epoch}: {} person(s)", then.tuples.len());
        assert_eq!(then.tuples.len(), 1 + epoch as usize);
    }

    // Compaction flushes an index segment and seals the replayed WAL
    // prefix into the ledger's history — nothing is deleted, so the
    // full epoch range stays reachable after the next restart too.
    let flush = kb.compact().expect("compaction");
    println!(
        "compacted: segment at epoch {} ({} bytes), {} record(s) sealed",
        flush.epoch, flush.segment_bytes, flush.sealed_records
    );
    let early = kb.execute_at_epoch(&q, 1).expect("still reachable");
    assert_eq!(early.tuples.len(), 2);

    // Asking for an epoch that never existed is a typed error carrying
    // the valid range — not a panic, not an empty answer.
    let err = kb.execute_at_epoch(&q, 99).unwrap_err();
    println!("epoch 99: {err}");
    assert!(matches!(err, NyayaError::EpochNotFound { latest: 3, .. }));

    std::fs::remove_dir_all(&dir).ok();
}
