//! Standing queries: subscribe to a prepared query, apply batches, and
//! consume the per-epoch answer diffs the maintained view streams back —
//! insertions, exact retractions through the TGDs, and a same-fact
//! retract+insert that nets to nothing.
//!
//! ```text
//! cargo run --example standing_queries
//! ```

use nyaya::prelude::*;
use nyaya::UpdateBatch;

fn main() {
    // A tiny taxonomy: two subclasses under `top`, queried through a
    // binary join. `top` is intensional, so answers flow through the
    // compiled delta program's strata, not just base-fact matches.
    let kb = KnowledgeBase::from_program_text(
        "
        t0: analyst(X) -> employee(X).
        t1: manager(X) -> employee(X).

        analyst(ann).
        manager(bob).
        reports(ann, bob).

        q(A, B) :- employee(A), reports(A, B), employee(B).
        ",
    )
    .expect("valid program");
    let prepared = kb.prepare(&kb.queries()[0].clone()).expect("prepares");

    // Subscribing materializes the answer set once (with per-tuple
    // support counts) and registers the view for delta maintenance.
    // The first diff is the seed: the full answer set at this epoch.
    let sub = kb.subscribe(&prepared).expect("subscribes");
    let seed = sub.poll().pop().expect("seed diff");
    assert_eq!((seed.epoch, seed.added.len()), (0, 1));
    println!("epoch 0: +{} (seed)", seed.added.len());

    // An insertion batch. Only the batch's deltas are propagated — the
    // query is never re-executed.
    kb.apply(
        UpdateBatch::new()
            .insert(Atom::make("reports", ["bob", "ann"]))
            .insert(Atom::make("analyst", ["cyd"])),
    )
    .expect("applies");
    let diff = sub.poll().pop().expect("one diff per epoch");
    assert_eq!(
        (diff.epoch, diff.added.len(), diff.removed.len()),
        (1, 1, 0)
    );
    println!("epoch 1: +{} -{}", diff.added.len(), diff.removed.len());

    // Retracting ann's only class membership removes employee(ann)'s
    // last support — both answers involving ann disappear, exactly.
    kb.apply(UpdateBatch::new().retract(Atom::make("analyst", ["ann"])))
        .expect("applies");
    let diff = sub.poll().pop().expect("diff");
    assert_eq!(
        (diff.epoch, diff.added.len(), diff.removed.len()),
        (2, 0, 2)
    );
    println!("epoch 2: +{} -{}", diff.added.len(), diff.removed.len());

    // A same-fact retract+insert nets to zero: the snapshot changes
    // epoch, the subscription stays epoch-aligned with an empty diff.
    kb.apply(
        UpdateBatch::new()
            .retract(Atom::make("manager", ["bob"]))
            .insert(Atom::make("manager", ["bob"])),
    )
    .expect("applies");
    let diff = sub.poll().pop().expect("diff");
    assert!(diff.is_empty() && diff.epoch == 3);
    println!("epoch 3: empty diff (same-fact retract+insert nets out)");

    // The maintained view equals full re-execution at every point.
    assert_eq!(
        sub.current(),
        kb.execute(&prepared).expect("executes").tuples
    );

    let stats = kb.stats();
    println!(
        "\nstats: {} subscription(s), {} diff(s) streamed, +{}/-{} view tuples, {} µs maintaining",
        stats.subscriptions_active,
        stats.subscription_diffs,
        stats.ivm_added_tuples,
        stats.ivm_removed_tuples,
        stats.ivm_micros
    );
}
