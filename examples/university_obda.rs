//! Ontology-based data access over the LUBM-like U ontology: rewrite the
//! Table 2 queries with all four algorithms through one knowledge base,
//! then answer one of them over a synthetic ABox and cross-check the
//! in-memory backend against the chase backend.
//!
//! ```text
//! cargo run --release --example university_obda
//! ```

use nyaya::chase::ChaseConfig;
use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::prelude::*;

fn main() {
    let bench = load(BenchmarkId::U);
    let kb = KnowledgeBase::builder()
        .ontology(bench.raw.clone())
        .facts(generate_abox(
            &bench,
            &AboxConfig {
                individuals: 60,
                facts: 400,
                seed: 7,
            },
        ))
        .max_queries(200_000)
        .chase_config(ChaseConfig {
            max_rounds: 12,
            max_atoms: 2_000_000,
            ..Default::default()
        })
        .build()
        .expect("U builds");
    println!(
        "U: {} axioms → {} normalized TGDs ({} auxiliary predicates)\n",
        kb.ontology().tgds.len(),
        kb.normalized_tgds().len(),
        kb.aux_predicates().len()
    );

    println!(
        "{:<4} {:>10} {:>10} {:>10} {:>10}   (rewriting size)",
        "", "QO", "RQ", "NY", "NY*"
    );
    for (name, query) in &bench.queries {
        let sizes: Vec<usize> = [
            Algorithm::QuOnto,
            Algorithm::Requiem,
            Algorithm::Nyaya,
            Algorithm::NyayaStar,
        ]
        .into_iter()
        .map(|alg| {
            let prepared = kb.prepare_with(query, alg).expect("prepares");
            kb.rewriting(&prepared).expect("compiles").ucq.size()
        })
        .collect();
        println!(
            "{:<4} {:>10} {:>10} {:>10} {:>10}",
            name, sizes[0], sizes[1], sizes[2], sizes[3]
        );
    }

    // End-to-end OBDA on q4: q(A,B) ← Person(A), worksFor(A,B),
    // Organization(B). TGD-rewrite* compiles it down to worksFor ∪ headOf.
    let (_, q4) = &bench.queries[3];
    let prepared = kb.prepare_with(q4, Algorithm::NyayaStar).expect("q4");
    println!("\nq4 rewriting:\n{}", kb.rewriting(&prepared).unwrap().ucq);

    let fast = kb.execute(&prepared).expect("in-memory execution");
    // Oracle: certain answers via the chase backend over the same data.
    let oracle = kb
        .execute_on(&prepared, ExecutorKind::Chase)
        .expect("chase execution");
    assert!(oracle.complete, "U chase terminates on this ABox");
    assert_eq!(
        fast.tuples, oracle.tuples,
        "rewriting and chase must agree (Theorem 10)"
    );
    println!(
        "q4 over {}-fact ABox: {} answers — rewriting agrees with the chase ✓",
        kb.snapshot().len(),
        fast.tuples.len()
    );

    // Every (query, algorithm) pair above was compiled exactly once.
    let stats = kb.stats();
    println!(
        "\ncompiled {} rewritings for {} prepares ({} cache hits)",
        stats.cache_misses, stats.prepared, stats.cache_hits
    );
    assert_eq!(stats.cached_rewritings as u64, stats.cache_misses);
}
