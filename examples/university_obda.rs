//! Ontology-based data access over the LUBM-like U ontology: rewrite the
//! Table 2 queries with all four algorithms, then answer one of them over a
//! synthetic ABox and cross-check the rewriting against the chase.
//!
//! ```text
//! cargo run --release --example university_obda
//! ```

use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::prelude::*;
use nyaya::rewrite::{quonto_rewrite, requiem_rewrite};

fn main() {
    let bench = load(BenchmarkId::U);
    println!(
        "U: {} axioms → {} normalized TGDs ({} auxiliary predicates)\n",
        bench.raw.tgds.len(),
        bench.normalized.len(),
        bench.aux_predicates.len()
    );

    println!(
        "{:<4} {:>10} {:>10} {:>10} {:>10}   (rewriting size)",
        "", "QO", "RQ", "NY", "NY*"
    );
    for (name, query) in &bench.queries {
        let qo = quonto_rewrite(query, &bench.normalized, &bench.hidden_predicates, 200_000);
        let rq = requiem_rewrite(query, &bench.normalized, &bench.hidden_predicates, 200_000);
        let mut ny_opts = RewriteOptions::nyaya();
        ny_opts.hidden_predicates = bench.hidden_predicates.clone();
        let ny = tgd_rewrite(query, &bench.normalized, &[], &ny_opts);
        let mut star_opts = RewriteOptions::nyaya_star();
        star_opts.hidden_predicates = bench.hidden_predicates.clone();
        let star = tgd_rewrite(query, &bench.normalized, &[], &star_opts);
        println!(
            "{:<4} {:>10} {:>10} {:>10} {:>10}",
            name,
            qo.ucq.size(),
            rq.ucq.size(),
            ny.ucq.size(),
            star.ucq.size()
        );
    }

    // End-to-end OBDA on q4: q(A,B) ← Person(A), worksFor(A,B),
    // Organization(B). TGD-rewrite* compiles it down to worksFor ∪ headOf.
    let (_, q4) = &bench.queries[3];
    let mut star_opts = RewriteOptions::nyaya_star();
    star_opts.hidden_predicates = bench.hidden_predicates.clone();
    let rewriting = tgd_rewrite(q4, &bench.normalized, &[], &star_opts);
    println!("\nq4 rewriting:\n{}", rewriting.ucq);

    let facts = generate_abox(
        &bench,
        &AboxConfig {
            individuals: 60,
            facts: 400,
            seed: 7,
        },
    );
    let db = Database::from_facts(facts.clone());
    let rewritten_answers = execute_ucq(&db, &rewriting.ucq);

    // Oracle: certain answers via the chase over the same data.
    let instance = Instance::from_atoms(facts);
    let certain = certain_answers(
        &instance,
        &bench.normalized,
        q4,
        ChaseConfig {
            max_rounds: 12,
            max_atoms: 2_000_000,
            ..Default::default()
        },
    );
    assert!(certain.saturated, "U chase terminates on this ABox");
    assert_eq!(
        rewritten_answers, certain.answers,
        "rewriting and chase must agree (Theorem 10)"
    );
    println!(
        "q4 over {}-fact ABox: {} answers — rewriting agrees with the chase ✓",
        db.len(),
        rewritten_answers.len()
    );
}
