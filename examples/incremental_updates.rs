//! Incremental updates: apply batched ABox writes, re-answer over the
//! new epoch, retract, and pin a snapshot while the data moves on.
//!
//! ```text
//! cargo run --example incremental_updates
//! ```

use nyaya::prelude::*;
use nyaya::UpdateBatch;

fn main() {
    // Compile the ontology once. The TBox (and every rewriting derived
    // from it) is fixed for the lifetime of the knowledge base; only the
    // data underneath will change.
    let kb = KnowledgeBase::from_program_text(
        "
        sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
        sigma6: has_stock(X, Y) -> stock_portf(Y, X, Z).

        has_stock(ibm_s, fund1).

        q(A, B) :- stock_portf(B, A, D).
        ",
    )
    .expect("valid program");
    let prepared = kb.prepare(&kb.queries()[0].clone()).expect("prepares");

    // Epoch 0: one fact, one answer — and one compile, the only one this
    // whole example will ever perform.
    assert_eq!(kb.epoch(), 0);
    let at_epoch0 = kb.execute(&prepared).expect("executes");
    assert_eq!(at_epoch0.tuples.len(), 1);
    println!("epoch 0: {} answer(s)", at_epoch0.tuples.len());

    // Pin the current snapshot before writing: whoever holds it keeps an
    // immutable view of epoch 0, no matter what happens next.
    let pinned = kb.snapshot();

    // Apply a batch: two insertions, atomically. The engine's per-column
    // indexes are maintained incrementally — nothing is rebuilt, nothing
    // is recompiled.
    let outcome = kb
        .apply(
            UpdateBatch::new()
                .insert(Atom::make("has_stock", ["sap_s", "fund2"]))
                .insert(Atom::make("stock_portf", ["fund3", "aapl_s", "q30"])),
        )
        .expect("ground batch applies");
    println!(
        "epoch {}: +{} facts ({} build sides invalidated)",
        outcome.epoch, outcome.inserted, outcome.builds_invalidated
    );

    // Re-answer over the new epoch: both inserted facts are visible —
    // has_stock(sap_s, fund2) through σ6, stock_portf directly.
    let at_epoch1 = kb.execute(&prepared).expect("executes");
    assert_eq!(at_epoch1.tuples.len(), 3);
    println!("epoch 1: {} answer(s)", at_epoch1.tuples.len());

    // Retract the original fact. Retraction repairs the indexes in place
    // (postings, distinct counts) — still no rebuild.
    let outcome = kb
        .apply(UpdateBatch::new().retract(Atom::make("has_stock", ["ibm_s", "fund1"])))
        .expect("retraction applies");
    assert_eq!(outcome.retracted, 1);
    let at_epoch2 = kb.execute(&prepared).expect("executes");
    assert_eq!(at_epoch2.tuples.len(), 2);
    println!("epoch 2: {} answer(s)", at_epoch2.tuples.len());

    // The pinned snapshot still answers exactly like epoch 0 did: that
    // is what readers in-flight during the writes were seeing.
    let pinned_answers = kb.execute_at(&prepared, &pinned).expect("pinned run");
    assert_eq!(pinned_answers.tuples, at_epoch0.tuples);
    println!(
        "pinned epoch {}: still {} answer(s) — bit-identical to epoch 0",
        pinned.epoch(),
        pinned_answers.tuples.len()
    );

    // Through two writes and three observed epochs: one compile, zero
    // recompiles — rewritings depend on the TBox only, which never moved.
    let stats = kb.stats();
    println!(
        "\nstats: epoch {}, {} batches, +{}/-{} facts, {} compile(s), {} cache hits",
        stats.epoch,
        stats.batches_applied,
        stats.facts_inserted,
        stats.facts_retracted,
        stats.cache_misses,
        stats.cache_hits
    );
    assert_eq!(stats.epoch, 2);
    assert_eq!(stats.cache_misses, 1, "writes never invalidate rewritings");
}
