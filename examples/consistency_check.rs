//! Negative constraints, key dependencies and consistency (Sections 4.2
//! and 5.1) on the paper's running stock-exchange example.
//!
//! The workflow the paper prescribes — and the knowledge base implements:
//! 1. encode KDs as negative constraints via the `neq` trick,
//! 2. check consistency of `D ∪ Σ ∪ Σ⊥` (chase + NC check),
//! 3. if consistent, *drop* the NCs for query answering — but still use
//!    them to prune the rewriting (Section 5.1, Example 5).
//!
//! ```text
//! cargo run --example consistency_check
//! ```

use nyaya::ontologies::running_example;
use nyaya::prelude::*;

fn ontology_with_key() -> Ontology {
    let mut ontology = running_example::ontology();
    // δ1 of Section 1 (legal persons and financial instruments are
    // disjoint) ships with the running example; add a key on list_comp:
    // a stock is listed on at most one index.
    ontology.kds.push(nyaya::core::KeyDependency::new(
        Predicate::new("list_comp", 2),
        vec![0],
    ));
    ontology
}

fn kb_over(facts: Vec<Atom>) -> KnowledgeBase {
    KnowledgeBase::builder()
        .ontology(ontology_with_key())
        .facts(facts)
        .build()
        .expect("running example builds")
}

fn main() {
    // A consistent portfolio database.
    let facts = running_example::database_facts();
    kb_over(facts.clone())
        .check_consistency()
        .expect("base database is consistent");
    println!("base database: consistent ✓");

    // Violate δ1: make a company also be a stock id.
    let mut bad = facts.clone();
    bad.push(Atom::make("stock", ["oxbank", "oxbank_shares", "p10"]));
    bad.push(Atom::make("company", ["oxbank", "uk", "banking"]));
    match kb_over(bad).check_consistency() {
        Err(NyayaError::ConstraintViolation { constraint }) => {
            println!("poisoned database: violates `{constraint}` ✗")
        }
        other => panic!("expected an NC violation, got {other:?}"),
    }

    // Violate the key: list the same stock on two indexes.
    let mut dup = facts;
    dup.push(Atom::make("list_comp", ["ibm_s", "nasdaq"]));
    dup.push(Atom::make("list_comp", ["ibm_s", "ftse"]));
    match kb_over(dup).check_consistency() {
        Err(NyayaError::KeyViolation { .. }) => {
            println!("double-listed stock: violates the key ✗")
        }
        other => panic!("expected a KD violation, got {other:?}"),
    }

    // Section 5.1: NCs also *shrink* rewritings. A query asking for
    // financial instruments that are legal persons contradicts δ1, so with
    // NC pruning the rewriting collapses to the empty union.
    let nc = NegativeConstraint::new(vec![
        Atom::make("legal_person", ["X"]),
        Atom::make("fin_ins", ["X"]),
    ]);
    let mut contradicted = ontology_with_key();
    contradicted.ncs.push(nc);

    let query = parse_query("q(A) :- fin_ins(A), legal_person(A).").unwrap();
    let plain_kb = KnowledgeBase::builder()
        .ontology(contradicted.clone())
        .nc_pruning(false)
        .build()
        .unwrap();
    let pruned_kb = KnowledgeBase::builder()
        .ontology(contradicted)
        .nc_pruning(true)
        .build()
        .unwrap();
    let plain = plain_kb
        .rewriting(&plain_kb.prepare(&query).unwrap())
        .unwrap();
    let pruned = pruned_kb
        .rewriting(&pruned_kb.prepare(&query).unwrap())
        .unwrap();
    println!(
        "\ncontradictory query: {} CQs without NC pruning, {} with (Section 5.1)",
        plain.ucq.size(),
        pruned.ucq.size()
    );
    assert!(pruned.ucq.size() < plain.ucq.size());
    assert_eq!(pruned.ucq.size(), 0);
}
