//! Negative constraints, key dependencies and consistency (Sections 4.2
//! and 5.1) on the paper's running stock-exchange example.
//!
//! The workflow the paper prescribes:
//! 1. encode KDs as negative constraints via the `neq` trick,
//! 2. check consistency of `D ∪ Σ ∪ Σ⊥` (chase + NC check),
//! 3. if consistent, *drop* the NCs for query answering — but still use
//!    them to prune the rewriting (Section 5.1, Example 5).
//!
//! ```text
//! cargo run --example consistency_check
//! ```

use nyaya::chase::{check_consistency, ChaseConfig, Consistency, Instance};
use nyaya::core::{normalize, Atom, KeyDependency, NegativeConstraint, Predicate};
use nyaya::ontologies::running_example;
use nyaya::parser::parse_query;
use nyaya::rewrite::{tgd_rewrite, RewriteOptions};

fn main() {
    let mut ontology = running_example::ontology();
    // δ1 of Section 1 (legal persons and financial instruments are
    // disjoint) ships with the running example; add a key on list_comp:
    // a stock is listed on at most one index.
    ontology.kds.push(KeyDependency::new(
        Predicate::new("list_comp", 2),
        vec![0],
    ));

    // A consistent portfolio database.
    let facts = running_example::database_facts();
    let db = Instance::from_atoms(facts.clone());
    match check_consistency(&db, &ontology, ChaseConfig::default()) {
        Consistency::Consistent => println!("base database: consistent ✓"),
        other => panic!("expected consistency, got {other:?}"),
    }

    // Violate δ1: make a company also be a stock id.
    let mut bad = facts.clone();
    bad.push(Atom::make("stock", ["oxbank", "oxbank_shares", "p10"]));
    bad.push(Atom::make("company", ["oxbank", "uk", "banking"]));
    let bad_db = Instance::from_atoms(bad);
    match check_consistency(&bad_db, &ontology, ChaseConfig::default()) {
        Consistency::NcViolated(i) => {
            println!("poisoned database: violates δ{} ✗", i + 1)
        }
        other => panic!("expected an NC violation, got {other:?}"),
    }

    // Violate the key: list the same stock on two indexes.
    let mut dup = facts;
    dup.push(Atom::make("list_comp", ["ibm_s", "nasdaq"]));
    dup.push(Atom::make("list_comp", ["ibm_s", "ftse"]));
    let dup_db = Instance::from_atoms(dup);
    match check_consistency(&dup_db, &ontology, ChaseConfig::default()) {
        Consistency::KdViolated(_) => println!("double-listed stock: violates the key ✗"),
        other => panic!("expected a KD violation, got {other:?}"),
    }

    // Section 5.1: NCs also *shrink* rewritings. A query asking for
    // financial instruments that are legal persons contradicts δ1, so with
    // NC pruning the rewriting collapses.
    let norm = normalize(&ontology.tgds);
    let q = parse_query("q(A) :- fin_ins(A), legal_person(A).").unwrap();
    let nc = NegativeConstraint::new(vec![
        Atom::make("legal_person", ["X"]),
        Atom::make("fin_ins", ["X"]),
    ]);
    let mut opts = RewriteOptions::nyaya_star();
    opts.hidden_predicates = norm.aux_predicates.clone();
    let plain = tgd_rewrite(&q, &norm.tgds, &[], &opts);
    opts.nc_pruning = true;
    let pruned = tgd_rewrite(&q, &norm.tgds, &[nc], &opts);
    println!(
        "\ncontradictory query: {} CQs without NC pruning, {} with (Section 5.1)",
        plain.ucq.size(),
        pruned.ucq.size()
    );
    assert!(pruned.ucq.size() < plain.ucq.size());
    assert_eq!(pruned.ucq.size(), 0);
}
