//! Quickstart: parse an ontology, rewrite a query, run it on a database.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nyaya::prelude::*;

fn main() {
    // A miniature ontology in Datalog± syntax: inverse roles (σ5/σ6 of the
    // paper's running example) and a taxonomic rule.
    let source = "
        % ontological constraints
        sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
        sigma6: has_stock(X, Y) -> stock_portf(Y, X, Z).
        sigma8: stock(X, Y, Z) -> fin_ins(X).

        % the query: which stocks are held, and by whom?
        q(A, B) :- stock_portf(B, A, D).
    ";
    let program = parse_program(source).expect("valid program");
    let query = &program.queries[0];

    // Classify the TGDs: linear ⇒ first-order rewritable.
    let classification = classify(&program.ontology.tgds);
    println!("classification: {classification:?}");
    assert!(classification.fo_rewritable());

    // Normalize (Lemmas 1–2) and compute the perfect rewriting with query
    // elimination (TGD-rewrite⋆).
    let norm = normalize(&program.ontology.tgds);
    let rewriting = tgd_rewrite_star(query, &norm.tgds, &program.ontology.ncs);
    println!("\nperfect rewriting ({} CQs):", rewriting.ucq.size());
    print!("{}", rewriting.ucq);

    // Translate to SQL…
    let mut catalog = Catalog::new();
    catalog.register_defaults(
        program
            .ontology
            .predicates()
            .into_iter()
            .chain(norm.tgds.iter().flat_map(|t| t.predicates())),
    );
    let sql = ucq_to_sql(&rewriting.ucq, &catalog).expect("all predicates registered");
    println!("\nSQL:\n{sql}");

    // …and execute directly over a database. No reasoning happens here:
    // has_stock(ibm_s, fund1) answers the query because the *rewriting*
    // compiled σ6 into the UCQ.
    let db = Database::from_facts([
        Atom::make("has_stock", ["ibm_s", "fund1"]),
        Atom::make("stock_portf", ["fund2", "sap_s", "q10"]),
    ]);
    let answers = execute_ucq(&db, &rewriting.ucq);
    println!("\nanswers:");
    for tuple in &answers {
        println!(
            "  ({})",
            tuple
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    assert_eq!(answers.len(), 2);
}
