//! Quickstart: build a knowledge base, prepare a query, run it everywhere.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nyaya::prelude::*;

fn main() {
    // A miniature ontology in Datalog± syntax: inverse roles (σ5/σ6 of the
    // paper's running example), a taxonomic rule, a database and a query —
    // all compiled once into a knowledge base.
    let kb = KnowledgeBase::from_program_text(
        "
        % ontological constraints
        sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
        sigma6: has_stock(X, Y) -> stock_portf(Y, X, Z).
        sigma8: stock(X, Y, Z) -> fin_ins(X).

        % the database
        has_stock(ibm_s, fund1).
        stock_portf(fund2, sap_s, q10).

        % the query: which stocks are held, and by whom?
        q(A, B) :- stock_portf(B, A, D).
        ",
    )
    .expect("valid program");

    // Classification happened at build time: linear ⇒ FO-rewritable, so
    // the in-memory executor was selected automatically.
    println!("classification: {:?}", kb.classification());
    assert!(kb.classification().fo_rewritable());
    assert_eq!(kb.executor_kind(), ExecutorKind::InMemory);

    // Prepare the bundled query: the perfect rewriting (TGD-rewrite⋆) is
    // compiled on first use and memoized.
    let query = kb.queries()[0].clone();
    let prepared = kb.prepare(&query).expect("query prepares");
    let rewriting = kb.rewriting(&prepared).expect("rewriting compiles");
    println!("\nperfect rewriting ({} CQs):", rewriting.ucq.size());
    print!("{}", rewriting.ucq);

    // Translate to SQL for an external DBMS…
    let sql = kb.sql(&prepared).expect("all predicates registered");
    println!("\nSQL:\n{sql}");

    // …and execute directly over the loaded database. No reasoning happens
    // here: has_stock(ibm_s, fund1) answers the query because the
    // *rewriting* compiled σ6 into the UCQ.
    let answers = kb.execute(&prepared).expect("execution succeeds");
    println!("\nanswers:");
    for tuple in &answers.tuples {
        println!(
            "  ({})",
            tuple
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    assert_eq!(answers.tuples.len(), 2);

    // Executing again reuses the cached rewriting — compile once, run
    // many: the SQL emission and both executions all hit the cache slot
    // the first `rewriting()` call filled.
    kb.execute(&prepared).expect("second run");
    let stats = kb.stats();
    println!(
        "\ncache: {} miss, {} hits",
        stats.cache_misses, stats.cache_hits
    );
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 3);
}
