//! `nyaya` — command-line front end for the ontological query rewriting
//! stack.
//!
//! ```text
//! nyaya rewrite  <program.dlp> [--star] [--algorithm ny|qo|rq] [--show-aux]
//! nyaya answer   <program.dlp> [--star]
//! nyaya classify <program.dlp>
//! nyaya sql      <program.dlp> [--star]
//! nyaya chase    <program.dlp> [--rounds N]
//! nyaya program  <program.dlp> [--star] [--views]
//! ```
//!
//! A program file contains Datalog± TGDs, negative constraints, key
//! dependencies, facts and queries (see `nyaya-parser` for the grammar).
//! Files ending in `.dl` are parsed as DL-Lite_R axiom lists instead (no
//! facts/queries).

use std::collections::HashSet;
use std::process::ExitCode;

use nyaya::chase::{certain_answers, check_consistency, ChaseConfig, Consistency, Instance};
use nyaya::core::{classify, normalize, ConjunctiveQuery, Predicate, Term};
use nyaya::parser::{parse_dl_lite, parse_program, Program};
use nyaya::rewrite::{
    nr_datalog_rewrite, quonto_rewrite, requiem_rewrite, tgd_rewrite, ProgramStrategy,
    RewriteOptions, Rewriting,
};
use nyaya::sql::{execute_ucq, program_to_sql_views, ucq_to_sql, Catalog, Database};

const USAGE: &str = "usage: nyaya <command> <program-file> [options]

commands:
  rewrite   compute the perfect UCQ rewriting of each query
  answer    check consistency, rewrite and answer each query over the facts
  classify  report Datalog± language-class membership
  sql       print the SQL translation of each rewriting
  chase     materialize the chase of the facts
  program   rewrite each query into a non-recursive Datalog program

options:
  --star          use TGD-rewrite* (query elimination; linear TGDs only)
  --algorithm A   ny (default) | qo | rq
  --show-aux      keep auxiliary normalization predicates in the output
  --rounds N      chase round budget (default 32)
  --views         (program) also print the SQL CREATE VIEW translation";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    star: bool,
    algorithm: String,
    show_aux: bool,
    rounds: usize,
    views: bool,
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut options = Options {
        star: false,
        algorithm: "ny".to_owned(),
        show_aux: false,
        rounds: 32,
        views: false,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--star" => options.star = true,
            "--show-aux" => options.show_aux = true,
            "--views" => options.views = true,
            "--algorithm" => {
                options.algorithm = it
                    .next()
                    .ok_or_else(|| "--algorithm needs a value".to_owned())?
                    .clone();
                if !["ny", "qo", "rq"].contains(&options.algorithm.as_str()) {
                    return Err(format!("unknown algorithm `{}`", options.algorithm));
                }
            }
            "--rounds" => {
                options.rounds = it
                    .next()
                    .ok_or_else(|| "--rounds needs a value".to_owned())?
                    .parse()
                    .map_err(|_| "--rounds needs an integer".to_owned())?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(options)
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".dl") {
        let ontology = parse_dl_lite(&text).map_err(|e| format!("{path}:{e}"))?;
        Ok(Program {
            ontology,
            facts: Vec::new(),
            queries: Vec::new(),
        })
    } else {
        parse_program(&text).map_err(|e| format!("{path}:{e}"))
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, path, rest) = match args {
        [c, p, rest @ ..] => (c.as_str(), p.as_str(), rest),
        _ => return Err("missing command or program file".to_owned()),
    };
    let options = parse_options(rest)?;
    let program = load_program(path)?;

    match command {
        "classify" => cmd_classify(&program),
        "rewrite" => cmd_rewrite(&program, &options),
        "sql" => cmd_sql(&program, &options),
        "answer" => cmd_answer(&program, &options),
        "chase" => cmd_chase(&program, &options),
        "program" => cmd_program(&program, &options),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_classify(program: &Program) -> Result<(), String> {
    let c = classify(&program.ontology.tgds);
    println!("TGDs:                {}", program.ontology.tgds.len());
    println!("negative constraints: {}", program.ontology.ncs.len());
    println!("key dependencies:     {}", program.ontology.kds.len());
    println!();
    println!("linear:               {}", c.linear);
    println!("guarded:              {}", c.guarded);
    println!("weakly guarded:       {}", c.weakly_guarded);
    println!("weakly acyclic:       {}", c.weakly_acyclic);
    println!("sticky:               {}", c.sticky);
    println!("sticky-join (suff.):  {}", c.sticky_join_sufficient);
    println!("FO-rewritable:        {}", c.fo_rewritable());
    let norm = normalize(&program.ontology.tgds);
    println!(
        "\nnormal form: {} TGDs, {} auxiliary predicates",
        norm.tgds.len(),
        norm.aux_predicates.len()
    );
    Ok(())
}

fn rewrite_query(
    program: &Program,
    query: &ConjunctiveQuery,
    options: &Options,
) -> Result<Rewriting, String> {
    let norm = normalize(&program.ontology.tgds);
    let hidden: HashSet<Predicate> = if options.show_aux {
        HashSet::new()
    } else {
        norm.aux_predicates.clone()
    };
    let rewriting = match options.algorithm.as_str() {
        "qo" => quonto_rewrite(query, &norm.tgds, &hidden, 500_000),
        "rq" => requiem_rewrite(query, &norm.tgds, &hidden, 500_000),
        _ => {
            let mut opts = if options.star {
                RewriteOptions::nyaya_star()
            } else {
                RewriteOptions::nyaya()
            };
            opts.nc_pruning = !program.ontology.ncs.is_empty();
            opts.hidden_predicates = hidden;
            tgd_rewrite(query, &norm.tgds, &program.ontology.ncs, &opts)
        }
    };
    if rewriting.stats.budget_exhausted {
        return Err("rewriting exceeded the query budget; result would be incomplete".into());
    }
    Ok(rewriting)
}

fn require_queries(program: &Program) -> Result<(), String> {
    if program.queries.is_empty() {
        return Err("program contains no query (add `q(X) :- ….`)".to_owned());
    }
    Ok(())
}

fn cmd_rewrite(program: &Program, options: &Options) -> Result<(), String> {
    require_queries(program)?;
    for query in &program.queries {
        let rewriting = rewrite_query(program, query, options)?;
        println!(
            "% {} CQs, {} atoms, {} joins ({} queries explored)",
            rewriting.ucq.size(),
            rewriting.ucq.length(),
            rewriting.ucq.width(),
            rewriting.stats.explored
        );
        for cq in rewriting.ucq.iter() {
            println!("{cq}.");
        }
    }
    Ok(())
}

fn cmd_sql(program: &Program, options: &Options) -> Result<(), String> {
    require_queries(program)?;
    let norm = normalize(&program.ontology.tgds);
    let mut catalog = Catalog::new();
    catalog.register_defaults(
        program
            .ontology
            .predicates()
            .into_iter()
            .chain(norm.tgds.iter().flat_map(|t| t.predicates()))
            .chain(program.facts.iter().map(|f| f.pred)),
    );
    for query in &program.queries {
        let rewriting = rewrite_query(program, query, options)?;
        let sql = ucq_to_sql(&rewriting.ucq, &catalog)
            .ok_or_else(|| "rewriting mentions unregistered predicates".to_owned())?;
        println!("{sql};");
    }
    Ok(())
}

fn cmd_answer(program: &Program, options: &Options) -> Result<(), String> {
    require_queries(program)?;
    let instance = Instance::from_atoms(program.facts.clone());
    let config = ChaseConfig {
        max_rounds: options.rounds,
        ..Default::default()
    };
    match check_consistency(&instance, &program.ontology, config) {
        Consistency::Consistent => {}
        Consistency::KdViolated(i) => {
            return Err(format!(
                "database violates key dependency {:?}",
                program.ontology.kds[i]
            ))
        }
        Consistency::NcViolated(i) => {
            return Err(format!(
                "theory is inconsistent: violated constraint `{}`",
                program.ontology.ncs[i]
            ))
        }
        Consistency::Unknown => {
            return Err("consistency check exceeded the chase budget".to_owned())
        }
    }
    let db = Database::from_facts(program.facts.clone());
    for query in &program.queries {
        let rewriting = rewrite_query(program, query, options)?;
        let answers = execute_ucq(&db, &rewriting.ucq);
        println!("% {} answer(s) via a {}-CQ rewriting", answers.len(), rewriting.ucq.size());
        for tuple in answers {
            println!(
                "{}({})",
                query.head_pred,
                tuple
                    .iter()
                    .map(Term::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    Ok(())
}

fn cmd_program(program: &Program, options: &Options) -> Result<(), String> {
    require_queries(program)?;
    let norm = normalize(&program.ontology.tgds);
    let hidden: HashSet<Predicate> = if options.show_aux {
        HashSet::new()
    } else {
        norm.aux_predicates.clone()
    };
    let mut opts = if options.star {
        RewriteOptions::nyaya_star()
    } else {
        RewriteOptions::nyaya()
    };
    opts.nc_pruning = !program.ontology.ncs.is_empty();
    opts.hidden_predicates = hidden;
    for query in &program.queries {
        let out = nr_datalog_rewrite(query, &norm.tgds, &program.ontology.ncs, &opts);
        if out.stats.budget_exhausted {
            return Err("rewriting exceeded the query budget; result would be incomplete".into());
        }
        let strategy = match out.strategy {
            ProgramStrategy::Clustered { clusters } => format!("{clusters} clusters"),
            ProgramStrategy::Monolithic => "monolithic".to_owned(),
        };
        println!(
            "% {} rules, {} body atoms ({strategy})",
            out.program.num_rules(),
            out.program.total_atoms()
        );
        print!("{}", out.program);
        if options.views {
            let mut catalog = Catalog::new();
            catalog.register_defaults(
                program
                    .ontology
                    .predicates()
                    .into_iter()
                    .chain(norm.tgds.iter().flat_map(|t| t.predicates()))
                    .chain(program.facts.iter().map(|f| f.pred)),
            );
            let sql = program_to_sql_views(&out.program, &catalog)
                .ok_or_else(|| "program mentions unregistered predicates".to_owned())?;
            println!("\n{sql}");
        }
    }
    Ok(())
}

fn cmd_chase(program: &Program, options: &Options) -> Result<(), String> {
    let instance = Instance::from_atoms(program.facts.clone());
    let outcome = nyaya::chase::chase(
        &instance,
        &program.ontology.tgds,
        ChaseConfig {
            max_rounds: options.rounds,
            ..Default::default()
        },
    );
    println!(
        "% chase: {} atoms after {} rounds (saturated: {})",
        outcome.instance.len(),
        outcome.rounds,
        outcome.saturated
    );
    let mut atoms: Vec<String> = outcome.instance.atoms().iter().map(|a| format!("{a}.")).collect();
    atoms.sort();
    for atom in atoms {
        println!("{atom}");
    }
    // Also answer queries over the chase, if any (certain answers).
    for query in &program.queries {
        let res = certain_answers(
            &instance,
            &program.ontology.tgds,
            query,
            ChaseConfig {
                max_rounds: options.rounds,
                ..Default::default()
            },
        );
        println!(
            "% certain answers for {}: {}{}",
            query,
            res.answers.len(),
            if res.saturated {
                ""
            } else {
                " (chase truncated — lower bound)"
            }
        );
    }
    Ok(())
}
