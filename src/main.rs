//! `nyaya` — command-line front end for the ontological query rewriting
//! stack, built on the [`nyaya::KnowledgeBase`] facade.
//!
//! ```text
//! nyaya rewrite  <program.dlp> [--star] [--algorithm ny|qo|rq] [--show-aux]
//! nyaya answer   <program.dlp> [--star] [--strategy auto|ucq|program] [--json]
//!                              [--data-dir DIR] [--at EPOCH]
//! nyaya classify <program.dlp>
//! nyaya sql      <program.dlp> [--star] [--strategy auto|ucq|program]
//! nyaya chase    <program.dlp> [--rounds N]
//! nyaya program  <program.dlp> [--star] [--views]
//! nyaya save     <program.dlp> --data-dir DIR
//! nyaya compact  <program.dlp> --data-dir DIR
//! nyaya history  <program.dlp> --data-dir DIR
//! nyaya watch    <program.dlp> [--json] [--data-dir DIR]
//! nyaya serve    <program.dlp> [--listen ADDR] [--net-workers N] [--shards N]
//!                              [--data-dir DIR] [--no-answer-cache]
//! nyaya client   <request>     [--listen ADDR] [--at EPOCH] [--json]
//! ```
//!
//! A program file contains Datalog± TGDs, negative constraints, key
//! dependencies, facts and queries (see `nyaya-parser` for the grammar).
//! Files ending in `.dl` are parsed as DL-Lite_R axiom lists, `.owl`/`.ofn`
//! as OWL 2 QL documents.

use std::io::BufRead;
use std::process::ExitCode;

use nyaya::chase::ChaseConfig;
use nyaya::core::{AggFunc, Aggregate, Atom, ColumnFilter, FilterOp, SelectOptions, SortDir, Term};
use nyaya::rewrite::ProgramStrategy;
use nyaya::sql::{program_to_sql, program_to_sql_views};
use nyaya::{
    Algorithm, AnswerDiff, Answers, ExecutorKind, KnowledgeBase, PreparedQuery, Strategy,
    UpdateBatch,
};

const USAGE: &str = "usage: nyaya <command> <program-file> [options]

commands:
  rewrite   compute the perfect UCQ rewriting of each query
  answer    check consistency, rewrite and answer each query over the facts
  classify  report Datalog± language-class membership
  sql       print the SQL translation of each rewriting
  chase     materialize the chase of the facts
  program   rewrite each query into a non-recursive Datalog program
  save      persist the file's facts into the durable ledger as one batch
  compact   flush an index segment and seal the replayed WAL prefix
  history   print what the durable ledger holds on disk
  watch     subscribe to every query as a standing query and stream
            per-epoch answer diffs; reads +fact(...)/-fact(...) lines
            from stdin, applies them on a blank line or `commit`
  serve     serve the knowledge base over TCP (prepared-statement
            handshake, answer/apply/stats/explain); drains in-flight
            connections and flushes the ledger on SIGINT/SIGTERM or
            a client shutdown request
  client    one request against a running server; <request> is `ping`,
            `stats`, `shutdown`, `apply` (+/- fact lines on stdin), or
            a query like \"q(X) :- person(X).\"

options:
  --star          use TGD-rewrite* (query elimination; linear TGDs only)
  --algorithm A   ny (default) | qo | rq
  --strategy S    auto (default) | ucq | program — which compiled form
                  executes/ships: the flat UCQ or the non-recursive
                  Datalog program (auto picks per query by estimated
                  DNF size)
  --show-aux      keep auxiliary normalization predicates in the output
  --workers N     parallel rewriting workers (default 1; bit-identical)
  --minimize      drop subsumed CQs from every rewriting (indexed)
  --rounds N      chase round budget (default 32)
  --views         (program) also print the SQL CREATE VIEW translation
  --json          (answer, watch) emit machine-readable answers and stats
  --data-dir D    open (or create) a durable ledger at directory D; on
                  reopen the recovered on-disk facts win over the file's
  --flush-every N segment flush interval in epochs (default 64)
  --at E          (answer, client) answer as of historical epoch E (time
                  travel; past epochs need --data-dir)
  --listen ADDR   (serve, client) the server address
                  (default 127.0.0.1:7464)
  --net-workers N (serve) connection-scheduler worker threads
                  (default: available cores)
  --shards N      partition the ABox into N predicate-hash shards and
                  scatter-gather UCQ disjuncts across them (default 1)
  --no-answer-cache  disable the exact answer cache (on by default)

result modifiers (answer; columns are 1-based head positions):
  --where C<OP>V  keep rows whose column C compares to value V with
                  OP in < <= > >= != (repeatable; numeric-aware order)
  --order-by KEYS sort by `1:desc,2` style key list (default asc)
  --limit N       return at most N rows (with --order-by: top-k)
  --count         aggregate: number of (distinct) answer rows
  --min C         aggregate: minimum value of column C
  --max C         aggregate: maximum value of column C
  --group-by COLS group aggregates by `1,2` style column list
  --explain       print the execution plan (strategy, operators,
                  per-step estimates) instead of answers";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    star: bool,
    algorithm: String,
    strategy: Strategy,
    show_aux: bool,
    workers: usize,
    minimize: bool,
    rounds: usize,
    views: bool,
    json: bool,
    data_dir: Option<String>,
    flush_every: Option<u64>,
    at: Option<u64>,
    select: SelectOptions,
    group_by: Vec<usize>,
    explain: bool,
    listen: String,
    net_workers: usize,
    shards: usize,
    answer_cache: bool,
}

impl Options {
    /// The rewriting engine this invocation asked for.
    fn algorithm(&self) -> Algorithm {
        match self.algorithm.as_str() {
            "qo" => Algorithm::QuOnto,
            "rq" => Algorithm::Requiem,
            _ if self.star => Algorithm::NyayaStar,
            _ => Algorithm::Nyaya,
        }
    }
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut options = Options {
        star: false,
        algorithm: "ny".to_owned(),
        strategy: Strategy::Auto,
        show_aux: false,
        workers: 1,
        minimize: false,
        rounds: 32,
        views: false,
        json: false,
        data_dir: None,
        flush_every: None,
        at: None,
        select: SelectOptions::default(),
        group_by: Vec::new(),
        explain: false,
        listen: "127.0.0.1:7464".to_owned(),
        net_workers: 0,
        shards: 1,
        answer_cache: true,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--star" => options.star = true,
            "--explain" => options.explain = true,
            "--count" => set_agg_func(&mut options, AggFunc::Count)?,
            "--min" => {
                let col = parse_column(it.next(), "--min")?;
                set_agg_func(&mut options, AggFunc::Min(col))?;
            }
            "--max" => {
                let col = parse_column(it.next(), "--max")?;
                set_agg_func(&mut options, AggFunc::Max(col))?;
            }
            "--group-by" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--group-by needs a column list".to_owned())?;
                for part in value.split(',') {
                    options
                        .group_by
                        .push(parse_column(Some(&part.to_owned()), "--group-by")?);
                }
            }
            "--where" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--where needs a COL<OP>VALUE condition".to_owned())?;
                options.select.filters.push(parse_where(value)?);
            }
            "--order-by" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--order-by needs a key list".to_owned())?;
                for part in value.split(',') {
                    options.select.order_by.push(parse_order_key(part)?);
                }
            }
            "--limit" => {
                options.select.limit = Some(
                    it.next()
                        .ok_or_else(|| "--limit needs a value".to_owned())?
                        .parse()
                        .map_err(|_| "--limit needs an integer".to_owned())?,
                );
            }
            "--show-aux" => options.show_aux = true,
            "--views" => options.views = true,
            "--json" => options.json = true,
            "--minimize" => options.minimize = true,
            "--workers" => {
                options.workers = it
                    .next()
                    .ok_or_else(|| "--workers needs a value".to_owned())?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_owned())?;
            }
            "--strategy" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--strategy needs a value".to_owned())?;
                options.strategy = match value.as_str() {
                    "auto" => Strategy::Auto,
                    "ucq" => Strategy::Ucq,
                    "program" => Strategy::Program,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--algorithm" => {
                options.algorithm = it
                    .next()
                    .ok_or_else(|| "--algorithm needs a value".to_owned())?
                    .clone();
                if !["ny", "qo", "rq"].contains(&options.algorithm.as_str()) {
                    return Err(format!("unknown algorithm `{}`", options.algorithm));
                }
            }
            "--rounds" => {
                options.rounds = it
                    .next()
                    .ok_or_else(|| "--rounds needs a value".to_owned())?
                    .parse()
                    .map_err(|_| "--rounds needs an integer".to_owned())?;
            }
            "--data-dir" => {
                options.data_dir = Some(
                    it.next()
                        .ok_or_else(|| "--data-dir needs a path".to_owned())?
                        .clone(),
                );
            }
            "--flush-every" => {
                options.flush_every = Some(
                    it.next()
                        .ok_or_else(|| "--flush-every needs a value".to_owned())?
                        .parse()
                        .map_err(|_| "--flush-every needs an integer".to_owned())?,
                );
            }
            "--at" => {
                options.at = Some(
                    it.next()
                        .ok_or_else(|| "--at needs an epoch".to_owned())?
                        .parse()
                        .map_err(|_| "--at needs an integer epoch".to_owned())?,
                );
            }
            "--listen" => {
                options.listen = it
                    .next()
                    .ok_or_else(|| "--listen needs an address".to_owned())?
                    .clone();
            }
            "--net-workers" => {
                options.net_workers = it
                    .next()
                    .ok_or_else(|| "--net-workers needs a value".to_owned())?
                    .parse()
                    .map_err(|_| "--net-workers needs an integer".to_owned())?;
            }
            "--shards" => {
                options.shards = it
                    .next()
                    .ok_or_else(|| "--shards needs a value".to_owned())?
                    .parse()
                    .map_err(|_| "--shards needs an integer".to_owned())?;
            }
            "--no-answer-cache" => options.answer_cache = false,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    match (&mut options.select.aggregate, options.group_by.is_empty()) {
        (Some(agg), false) => agg.group_by = std::mem::take(&mut options.group_by),
        (None, false) => return Err("--group-by needs --count, --min or --max".to_owned()),
        _ => {}
    }
    Ok(options)
}

/// Parse a 1-based CLI column number into a 0-based index.
fn parse_column(value: Option<&String>, flag: &str) -> Result<usize, String> {
    let n: usize = value
        .ok_or_else(|| format!("{flag} needs a column number"))?
        .trim()
        .parse()
        .map_err(|_| format!("{flag} needs a column number"))?;
    n.checked_sub(1)
        .ok_or_else(|| format!("{flag} columns are numbered from 1"))
}

fn set_agg_func(options: &mut Options, func: AggFunc) -> Result<(), String> {
    if options.select.aggregate.is_some() {
        return Err("at most one of --count, --min, --max".to_owned());
    }
    options.select.aggregate = Some(Aggregate {
        group_by: Vec::new(),
        func,
    });
    Ok(())
}

/// Parse one `--where` condition: `COL<OP>VALUE` with OP in
/// `< <= > >= !=`, e.g. `1>=alice` or `2!=nasdaq`.
fn parse_where(value: &str) -> Result<ColumnFilter, String> {
    // Two-character operators first, or `<` would shadow `<=`.
    for (symbol, op) in [
        ("<=", FilterOp::Le),
        (">=", FilterOp::Ge),
        ("!=", FilterOp::Ne),
        ("<", FilterOp::Lt),
        (">", FilterOp::Gt),
    ] {
        if let Some((col, val)) = value.split_once(symbol) {
            let column = parse_column(Some(&col.to_owned()), "--where")?;
            if val.is_empty() {
                return Err(format!("--where `{value}` has an empty comparison value"));
            }
            return Ok(ColumnFilter {
                column,
                op,
                value: Term::constant(val),
            });
        }
    }
    Err(format!(
        "--where `{value}` is not COL<OP>VALUE with OP in < <= > >= !="
    ))
}

/// Parse one `--order-by` key: `COL` or `COL:asc`/`COL:desc`.
fn parse_order_key(part: &str) -> Result<(usize, SortDir), String> {
    let (col, dir) = match part.split_once(':') {
        None => (part, SortDir::Asc),
        Some((col, "asc")) => (col, SortDir::Asc),
        Some((col, "desc")) => (col, SortDir::Desc),
        Some((_, other)) => return Err(format!("--order-by direction `{other}` is not asc|desc")),
    };
    Ok((parse_column(Some(&col.to_owned()), "--order-by")?, dir))
}

/// Build the knowledge base once; every command runs against it.
fn load_kb(path: &str, options: &Options) -> Result<KnowledgeBase, String> {
    let mut builder = KnowledgeBase::builder()
        .file(path)
        .map_err(|e| e.to_string())?
        .algorithm(options.algorithm())
        .strategy(options.strategy)
        .show_aux(options.show_aux)
        .rewrite_workers(options.workers)
        .minimize_rewritings(options.minimize)
        .chase_config(ChaseConfig {
            max_rounds: options.rounds,
            ..Default::default()
        });
    if let Some(dir) = &options.data_dir {
        builder = builder.durable(dir);
    }
    if let Some(n) = options.flush_every {
        builder = builder.flush_interval(n);
    }
    builder
        .shards(options.shards)
        .answer_cache(options.answer_cache)
        .build()
        .map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, path, rest) = match args {
        [c, p, rest @ ..] => (c.as_str(), p.as_str(), rest),
        _ => return Err("missing command or program file".to_owned()),
    };
    let options = parse_options(rest)?;
    if matches!(command, "save" | "compact" | "history") && options.data_dir.is_none() {
        return Err(format!("`{command}` needs --data-dir"));
    }
    if command == "client" {
        // The client talks to a running server; there is no local
        // knowledge base to load, and `path` is the request instead.
        return cmd_client(path, &options);
    }
    let kb = load_kb(path, &options)?;

    match command {
        "serve" => cmd_serve(kb, &options),
        "classify" => cmd_classify(&kb),
        "rewrite" => cmd_rewrite(&kb),
        "sql" => cmd_sql(&kb),
        "answer" => cmd_answer(&kb, &options),
        "chase" => cmd_chase(&kb),
        "program" => cmd_program(&kb, &options),
        "save" => cmd_save(&kb, path),
        "compact" => cmd_compact(&kb),
        "history" => cmd_history(&kb),
        "watch" => cmd_watch(&kb, &options),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Prepare every query bundled with the program (error if there are none).
fn prepare_all(kb: &KnowledgeBase) -> Result<Vec<PreparedQuery>, String> {
    if kb.queries().is_empty() {
        return Err(nyaya::NyayaError::NoQuery.to_string());
    }
    kb.queries()
        .iter()
        .map(|q| kb.prepare(q).map_err(|e| e.to_string()))
        .collect()
}

fn cmd_classify(kb: &KnowledgeBase) -> Result<(), String> {
    let c = kb.classification();
    println!("TGDs:                {}", kb.ontology().tgds.len());
    println!("negative constraints: {}", kb.ontology().ncs.len());
    println!("key dependencies:     {}", kb.ontology().kds.len());
    println!();
    println!("linear:               {}", c.linear);
    println!("guarded:              {}", c.guarded);
    println!("weakly guarded:       {}", c.weakly_guarded);
    println!("weakly acyclic:       {}", c.weakly_acyclic);
    println!("sticky:               {}", c.sticky);
    println!("sticky-join (suff.):  {}", c.sticky_join_sufficient);
    println!("FO-rewritable:        {}", c.fo_rewritable());
    println!(
        "\nnormal form: {} TGDs, {} auxiliary predicates",
        kb.normalized_tgds().len(),
        kb.aux_predicates().len()
    );
    Ok(())
}

fn cmd_rewrite(kb: &KnowledgeBase) -> Result<(), String> {
    for prepared in prepare_all(kb)? {
        let rewriting = kb.rewriting(&prepared).map_err(|e| e.to_string())?;
        println!(
            "% {} CQs, {} atoms, {} joins ({} queries explored)",
            rewriting.ucq.size(),
            rewriting.ucq.length(),
            rewriting.ucq.width(),
            rewriting.stats.explored
        );
        for cq in rewriting.ucq.iter() {
            println!("{cq}.");
        }
    }
    Ok(())
}

fn cmd_sql(kb: &KnowledgeBase) -> Result<(), String> {
    for prepared in prepare_all(kb)? {
        let sql = kb.sql(&prepared).map_err(|e| e.to_string())?;
        println!("{sql};");
    }
    Ok(())
}

fn cmd_answer(kb: &KnowledgeBase, options: &Options) -> Result<(), String> {
    kb.check_consistency().map_err(|e| e.to_string())?;
    let prepared = prepare_all(kb)?;
    if options.explain {
        for p in &prepared {
            print!(
                "{}",
                kb.explain(p, &options.select).map_err(|e| e.to_string())?
            );
        }
        return Ok(());
    }
    if !options.select.is_plain() {
        if options.at.is_some() {
            return Err("--at cannot be combined with result modifiers".to_owned());
        }
        let mut results: Vec<(PreparedQuery, Vec<Vec<Term>>)> = Vec::with_capacity(prepared.len());
        for p in prepared {
            let rows = kb
                .execute_select(&p, &options.select)
                .map_err(|e| e.to_string())?;
            results.push((p, rows));
        }
        if options.json {
            println!("{}", rows_to_json(kb, &results));
            return Ok(());
        }
        for (p, rows) in &results {
            println!("% {} row(s)", rows.len());
            for row in rows {
                println!(
                    "{}({})",
                    p.query().head_pred,
                    row.iter()
                        .map(Term::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
        return Ok(());
    }
    let mut results: Vec<(PreparedQuery, Answers)> = Vec::with_capacity(prepared.len());
    for p in prepared {
        let answers = match options.at {
            Some(epoch) => kb.execute_at_epoch(&p, epoch).map_err(|e| e.to_string())?,
            None => kb.execute(&p).map_err(|e| e.to_string())?,
        };
        results.push((p, answers));
    }
    if options.json {
        println!("{}", answers_to_json(kb, &results));
        return Ok(());
    }
    if let Some(epoch) = options.at {
        println!(
            "% answering as of epoch {epoch} (current epoch {})",
            kb.epoch()
        );
    }
    for (prepared, answers) in &results {
        // Only consult the caches a backend actually filled: under the
        // chase fallback no rewriting exists, and under the program
        // strategy computing the flat UCQ just to display its size would
        // pay exactly the DNF price the program avoided.
        if answers.backend == "program" {
            match kb.program(prepared) {
                Ok(program) => println!(
                    "% {} answer(s) via a {}-rule program (hides a {}-CQ DNF)",
                    answers.tuples.len(),
                    program.program.num_rules(),
                    program.estimated_dnf
                ),
                Err(_) => println!(
                    "% {} answer(s) via the program backend",
                    answers.tuples.len()
                ),
            }
        } else {
            let rewriting = (kb.executor_kind() != ExecutorKind::Chase)
                .then(|| kb.rewriting(prepared))
                .and_then(Result::ok);
            match rewriting {
                Some(rewriting) => println!(
                    "% {} answer(s) via a {}-CQ rewriting",
                    answers.tuples.len(),
                    rewriting.ucq.size()
                ),
                None => println!(
                    "% {} answer(s) via the {} backend",
                    answers.tuples.len(),
                    answers.backend
                ),
            }
        }
        for tuple in &answers.tuples {
            println!(
                "{}({})",
                prepared.query().head_pred,
                tuple
                    .iter()
                    .map(Term::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    Ok(())
}

fn cmd_chase(kb: &KnowledgeBase) -> Result<(), String> {
    let outcome = kb.materialize();
    println!(
        "% chase: {} atoms after {} rounds (saturated: {})",
        outcome.instance.len(),
        outcome.rounds,
        outcome.saturated
    );
    let mut atoms: Vec<String> = outcome
        .instance
        .atoms()
        .iter()
        .map(|a| format!("{a}."))
        .collect();
    atoms.sort();
    for atom in atoms {
        println!("{atom}");
    }
    // Also answer queries over the chase, if any (certain answers).
    for query in kb.queries() {
        let prepared = kb.prepare(query).map_err(|e| e.to_string())?;
        let res = kb
            .execute_on(&prepared, ExecutorKind::Chase)
            .map_err(|e| e.to_string())?;
        println!(
            "% certain answers for {}: {}{}",
            query,
            res.tuples.len(),
            if res.complete {
                ""
            } else {
                " (chase truncated — lower bound)"
            }
        );
    }
    Ok(())
}

fn cmd_program(kb: &KnowledgeBase, options: &Options) -> Result<(), String> {
    for prepared in prepare_all(kb)? {
        let out = kb.program(&prepared).map_err(|e| e.to_string())?;
        let strategy = match out.strategy {
            ProgramStrategy::Clustered { clusters } => format!("{clusters} clusters"),
            ProgramStrategy::Monolithic => "monolithic".to_owned(),
        };
        println!(
            "% {} rules, {} body atoms, {} strata ({strategy}; hides a {}-CQ DNF)",
            out.program.num_rules(),
            out.program.total_atoms(),
            out.stats.program_strata,
            out.estimated_dnf,
        );
        println!(
            "% optimizer: {} dead, {} subsumed, {} factored into {} shared predicate(s); \
             {} -> {} atoms",
            out.opt.dead_rules_removed,
            out.opt.rules_subsumed,
            out.opt.rules_factored,
            out.opt.shared_predicates_added,
            out.opt.atoms_before,
            out.opt.atoms_after,
        );
        print!("{}", out.program);
        if options.views {
            let snapshot = kb.snapshot();
            let views = program_to_sql_views(&out.program, snapshot.catalog())
                .map_err(|e| e.to_string())?;
            let cte =
                program_to_sql(&out.program, snapshot.catalog()).map_err(|e| e.to_string())?;
            println!("\n{views}");
            println!("-- single-statement form --\n{cte}");
        }
    }
    Ok(())
}

/// Apply the program file's facts to the durable store as one batch —
/// facts the recovered snapshot already holds are skipped, and an
/// all-duplicates file publishes no new epoch at all.
fn cmd_save(kb: &KnowledgeBase, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = nyaya::parser::parse_program(&text)
        .map_err(|e| format!("datalog± parse error: {e} (save needs a Datalog± program file)"))?;
    let snapshot = kb.snapshot();
    let fresh: Vec<_> = program
        .facts
        .into_iter()
        .filter(|fact| !snapshot.database().contains(fact))
        .collect();
    if fresh.is_empty() {
        println!(
            "% nothing to save: every fact is already durable at epoch {}",
            snapshot.epoch()
        );
        return Ok(());
    }
    let count = fresh.len();
    let outcome = kb
        .apply(nyaya::UpdateBatch::new().insert_all(fresh))
        .map_err(|e| e.to_string())?;
    println!(
        "% saved {count} fact(s) as epoch {} ({} inserted)",
        outcome.epoch, outcome.inserted
    );
    Ok(())
}

fn cmd_compact(kb: &KnowledgeBase) -> Result<(), String> {
    let flush = kb.compact().map_err(|e| e.to_string())?;
    println!(
        "% segment flushed at epoch {}: {} bytes; {} WAL record(s) sealed into history, \
         {} remain active",
        flush.epoch, flush.segment_bytes, flush.sealed_records, flush.remaining_records
    );
    Ok(())
}

fn cmd_history(kb: &KnowledgeBase) -> Result<(), String> {
    let history = kb.ledger_history().map_err(|e| e.to_string())?;
    println!(
        "% ledger at {} — latest epoch {}",
        kb.data_dir()
            .map(|p| p.display().to_string())
            .unwrap_or_default(),
        history.latest_epoch
    );
    println!("% {} segment(s):", history.segments.len());
    for seg in &history.segments {
        println!("%   epoch {:>8}  {:>10} bytes", seg.epoch, seg.bytes);
    }
    println!("% {} sealed WAL range(s):", history.sealed.len());
    for sealed in &history.sealed {
        println!(
            "%   epochs {:>8} ..= {:<8} {:>10} bytes",
            sealed.from, sealed.to, sealed.bytes
        );
    }
    match history.active_from {
        Some(from) => println!(
            "% active WAL: {} record(s) from epoch {from}, {} bytes",
            history.active_records, history.active_bytes
        ),
        None => println!("% active WAL: empty ({} bytes)", history.active_bytes),
    }
    Ok(())
}

/// Subscribe to every bundled query as a standing query and stream
/// per-epoch answer diffs. Stdin drives updates: `+fact(a, b)` queues an
/// insertion, `-fact(a, b)` a retraction; a blank line or `commit`
/// applies the queued batch atomically and prints each subscription's
/// diff for the new epoch. EOF (or `quit`) exits. With `--json`, each
/// diff is one machine-readable line instead.
fn cmd_watch(kb: &KnowledgeBase, options: &Options) -> Result<(), String> {
    kb.check_consistency().map_err(|e| e.to_string())?;
    let prepared = prepare_all(kb)?;
    let mut subs = Vec::with_capacity(prepared.len());
    for p in prepared {
        let sub = kb.subscribe(&p).map_err(|e| e.to_string())?;
        subs.push((p, sub));
    }
    // The seed diff: the full answer set at the subscription's epoch.
    for (p, sub) in &subs {
        for diff in sub.poll() {
            print_diff(p, &diff, options.json);
        }
    }
    if !options.json {
        println!(
            "% watching {} quer(ies); +fact(..)/-fact(..), blank line commits",
            subs.len()
        );
    }

    let stdin = std::io::stdin();
    let mut batch = UpdateBatch::new();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        if line.is_empty() || line == "commit" {
            if batch.is_empty() {
                continue;
            }
            match kb.apply(std::mem::take(&mut batch)) {
                Ok(outcome) => {
                    if !options.json {
                        println!(
                            "% epoch {}: {} inserted, {} retracted",
                            outcome.epoch, outcome.inserted, outcome.retracted
                        );
                    }
                    for (p, sub) in &subs {
                        for diff in sub.poll() {
                            print_diff(p, &diff, options.json);
                        }
                    }
                }
                Err(e) => eprintln!("% batch rejected: {e}"),
            }
            continue;
        }
        let (sign, text) = match line.split_at(1) {
            ("+", rest) => (true, rest),
            ("-", rest) => (false, rest),
            _ => {
                eprintln!("% ignored (lines must start with + or -): {line}");
                continue;
            }
        };
        match parse_fact(text) {
            Ok(fact) if sign => batch = batch.insert(fact),
            Ok(fact) => batch = batch.retract(fact),
            Err(e) => eprintln!("% ignored: {e}"),
        }
    }
    Ok(())
}

/// Parse one ground fact from a `watch` stdin line (trailing `.` optional).
fn parse_fact(text: &str) -> Result<Atom, String> {
    nyaya::serving::parse_fact(text)
}

/// SIGINT/SIGTERM latch for graceful `serve` shutdown. The handler only
/// flips the atomic (the one async-signal-safe thing it may do); the
/// serve loop polls it and runs the actual drain + flush.
static SHUTDOWN_SIGNAL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_signals() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_SIGNAL.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        // libc is already linked by std; declaring `signal` directly
        // keeps the workspace dependency-free.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_shutdown_signals() {}

/// `nyaya serve <program.dlp> [--listen ADDR] [--net-workers N] …`
///
/// Serves the loaded knowledge base until SIGINT/SIGTERM or a client
/// `SHUTDOWN`, then drains in-flight connections and flushes the
/// durable ledger before exiting.
fn cmd_serve(kb: KnowledgeBase, options: &Options) -> Result<(), String> {
    use nyaya::serve::ServerConfig;

    let shards = kb.shards();
    let backend = std::sync::Arc::new(nyaya::KbBackend::new(std::sync::Arc::new(kb)));
    let mut config = ServerConfig::default();
    if options.net_workers > 0 {
        config.workers = options.net_workers;
    }
    let workers = config.workers;
    let server = nyaya::serve::serve(options.listen.as_str(), backend, config)
        .map_err(|e| format!("cannot listen on {}: {e}", options.listen))?;
    eprintln!(
        "% serving on {} ({workers} worker(s), {shards} shard(s)); \
         SIGINT or `nyaya client shutdown` stops it",
        server.local_addr()
    );
    install_shutdown_signals();
    let handle = server.handle();
    while !handle.is_shutting_down() {
        if SHUTDOWN_SIGNAL.load(std::sync::atomic::Ordering::SeqCst) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("% shutting down: draining connections, flushing ledger");
    server.join();
    eprintln!("% bye");
    Ok(())
}

/// `nyaya client <request> [--listen ADDR] [--at E] [--json]` — one
/// request against a running server: `ping`, `stats`, `shutdown`,
/// `apply` (reads `+fact`/`-fact` lines from stdin), or a query.
fn cmd_client(request: &str, options: &Options) -> Result<(), String> {
    use nyaya::serve::Client;

    let mut client = Client::connect(options.listen.as_str())
        .map_err(|e| format!("cannot connect to {}: {e}", options.listen))?;
    match request {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("PONG");
        }
        "stats" => println!("{}", client.stats().map_err(|e| e.to_string())?),
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("% server is shutting down");
        }
        "apply" => {
            let stdin = std::io::stdin();
            let mut retracts = Vec::new();
            let mut inserts = Vec::new();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| e.to_string())?;
                let line = line.trim();
                match line.split_at(if line.is_empty() { 0 } else { 1 }) {
                    ("+", fact) => inserts.push(fact.trim().to_owned()),
                    ("-", fact) => retracts.push(fact.trim().to_owned()),
                    ("", _) => continue,
                    _ => eprintln!("% ignored (lines must start with + or -): {line}"),
                }
            }
            let outcome = client
                .apply(&retracts, &inserts)
                .map_err(|e| e.to_string())?;
            println!(
                "% epoch {}: {} inserted, {} retracted",
                outcome.epoch, outcome.inserted, outcome.retracted
            );
        }
        query => {
            let answer = client.query(query, options.at).map_err(|e| e.to_string())?;
            if options.json {
                let rows: Vec<String> = answer
                    .tuples
                    .iter()
                    .map(|tuple| {
                        let terms: Vec<String> = tuple
                            .iter()
                            .map(|t| format!("\"{}\"", json_escape(t)))
                            .collect();
                        format!("[{}]", terms.join(","))
                    })
                    .collect();
                println!(
                    "{{\"epoch\":{},\"backend\":\"{}\",\"complete\":{},\"tuples\":[{}]}}",
                    answer.epoch,
                    json_escape(&answer.backend),
                    answer.complete,
                    rows.join(",")
                );
            } else {
                println!(
                    "% epoch {}, backend {}, {} answer(s)",
                    answer.epoch,
                    answer.backend,
                    answer.tuples.len()
                );
                for tuple in &answer.tuples {
                    println!("{}", tuple.join(", "));
                }
            }
        }
    }
    Ok(())
}

/// One subscription diff, as text (`+`/`-` lines) or one JSON line.
fn print_diff(query: &PreparedQuery, diff: &AnswerDiff, json: bool) {
    let head = query.query().head_pred;
    if json {
        let tuples = |set: &[Vec<Term>]| {
            let rows: Vec<String> = set
                .iter()
                .map(|tuple| {
                    let terms: Vec<String> = tuple
                        .iter()
                        .map(|t| format!("\"{}\"", json_escape(&t.to_string())))
                        .collect();
                    format!("[{}]", terms.join(","))
                })
                .collect();
            rows.join(",")
        };
        println!(
            "{{\"epoch\":{},\"query\":\"{}\",\"added\":[{}],\"removed\":[{}]}}",
            diff.epoch,
            json_escape(&head.to_string()),
            tuples(&diff.added),
            tuples(&diff.removed)
        );
        return;
    }
    println!(
        "% epoch {}: {} +{} -{}",
        diff.epoch,
        head,
        diff.added.len(),
        diff.removed.len()
    );
    let row = |tuple: &[Term]| {
        tuple
            .iter()
            .map(Term::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    for tuple in &diff.added {
        println!("+ {head}({})", row(tuple));
    }
    for tuple in &diff.removed {
        println!("- {head}({})", row(tuple));
    }
}

// ---- JSON emission (hand-rolled: the build environment has no serde) ----

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--json` document: per-query answers plus the knowledge base's
/// lifetime counters, for monitoring and scripting.
fn answers_to_json(kb: &KnowledgeBase, results: &[(PreparedQuery, Answers)]) -> String {
    // Snapshot the counters before the per-query rewriting lookups below:
    // those lookups are display plumbing, and the emitted stats must
    // describe the user's workload, not this function's own cache traffic.
    let stats = kb.stats();
    let mut out = String::from("{\"queries\":[");
    for (i, (prepared, answers)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"query\":\"{}\",\"backend\":\"{}\",\"complete\":{},",
            json_escape(&prepared.query().to_string()),
            json_escape(answers.backend),
            answers.complete
        ));
        // Same guard as the text path: never *compute* a compiled form
        // just for display — report the one the backend actually ran.
        if answers.backend == "program" {
            match kb.program(prepared) {
                Ok(p) => out.push_str(&format!(
                    "\"rewriting\":null,\"program\":{{\"rules\":{},\"atoms\":{},\"strata\":{},\
                     \"estimated_dnf\":{}}},",
                    p.program.num_rules(),
                    p.program.total_atoms(),
                    p.stats.program_strata,
                    p.estimated_dnf
                )),
                Err(_) => out.push_str("\"rewriting\":null,\"program\":null,"),
            }
        } else {
            let rewriting = (kb.executor_kind() != ExecutorKind::Chase)
                .then(|| kb.rewriting(prepared))
                .and_then(Result::ok);
            match rewriting {
                Some(r) => out.push_str(&format!(
                    "\"rewriting\":{{\"cqs\":{},\"atoms\":{},\"joins\":{}}},\"program\":null,",
                    r.ucq.size(),
                    r.ucq.length(),
                    r.ucq.width()
                )),
                None => out.push_str("\"rewriting\":null,\"program\":null,"),
            }
        }
        out.push_str("\"answers\":[");
        for (j, tuple) in answers.tuples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            for (k, term) in tuple.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(&term.to_string())));
            }
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str(&format!("],\"stats\":{}}}", stats_json(&stats)));
    out
}

/// The `--json` document for modifier queries (`--where`/`--order-by`/
/// aggregates): row order is part of the answer, so rows are emitted as
/// an ordered array instead of the set-shaped `answers`.
fn rows_to_json(kb: &KnowledgeBase, results: &[(PreparedQuery, Vec<Vec<Term>>)]) -> String {
    let stats = kb.stats();
    let mut out = String::from("{\"queries\":[");
    for (i, (prepared, rows)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"query\":\"{}\",\"rows\":[",
            json_escape(&prepared.query().to_string())
        ));
        for (j, row) in rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            for (k, term) in row.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(&term.to_string())));
            }
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str(&format!("],\"stats\":{}}}", stats_json(&stats)));
    out
}

/// The shared `"stats"` object of both JSON documents (one source of
/// truth with the serving layer's `stats` endpoint).
fn stats_json(stats: &nyaya::KbStats) -> String {
    stats.to_json()
}
