//! # Nyaya-rs
//!
//! A Rust reproduction of *Gottlob, Orsi, Pieris: "Ontological Queries:
//! Rewriting and Optimization"* (ICDE 2011; extended version
//! arXiv:1112.0343) — ontological query answering by UCQ rewriting over
//! Datalog± ontologies, with the paper's query-elimination optimization.
//!
//! ## The 60-second tour
//!
//! ```
//! use nyaya::prelude::*;
//!
//! // 1. An ontology: linear TGDs in Datalog± syntax.
//! let program = nyaya::parser::parse_program(
//!     "sigma: has_stock(X, Y) -> stock_portf(Y, X, Z).
//!      q(A, B) :- stock_portf(B, A, D).",
//! )
//! .unwrap();
//!
//! // 2. Compile the query into a union of conjunctive queries.
//! let norm = nyaya::core::normalize(&program.ontology.tgds);
//! let rewriting = nyaya::rewrite::tgd_rewrite_star(
//!     &program.queries[0],
//!     &norm.tgds,
//!     &program.ontology.ncs,
//! );
//! assert_eq!(rewriting.ucq.size(), 2); // stock_portf(B,A,D) ∨ has_stock(A,B)
//!
//! // 3. Execute the rewriting directly on a database — no reasoning left.
//! let db = nyaya::sql::Database::from_facts([Atom::make(
//!     "has_stock",
//!     ["ibm_s", "fund1"],
//! )]);
//! let answers = nyaya::sql::execute_ucq(&db, &rewriting.ucq);
//! assert_eq!(answers.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | terms, atoms, queries, TGDs, unification, canonical forms, containment & core minimization, non-recursive Datalog programs, Datalog± classes, normalization |
//! | [`chase`] | the TGD chase (restricted / oblivious / Skolem), certain answers, consistency (NCs/KDs) |
//! | [`rewrite`] | TGD-rewrite / TGD-rewrite⋆, non-recursive Datalog rewriting, QuOnto & Requiem baselines, chase & back-chase |
//! | [`parser`] | Datalog± text syntax + DL-Lite_R and OWL 2 QL front ends |
//! | [`ontologies`] | the benchmark suite (V, S, U, A, P5 + X-variants) |
//! | [`sql`] | UCQ → SQL, an in-memory executor with a cost-based join planner, and bottom-up Datalog program evaluation |

pub use nyaya_chase as chase;
pub use nyaya_core as core;
pub use nyaya_ontologies as ontologies;
pub use nyaya_parser as parser;
pub use nyaya_rewrite as rewrite;
pub use nyaya_sql as sql;

/// The most commonly used items in one import.
pub mod prelude {
    pub use nyaya_chase::{certain_answers, chase, ChaseConfig, Instance};
    pub use nyaya_core::{
        classify, minimize_cq, normalize, Atom, ConjunctiveQuery, DatalogProgram,
        NegativeConstraint, Ontology, Predicate, Term, Tgd, UnionQuery,
    };
    pub use nyaya_parser::{parse_dl_lite, parse_owl_ql, parse_program, parse_query};
    pub use nyaya_rewrite::{nr_datalog_rewrite, tgd_rewrite, tgd_rewrite_star, RewriteOptions};
    pub use nyaya_sql::{execute_program, execute_ucq, ucq_to_sql, Catalog, Database};
}
