//! # Nyaya-rs
//!
//! A Rust reproduction of *Gottlob, Orsi, Pieris: "Ontological Queries:
//! Rewriting and Optimization"* (ICDE 2011; extended version
//! arXiv:1112.0343) — ontological query answering by UCQ rewriting over
//! Datalog± ontologies, with the paper's query-elimination optimization.
//!
//! ## The 60-second tour
//!
//! The paper's pipeline is *compile once, execute many*, and
//! [`KnowledgeBase`] is that pipeline as a value: the builder normalizes
//! and classifies the ontology once, prepared queries are rewritten once
//! and memoized, and execution is a pluggable backend.
//!
//! ```
//! use nyaya::{ExecutorKind, KnowledgeBase};
//!
//! // 1. Build: parse, normalize (Lemmas 1–2), classify, index — once.
//! //    An ontology of linear TGDs in Datalog± syntax, with one fact.
//! let kb = KnowledgeBase::from_program_text(
//!     "sigma: has_stock(X, Y) -> stock_portf(Y, X, Z).
//!      has_stock(ibm_s, fund1).",
//! )
//! .unwrap();
//! assert!(kb.classification().linear); // ⇒ FO-rewritable, in-memory backend
//!
//! // 2. Prepare: compile the query into a union of conjunctive queries.
//! //    The rewriting is memoized — preparing or executing this query
//! //    again will never rewrite twice.
//! let query = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
//! let rewriting = kb.rewriting(&query).unwrap();
//! assert_eq!(rewriting.ucq.size(), 2); // stock_portf(B,A,D) ∨ has_stock(A,B)
//!
//! // 3. Execute — on the default backend (the in-memory engine: no
//! //    reasoning left, pure database work) …
//! let fast = kb.execute(&query).unwrap();
//! assert_eq!(fast.tuples.len(), 1);
//!
//! // … and the same prepared query on the chase backend (the semantics
//! // oracle). Theorem 10: both backends agree.
//! let oracle = kb.execute_on(&query, ExecutorKind::Chase).unwrap();
//! assert!(oracle.complete);
//! assert_eq!(fast.tuples, oracle.tuples);
//!
//! // The second execution above reused the cached rewriting:
//! assert_eq!(kb.stats().cache_misses, 1);
//! assert_eq!(kb.stats().cache_hits, 1);
//!
//! // 4. Or ship SQL to the DBMS that actually holds the data.
//! let sql = kb.sql(&query).unwrap();
//! assert!(sql.contains("UNION"));
//!
//! // 5. Evolve the data without recompiling anything: batched updates
//! //    publish epoch-stamped snapshots. Readers pinned to an old
//! //    snapshot keep a consistent view; rewritings (TBox-only) survive.
//! use nyaya::UpdateBatch;
//! use nyaya::core::Atom;
//! let pinned = kb.snapshot(); // epoch 0, immutable
//! kb.apply(
//!     UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"])),
//! )
//! .unwrap();
//! assert_eq!(kb.epoch(), 1);
//! assert_eq!(kb.execute(&query).unwrap().tuples.len(), 2); // live view
//! assert_eq!(kb.execute_at(&query, &pinned).unwrap().tuples.len(), 1); // pinned view
//! assert_eq!(kb.stats().cache_misses, 1); // still exactly one compile
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`kb`] | **the facade**: [`KnowledgeBase`], builders, prepared queries with a rewriting cache, pluggable [`Executor`]s, batched [`UpdateBatch`] writes with epoch-stamped [`Snapshot`]s, [`NyayaError`] |
//! | [`core`] | terms, atoms, queries, TGDs, unification, canonical forms, containment & core minimization, non-recursive Datalog programs, Datalog± classes, normalization |
//! | [`chase`] | the TGD chase (restricted / oblivious / Skolem), certain answers, consistency (NCs/KDs) |
//! | [`rewrite`] | TGD-rewrite / TGD-rewrite⋆, non-recursive Datalog rewriting, QuOnto & Requiem baselines, chase & back-chase |
//! | [`parser`] | Datalog± text syntax + DL-Lite_R and OWL 2 QL front ends |
//! | [`ontologies`] | the benchmark suite (V, S, U, A, P5 + X-variants) |
//! | [`sql`] | UCQ → SQL, an in-memory executor with a cost-based join planner, predicate-hash sharding with scatter-gather, and bottom-up Datalog program evaluation |
//! | [`serving`] | the network backend: [`KbBackend`] implements `nyaya-serve`'s `Backend` trait over a shared [`KnowledgeBase`] (prepared handles, pinned-epoch answers, batch applies) |

#![warn(missing_docs)]

pub mod kb;
pub mod serving;

pub use nyaya_chase as chase;
pub use nyaya_core as core;
pub use nyaya_ledger as ledger;
pub use nyaya_ontologies as ontologies;
pub use nyaya_parser as parser;
pub use nyaya_rewrite as rewrite;
pub use nyaya_serve as serve;
pub use nyaya_sql as sql;

pub use kb::{
    Algorithm, AnswerDiff, Answers, ApplyOutcome, ChaseExecutor, CompiledProgram,
    CompiledRewriting, Executor, ExecutorKind, InMemoryExecutor, KbStats, KnowledgeBase,
    KnowledgeBaseBuilder, LedgerHistory, NyayaError, PreparedQuery, SealedWalInfo, SegmentFlush,
    SegmentInfo, Snapshot, SqlExecutor, Strategy, Subscription, UpdateBatch,
    DEFAULT_FLUSH_INTERVAL, DEFAULT_PROGRAM_THRESHOLD, REPLAN_RATIO,
};
pub use serving::KbBackend;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::kb::{
        Algorithm, AnswerDiff, Answers, ApplyOutcome, Executor, ExecutorKind, KbStats,
        KnowledgeBase, KnowledgeBaseBuilder, LedgerHistory, NyayaError, PreparedQuery,
        SegmentFlush, Snapshot, Strategy, Subscription, UpdateBatch,
    };
    pub use nyaya_chase::{certain_answers, chase, ChaseConfig, Instance};
    pub use nyaya_core::{
        classify, minimize_cq, normalize, Atom, ConjunctiveQuery, DatalogProgram,
        NegativeConstraint, Ontology, Predicate, Term, Tgd, UnionQuery,
    };
    pub use nyaya_parser::{parse_dl_lite, parse_owl_ql, parse_program, parse_query};
    pub use nyaya_rewrite::{
        nr_datalog_rewrite, tgd_rewrite, tgd_rewrite_star, RewriteError, RewriteOptions,
    };
    pub use nyaya_sql::{execute_program, execute_ucq, ucq_to_sql, Catalog, Database};
}
