//! Pluggable execution backends.
//!
//! The paper's pipeline ends with "submit the rewriting as a standard SQL
//! query to the DBMS holding D" — but which engine holds D varies: the
//! in-process relational engine, an external DBMS that only wants SQL text,
//! or (for ontologies outside the FO-rewritable classes, where no finite
//! UCQ rewriting exists) the chase. Each of those is an [`Executor`]; the
//! knowledge base picks one from its [`Classification`] and callers can
//! override per call via [`KnowledgeBase::execute_with`].
//!
//! [`Classification`]: nyaya_core::Classification
//! [`KnowledgeBase::execute_with`]: crate::KnowledgeBase::execute_with

use std::collections::BTreeSet;

use nyaya_chase::certain_answers;
use nyaya_core::Term;
use nyaya_sql::{execute_ucq, ucq_to_sql};

use super::error::NyayaError;
use super::{KnowledgeBase, PreparedQuery};

/// Which backend a [`KnowledgeBase`] routes execution to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Pick from the ontology's classification at build time:
    /// FO-rewritable ⇒ [`InMemoryExecutor`], otherwise [`ChaseExecutor`].
    Auto,
    /// Evaluate the UCQ rewriting on the in-process relational engine.
    InMemory,
    /// Emit SQL text for an external DBMS; does not produce tuples.
    Sql,
    /// Certain answers via the chase — no rewriting involved. The fallback
    /// for ontologies where no finite perfect rewriting is guaranteed.
    Chase,
}

/// The result of executing a prepared query on some backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Answers {
    /// Name of the backend that produced this result.
    pub backend: &'static str,
    /// Answer tuples (empty for the SQL-emission backend).
    pub tuples: BTreeSet<Vec<Term>>,
    /// The SQL a DBMS should run — populated by [`SqlExecutor`].
    pub sql: Option<String>,
    /// False when the backend could not guarantee completeness (chase
    /// truncated by its budget) or delegates the actual work (SQL text).
    pub complete: bool,
}

/// An execution backend for prepared queries.
pub trait Executor {
    /// Stable backend name, also recorded in [`Answers::backend`].
    fn name(&self) -> &'static str;

    /// Execute `query` against `kb`'s data.
    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError>;
}

/// Evaluate the UCQ rewriting over the in-process relational engine —
/// compile once, then pure database work (the paper's OBDA story without
/// leaving the process).
#[derive(Copy, Clone, Debug, Default)]
pub struct InMemoryExecutor;

impl Executor for InMemoryExecutor {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        let compiled = kb.rewriting(query)?;
        Ok(Answers {
            backend: self.name(),
            tuples: execute_ucq(kb.database(), &compiled.ucq),
            sql: None,
            complete: true,
        })
    }
}

/// Translate the UCQ rewriting to SQL text against the knowledge base's
/// catalog. Produces no tuples — the returned [`Answers::sql`] is meant for
/// the DBMS that actually holds the data.
#[derive(Copy, Clone, Debug, Default)]
pub struct SqlExecutor;

impl Executor for SqlExecutor {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        let compiled = kb.rewriting(query)?;
        let sql =
            ucq_to_sql(&compiled.ucq, kb.catalog()).ok_or(NyayaError::UnregisteredPredicate)?;
        Ok(Answers {
            backend: self.name(),
            tuples: BTreeSet::new(),
            sql: Some(sql),
            complete: false,
        })
    }
}

/// Certain answers via the chase (Section 3.3). Skips rewriting entirely:
/// this is the sound fallback when the ontology is outside every
/// FO-rewritable class and a finite UCQ rewriting is not guaranteed to
/// exist. [`Answers::complete`] is false if the chase budget truncated the
/// search (answers are then a lower bound).
#[derive(Copy, Clone, Debug, Default)]
pub struct ChaseExecutor;

impl Executor for ChaseExecutor {
    fn name(&self) -> &'static str {
        "chase"
    }

    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        let result = certain_answers(
            kb.instance(),
            kb.normalized_tgds(),
            query.query(),
            kb.chase_config(),
        );
        Ok(Answers {
            backend: self.name(),
            tuples: result.answers,
            sql: None,
            complete: result.saturated,
        })
    }
}
