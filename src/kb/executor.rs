//! Pluggable execution backends.
//!
//! The paper's pipeline ends with "submit the rewriting as a standard SQL
//! query to the DBMS holding D" — but which engine holds D varies: the
//! in-process relational engine, an external DBMS that only wants SQL text,
//! or (for ontologies outside the FO-rewritable classes, where no finite
//! UCQ rewriting exists) the chase. Each of those is an [`Executor`]; the
//! knowledge base picks one from its [`Classification`] and callers can
//! override per call via [`KnowledgeBase::execute_with`].
//!
//! [`Classification`]: nyaya_core::Classification
//! [`KnowledgeBase::execute_with`]: crate::KnowledgeBase::execute_with

use std::collections::BTreeSet;

use nyaya_chase::certain_answers;
use nyaya_core::Term;
use nyaya_sql::{
    execute_program_shared, execute_ucq_intra, execute_ucq_sharded, program_to_sql, ucq_to_sql,
};

use super::error::NyayaError;
use super::update::Snapshot;
use super::{KnowledgeBase, PreparedQuery};

/// Which backend a [`KnowledgeBase`] routes execution to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Pick from the ontology's classification at build time:
    /// FO-rewritable ⇒ [`InMemoryExecutor`], otherwise [`ChaseExecutor`].
    Auto,
    /// Evaluate the UCQ rewriting on the in-process relational engine.
    InMemory,
    /// Emit SQL text for an external DBMS; does not produce tuples.
    Sql,
    /// Certain answers via the chase — no rewriting involved. The fallback
    /// for ontologies where no finite perfect rewriting is guaranteed.
    Chase,
}

/// The result of executing a prepared query on some backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Answers {
    /// Name of the backend that produced this result.
    pub backend: &'static str,
    /// Answer tuples (empty for the SQL-emission backend).
    pub tuples: BTreeSet<Vec<Term>>,
    /// The SQL a DBMS should run — populated by [`SqlExecutor`].
    pub sql: Option<String>,
    /// False when the backend could not guarantee completeness (chase
    /// truncated by its budget) or delegates the actual work (SQL text).
    pub complete: bool,
}

/// An execution backend for prepared queries.
pub trait Executor {
    /// Stable backend name, also recorded in [`Answers::backend`].
    fn name(&self) -> &'static str;

    /// Execute `query` against `kb`'s data.
    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError>;
}

/// Unions with at least this many disjuncts run on the engine's parallel
/// path; smaller rewritings stay sequential, where thread spawn overhead
/// would dominate.
pub const PARALLEL_THRESHOLD: usize = 32;

/// Evaluate the UCQ rewriting over the in-process relational engine —
/// compile once, then pure database work (the paper's OBDA story without
/// leaving the process).
///
/// Large unions (≥ [`parallel_threshold`](Self::parallel_threshold)
/// disjuncts) are routed through the engine's multi-threaded path: the
/// disjuncts of a perfect rewriting are independent, and the workers
/// share one build-side cache. Per-run timing and row counters land in
/// [`KbStats`](super::KbStats).
#[derive(Copy, Clone, Debug)]
pub struct InMemoryExecutor {
    parallel_threshold: usize,
}

impl Default for InMemoryExecutor {
    fn default() -> Self {
        InMemoryExecutor {
            parallel_threshold: PARALLEL_THRESHOLD,
        }
    }
}

impl InMemoryExecutor {
    /// Route unions with at least `threshold` disjuncts through the
    /// parallel path. `usize::MAX` forces sequential execution.
    pub fn with_parallel_threshold(threshold: usize) -> Self {
        InMemoryExecutor {
            parallel_threshold: threshold.max(1),
        }
    }

    /// The current routing threshold.
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }
}

impl InMemoryExecutor {
    /// Run against a **pinned** snapshot: the execution reads that
    /// epoch's tables and shares that epoch's persistent build cache
    /// (patterns hashed by earlier executions over the same snapshot are
    /// reused; patterns built here are left behind for later ones).
    pub fn execute_at(
        &self,
        kb: &KnowledgeBase,
        query: &PreparedQuery,
        snapshot: &Snapshot,
    ) -> Result<Answers, NyayaError> {
        // The knowledge base's Strategy may route this query to the
        // non-recursive Datalog target: materialize each intensional
        // predicate once (strata in parallel past the same threshold)
        // instead of evaluating the DNF's disjuncts.
        if let Some(program) = kb.execution_plan(query)? {
            // Exact answer cache: a fingerprint match over the program's
            // extensional predicates proves the cached answer equals
            // what this execution would produce.
            if let Some(hit) = kb.cached_answer(query, snapshot, &program.touched) {
                return Ok(hit);
            }
            let threads = if program.program.num_rules() >= self.parallel_threshold {
                std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
            } else {
                1
            };
            let (tuples, metrics) = execute_program_shared(
                snapshot.database(),
                &program.program,
                threads,
                snapshot.build_cache(),
            )?;
            kb.record_program_execution(&metrics);
            let answers = Answers {
                backend: "program",
                tuples,
                sql: None,
                complete: true,
            };
            kb.store_answer(query, snapshot, &program.touched, &answers);
            return Ok(answers);
        }
        let compiled = kb.rewriting(query)?;
        if let Some(hit) = kb.cached_answer(query, snapshot, &compiled.touched) {
            return Ok(hit);
        }
        // Large unions always get at least two workers so the routing
        // decision (and the KbStats counter built on it) is deterministic
        // across hosts. On a single core the chunked workers cost a few
        // percent over sequential; on multi-core hosts — the deployment
        // target for hundred-disjunct rewritings — they win.
        //
        // Small unions get the cores the other way: intra-query morsel
        // parallelism splits each join step's probe side across workers
        // once it holds at least two morsels, so a handful of disjuncts
        // over millions of facts still saturates the machine. Tiny
        // intermediates never spawn (the engine's 2-morsel floor), so
        // point queries stay sequential.
        let avail = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
        let (threads, intra) = if compiled.ucq.cqs.len() >= self.parallel_threshold {
            (avail, 1)
        } else {
            (1, avail)
        };
        // Cost-based planning with the query's learned cardinality
        // correction; the run's estimated-vs-actual counts feed the next
        // correction (re-planning when the estimate was badly off).
        // Sharded knowledge bases route through the scatter-gather path:
        // disjuncts grouped by home shard, per-group answer sets unioned
        // — bit-identical to the single-shard execution.
        let correction = kb.plan_correction(query);
        let (tuples, metrics) = if kb.shards() > 1 {
            execute_ucq_sharded(
                snapshot.database(),
                &compiled.ucq,
                kb.shards(),
                threads,
                snapshot.build_cache(),
                correction,
            )
        } else {
            execute_ucq_intra(
                snapshot.database(),
                &compiled.ucq,
                threads,
                intra,
                snapshot.build_cache(),
                correction,
            )
        };
        kb.record_execution(&metrics);
        kb.record_feedback(query, &metrics);
        let answers = Answers {
            backend: self.name(),
            tuples,
            sql: None,
            complete: true,
        };
        kb.store_answer(query, snapshot, &compiled.touched, &answers);
        Ok(answers)
    }
}

impl Executor for InMemoryExecutor {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        self.execute_at(kb, query, &kb.snapshot())
    }
}

/// Translate the UCQ rewriting to SQL text against the knowledge base's
/// catalog. Produces no tuples — the returned [`Answers::sql`] is meant for
/// the DBMS that actually holds the data.
#[derive(Copy, Clone, Debug, Default)]
pub struct SqlExecutor;

impl SqlExecutor {
    /// Emit SQL against a pinned snapshot's catalog (catalogs grow when
    /// updates introduce new predicates, so emission is epoch-dependent).
    pub fn execute_at(
        &self,
        kb: &KnowledgeBase,
        query: &PreparedQuery,
        snapshot: &Snapshot,
    ) -> Result<Answers, NyayaError> {
        // Under the program strategy, ship the program shape: one
        // `WITH`-CTE per intensional predicate and a goal SELECT joining
        // them, instead of unfolding into the flat UCQ text.
        if let Some(program) = kb.execution_plan(query)? {
            let sql = program_to_sql(&program.program, snapshot.catalog())?;
            return Ok(Answers {
                backend: self.name(),
                tuples: BTreeSet::new(),
                sql: Some(sql),
                complete: false,
            });
        }
        let compiled = kb.rewriting(query)?;
        let sql = ucq_to_sql(&compiled.ucq, snapshot.catalog()).ok_or_else(|| {
            // Name the first predicate the catalog is missing — the error
            // is actionable only if it says which table to register.
            let predicate = compiled
                .ucq
                .iter()
                .flat_map(|cq| cq.body.iter())
                .find(|a| snapshot.catalog().table(a.pred).is_none())
                .map(|a| a.pred.to_string())
                .unwrap_or_else(|| "<unknown>".to_owned());
            NyayaError::UnregisteredPredicate { predicate }
        })?;
        Ok(Answers {
            backend: self.name(),
            tuples: BTreeSet::new(),
            sql: Some(sql),
            complete: false,
        })
    }
}

impl Executor for SqlExecutor {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        self.execute_at(kb, query, &kb.snapshot())
    }
}

/// Certain answers via the chase (Section 3.3). Skips rewriting entirely:
/// this is the sound fallback when the ontology is outside every
/// FO-rewritable class and a finite UCQ rewriting is not guaranteed to
/// exist. [`Answers::complete`] is false if the chase budget truncated the
/// search (answers are then a lower bound).
#[derive(Copy, Clone, Debug, Default)]
pub struct ChaseExecutor;

impl ChaseExecutor {
    /// Chase a pinned snapshot's instance (derived lazily from its
    /// database and memoized on the snapshot).
    pub fn execute_at(
        &self,
        kb: &KnowledgeBase,
        query: &PreparedQuery,
        snapshot: &Snapshot,
    ) -> Result<Answers, NyayaError> {
        let result = certain_answers(
            snapshot.instance(),
            kb.normalized_tgds(),
            query.query(),
            kb.chase_config(),
        );
        Ok(Answers {
            backend: self.name(),
            tuples: result.answers,
            sql: None,
            complete: result.saturated,
        })
    }
}

impl Executor for ChaseExecutor {
    fn name(&self) -> &'static str {
        "chase"
    }

    fn execute(&self, kb: &KnowledgeBase, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        self.execute_at(kb, query, &kb.snapshot())
    }
}
