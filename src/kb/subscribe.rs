//! Standing queries: subscriptions maintained incrementally.
//!
//! [`KnowledgeBase::subscribe`](crate::KnowledgeBase::subscribe) compiles
//! a prepared query's non-recursive Datalog program into delta rules
//! (see [`nyaya_rewrite::compile_delta_program`]), materializes the
//! answer set with per-tuple support counts, and registers the view so
//! every [`apply`](crate::KnowledgeBase::apply) propagates just that
//! batch's deltas through the rules instead of re-executing the query.
//! Each epoch publishes one [`AnswerDiff`] into the subscription's queue;
//! [`Subscription::poll`] drains it.
//!
//! A `Subscription` is a plain handle: dropping it unregisters the view
//! (the knowledge base holds only a `Weak` reference), and it can be
//! polled from any thread while writers keep applying batches.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use nyaya_core::Term;
use nyaya_sql::MaterializedView;

/// The answer-set change one epoch produced for a standing query.
///
/// `added` and `removed` are sorted, disjoint, and expressed over the
/// goal atom's answer tuples. Every applied epoch yields exactly one
/// diff — possibly empty — so a consumer replaying diffs in order tracks
/// the full-re-execution answer set at every epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnswerDiff {
    /// The epoch whose batch produced this change.
    pub epoch: u64,
    /// Answer tuples that became derivable at this epoch.
    pub added: Vec<Vec<Term>>,
    /// Answer tuples that stopped being derivable at this epoch.
    pub removed: Vec<Vec<Term>>,
}

impl AnswerDiff {
    /// Did this epoch leave the answer set unchanged?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Shared state between a [`Subscription`] handle and the knowledge
/// base's registry. All three fields are advisory per-subscription state:
/// a panic while one is locked tears at most this subscription, so the
/// locks recover from poisoning instead of spreading the panic.
pub(crate) struct SubscriptionInner {
    /// The support-counted materialization the writer propagates into.
    pub(crate) view: Mutex<MaterializedView>,
    /// Per-epoch diffs not yet drained by [`Subscription::poll`].
    pub(crate) pending: Mutex<VecDeque<AnswerDiff>>,
    /// The newest epoch whose diff has been pushed.
    pub(crate) epoch: AtomicU64,
}

impl SubscriptionInner {
    pub(crate) fn new(view: MaterializedView, initial: VecDeque<AnswerDiff>, epoch: u64) -> Self {
        SubscriptionInner {
            view: Mutex::new(view),
            pending: Mutex::new(initial),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// Publish one epoch's diff (writer side, called under the apply lock).
    pub(crate) fn push(&self, diff: AnswerDiff) {
        let epoch = diff.epoch;
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(diff);
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// A standing query over a [`KnowledgeBase`](crate::KnowledgeBase),
/// maintained incrementally by delta propagation on every
/// [`apply`](crate::KnowledgeBase::apply).
pub struct Subscription {
    pub(crate) inner: Arc<SubscriptionInner>,
}

impl Subscription {
    /// Drain every diff published since the last `poll` (or since
    /// subscribing), in ascending epoch order. The first diff of a fresh
    /// subscription is the initial answer set (`added` = all current
    /// answers) at the seed epoch.
    pub fn poll(&self) -> Vec<AnswerDiff> {
        self.inner
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect()
    }

    /// The current answer set of the standing query, as of
    /// [`epoch`](Self::epoch). Unlike [`poll`](Self::poll) this does not
    /// consume anything.
    pub fn current(&self) -> BTreeSet<Vec<Term>> {
        self.inner
            .view
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .answers()
            .clone()
    }

    /// The newest epoch whose diff has been published (drained or not).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Number of diffs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.inner
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("epoch", &self.epoch())
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}
