//! # The `KnowledgeBase` facade
//!
//! The paper's pipeline is *compile once, execute many*: normalize the
//! ontology (Lemmas 1–2), classify it (Section 4), rewrite each query into
//! a UCQ (Algorithm 1 / TGD-rewrite⋆) and hand the rewriting to a plain
//! database engine. This module packages that lifecycle behind one type so
//! callers stop re-deriving it from free functions:
//!
//! - [`KnowledgeBaseBuilder`] loads an ontology from any front end
//!   (Datalog±, DL-Lite_R, OWL 2 QL), then normalizes and classifies it
//!   **once** at [`build`](KnowledgeBaseBuilder::build) time — including
//!   the Section 6 [`EliminationContext`], which is derived from Σ alone
//!   and shared by every subsequent rewriting;
//! - [`KnowledgeBase::prepare`] turns a CQ into a [`PreparedQuery`]; its
//!   perfect rewriting is computed on first execution and memoized by the
//!   query's canonical key (α-equivalent queries share one cache slot), so
//!   repeated queries never rewrite twice — [`KbStats`] exposes the
//!   hit/miss counters;
//! - execution goes through a pluggable [`Executor`]: the in-process
//!   relational engine, SQL-text emission for an external DBMS, or
//!   chase-based certain answers for ontologies outside the FO-rewritable
//!   classes. The default backend is picked from [`classify`] and can
//!   be overridden;
//! - the ABox evolves **without recompiling anything**:
//!   [`KnowledgeBase::apply`] inserts/retracts facts in atomic
//!   [`UpdateBatch`]es, maintaining the engine's per-column indexes
//!   incrementally and publishing each new state as an epoch-stamped,
//!   immutable [`Snapshot`]. In-flight readers keep the epoch they
//!   started on; rewritings (TBox-only) survive every data write, and
//!   the engine's build-side cache is invalidated per-predicate rather
//!   than dropped.
//!
//! ```
//! use nyaya::{Algorithm, KnowledgeBase};
//!
//! let kb = KnowledgeBase::builder()
//!     .program_text(
//!         "sigma: has_stock(X, Y) -> stock_portf(Y, X, Z).
//!          has_stock(ibm_s, fund1).",
//!     )
//!     .unwrap()
//!     .algorithm(Algorithm::NyayaStar)
//!     .build()
//!     .unwrap();
//! let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
//! let answers = kb.execute(&q).unwrap();
//! assert_eq!(answers.tuples.len(), 1);
//! assert_eq!(kb.stats().cache_misses, 1);
//! ```

mod durability;
mod error;
mod executor;
mod subscribe;
mod update;

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock, Weak};

use nyaya_chase::{check_consistency, ChaseConfig, Consistency};
use nyaya_core::DatalogProgram;
use nyaya_core::{
    canonical_key, classify, normalize, Atom, CanonicalKey, Classification, ConjunctiveQuery,
    Normalization, Ontology, Predicate, Tgd,
};
use nyaya_parser::{parse_dl_lite, parse_owl_ql, parse_program, parse_query};
use nyaya_rewrite::{
    compile_delta_program, estimate_dnf_bound, interaction_clusters, nr_datalog_rewrite_with,
    quonto_rewrite, requiem_rewrite, tgd_rewrite_with, DeltaError, EliminationContext,
    ProgramOptStats, ProgramStrategy, RewriteOptions, RewriteStats,
};
use nyaya_sql::{
    BaseDeltas, BuildCache, Catalog, Database, IvmProgram, IvmRule, MaterializedView,
    ProgramMetrics,
};

use durability::Durability;
use subscribe::SubscriptionInner;

pub use error::NyayaError;
pub use executor::{Answers, ChaseExecutor, Executor, ExecutorKind, InMemoryExecutor, SqlExecutor};
pub use nyaya_ledger::{LedgerHistory, SealedWalInfo, SegmentFlush, SegmentInfo};
pub use subscribe::{AnswerDiff, Subscription};
pub use update::{ApplyOutcome, Snapshot, UpdateBatch};

/// Which rewriting engine compiles prepared queries.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// TGD-rewrite (Algorithm 1) — sound and complete for arbitrary TGDs.
    Nyaya,
    /// TGD-rewrite⋆ — Algorithm 1 plus the Section 6 query elimination.
    /// Complete for linear TGDs (Theorem 10).
    NyayaStar,
    /// The QuOnto/PerfectRef-style baseline (exhaustive factorization).
    QuOnto,
    /// The Requiem-style resolution baseline (Skolemized existentials).
    Requiem,
}

impl Algorithm {
    /// Short label, as used in the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Nyaya => "NY",
            Algorithm::NyayaStar => "NY*",
            Algorithm::QuOnto => "QO",
            Algorithm::Requiem => "RQ",
        }
    }
}

/// Which compiled form a prepared query executes as (Sections 2 and 8):
/// the flat UCQ rewriting, or the non-recursive Datalog program that
/// hides the UCQ's disjunctive normal form inside intermediate rules.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Pick per query: compile the program when the query body splits into
    /// ≥ 2 interaction clusters and the estimated DNF size of the UCQ
    /// rewriting reaches the threshold
    /// ([`KnowledgeBaseBuilder::program_threshold`]); otherwise the UCQ.
    #[default]
    Auto,
    /// Always execute the flat UCQ rewriting.
    Ucq,
    /// Always compile and execute the non-recursive Datalog program.
    Program,
}

/// Default [`KnowledgeBaseBuilder::program_threshold`]: an estimated DNF
/// of this many CQs routes an [`Strategy::Auto`] query to the program
/// target. Below it, flat-UCQ execution (shared build sides, parallel
/// disjuncts) wins; far above it, the UCQ's size dominates everything.
pub const DEFAULT_PROGRAM_THRESHOLD: usize = 256;

/// Default [`KnowledgeBaseBuilder::flush_interval`]: a durable knowledge
/// base writes an index segment every this many applied batches. Smaller
/// intervals bound recovery replay tighter at the cost of more segment
/// I/O; the WAL keeps every batch either way.
pub const DEFAULT_FLUSH_INTERVAL: u64 = 64;

/// Cardinality-feedback trigger: when an execution's actual row count
/// differs from the cost plan's estimate by at least this factor (either
/// direction), the learned correction is updated and the query re-plans
/// on its next execution.
pub const REPLAN_RATIO: f64 = 8.0;

/// Learned correction factors are clamped to `[1/64, 64]` so one absurd
/// estimate cannot wedge a query into a pathological plan forever.
const MAX_CORRECTION: f64 = 64.0;

/// A query compiled against a [`KnowledgeBase`].
///
/// Holds the original CQ, the engine that will compile it, and its
/// canonical cache key. The rewriting itself is produced lazily by the
/// first executor that needs it and memoized both in the knowledge base's
/// cache (shared across handles) and inline in this handle (so re-executing
/// the same handle doesn't even take the cache lock). The inline slot is
/// stamped with the identity of the knowledge base that prepared the
/// handle: executing it against a *different* knowledge base bypasses the
/// slot and compiles under that base's own ontology instead of silently
/// serving a rewriting from the wrong Σ.
pub struct PreparedQuery {
    query: ConjunctiveQuery,
    algorithm: Algorithm,
    key: CanonicalKey,
    /// Identity of the [`KnowledgeBase`] whose `prepare` produced this.
    kb_id: u64,
    compiled: OnceLock<Arc<CompiledRewriting>>,
    /// The program-target twin of `compiled`, filled by
    /// [`KnowledgeBase::program`] or the [`Strategy`] machinery.
    compiled_program: OnceLock<Arc<CompiledProgram>>,
    /// Memoized [`Strategy::Auto`] decision (`true` = program target);
    /// like the inline slots, only consulted by the owning base.
    program_choice: OnceLock<bool>,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &self.query.to_string())
            .field("algorithm", &self.algorithm)
            .field("compiled", &self.compiled.get().is_some())
            .finish()
    }
}

impl PreparedQuery {
    /// The query as handed to [`KnowledgeBase::prepare`].
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The engine that compiles this query.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The canonical (α-renaming-invariant) cache key.
    pub fn key(&self) -> &CanonicalKey {
        &self.key
    }
}

/// A compiled perfect rewriting, as cached by the knowledge base.
#[derive(Clone)]
pub struct CompiledRewriting {
    /// The perfect UCQ rewriting of the prepared query.
    pub ucq: nyaya_core::UnionQuery,
    /// Engine counters from the run that produced it.
    pub stats: RewriteStats,
    /// Every predicate the rewriting reads (union of the disjunct
    /// bodies), sorted — the answer cache fingerprints snapshots over
    /// exactly this set.
    pub touched: Vec<Predicate>,
}

/// A compiled non-recursive Datalog program, the [`Strategy::Program`]
/// peer of [`CompiledRewriting`] — cached by the knowledge base under the
/// same canonical key, TBox-only like every rewriting (data writes never
/// invalidate it).
#[derive(Clone)]
pub struct CompiledProgram {
    /// The optimized program, equivalent to the perfect UCQ rewriting.
    pub program: DatalogProgram,
    /// How the query body decomposed (clusters vs monolithic).
    pub strategy: ProgramStrategy,
    /// Size of the flat UCQ the program hides (saturating product of the
    /// cluster rewriting sizes) — what [`Strategy::Auto`] compares against
    /// the program threshold.
    pub estimated_dnf: usize,
    /// Engine counters from the compile, program rules/strata included.
    pub stats: RewriteStats,
    /// What the program optimizer passes did.
    pub opt: ProgramOptStats,
    /// The extensional predicates the program reads (body predicates
    /// never defined by a rule head), sorted — the program path's answer
    /// dependency set, mirroring [`CompiledRewriting::touched`].
    pub touched: Vec<Predicate>,
}

/// Snapshot of a knowledge base's lifetime counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KbStats {
    /// Queries passed through [`KnowledgeBase::prepare`]/`prepare_text`.
    pub prepared: u64,
    /// Rewriting-cache hits (a compile was skipped entirely).
    pub cache_hits: u64,
    /// Rewriting-cache misses (a rewriting was computed).
    pub cache_misses: u64,
    /// Executions across all backends.
    pub executions: u64,
    /// Distinct rewritings currently memoized.
    pub cached_rewritings: usize,
    /// Wall-clock microseconds spent in the in-memory engine.
    pub exec_micros: u64,
    /// Answer tuples returned by the in-memory engine.
    pub rows_returned: u64,
    /// In-memory executions routed through the parallel union path.
    pub parallel_executions: u64,
    /// Build sides served from the engine's shared cache.
    pub build_cache_hits: u64,
    /// Build sides the engine had to construct.
    pub build_cache_misses: u64,
    /// The currently published data epoch (0 = the build-time state;
    /// each applied [`UpdateBatch`] increments it).
    pub epoch: u64,
    /// Update batches applied over the lifetime of this knowledge base.
    pub batches_applied: u64,
    /// Facts actually inserted by [`KnowledgeBase::apply`] (duplicates
    /// of already-present facts are not counted).
    pub facts_inserted: u64,
    /// Facts actually retracted by [`KnowledgeBase::apply`] (retractions
    /// of absent facts are not counted).
    pub facts_retracted: u64,
    /// Build-cache entries evicted by writes — each one a pattern keyed
    /// on a predicate some batch touched. Entries over untouched
    /// predicates are carried across epochs instead.
    pub build_cache_invalidations: u64,
    /// Facts in the current snapshot.
    pub snapshot_facts: usize,
    /// Wall-clock microseconds spent compiling rewritings (cache misses
    /// and `program` calls; cache hits cost none).
    pub rewrite_micros: u64,
    /// Queries explored across all rewriting compiles.
    pub rewrite_explored: u64,
    /// Compiles that ran with more than one exploration worker.
    pub rewrites_parallel: u64,
    /// Subsumption candidate pairs the predicate-signature index rejected
    /// without a homomorphism check (non-zero only with
    /// [`KnowledgeBaseBuilder::minimize_rewritings`]).
    pub subsumption_checks_avoided: u64,
    /// Non-recursive Datalog programs compiled (program-cache misses;
    /// cached programs cost nothing, like cached rewritings).
    pub program_compiles: u64,
    /// Executions routed to the program target (bottom-up materialization
    /// instead of flat-UCQ evaluation).
    pub program_executions: u64,
    /// Wall-clock microseconds spent executing programs bottom-up.
    pub program_micros: u64,
    /// Rules across all compiled programs (post-optimizer).
    pub program_rules: u64,
    /// Stratum levels across all compiled programs.
    pub program_strata: u64,
    /// Intensional tuples materialized across all program executions.
    pub program_tuples_materialized: u64,
    /// Is this knowledge base backed by a durable ledger?
    pub durable: bool,
    /// Batches appended to the write-ahead log this run.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log this run.
    pub wal_bytes: u64,
    /// Index segments flushed this run (background + explicit compacts,
    /// including the epoch-0 seed of a fresh ledger).
    pub segments_flushed: u64,
    /// Total bytes across the segments flushed this run.
    pub segment_bytes: u64,
    /// The newest epoch any flushed segment snapshots.
    pub last_segment_epoch: u64,
    /// Historical epochs materialized on demand by
    /// [`KnowledgeBase::snapshot_at`] (cache hits not counted).
    pub epochs_materialized: u64,
    /// WAL records replayed by crash recovery when this knowledge base
    /// was built over an existing ledger.
    pub recovery_replayed: u64,
    /// Standing queries currently registered (live [`Subscription`]
    /// handles; dropped subscriptions stop counting).
    pub subscriptions_active: usize,
    /// Per-epoch [`AnswerDiff`]s published across all subscriptions
    /// (empty diffs included — one per subscription per applied batch).
    pub subscription_diffs: u64,
    /// Answer tuples added across all published diffs.
    pub ivm_added_tuples: u64,
    /// Answer tuples removed across all published diffs.
    pub ivm_removed_tuples: u64,
    /// Wall-clock microseconds spent propagating deltas through standing
    /// queries inside [`KnowledgeBase::apply`].
    pub ivm_micros: u64,
    /// Merge joins executed by the in-memory engine (only cost-based
    /// plans pick them; the preserved greedy planner is hash-only).
    pub merge_joins: u64,
    /// Probe morsels (fixed-size probe batches) the engine's join
    /// kernels drove across all executions. Counts logical batches,
    /// independent of the intra-query worker split, so the value is
    /// host-stable.
    pub morsel_tasks: u64,
    /// Range/comparison filters answered by a sorted-index scan instead
    /// of a row-by-row post-filter.
    pub range_index_scans: u64,
    /// ORDER BY + LIMIT executions answered by a top-k early exit over a
    /// sorted index (no full materialization).
    pub topk_early_exits: u64,
    /// COUNT/MIN/MAX aggregates answered O(1) from index metadata.
    pub aggregate_pushdowns: u64,
    /// Filtered disjuncts that fell back to a planned row-by-row scan
    /// because no sorted index applied — the counted (never silent)
    /// fallback path.
    pub filter_fallback_scans: u64,
    /// Optimizer row estimates summed across executed cost-based plans.
    pub plan_estimated_rows: u64,
    /// Actual answer rows those same executions returned.
    pub plan_actual_rows: u64,
    /// Corrections stored by the cardinality-feedback loop: an execution
    /// missed its estimate by ≥ the replan ratio, so the next execution
    /// of that query re-plans with the learned factor.
    pub plan_replans: u64,
    /// Executions answered from the exact answer cache — the snapshot's
    /// per-predicate write epochs matched a stored entry, so the cached
    /// answer is provably identical to re-execution (never stale).
    pub cache_answer_hits: u64,
    /// Answer-cache lookups that had to execute (no entry with a
    /// matching predicate-epoch fingerprint).
    pub cache_answer_misses: u64,
    /// Per-shard disjunct groups executed by the scatter-gather path
    /// (0 until the builder enables [`KnowledgeBaseBuilder::shards`]).
    pub shard_scatter_ops: u64,
    /// Requests served through the network serving layer (`nyaya serve`).
    pub net_requests: u64,
    /// Approximate resident heap bytes of the current snapshot's fact
    /// payload (flat columns plus exotic side-tables).
    pub fact_bytes: u64,
    /// Approximate resident heap bytes of the current snapshot's index
    /// structures (postings, sorted lists, dedup sets).
    pub index_bytes: u64,
    /// Per-table memory breakdown of the current snapshot, sorted by
    /// predicate name then arity.
    pub tables: Vec<nyaya_sql::TableMemory>,
}

impl KbStats {
    /// The stats as one flat JSON object — the document behind both the
    /// CLI's `stats --json`/`answer --json` output and the serving
    /// layer's `stats` endpoint, so the two can never drift apart.
    pub fn to_json(&self) -> String {
        let tables: String = self
            .tables
            .iter()
            .map(|t| {
                format!(
                    "{{\"predicate\":\"{}\",\"arity\":{},\"rows\":{},\
                     \"fact_bytes\":{},\"index_bytes\":{}}}",
                    t.predicate.replace('\\', "\\\\").replace('"', "\\\""),
                    t.arity,
                    t.rows,
                    t.fact_bytes,
                    t.index_bytes,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"prepared\":{},\"cache_hits\":{},\"cache_misses\":{},\"executions\":{},\
             \"exec_micros\":{},\"rows_returned\":{},\"parallel_executions\":{},\
             \"build_cache_hits\":{},\"build_cache_misses\":{},\
             \"epoch\":{},\"batches_applied\":{},\"facts_inserted\":{},\"facts_retracted\":{},\
             \"build_cache_invalidations\":{},\"snapshot_facts\":{},\
             \"rewrite_micros\":{},\"rewrite_explored\":{},\"rewrites_parallel\":{},\
             \"subsumption_checks_avoided\":{},\
             \"program_compiles\":{},\"program_executions\":{},\"program_micros\":{},\
             \"program_rules\":{},\"program_strata\":{},\"program_tuples_materialized\":{},\
             \"durable\":{},\"wal_records\":{},\"wal_bytes\":{},\"segments_flushed\":{},\
             \"segment_bytes\":{},\"last_segment_epoch\":{},\"epochs_materialized\":{},\
             \"recovery_replayed\":{},\
             \"subscriptions_active\":{},\"subscription_diffs\":{},\"ivm_added_tuples\":{},\
             \"ivm_removed_tuples\":{},\"ivm_micros\":{},\
             \"merge_joins\":{},\"morsel_tasks\":{},\"range_index_scans\":{},\
             \"topk_early_exits\":{},\
             \"aggregate_pushdowns\":{},\"filter_fallback_scans\":{},\
             \"plan_estimated_rows\":{},\"plan_actual_rows\":{},\"plan_replans\":{},\
             \"cache_answer_hits\":{},\"cache_answer_misses\":{},\
             \"shard_scatter_ops\":{},\"net_requests\":{},\
             \"fact_bytes\":{},\"index_bytes\":{},\"tables\":[{}]}}",
            self.prepared,
            self.cache_hits,
            self.cache_misses,
            self.executions,
            self.exec_micros,
            self.rows_returned,
            self.parallel_executions,
            self.build_cache_hits,
            self.build_cache_misses,
            self.epoch,
            self.batches_applied,
            self.facts_inserted,
            self.facts_retracted,
            self.build_cache_invalidations,
            self.snapshot_facts,
            self.rewrite_micros,
            self.rewrite_explored,
            self.rewrites_parallel,
            self.subsumption_checks_avoided,
            self.program_compiles,
            self.program_executions,
            self.program_micros,
            self.program_rules,
            self.program_strata,
            self.program_tuples_materialized,
            self.durable,
            self.wal_records,
            self.wal_bytes,
            self.segments_flushed,
            self.segment_bytes,
            self.last_segment_epoch,
            self.epochs_materialized,
            self.recovery_replayed,
            self.subscriptions_active,
            self.subscription_diffs,
            self.ivm_added_tuples,
            self.ivm_removed_tuples,
            self.ivm_micros,
            self.merge_joins,
            self.morsel_tasks,
            self.range_index_scans,
            self.topk_early_exits,
            self.aggregate_pushdowns,
            self.filter_fallback_scans,
            self.plan_estimated_rows,
            self.plan_actual_rows,
            self.plan_replans,
            self.cache_answer_hits,
            self.cache_answer_misses,
            self.shard_scatter_ops,
            self.net_requests,
            self.fact_bytes,
            self.index_bytes,
            tables,
        )
    }
}

#[derive(Default)]
struct Counters {
    prepared: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    executions: AtomicU64,
    exec_micros: AtomicU64,
    rows_returned: AtomicU64,
    parallel_executions: AtomicU64,
    build_cache_hits: AtomicU64,
    build_cache_misses: AtomicU64,
    batches_applied: AtomicU64,
    facts_inserted: AtomicU64,
    facts_retracted: AtomicU64,
    build_cache_invalidations: AtomicU64,
    rewrite_micros: AtomicU64,
    rewrite_explored: AtomicU64,
    rewrites_parallel: AtomicU64,
    subsumption_avoided: AtomicU64,
    program_compiles: AtomicU64,
    program_executions: AtomicU64,
    program_micros: AtomicU64,
    program_rules: AtomicU64,
    program_strata: AtomicU64,
    program_tuples: AtomicU64,
    subscription_diffs: AtomicU64,
    ivm_added: AtomicU64,
    ivm_removed: AtomicU64,
    ivm_micros: AtomicU64,
    merge_joins: AtomicU64,
    morsel_tasks: AtomicU64,
    range_index_scans: AtomicU64,
    topk_early_exits: AtomicU64,
    aggregate_pushdowns: AtomicU64,
    filter_fallback_scans: AtomicU64,
    plan_estimated_rows: AtomicU64,
    plan_actual_rows: AtomicU64,
    plan_replans: AtomicU64,
    cache_answer_hits: AtomicU64,
    cache_answer_misses: AtomicU64,
    shard_scatter_ops: AtomicU64,
    net_requests: AtomicU64,
}

/// Process-unique knowledge-base identities (see [`PreparedQuery::kb_id`]).
static NEXT_KB_ID: AtomicU64 = AtomicU64::new(0);

/// Builder for [`KnowledgeBase`] — see the [module docs](self).
pub struct KnowledgeBaseBuilder {
    ontology: Ontology,
    facts: Vec<Atom>,
    queries: Vec<ConjunctiveQuery>,
    algorithm: Option<Algorithm>,
    executor: ExecutorKind,
    show_aux: bool,
    nc_pruning: Option<bool>,
    max_queries: usize,
    rewrite_workers: usize,
    minimize_rewritings: bool,
    strategy: Strategy,
    program_threshold: usize,
    chase_config: ChaseConfig,
    catalog: Option<Catalog>,
    durable_path: Option<PathBuf>,
    flush_interval: u64,
    answer_cache: bool,
    shards: usize,
}

impl Default for KnowledgeBaseBuilder {
    fn default() -> Self {
        KnowledgeBaseBuilder {
            ontology: Ontology::from_tgds(Vec::new()),
            facts: Vec::new(),
            queries: Vec::new(),
            algorithm: None,
            executor: ExecutorKind::Auto,
            show_aux: false,
            nc_pruning: None,
            max_queries: 500_000,
            rewrite_workers: 1,
            minimize_rewritings: false,
            strategy: Strategy::Auto,
            program_threshold: DEFAULT_PROGRAM_THRESHOLD,
            chase_config: ChaseConfig::default(),
            catalog: None,
            durable_path: None,
            flush_interval: DEFAULT_FLUSH_INTERVAL,
            answer_cache: true,
            shards: 1,
        }
    }
}

impl KnowledgeBaseBuilder {
    /// An empty builder (no ontology, facts or queries loaded yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a Datalog± program: TGDs, NCs, KDs, facts and queries. Facts
    /// and queries accumulate; constraints extend the ontology.
    pub fn program_text(mut self, source: &str) -> Result<Self, NyayaError> {
        let program = parse_program(source).map_err(|e| NyayaError::parse("datalog\u{b1}", e))?;
        self.merge_ontology(program.ontology);
        self.facts.extend(program.facts);
        self.queries.extend(program.queries);
        Ok(self)
    }

    /// Load a DL-Lite_R axiom list (TBox only — no facts or queries).
    pub fn dl_lite_text(mut self, source: &str) -> Result<Self, NyayaError> {
        let ontology = parse_dl_lite(source).map_err(|e| NyayaError::parse("dl-lite", e))?;
        self.merge_ontology(ontology);
        Ok(self)
    }

    /// Load an OWL 2 QL document in functional-style syntax (TBox + ABox).
    pub fn owl_ql_text(mut self, source: &str) -> Result<Self, NyayaError> {
        let program = parse_owl_ql(source).map_err(|e| NyayaError::parse("owl2-ql", e))?;
        self.merge_ontology(program.ontology);
        self.facts.extend(program.facts);
        self.queries.extend(program.queries);
        Ok(self)
    }

    /// Load from a file, dispatching on extension: `.dl` ⇒ DL-Lite_R,
    /// `.owl`/`.ofn` ⇒ OWL 2 QL, anything else ⇒ Datalog±.
    pub fn file(self, path: impl AsRef<Path>) -> Result<Self, NyayaError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| NyayaError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("dl") => self.dl_lite_text(&text),
            Some("owl") | Some("ofn") => self.owl_ql_text(&text),
            _ => self.program_text(&text),
        }
    }

    /// Add a pre-built ontology (merged with anything already loaded).
    pub fn ontology(mut self, ontology: Ontology) -> Self {
        self.merge_ontology(ontology);
        self
    }

    /// Add raw TGDs.
    pub fn tgds(mut self, tgds: impl IntoIterator<Item = Tgd>) -> Self {
        self.ontology.tgds.extend(tgds);
        self
    }

    /// Add database facts.
    pub fn facts(mut self, facts: impl IntoIterator<Item = Atom>) -> Self {
        self.facts.extend(facts);
        self
    }

    /// Force a rewriting engine. Default: TGD-rewrite⋆ for linear
    /// ontologies, plain TGD-rewrite otherwise (elimination is only proven
    /// complete for linear TGDs — Theorem 10).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Force an execution backend. Default ([`ExecutorKind::Auto`]):
    /// in-memory UCQ execution when the classification guarantees
    /// FO-rewritability, chase-based certain answers otherwise.
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Keep the Lemma 1/2 auxiliary predicates in final rewritings (the
    /// paper's UX/AX/P5X mode, where auxiliaries are part of the schema).
    pub fn show_aux(mut self, show_aux: bool) -> Self {
        self.show_aux = show_aux;
        self
    }

    /// Enable/disable negative-constraint pruning (Section 5.1). Default:
    /// enabled iff the ontology has NCs.
    pub fn nc_pruning(mut self, nc_pruning: bool) -> Self {
        self.nc_pruning = Some(nc_pruning);
        self
    }

    /// Rewriting budget: maximum distinct queries explored per compile.
    pub fn max_queries(mut self, max_queries: usize) -> Self {
        self.max_queries = max_queries;
        self
    }

    /// Exploration workers per rewriting compile (default 1 = sequential).
    /// Parallel compiles are bit-identical to sequential ones for every
    /// run that completes within budget; `0` is treated as 1.
    pub fn rewrite_workers(mut self, workers: usize) -> Self {
        self.rewrite_workers = workers.max(1);
        self
    }

    /// Post-process every compiled rewriting with signature-indexed
    /// subsumption (answer-equivalent, possibly smaller UCQs; default
    /// off, keeping the raw Algorithm 1 output). The pass's counters
    /// surface in [`RewriteStats`] and [`KbStats`].
    pub fn minimize_rewritings(mut self, minimize: bool) -> Self {
        self.minimize_rewritings = minimize;
        self
    }

    /// Force an execution form for prepared queries: the flat UCQ
    /// rewriting, the non-recursive Datalog program, or (default) the
    /// per-query [`Strategy::Auto`] selection based on the estimated DNF
    /// size.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The [`Strategy::Auto`] threshold: queries whose estimated DNF
    /// (product of interaction-cluster rewriting sizes) reaches this many
    /// CQs compile to the program target instead of the flat UCQ. Default
    /// [`DEFAULT_PROGRAM_THRESHOLD`]; `0` routes every decomposable query
    /// to the program.
    pub fn program_threshold(mut self, threshold: usize) -> Self {
        self.program_threshold = threshold;
        self
    }

    /// Chase budgets for the consistency check and the chase backend.
    pub fn chase_config(mut self, config: ChaseConfig) -> Self {
        self.chase_config = config;
        self
    }

    /// Use an explicit relational catalog. Predicates it does not cover are
    /// still registered with default table/column names at build time.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Persist the ABox in a durable ledger rooted at `path` (created if
    /// absent): every applied batch is written to a checksummed,
    /// fsynced write-ahead log *before* its snapshot is published, and
    /// index segments bound recovery replay.
    ///
    /// If the directory already holds a ledger, [`build`](Self::build)
    /// **recovers** from it — the on-disk state wins and any facts
    /// staged on this builder are ignored (they were the epoch-0 seed of
    /// the run that created the ledger). A fresh directory is seeded
    /// with the builder's facts as epoch 0.
    ///
    /// Durable knowledge bases serve *any* historical epoch through
    /// [`KnowledgeBase::snapshot_at`], across restarts.
    pub fn durable(mut self, path: impl Into<PathBuf>) -> Self {
        self.durable_path = Some(path.into());
        self
    }

    /// How many applied batches between background index-segment flushes
    /// (default [`DEFAULT_FLUSH_INTERVAL`]; `0` is treated as 1). Only
    /// meaningful together with [`durable`](Self::durable).
    pub fn flush_interval(mut self, interval: u64) -> Self {
        self.flush_interval = interval.max(1);
        self
    }

    /// Enable/disable the exact answer cache (default **on**). A hit
    /// requires the snapshot's per-predicate write epochs to match the
    /// stored entry over every predicate the query reads, so a cached
    /// answer is provably bit-identical to re-execution — disabling it
    /// only matters for workloads that *measure* re-execution (benchmark
    /// harnesses, planner-feedback tests).
    pub fn answer_cache(mut self, enabled: bool) -> Self {
        self.answer_cache = enabled;
        self
    }

    /// Partition the ABox into this many predicate-hash shards and route
    /// UCQ execution through the scatter-gather path (disjuncts grouped
    /// by home shard, per-group results unioned — bit-identical to
    /// unsharded execution). Default 1 (unsharded); servers typically
    /// pass their core count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    fn merge_ontology(&mut self, other: Ontology) {
        self.ontology.tgds.extend(other.tgds);
        self.ontology.ncs.extend(other.ncs);
        self.ontology.kds.extend(other.kds);
    }

    /// Normalize, classify and index the ontology — the compile-once half
    /// of the pipeline. Everything done here is done exactly once per
    /// knowledge base, never per query.
    pub fn build(self) -> Result<KnowledgeBase, NyayaError> {
        let classification = classify(&self.ontology.tgds);
        let normalization = normalize(&self.ontology.tgds);
        let algorithm = self.algorithm.unwrap_or(if classification.linear {
            Algorithm::NyayaStar
        } else {
            Algorithm::Nyaya
        });
        // The elimination context (Section 6) depends on Σ alone; built
        // here once and reused by every prepared query.
        let elimination = classification
            .linear
            .then(|| EliminationContext::new(&normalization.tgds));
        let hidden: HashSet<Predicate> = if self.show_aux {
            HashSet::new()
        } else {
            normalization.aux_predicates.clone()
        };
        let executor = match self.executor {
            ExecutorKind::Auto => {
                if classification.fo_rewritable() {
                    ExecutorKind::InMemory
                } else {
                    ExecutorKind::Chase
                }
            }
            manual => manual,
        };
        let mut catalog = self.catalog.unwrap_or_default();
        catalog.register_defaults(
            self.ontology
                .predicates()
                .into_iter()
                .chain(normalization.tgds.iter().flat_map(|t| t.predicates()))
                .chain(self.facts.iter().map(|f| f.pred))
                // Bundled queries may mention database predicates that no
                // TGD or fact touches — they still need tables for SQL.
                .chain(
                    self.queries
                        .iter()
                        .flat_map(|q| q.body.iter().map(|a| a.pred)),
                ),
        );
        let nc_pruning = self.nc_pruning.unwrap_or(!self.ontology.ncs.is_empty());
        let mut database = Database::from_facts(self.facts.iter().cloned());
        let mut epoch = 0u64;
        let durability = match &self.durable_path {
            None => None,
            Some(path) => {
                let (durability, recovered) = Durability::open(path, self.flush_interval)?;
                match recovered {
                    // Fresh directory: the builder's facts become epoch 0,
                    // sealed immediately as the base segment so recovery
                    // always has something to replay from.
                    None => durability.seed(&database)?,
                    // Existing ledger: the durable state wins over any
                    // builder-staged facts (those seeded the run that
                    // created this ledger).
                    Some(state) => {
                        catalog.register_defaults(state.database.predicates());
                        database = state.database;
                        epoch = state.epoch;
                    }
                }
                Some(durability)
            }
        };
        let id = NEXT_KB_ID.fetch_add(1, Ordering::Relaxed);
        // Epoch 0 (or the recovered epoch): the build-time data, published
        // like any later epoch so readers and writers go through one code
        // path from the start.
        let snapshot = Arc::new(Snapshot::new(
            id,
            epoch,
            database,
            catalog,
            BuildCache::new(),
        ));
        Ok(KnowledgeBase {
            id,
            ontology: self.ontology,
            queries: self.queries,
            classification,
            normalization,
            elimination,
            hidden,
            state: RwLock::new(snapshot),
            apply_lock: Mutex::new(()),
            chase_config: self.chase_config,
            nc_pruning,
            max_queries: self.max_queries,
            rewrite_workers: self.rewrite_workers,
            minimize_rewritings: self.minimize_rewritings,
            strategy: self.strategy,
            program_threshold: self.program_threshold,
            default_algorithm: algorithm,
            executor,
            cache: RwLock::new(HashMap::new()),
            program_cache: RwLock::new(HashMap::new()),
            counters: Counters::default(),
            durability,
            subscriptions: Mutex::new(Vec::new()),
            feedback: Mutex::new(HashMap::new()),
            answer_cache_enabled: self.answer_cache,
            shards: self.shards,
            answer_cache: RwLock::new(HashMap::new()),
        })
    }
}

/// A compiled ontological database: ontology, evolving data, and a
/// rewriting cache. See the [module docs](self) for the lifecycle.
///
/// The TBox-derived state (normalization, classification, elimination
/// context, compiled rewritings) is immutable for the lifetime of the
/// knowledge base. The data lives in an epoch-stamped [`Snapshot`]
/// published behind an `Arc`: [`apply`](Self::apply) builds the successor
/// off to the side and swaps it in, so readers never block and never see
/// a partial batch.
pub struct KnowledgeBase {
    /// Process-unique identity; ties [`PreparedQuery`] handles to their
    /// owning knowledge base.
    id: u64,
    ontology: Ontology,
    queries: Vec<ConjunctiveQuery>,
    classification: Classification,
    normalization: Normalization,
    elimination: Option<EliminationContext>,
    hidden: HashSet<Predicate>,
    /// The currently published data epoch. Read-locked only long enough
    /// to clone the `Arc`; write-locked only for the pointer swap.
    state: RwLock<Arc<Snapshot>>,
    /// Serializes writers. Readers never take it: they work off whatever
    /// snapshot was published when they started.
    apply_lock: Mutex<()>,
    chase_config: ChaseConfig,
    nc_pruning: bool,
    max_queries: usize,
    rewrite_workers: usize,
    minimize_rewritings: bool,
    strategy: Strategy,
    program_threshold: usize,
    default_algorithm: Algorithm,
    executor: ExecutorKind,
    cache: RwLock<HashMap<(CanonicalKey, Algorithm), Arc<CompiledRewriting>>>,
    /// The program-target twin of `cache`: compiled non-recursive Datalog
    /// programs, keyed like rewritings. TBox-only, so data writes never
    /// touch it.
    program_cache: RwLock<HashMap<(CanonicalKey, Algorithm), Arc<CompiledProgram>>>,
    counters: Counters,
    /// The durable-ledger layer, present iff the builder set
    /// [`durable`](KnowledgeBaseBuilder::durable).
    durability: Option<Durability>,
    /// Live standing queries ([`subscribe`](KnowledgeBase::subscribe)):
    /// [`apply`](KnowledgeBase::apply) propagates each batch's deltas
    /// into every registered view. Weak, so dropping a [`Subscription`]
    /// unregisters it (dead entries are pruned on each sweep).
    subscriptions: Mutex<Vec<Weak<SubscriptionInner>>>,
    /// Cardinality-feedback state: learned per-query correction factors,
    /// keyed like the rewriting cache. Consulted at plan time; updated
    /// after executions whose estimate missed by ≥ [`REPLAN_RATIO`].
    feedback: Mutex<HashMap<(CanonicalKey, Algorithm), f64>>,
    /// Is the exact answer cache consulted by in-memory executions?
    answer_cache_enabled: bool,
    /// Predicate-hash shard count for scatter-gather UCQ execution
    /// (1 = unsharded).
    shards: usize,
    /// The exact answer cache: per (canonical query, engine), a few
    /// recently produced answer sets, each tagged with the snapshot's
    /// per-predicate write epochs over the query's touched predicates.
    /// An entry is served only on an exact epoch-fingerprint match —
    /// provably the same answer, never stale (see
    /// [`Snapshot::pred_epoch`]). Data writes need no invalidation
    /// sweep: a write bumps the touched predicates' epochs, so stale
    /// entries simply stop matching (and rotate out of the small
    /// per-query ring).
    answer_cache: RwLock<HashMap<(CanonicalKey, Algorithm), VecDeque<CachedAnswer>>>,
}

/// One memoized answer set in the exact answer cache.
struct CachedAnswer {
    /// The snapshot's write epochs over the query's touched predicates
    /// (parallel to the compiled artifact's sorted `touched` list).
    fingerprint: Vec<u64>,
    /// [`Answers::backend`] of the execution that produced this.
    backend: &'static str,
    tuples: Arc<std::collections::BTreeSet<Vec<nyaya_core::Term>>>,
}

/// Cached answer sets kept per (canonical query, engine): enough for a
/// few distinct epochs to stay warm under `execute_at_epoch` time travel
/// without letting historical sweeps grow the cache unboundedly.
const ANSWER_CACHE_PER_QUERY: usize = 4;

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("KnowledgeBase")
            .field("tgds", &self.ontology.tgds.len())
            .field("normalized_tgds", &self.normalization.tgds.len())
            .field("facts", &snapshot.len())
            .field("epoch", &snapshot.epoch())
            .field("classification", &self.classification)
            .field("algorithm", &self.default_algorithm)
            .field("executor", &self.executor)
            .finish_non_exhaustive()
    }
}

impl KnowledgeBase {
    /// Start building a knowledge base.
    pub fn builder() -> KnowledgeBaseBuilder {
        KnowledgeBaseBuilder::new()
    }

    /// One-call convenience: build from Datalog± program text.
    pub fn from_program_text(source: &str) -> Result<Self, NyayaError> {
        Self::builder().program_text(source)?.build()
    }

    /// One-call convenience: build from a program file (see
    /// [`KnowledgeBaseBuilder::file`] for the extension dispatch).
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, NyayaError> {
        Self::builder().file(path)?.build()
    }

    // ---- compile-once state ------------------------------------------

    /// The ontology as loaded (pre-normalization).
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The Section 4 language-class membership, computed at build time.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The Lemma 1/2 normal form of the TGDs, computed at build time.
    pub fn normalized_tgds(&self) -> &[Tgd] {
        &self.normalization.tgds
    }

    /// Auxiliary predicates introduced by normalization.
    pub fn aux_predicates(&self) -> &HashSet<Predicate> {
        &self.normalization.aux_predicates
    }

    /// Predicates excluded from final rewritings (empty under `show_aux`).
    pub fn hidden_predicates(&self) -> &HashSet<Predicate> {
        &self.hidden
    }

    // ---- data state: snapshots and updates ---------------------------

    /// The currently published [`Snapshot`]. Pin it (keep the `Arc`) to
    /// read a consistent epoch across several operations while writers
    /// advance; see [`execute_at`](Self::execute_at).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        // The lock guards a pointer, swapped atomically by `apply`; a
        // poisoning panic cannot tear the Arc, so reads recover instead
        // of wedging every reader for the process's lifetime.
        Arc::clone(&self.state.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The currently published data epoch (0 until the first
    /// [`apply`](Self::apply)).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The current snapshot's facts, in deterministic (sorted) order.
    pub fn facts(&self) -> Vec<Atom> {
        self.snapshot().facts()
    }

    /// Apply a batch of ABox insertions and retractions atomically.
    ///
    /// The successor snapshot is built off to the side — the engine's
    /// per-column indexes are maintained incrementally on the
    /// copy-on-write tables, never rebuilt — and published with a bumped
    /// epoch. In-flight readers keep the epoch they pinned; new reads
    /// observe either all of this batch or none of it. Compiled
    /// rewritings (TBox-only) are untouched; the engine's build-side
    /// cache drops exactly the patterns over predicates this batch
    /// actually changed.
    ///
    /// Returns an [`ApplyOutcome`] describing what changed, or
    /// [`NyayaError::NonGroundFact`] (publishing nothing) if any queued
    /// atom contains a variable. Writers are serialized with each other;
    /// they never block readers.
    pub fn apply(&self, batch: UpdateBatch) -> Result<ApplyOutcome, NyayaError> {
        for fact in batch.retracts.iter().chain(&batch.inserts) {
            if !fact.is_ground() {
                return Err(NyayaError::NonGroundFact {
                    fact: fact.to_string(),
                });
            }
        }
        // A poisoned apply lock means a writer panicked mid-batch —
        // possibly between the WAL append and the snapshot swap, leaving
        // disk ahead of memory. Applying more batches on top could fork
        // the epoch sequence, so writes are refused with a typed error;
        // reads over published snapshots are unaffected.
        let _writer = self
            .apply_lock
            .lock()
            .map_err(|_| NyayaError::Poisoned { what: "writer" })?;
        // Standing queries registered right now get this batch's diff.
        // Dead weak entries (dropped subscriptions) are pruned in passing.
        let mut standing: Vec<Arc<SubscriptionInner>> = Vec::new();
        {
            let mut subs = self
                .subscriptions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            subs.retain(|weak| match weak.upgrade() {
                Some(inner) => {
                    standing.push(inner);
                    true
                }
                None => false,
            });
        }
        let track = !standing.is_empty();
        let current = self.snapshot();
        let mut database = current.database().clone(); // COW: O(#predicates)
        let mut touched: HashSet<Predicate> = HashSet::new();
        // Net per-fact deltas for view maintenance: retractions are
        // applied before insertions (the batch's documented order), so a
        // fact both retracted and re-inserted nets to zero and is never
        // propagated.
        let mut net = BaseDeltas::new();
        let mut retracted = 0usize;
        for fact in &batch.retracts {
            if database.remove(fact) {
                retracted += 1;
                touched.insert(fact.pred);
                if track {
                    *net.entry(fact.pred)
                        .or_default()
                        .entry(fact.args.clone())
                        .or_insert(0) -= 1;
                }
            }
        }
        let mut inserted = 0usize;
        for fact in &batch.inserts {
            if database.insert(fact.clone()) {
                inserted += 1;
                touched.insert(fact.pred);
                if track {
                    *net.entry(fact.pred)
                        .or_default()
                        .entry(fact.args.clone())
                        .or_insert(0) += 1;
                }
            }
        }
        // A batch may introduce predicates no TGD, query or earlier fact
        // mentioned — they still need tables for SQL emission.
        let mut catalog = current.catalog().clone();
        catalog.register_defaults(touched.iter().copied());
        let (build_cache, invalidated) = current.build_cache().carried_over(&touched);
        let carried = build_cache.len();
        // Per-predicate write epochs (the answer cache's exactness
        // witness): written predicates stamp the new epoch, everything
        // else keeps the epoch of its last write.
        let mut pred_epochs = current.pred_epochs.clone();
        for pred in &touched {
            pred_epochs.insert(*pred, current.epoch() + 1);
        }
        let next = Arc::new(Snapshot::with_epochs(
            self.id,
            current.epoch() + 1,
            database,
            catalog,
            build_cache,
            current.base_epoch,
            pred_epochs,
        ));
        let outcome = ApplyOutcome {
            epoch: next.epoch(),
            inserted,
            retracted,
            builds_invalidated: invalidated,
            builds_carried_over: carried,
        };
        // Write-ahead: the batch must be on disk (fsynced) before the
        // snapshot becomes visible. If the append fails, nothing is
        // published — a batch is durable and visible, or neither.
        if let Some(durability) = &self.durability {
            durability.append_batch(next.epoch(), &batch)?;
        }
        // Like `snapshot`: the write guard only swaps the pointer, so a
        // poisoned lock is recovered rather than wedging all writers.
        *self.state.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&next);
        if let Some(durability) = &self.durability {
            durability.maybe_flush(&next);
        }
        // Propagate this batch's net deltas through every standing query
        // (still under the apply lock, so subscriptions see every epoch
        // exactly once, in order). Each epoch pushes one diff per
        // subscription — empty diffs included, keeping the per-epoch
        // streams aligned with the epoch sequence.
        if track {
            let started = std::time::Instant::now();
            let mut added = 0u64;
            let mut removed = 0u64;
            for sub in &standing {
                let delta = sub
                    .view
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .propagate(
                        (current.database(), current.build_cache()),
                        (next.database(), next.build_cache()),
                        &net,
                    );
                added += delta.added.len() as u64;
                removed += delta.removed.len() as u64;
                sub.push(AnswerDiff {
                    epoch: next.epoch(),
                    added: delta.added,
                    removed: delta.removed,
                });
            }
            let c = &self.counters;
            c.subscription_diffs
                .fetch_add(standing.len() as u64, Ordering::Relaxed);
            c.ivm_added.fetch_add(added, Ordering::Relaxed);
            c.ivm_removed.fetch_add(removed, Ordering::Relaxed);
            c.ivm_micros.fetch_add(
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        let c = &self.counters;
        c.batches_applied.fetch_add(1, Ordering::Relaxed);
        c.facts_inserted
            .fetch_add(inserted as u64, Ordering::Relaxed);
        c.facts_retracted
            .fetch_add(retracted as u64, Ordering::Relaxed);
        c.build_cache_invalidations
            .fetch_add(invalidated, Ordering::Relaxed);
        Ok(outcome)
    }

    // ---- durability & time travel ------------------------------------

    /// Is this knowledge base backed by a durable ledger?
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The ledger's data directory, if this knowledge base is durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.root())
    }

    /// The snapshot of **any** historical `epoch`, across restarts.
    ///
    /// The current epoch is returned directly. A past epoch is
    /// materialized on demand from the durable ledger: the newest index
    /// segment at or below it is decoded and the logged batches up to
    /// `epoch` replayed on top (recently materialized epochs are
    /// cached). Errors:
    ///
    /// - [`NyayaError::EpochNotFound`] if `epoch` is beyond the current
    ///   epoch — it was never published; the error carries the valid
    ///   range;
    /// - [`NyayaError::NotDurable`] for a past epoch on a memory-only
    ///   knowledge base;
    /// - [`NyayaError::LedgerCorrupt`] / [`NyayaError::LedgerEpochGap`]
    ///   if the on-disk history is damaged — never a silently wrong
    ///   answer.
    pub fn snapshot_at(&self, epoch: u64) -> Result<Arc<Snapshot>, NyayaError> {
        let current = self.snapshot();
        if epoch == current.epoch() {
            return Ok(current);
        }
        if epoch > current.epoch() {
            return Err(NyayaError::EpochNotFound {
                requested: epoch,
                latest: current.epoch(),
            });
        }
        match &self.durability {
            None => Err(NyayaError::NotDurable { requested: epoch }),
            Some(durability) => durability.materialize(epoch, self.id, current.catalog()),
        }
    }

    /// Execute a prepared query *as of* a historical `epoch` — the
    /// time-travel form of [`execute_at`](Self::execute_at), resolving
    /// the epoch through [`snapshot_at`](Self::snapshot_at).
    pub fn execute_at_epoch(
        &self,
        query: &PreparedQuery,
        epoch: u64,
    ) -> Result<Answers, NyayaError> {
        let snapshot = self.snapshot_at(epoch)?;
        self.execute_at(query, &snapshot)
    }

    /// Synchronously flush an index segment for the current epoch,
    /// sealing the replayed WAL prefix into the ledger's history (the
    /// background compactor does the same on the builder's
    /// [`flush_interval`](KnowledgeBaseBuilder::flush_interval); this is
    /// the on-demand form). [`NyayaError::NotDurable`] on a memory-only
    /// knowledge base.
    pub fn compact(&self) -> Result<SegmentFlush, NyayaError> {
        let snapshot = self.snapshot();
        match &self.durability {
            None => Err(NyayaError::NotDurable {
                requested: snapshot.epoch(),
            }),
            Some(durability) => durability.compact_now(&snapshot),
        }
    }

    /// Everything the durable ledger holds on disk: segments, sealed WAL
    /// ranges, and the active tail. [`NyayaError::NotDurable`] on a
    /// memory-only knowledge base.
    pub fn ledger_history(&self) -> Result<LedgerHistory, NyayaError> {
        match &self.durability {
            None => Err(NyayaError::NotDurable {
                requested: self.epoch(),
            }),
            Some(durability) => durability.history(),
        }
    }

    // ---- standing queries (incremental view maintenance) -------------

    /// Register a standing query: compile the prepared query's
    /// non-recursive Datalog program (the same TBox-only compile
    /// [`program`](Self::program) memoizes) into delta rules, materialize
    /// its answer set with per-tuple support counts, and maintain it
    /// incrementally — every [`apply`](Self::apply) propagates just that
    /// batch's net deltas through the rules instead of re-executing.
    ///
    /// The returned [`Subscription`] yields one [`AnswerDiff`] per epoch
    /// via [`poll`](Subscription::poll); the first diff is the current
    /// answer set at the subscription's seed epoch. Dropping the handle
    /// unregisters the view. Like prepared rewritings, the compiled
    /// delta program is TBox-only: no data write ever invalidates it.
    pub fn subscribe(&self, query: &PreparedQuery) -> Result<Subscription, NyayaError> {
        let program = self.ivm_program(query)?;
        self.subscribe_seeded(program, None)
    }

    /// [`subscribe`](Self::subscribe), but seeded from the historical
    /// `epoch` and caught up to the present by replaying the durable
    /// ledger's logged batches through the view — one [`AnswerDiff`] per
    /// replayed epoch, exactly as a live subscription would have seen
    /// them. This is how a subscriber resumes after a restart without
    /// losing diffs: seed from the epoch it last processed.
    ///
    /// Errors as [`snapshot_at`](Self::snapshot_at): a future epoch is
    /// [`NyayaError::EpochNotFound`], a past epoch on a memory-only base
    /// is [`NyayaError::NotDurable`].
    pub fn subscribe_from(
        &self,
        query: &PreparedQuery,
        epoch: u64,
    ) -> Result<Subscription, NyayaError> {
        let program = self.ivm_program(query)?;
        self.subscribe_seeded(program, Some(epoch))
    }

    /// Compile a prepared query's Datalog program into the engine-side
    /// delta program a materialized view evaluates.
    fn ivm_program(&self, query: &PreparedQuery) -> Result<IvmProgram, NyayaError> {
        let compiled = self.program(query)?;
        let delta = compile_delta_program(&compiled.program).map_err(|e| match e {
            DeltaError::Recursive => NyayaError::RecursiveProgram,
            // Both are rules delta propagation cannot react to.
            DeltaError::UnsafeRule { head } | DeltaError::EmptyBody { head } => {
                NyayaError::UnsafeRule { rule: head }
            }
        })?;
        Ok(IvmProgram {
            goal: delta.goal,
            levels: delta.levels,
            rules: delta
                .rules
                .into_iter()
                .map(|r| IvmRule {
                    head: r.head,
                    body: r.body,
                    delta_idx: r.delta_idx,
                    level: r.level,
                })
                .collect(),
            intensional: delta.intensional,
            base: delta.base,
        })
    }

    /// Seed a view and register it. Compilation happened before this
    /// point (TBox-only, possibly slow); everything here runs under the
    /// apply lock so no batch can slip between the seed, the catch-up
    /// replay and the registration.
    fn subscribe_seeded(
        &self,
        program: IvmProgram,
        from: Option<u64>,
    ) -> Result<Subscription, NyayaError> {
        let _writer = self
            .apply_lock
            .lock()
            .map_err(|_| NyayaError::Poisoned { what: "writer" })?;
        let current = self.snapshot();
        let seed_epoch = from.unwrap_or_else(|| current.epoch());
        let base = self.snapshot_at(seed_epoch)?;
        let mut view = MaterializedView::new(program);
        let seeded = view.seed(base.database(), base.build_cache());
        let mut pending = VecDeque::new();
        pending.push_back(AnswerDiff {
            epoch: seed_epoch,
            added: seeded.added,
            removed: seeded.removed,
        });
        if seed_epoch < current.epoch() {
            // `snapshot_at` only serves past epochs on a durable base.
            let durability = self
                .durability
                .as_ref()
                .expect("past epoch materialized without a ledger");
            let mut state = base.database().clone(); // COW
            for (epoch, retracts, inserts) in
                durability.batches_between(seed_epoch, current.epoch())?
            {
                let old = state.clone(); // COW
                let mut net = BaseDeltas::new();
                for fact in &retracts {
                    if state.remove(fact) {
                        *net.entry(fact.pred)
                            .or_default()
                            .entry(fact.args.clone())
                            .or_insert(0) -= 1;
                    }
                }
                for fact in inserts {
                    let (pred, args) = (fact.pred, fact.args.clone());
                    if state.insert(fact) {
                        *net.entry(pred).or_default().entry(args).or_insert(0) += 1;
                    }
                }
                let delta = view.propagate(
                    (&old, &BuildCache::new()),
                    (&state, &BuildCache::new()),
                    &net,
                );
                pending.push_back(AnswerDiff {
                    epoch,
                    added: delta.added,
                    removed: delta.removed,
                });
            }
        }
        let inner = Arc::new(SubscriptionInner::new(view, pending, current.epoch()));
        self.subscriptions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::downgrade(&inner));
        Ok(Subscription { inner })
    }

    /// Queries that came bundled with the loaded program(s).
    pub fn queries(&self) -> &[ConjunctiveQuery] {
        &self.queries
    }

    /// The engine used by [`prepare`](Self::prepare).
    pub fn default_algorithm(&self) -> Algorithm {
        self.default_algorithm
    }

    /// The backend used by [`execute`](Self::execute) (never `Auto`).
    pub fn executor_kind(&self) -> ExecutorKind {
        self.executor
    }

    /// The configured execution-form [`Strategy`] (UCQ vs program).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The [`Strategy::Auto`] DNF-size threshold.
    pub fn program_threshold(&self) -> usize {
        self.program_threshold
    }

    /// Chase budgets used for consistency checking and the chase backend.
    pub fn chase_config(&self) -> ChaseConfig {
        self.chase_config
    }

    // ---- prepared queries --------------------------------------------

    /// Prepare a CQ for repeated execution with the default engine.
    pub fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, NyayaError> {
        self.prepare_with(query, self.default_algorithm)
    }

    /// Prepare a CQ with an explicit rewriting engine.
    pub fn prepare_with(
        &self,
        query: &ConjunctiveQuery,
        algorithm: Algorithm,
    ) -> Result<PreparedQuery, NyayaError> {
        if query.body.is_empty() {
            return Err(NyayaError::EmptyQuery);
        }
        self.counters.prepared.fetch_add(1, Ordering::Relaxed);
        Ok(PreparedQuery {
            key: canonical_key(query),
            query: query.clone(),
            algorithm,
            kb_id: self.id,
            compiled: OnceLock::new(),
            compiled_program: OnceLock::new(),
            program_choice: OnceLock::new(),
        })
    }

    /// Parse and prepare a query, e.g. `"q(A) :- person(A)."`.
    pub fn prepare_text(&self, source: &str) -> Result<PreparedQuery, NyayaError> {
        let query = parse_query(source).map_err(|e| NyayaError::parse("datalog\u{b1}", e))?;
        self.prepare(&query)
    }

    /// The perfect rewriting of a prepared query — compiled on first use,
    /// then served from the cache (keyed by canonical query and engine, so
    /// α-equivalent queries prepared separately share one compile).
    pub fn rewriting(&self, query: &PreparedQuery) -> Result<Arc<CompiledRewriting>, NyayaError> {
        // The inline slot belongs to the knowledge base that prepared the
        // handle. A handle executed against a different base must not read
        // or fill it — its rewriting was compiled under another Σ.
        let own_handle = query.kb_id == self.id;
        if own_handle {
            if let Some(compiled) = query.compiled.get() {
                // This very handle was executed before: no lock, no lookup.
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(compiled));
            }
        }
        let cache_key = (query.key.clone(), query.algorithm);
        // The rewriting cache is advisory (a memo of pure compiles):
        // poisoning cannot leave a half-written entry visible, so both
        // sides recover rather than panicking every later prepare.
        if let Some(compiled) = self
            .cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&cache_key)
        {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let compiled = Arc::clone(compiled);
            if own_handle {
                let _ = query.compiled.set(Arc::clone(&compiled));
            }
            return Ok(compiled);
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(self.compile(&query.query, query.algorithm)?);
        self.cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(cache_key, Arc::clone(&compiled));
        if own_handle {
            let _ = query.compiled.set(Arc::clone(&compiled));
        }
        Ok(compiled)
    }

    /// The [`RewriteOptions`] this knowledge base compiles with: shared
    /// budget, hidden predicates, worker count and minimization across all
    /// engines; elimination only for NY⋆ (the baselines ignore it).
    fn rewrite_options(&self, algorithm: Algorithm) -> RewriteOptions {
        RewriteOptions {
            elimination: algorithm == Algorithm::NyayaStar,
            nc_pruning: self.nc_pruning,
            max_queries: self.max_queries,
            hidden_predicates: self.hidden.clone(),
            parallel_workers: self.rewrite_workers,
            minimize: self.minimize_rewritings,
        }
    }

    /// Fold one compile's counters into the lifetime stats.
    fn record_compile(&self, stats: &RewriteStats) {
        let c = &self.counters;
        c.rewrite_micros
            .fetch_add(stats.rewrite_micros, Ordering::Relaxed);
        c.rewrite_explored
            .fetch_add(stats.explored as u64, Ordering::Relaxed);
        c.subsumption_avoided
            .fetch_add(stats.subsumption_avoided as u64, Ordering::Relaxed);
        if stats.workers > 1 {
            c.rewrites_parallel.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run one rewriting engine, uncached. Budget exhaustion is an error:
    /// a truncated rewriting is unsound to execute as if it were perfect.
    fn compile(
        &self,
        query: &ConjunctiveQuery,
        algorithm: Algorithm,
    ) -> Result<CompiledRewriting, NyayaError> {
        let options = self.rewrite_options(algorithm);
        let rewriting = match algorithm {
            Algorithm::Nyaya | Algorithm::NyayaStar => tgd_rewrite_with(
                query,
                &self.normalization.tgds,
                &self.ontology.ncs,
                &options,
                self.elimination.as_ref(),
            )?,
            Algorithm::QuOnto => quonto_rewrite(query, &self.normalization.tgds, &options)?,
            Algorithm::Requiem => requiem_rewrite(query, &self.normalization.tgds, &options)?,
        };
        self.record_compile(&rewriting.stats);
        if rewriting.stats.budget_exhausted {
            return Err(NyayaError::BudgetExhausted {
                explored: rewriting.stats.explored,
                budget: self.max_queries,
            });
        }
        let mut touched: Vec<Predicate> = rewriting
            .ucq
            .iter()
            .flat_map(|cq| cq.body.iter().map(|a| a.pred))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        Ok(CompiledRewriting {
            ucq: rewriting.ucq,
            stats: rewriting.stats,
            touched,
        })
    }

    /// Rewrite a prepared query into a non-recursive Datalog program
    /// (Sections 2 and 8) — compiled on first use, then served from the
    /// program cache (the [`CompiledRewriting`] machinery's twin: keyed by
    /// canonical query and engine, memoized inline in the handle, TBox-only
    /// so every data write leaves it intact).
    pub fn program(&self, query: &PreparedQuery) -> Result<Arc<CompiledProgram>, NyayaError> {
        let own_handle = query.kb_id == self.id;
        if own_handle {
            if let Some(compiled) = query.compiled_program.get() {
                return Ok(Arc::clone(compiled));
            }
        }
        let cache_key = (query.key.clone(), query.algorithm);
        // Advisory memo state, like the rewriting cache: recover.
        if let Some(compiled) = self
            .program_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&cache_key)
        {
            let compiled = Arc::clone(compiled);
            if own_handle {
                let _ = query.compiled_program.set(Arc::clone(&compiled));
            }
            return Ok(compiled);
        }
        let options = self.rewrite_options(query.algorithm);
        let out = nr_datalog_rewrite_with(
            &query.query,
            &self.normalization.tgds,
            &self.ontology.ncs,
            &options,
            self.elimination.as_ref(),
        )?;
        self.record_compile(&out.stats);
        let c = &self.counters;
        c.program_compiles.fetch_add(1, Ordering::Relaxed);
        c.program_rules
            .fetch_add(out.stats.program_rules as u64, Ordering::Relaxed);
        c.program_strata
            .fetch_add(out.stats.program_strata as u64, Ordering::Relaxed);
        if out.stats.budget_exhausted {
            return Err(NyayaError::BudgetExhausted {
                explored: out.stats.explored,
                budget: self.max_queries,
            });
        }
        let mut touched: Vec<Predicate> = out.program.base_predicates().into_iter().collect();
        touched.sort_unstable();
        let compiled = Arc::new(CompiledProgram {
            program: out.program,
            strategy: out.strategy,
            estimated_dnf: out.estimated_dnf,
            stats: out.stats,
            opt: out.opt,
            touched,
        });
        self.program_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(cache_key, Arc::clone(&compiled));
        if own_handle {
            let _ = query.compiled_program.set(Arc::clone(&compiled));
        }
        Ok(compiled)
    }

    /// The execution form this query runs as under the knowledge base's
    /// [`Strategy`]: `None` for the flat UCQ, `Some(program)` for the
    /// program target. `Auto` decides per query — cheap syntactic
    /// interaction-cluster analysis first (a single-cluster body has no
    /// decomposition to exploit), then the program is compiled (its cost
    /// is the *sum* of the cluster rewritings, never more than the UCQ
    /// compile it replaces) and selected iff its estimated DNF reaches
    /// the program threshold. The decision is memoized per handle.
    pub fn execution_plan(
        &self,
        query: &PreparedQuery,
    ) -> Result<Option<Arc<CompiledProgram>>, NyayaError> {
        match self.strategy {
            Strategy::Ucq => Ok(None),
            Strategy::Program => self.program(query).map(Some),
            Strategy::Auto => {
                let own_handle = query.kb_id == self.id;
                if own_handle {
                    if let Some(&choice) = query.program_choice.get() {
                        return if choice {
                            self.program(query).map(Some)
                        } else {
                            Ok(None)
                        };
                    }
                }
                let choice = self.auto_prefers_program(query)?;
                if own_handle {
                    let _ = query.program_choice.set(choice);
                }
                if choice {
                    self.program(query).map(Some)
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// The [`Strategy::Auto`] decision for one query, uncached.
    fn auto_prefers_program(&self, query: &PreparedQuery) -> Result<bool, NyayaError> {
        // Cluster the same body the program rewriter will see: elimination
        // (NY⋆) can merge or drop atoms, changing the decomposition. The
        // context mirrors `nr_datalog_rewrite_with` exactly — including the
        // owned fallback when NY⋆ is forced on an ontology the builder did
        // not classify as linear — so this decision and the compile below
        // always cluster the same query.
        let eliminated;
        let q = if query.algorithm == Algorithm::NyayaStar {
            let owned;
            let ctx = match &self.elimination {
                Some(ctx) => ctx,
                None => {
                    owned = EliminationContext::new(&self.normalization.tgds);
                    &owned
                }
            };
            eliminated = ctx.eliminate(&query.query);
            &eliminated
        } else {
            &query.query
        };
        if interaction_clusters(q, &self.normalization.tgds).len() <= 1 {
            // Monolithic: the program is the DNF itself; compiling it costs
            // the full UCQ exploration with no size win to justify it.
            return Ok(false);
        }
        // Even with several clusters, a small ontology fan-out means the
        // flat DNF is cheap; the static path bound over-counts, so when it
        // is already under the threshold the true DNF certainly is — skip
        // the program compile without running any rewriting. (With NC
        // pruning active the compile can still pay off by *proving*
        // unsatisfiability, so only the real `estimated_dnf` decides.)
        if !self.nc_pruning
            && estimate_dnf_bound(q, &self.normalization.tgds) < self.program_threshold
        {
            return Ok(false);
        }
        let program = self.program(query)?;
        // estimated_dnf == 0 is a *proof of unsatisfiability* (some cluster
        // rewrote to the empty union): serve the cached empty program
        // rather than falling back to the flat path, which would explore
        // the full DNF product — including the blowup clusters the program
        // compile deliberately never visited.
        Ok(program.estimated_dnf == 0 || program.estimated_dnf >= self.program_threshold)
    }

    // ---- execution ---------------------------------------------------

    /// Execute on the backend chosen at build time.
    pub fn execute(&self, query: &PreparedQuery) -> Result<Answers, NyayaError> {
        self.execute_on(query, self.executor)
    }

    /// Execute on a specific built-in backend.
    pub fn execute_on(
        &self,
        query: &PreparedQuery,
        kind: ExecutorKind,
    ) -> Result<Answers, NyayaError> {
        match kind {
            ExecutorKind::InMemory => self.execute_with(query, &InMemoryExecutor::default()),
            ExecutorKind::Sql => self.execute_with(query, &SqlExecutor),
            ExecutorKind::Chase => self.execute_with(query, &ChaseExecutor),
            ExecutorKind::Auto => {
                if self.classification.fo_rewritable() {
                    self.execute_with(query, &InMemoryExecutor::default())
                } else {
                    self.execute_with(query, &ChaseExecutor)
                }
            }
        }
    }

    /// Execute on a caller-supplied backend (the extension point).
    pub fn execute_with(
        &self,
        query: &PreparedQuery,
        executor: &dyn Executor,
    ) -> Result<Answers, NyayaError> {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        executor.execute(self, query)
    }

    /// Execute against a **pinned** snapshot instead of the currently
    /// published one: the answers reflect `snapshot`'s epoch exactly,
    /// no matter how many batches have been applied since it was taken.
    /// Routing follows the backend chosen at build time (rewriting
    /// backends still hit the shared rewriting cache — rewritings don't
    /// depend on data).
    ///
    /// The snapshot must have been published by **this** knowledge base
    /// ([`NyayaError::ForeignSnapshot`] otherwise): evaluating this
    /// base's rewritings over another base's data would silently produce
    /// meaningless answers.
    pub fn execute_at(
        &self,
        query: &PreparedQuery,
        snapshot: &Snapshot,
    ) -> Result<Answers, NyayaError> {
        if snapshot.owner != self.id {
            return Err(NyayaError::ForeignSnapshot {
                epoch: snapshot.epoch(),
            });
        }
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        match self.executor {
            ExecutorKind::Chase => ChaseExecutor.execute_at(self, query, snapshot),
            ExecutorKind::Sql => SqlExecutor.execute_at(self, query, snapshot),
            // `Auto` is resolved to a concrete backend at build time.
            ExecutorKind::InMemory | ExecutorKind::Auto => {
                InMemoryExecutor::default().execute_at(self, query, snapshot)
            }
        }
    }

    /// Prepare + execute in one call (still hits the rewriting cache).
    pub fn answer(&self, query: &ConjunctiveQuery) -> Result<Answers, NyayaError> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }

    /// Parse + prepare + execute in one call.
    pub fn answer_text(&self, source: &str) -> Result<Answers, NyayaError> {
        let prepared = self.prepare_text(source)?;
        self.execute(&prepared)
    }

    /// The SQL an external DBMS should run for this query.
    pub fn sql(&self, query: &PreparedQuery) -> Result<String, NyayaError> {
        self.execute_with(query, &SqlExecutor)
            .map(|answers| answers.sql.expect("sql backend always sets sql"))
    }

    /// Evaluate a non-recursive Datalog program bottom-up over the
    /// current snapshot's facts (the Sections 2/8 execution target for
    /// [`Self::program`]). Derived tables are layered beside the pinned
    /// snapshot — its data is never copied — and base-atom build sides
    /// are shared with every other execution over the same epoch.
    pub fn execute_program(
        &self,
        program: &DatalogProgram,
    ) -> Result<std::collections::BTreeSet<Vec<nyaya_core::Term>>, NyayaError> {
        let snapshot = self.snapshot();
        let (tuples, metrics) = nyaya_sql::execute_program_shared(
            snapshot.database(),
            program,
            1,
            snapshot.build_cache(),
        )?;
        self.record_program_execution(&metrics);
        Ok(tuples)
    }

    /// Record one bottom-up program run in the lifetime counters (also
    /// called by [`InMemoryExecutor`] when [`Strategy`] routes an
    /// execution to the program target).
    pub(crate) fn record_program_execution(&self, metrics: &ProgramMetrics) {
        let c = &self.counters;
        c.program_executions.fetch_add(1, Ordering::Relaxed);
        c.program_micros.fetch_add(
            u64::try_from(metrics.elapsed.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        c.program_tuples
            .fetch_add(metrics.materialized_tuples as u64, Ordering::Relaxed);
        c.rows_returned
            .fetch_add(metrics.rows as u64, Ordering::Relaxed);
        if metrics.threads > 1 {
            c.parallel_executions.fetch_add(1, Ordering::Relaxed);
        }
        c.build_cache_hits
            .fetch_add(metrics.build_cache_hits, Ordering::Relaxed);
        c.build_cache_misses
            .fetch_add(metrics.build_cache_misses, Ordering::Relaxed);
        c.merge_joins
            .fetch_add(metrics.merge_joins, Ordering::Relaxed);
        c.morsel_tasks
            .fetch_add(metrics.morsel_tasks, Ordering::Relaxed);
    }

    /// Materialize `chase(D, Σ)` over the *raw* (as-authored) TGDs with
    /// the knowledge base's chase budgets. This is the inspection/debug
    /// path; certain-answer execution goes through [`ExecutorKind::Chase`],
    /// which chases the normalized TGDs.
    pub fn materialize(&self) -> nyaya_chase::ChaseOutcome {
        let snapshot = self.snapshot();
        nyaya_chase::chase(snapshot.instance(), &self.ontology.tgds, self.chase_config)
    }

    /// Check `D ∪ Σ` for consistency (Section 4.2 workflow: KDs first,
    /// then NCs over the chase), against the current snapshot.
    pub fn check_consistency(&self) -> Result<(), NyayaError> {
        let snapshot = self.snapshot();
        match check_consistency(snapshot.instance(), &self.ontology, self.chase_config) {
            Consistency::Consistent => Ok(()),
            Consistency::KdViolated(i) => Err(NyayaError::KeyViolation {
                key: format!("{:?}", self.ontology.kds[i]),
            }),
            Consistency::NcViolated(i) => Err(NyayaError::ConstraintViolation {
                constraint: self.ontology.ncs[i].to_string(),
            }),
            Consistency::Unknown => Err(NyayaError::ConsistencyUnknown),
        }
    }

    /// Record one in-memory engine run in the lifetime counters (called
    /// by [`InMemoryExecutor`] with the engine's [`ExecMetrics`]).
    ///
    /// [`ExecMetrics`]: nyaya_sql::ExecMetrics
    pub(crate) fn record_execution(&self, metrics: &nyaya_sql::ExecMetrics) {
        let c = &self.counters;
        c.exec_micros.fetch_add(
            u64::try_from(metrics.elapsed.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        c.rows_returned
            .fetch_add(metrics.rows as u64, Ordering::Relaxed);
        if metrics.threads > 1 {
            c.parallel_executions.fetch_add(1, Ordering::Relaxed);
        }
        c.build_cache_hits
            .fetch_add(metrics.build_cache_hits, Ordering::Relaxed);
        c.build_cache_misses
            .fetch_add(metrics.build_cache_misses, Ordering::Relaxed);
        c.merge_joins
            .fetch_add(metrics.merge_joins, Ordering::Relaxed);
        c.morsel_tasks
            .fetch_add(metrics.morsel_tasks, Ordering::Relaxed);
        c.range_index_scans
            .fetch_add(metrics.range_index_scans, Ordering::Relaxed);
        c.topk_early_exits
            .fetch_add(metrics.topk_early_exits, Ordering::Relaxed);
        c.aggregate_pushdowns
            .fetch_add(metrics.aggregate_pushdowns, Ordering::Relaxed);
        c.filter_fallback_scans
            .fetch_add(metrics.filter_fallback_scans, Ordering::Relaxed);
        c.shard_scatter_ops
            .fetch_add(metrics.shard_scatter_ops, Ordering::Relaxed);
        c.plan_estimated_rows
            .fetch_add(metrics.estimated_rows, Ordering::Relaxed);
        c.plan_actual_rows
            .fetch_add(metrics.rows as u64, Ordering::Relaxed);
    }

    /// Predicate-hash shard count for scatter-gather UCQ execution
    /// (1 = unsharded; see [`KnowledgeBaseBuilder::shards`]).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Count one request served through the network serving layer.
    pub fn record_net_request(&self) {
        self.counters.net_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Consult the exact answer cache: serve a stored answer iff the
    /// snapshot's per-predicate write epochs over `touched` equal a
    /// stored entry's — which proves (see [`Snapshot::pred_epoch`]) the
    /// touched tables are bit-identical to when that answer was
    /// computed, so the answer itself is too. Counts a hit or a miss;
    /// `None` (without counting) when the cache is disabled.
    pub(crate) fn cached_answer(
        &self,
        query: &PreparedQuery,
        snapshot: &Snapshot,
        touched: &[Predicate],
    ) -> Option<Answers> {
        if !self.answer_cache_enabled {
            return None;
        }
        let fingerprint = snapshot.fingerprint(touched);
        let key = (query.key.clone(), query.algorithm);
        // Advisory memo state (immutable Arc'd entries): recover from
        // poisoning like the rewriting cache.
        let cache = self
            .answer_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let hit = cache
            .get(&key)
            .and_then(|ring| ring.iter().find(|e| e.fingerprint == fingerprint))
            .map(|e| Answers {
                backend: e.backend,
                tuples: (*e.tuples).clone(),
                sql: None,
                complete: true,
            });
        drop(cache);
        match hit {
            Some(answers) => {
                self.counters
                    .cache_answer_hits
                    .fetch_add(1, Ordering::Relaxed);
                Some(answers)
            }
            None => {
                self.counters
                    .cache_answer_misses
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store one freshly executed answer set in the exact answer cache,
    /// tagged with the snapshot's epoch fingerprint over `touched`. Each
    /// query keeps a small ring ([`ANSWER_CACHE_PER_QUERY`]); duplicate
    /// fingerprints are not stored twice.
    pub(crate) fn store_answer(
        &self,
        query: &PreparedQuery,
        snapshot: &Snapshot,
        touched: &[Predicate],
        answers: &Answers,
    ) {
        if !self.answer_cache_enabled {
            return;
        }
        let fingerprint = snapshot.fingerprint(touched);
        let key = (query.key.clone(), query.algorithm);
        let mut cache = self
            .answer_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let ring = cache.entry(key).or_default();
        if ring.iter().any(|e| e.fingerprint == fingerprint) {
            return;
        }
        if ring.len() >= ANSWER_CACHE_PER_QUERY {
            ring.pop_front();
        }
        ring.push_back(CachedAnswer {
            fingerprint,
            backend: answers.backend,
            tuples: Arc::new(answers.tuples.clone()),
        });
    }

    /// The learned cardinality-correction factor for this query: `1.0`
    /// until an execution misses its estimate by ≥ [`REPLAN_RATIO`], the
    /// multiplier applied to join estimates on every re-plan afterwards.
    pub fn plan_correction(&self, query: &PreparedQuery) -> f64 {
        *self
            .feedback
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(query.key.clone(), query.algorithm))
            .unwrap_or(&1.0)
    }

    /// Feed one execution's estimated-vs-actual row counts back into the
    /// planner. Within [`REPLAN_RATIO`] the estimate was good enough and
    /// nothing changes; outside it the stored correction factor absorbs
    /// the observed ratio (clamped to ±64×) and `plan_replans` ticks.
    pub(crate) fn record_feedback(&self, query: &PreparedQuery, metrics: &nyaya_sql::ExecMetrics) {
        let estimated = (metrics.estimated_rows.max(1)) as f64;
        let actual = (metrics.rows.max(1)) as f64;
        let ratio = actual / estimated;
        if (1.0 / REPLAN_RATIO..=REPLAN_RATIO).contains(&ratio) {
            return;
        }
        let mut feedback = self.feedback.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = feedback
            .entry((query.key.clone(), query.algorithm))
            .or_insert(1.0);
        let updated = (*entry * ratio).clamp(1.0 / MAX_CORRECTION, MAX_CORRECTION);
        if (updated - *entry).abs() > f64::EPSILON {
            *entry = updated;
            self.counters.plan_replans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Execute with result modifiers — comparison filters, ORDER BY /
    /// LIMIT, COUNT/MIN/MAX/GROUP BY aggregates — applied inside the
    /// engine, which routes them through sorted-index fast paths
    /// (aggregate pushdown, top-k early exit, range scans) when one
    /// applies. Returns rows in modifier order: a `Vec`, unlike
    /// [`execute`](Self::execute)'s set — ORDER BY would be meaningless
    /// on a `BTreeSet`. Modifier column indices out of range for the
    /// query head are a [`NyayaError::InvalidSelect`].
    pub fn execute_select(
        &self,
        query: &PreparedQuery,
        sel: &nyaya_core::SelectOptions,
    ) -> Result<Vec<Vec<nyaya_core::Term>>, NyayaError> {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot();
        if let Some(program) = self.execution_plan(query)? {
            let threads = if program.program.num_rules() >= executor::PARALLEL_THRESHOLD {
                std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
            } else {
                1
            };
            let (rows, metrics) = nyaya_sql::execute_program_select(
                snapshot.database(),
                &program.program,
                sel,
                threads,
                snapshot.build_cache(),
            )
            .map_err(|e| match e {
                nyaya_sql::ProgramSelectError::InvalidSelect(detail) => {
                    NyayaError::InvalidSelect { detail }
                }
                nyaya_sql::ProgramSelectError::Program(err) => err.into(),
            })?;
            self.record_program_execution(&metrics);
            return Ok(rows);
        }
        let compiled = self.rewriting(query)?;
        let threads = if compiled.ucq.cqs.len() >= executor::PARALLEL_THRESHOLD {
            std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
        } else {
            1
        };
        let correction = self.plan_correction(query);
        let (rows, metrics) = nyaya_sql::execute_ucq_select_corrected(
            snapshot.database(),
            &compiled.ucq,
            sel,
            threads,
            snapshot.build_cache(),
            correction,
        )
        .map_err(|detail| NyayaError::InvalidSelect { detail })?;
        self.record_execution(&metrics);
        self.record_feedback(query, &metrics);
        Ok(rows)
    }

    /// Human-readable execution plan — the CLI's `--explain` surface:
    /// the chosen strategy, the cost-based operator mix across all
    /// disjuncts, the per-step plan of the first disjunct, and how the
    /// result modifiers (if any) will be applied.
    pub fn explain(
        &self,
        query: &PreparedQuery,
        sel: &nyaya_core::SelectOptions,
    ) -> Result<String, NyayaError> {
        let snapshot = self.snapshot();
        let mut out = String::new();
        if let Some(program) = self.execution_plan(query)? {
            out.push_str(&format!(
                "strategy: program ({} rules, {} strata)\n",
                program.program.num_rules(),
                program.stats.program_strata,
            ));
        } else {
            let compiled = self.rewriting(query)?;
            let correction = self.plan_correction(query);
            out.push_str(&format!(
                "strategy: ucq ({} disjuncts)\n",
                compiled.ucq.cqs.len()
            ));
            if (correction - 1.0).abs() > f64::EPSILON {
                out.push_str(&format!("feedback correction: {correction:.3}\n"));
            }
            let (mut scans, mut hashes, mut merges) = (0usize, 0usize, 0usize);
            for cq in compiled.ucq.iter() {
                let plan = nyaya_sql::plan_cq_cost_corrected(snapshot.database(), cq, correction);
                for op in &plan.ops {
                    match op {
                        nyaya_sql::StepOp::Scan => scans += 1,
                        nyaya_sql::StepOp::Hash => hashes += 1,
                        nyaya_sql::StepOp::Merge { .. } => merges += 1,
                    }
                }
            }
            out.push_str(&format!(
                "operators: scan {scans}, hash {hashes}, merge {merges}\n"
            ));
            if let Some(first) = compiled.ucq.iter().next() {
                out.push_str(&nyaya_sql::explain_cq(snapshot.database(), first));
            }
        }
        if !sel.is_plain() {
            out.push_str(&format!(
                "select: {} filter(s), {} order key(s), limit {}, aggregate {}\n",
                sel.filters.len(),
                sel.order_by.len(),
                sel.limit.map_or("none".to_owned(), |n| n.to_string()),
                if sel.aggregate.is_some() { "yes" } else { "no" },
            ));
        }
        Ok(out)
    }

    /// Snapshot the lifetime counters.
    pub fn stats(&self) -> KbStats {
        let snapshot = self.snapshot();
        let memory = snapshot.database().memory_stats();
        let mut stats = KbStats {
            prepared: self.counters.prepared.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            executions: self.counters.executions.load(Ordering::Relaxed),
            cached_rewritings: self
                .cache
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            exec_micros: self.counters.exec_micros.load(Ordering::Relaxed),
            rows_returned: self.counters.rows_returned.load(Ordering::Relaxed),
            parallel_executions: self.counters.parallel_executions.load(Ordering::Relaxed),
            build_cache_hits: self.counters.build_cache_hits.load(Ordering::Relaxed),
            build_cache_misses: self.counters.build_cache_misses.load(Ordering::Relaxed),
            epoch: snapshot.epoch(),
            batches_applied: self.counters.batches_applied.load(Ordering::Relaxed),
            facts_inserted: self.counters.facts_inserted.load(Ordering::Relaxed),
            facts_retracted: self.counters.facts_retracted.load(Ordering::Relaxed),
            build_cache_invalidations: self
                .counters
                .build_cache_invalidations
                .load(Ordering::Relaxed),
            snapshot_facts: snapshot.len(),
            rewrite_micros: self.counters.rewrite_micros.load(Ordering::Relaxed),
            rewrite_explored: self.counters.rewrite_explored.load(Ordering::Relaxed),
            rewrites_parallel: self.counters.rewrites_parallel.load(Ordering::Relaxed),
            subsumption_checks_avoided: self.counters.subsumption_avoided.load(Ordering::Relaxed),
            program_compiles: self.counters.program_compiles.load(Ordering::Relaxed),
            program_executions: self.counters.program_executions.load(Ordering::Relaxed),
            program_micros: self.counters.program_micros.load(Ordering::Relaxed),
            program_rules: self.counters.program_rules.load(Ordering::Relaxed),
            program_strata: self.counters.program_strata.load(Ordering::Relaxed),
            program_tuples_materialized: self.counters.program_tuples.load(Ordering::Relaxed),
            subscriptions_active: {
                let mut subs = self
                    .subscriptions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                subs.retain(|weak| weak.strong_count() > 0);
                subs.len()
            },
            subscription_diffs: self.counters.subscription_diffs.load(Ordering::Relaxed),
            ivm_added_tuples: self.counters.ivm_added.load(Ordering::Relaxed),
            ivm_removed_tuples: self.counters.ivm_removed.load(Ordering::Relaxed),
            ivm_micros: self.counters.ivm_micros.load(Ordering::Relaxed),
            merge_joins: self.counters.merge_joins.load(Ordering::Relaxed),
            morsel_tasks: self.counters.morsel_tasks.load(Ordering::Relaxed),
            range_index_scans: self.counters.range_index_scans.load(Ordering::Relaxed),
            topk_early_exits: self.counters.topk_early_exits.load(Ordering::Relaxed),
            aggregate_pushdowns: self.counters.aggregate_pushdowns.load(Ordering::Relaxed),
            filter_fallback_scans: self.counters.filter_fallback_scans.load(Ordering::Relaxed),
            plan_estimated_rows: self.counters.plan_estimated_rows.load(Ordering::Relaxed),
            plan_actual_rows: self.counters.plan_actual_rows.load(Ordering::Relaxed),
            plan_replans: self.counters.plan_replans.load(Ordering::Relaxed),
            cache_answer_hits: self.counters.cache_answer_hits.load(Ordering::Relaxed),
            cache_answer_misses: self.counters.cache_answer_misses.load(Ordering::Relaxed),
            shard_scatter_ops: self.counters.shard_scatter_ops.load(Ordering::Relaxed),
            net_requests: self.counters.net_requests.load(Ordering::Relaxed),
            fact_bytes: memory.fact_bytes,
            index_bytes: memory.index_bytes,
            tables: memory.tables,
            ..KbStats::default()
        };
        if let Some(durability) = &self.durability {
            let c = &durability.counters;
            stats.durable = true;
            stats.wal_records = c.wal_records.load(Ordering::Relaxed);
            stats.wal_bytes = c.wal_bytes.load(Ordering::Relaxed);
            stats.segments_flushed = c.segments_flushed.load(Ordering::Relaxed);
            stats.segment_bytes = c.segment_bytes.load(Ordering::Relaxed);
            stats.last_segment_epoch = c.last_segment_epoch.load(Ordering::Relaxed);
            stats.epochs_materialized = c.epochs_materialized.load(Ordering::Relaxed);
            stats.recovery_replayed = c.recovery_replayed.load(Ordering::Relaxed);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "
        sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
        sigma6: has_stock(X, Y) -> stock_portf(Y, X, Z).
        has_stock(ibm_s, fund1).
        q(A, B) :- stock_portf(B, A, D).
    ";

    #[test]
    fn builder_compiles_once_and_caches_rewritings() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        assert!(kb.classification().linear);
        assert_eq!(kb.executor_kind(), ExecutorKind::InMemory);
        assert_eq!(kb.default_algorithm(), Algorithm::NyayaStar);

        let q = &kb.queries()[0].clone();
        let p1 = kb.prepare(q).unwrap();
        let a1 = kb.execute(&p1).unwrap();
        assert_eq!(a1.tuples.len(), 1);
        assert_eq!(kb.stats().cache_misses, 1);
        assert_eq!(kb.stats().cache_hits, 0);

        // A fresh handle for an α-renamed query hits the same cache slot.
        let renamed = nyaya_parser::parse_query("q(P, Q) :- stock_portf(Q, P, R).").unwrap();
        let p2 = kb.prepare(&renamed).unwrap();
        let a2 = kb.execute(&p2).unwrap();
        assert_eq!(a1.tuples, a2.tuples);
        let stats = kb.stats();
        assert_eq!(stats.cache_misses, 1, "second execution must not rewrite");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cached_rewritings, 1);
        assert_eq!(stats.executions, 2);
    }

    #[test]
    fn empty_query_is_rejected_not_panicked() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        // `ConjunctiveQuery::new` asserts a non-empty body, but the fields
        // are public — the facade must not panic on a hand-built value.
        let empty = ConjunctiveQuery {
            head_pred: nyaya_core::symbols::intern("q"),
            head: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(kb.prepare(&empty).unwrap_err(), NyayaError::EmptyQuery);
    }

    #[test]
    fn apply_bumps_epochs_and_answers_track_the_data() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        assert_eq!(kb.epoch(), 0);
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 1);

        let outcome = kb
            .apply(UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"])))
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.inserted, 1);
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 2);

        let outcome = kb
            .apply(UpdateBatch::new().retract(Atom::make("has_stock", ["ibm_s", "fund1"])))
            .unwrap();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.retracted, 1);
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 1);

        // Duplicates and absent facts are counted as the no-ops they are.
        let outcome = kb
            .apply(
                UpdateBatch::new()
                    .insert(Atom::make("has_stock", ["sap_s", "fund2"]))
                    .retract(Atom::make("has_stock", ["ibm_s", "fund1"])),
            )
            .unwrap();
        assert_eq!((outcome.inserted, outcome.retracted), (0, 0));
        assert_eq!(outcome.epoch, 3, "epochs advance even for no-op batches");

        let stats = kb.stats();
        assert_eq!(stats.epoch, 3);
        assert_eq!(stats.batches_applied, 3);
        assert_eq!(stats.facts_inserted, 1);
        assert_eq!(stats.facts_retracted, 1);
    }

    #[test]
    fn non_ground_batches_are_rejected_without_publishing() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let bad = UpdateBatch::new()
            .insert(Atom::make("has_stock", ["sap_s", "fund2"]))
            .insert(Atom::make("has_stock", ["X", "fund9"]));
        match kb.apply(bad) {
            Err(NyayaError::NonGroundFact { fact }) => assert!(fact.contains("has_stock")),
            other => panic!("expected NonGroundFact, got {other:?}"),
        }
        assert_eq!(kb.epoch(), 0, "rejected batches publish nothing");
        assert_eq!(kb.snapshot().len(), 1, "…not even their ground prefix");
    }

    #[test]
    fn pinned_snapshots_are_isolated_from_later_writes() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        let pinned = kb.snapshot();
        let before = kb.execute_at(&q, &pinned).unwrap();

        kb.apply(UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"])))
            .unwrap();
        // The live view moved…
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 2);
        // …the pinned epoch did not.
        let after = kb.execute_at(&q, &pinned).unwrap();
        assert_eq!(before.tuples, after.tuples);
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(kb.epoch(), 1);
    }

    #[test]
    fn snapshots_from_another_kb_are_rejected_not_misanswered() {
        let kb1 = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let kb2 = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb1
            .prepare_text("q(A, B) :- stock_portf(B, A, D).")
            .unwrap();
        match kb1.execute_at(&q, &kb2.snapshot()) {
            Err(NyayaError::ForeignSnapshot { epoch: 0 }) => {}
            other => panic!("expected ForeignSnapshot, got {other:?}"),
        }
        // The same snapshot is fine on its own base.
        assert!(kb2.execute_at(&q, &kb2.snapshot()).is_ok());
    }

    #[test]
    fn updates_to_new_predicates_extend_the_catalog_for_sql() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        kb.apply(UpdateBatch::new().insert(Atom::make("brand_new", ["a", "b"])))
            .unwrap();
        let q = kb.prepare_text("q(A) :- brand_new(A, B).").unwrap();
        let sql = kb.sql(&q).unwrap();
        assert!(sql.contains("brand_new"), "{sql}");
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 1);
    }

    /// Two independent interaction clusters with two alternatives each:
    /// estimated DNF 4, program strictly smaller.
    const DECOMPOSABLE: &str = "
        sigma1: sp(X) -> p(X).
        sigma2: su(X) -> u(X).
        p(a). u(b). sp(c). su(d). t(a, b). t(c, d). t(a, d).
        q(A) :- p(A), t(A, B), u(B).
    ";

    #[test]
    fn forced_program_strategy_matches_ucq_answers() {
        let ucq_kb = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .strategy(Strategy::Ucq)
            .build()
            .unwrap();
        let program_kb = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .strategy(Strategy::Program)
            .build()
            .unwrap();
        let q = ucq_kb.queries()[0].clone();
        let via_ucq = ucq_kb.answer(&q).unwrap();
        let via_program = program_kb.answer(&q).unwrap();
        assert_eq!(via_ucq.backend, "in-memory");
        assert_eq!(via_program.backend, "program");
        assert_eq!(via_ucq.tuples, via_program.tuples);
        assert_eq!(via_program.tuples.len(), 2); // a and c

        let stats = program_kb.stats();
        assert_eq!(stats.program_compiles, 1);
        assert_eq!(stats.program_executions, 1);
        assert!(stats.program_rules >= 4, "{stats:?}");
        assert!(stats.program_strata >= 2, "{stats:?}");
        assert!(stats.program_tuples_materialized > 0, "{stats:?}");
        // Re-execution serves the cached program: no second compile.
        let prepared = program_kb.prepare(&q).unwrap();
        program_kb.execute(&prepared).unwrap();
        assert_eq!(program_kb.stats().program_compiles, 1);
    }

    #[test]
    fn auto_strategy_selects_by_estimated_dnf() {
        // Threshold 1: any decomposable query routes to the program.
        let kb = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .program_threshold(1)
            .build()
            .unwrap();
        assert_eq!(kb.strategy(), Strategy::Auto);
        let q = kb.queries()[0].clone();
        let answers = kb.answer(&q).unwrap();
        assert_eq!(answers.backend, "program");
        let prepared = kb.prepare(&q).unwrap();
        let program = kb.program(&prepared).unwrap();
        assert_eq!(program.estimated_dnf, 4);
        assert!(matches!(
            program.strategy,
            nyaya_rewrite::ProgramStrategy::Clustered { clusters: 3 }
        ));

        // Default threshold (256): the same 4-CQ DNF stays on the UCQ path,
        // and the static path bound (also 4 here) proves it cheap without
        // even compiling the program to measure it.
        let kb = KnowledgeBase::from_program_text(DECOMPOSABLE).unwrap();
        let answers = kb.answer(&kb.queries()[0].clone()).unwrap();
        assert_eq!(answers.backend, "in-memory");
        assert_eq!(
            kb.stats().program_compiles,
            0,
            "the cheap DNF bound should have skipped the program compile"
        );

        // Single-cluster bodies never pay a program compile under Auto.
        let kb = KnowledgeBase::builder()
            .program_text(PROGRAM)
            .unwrap()
            .program_threshold(0)
            .build()
            .unwrap();
        let answers = kb.answer(&kb.queries()[0].clone()).unwrap();
        assert_eq!(answers.backend, "in-memory");
        assert_eq!(kb.stats().program_compiles, 0);
    }

    #[test]
    fn auto_serves_the_unsatisfiability_proof_instead_of_the_dnf() {
        // NCs kill every alternative of the u-cluster: the program compile
        // proves emptiness (estimated_dnf = 0) without exploring the other
        // clusters, and Auto must serve that proof — not fall back to the
        // flat path and pay for the DNF product.
        let kb = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .program_text("n1: u(X) -> false. n2: su(X) -> false.")
            .unwrap()
            .build()
            .unwrap();
        let q = kb.prepare(&kb.queries()[0].clone()).unwrap();
        let answers = kb.execute(&q).unwrap();
        assert_eq!(answers.backend, "program", "emptiness proof not served");
        assert!(answers.tuples.is_empty());
        let stats = kb.stats();
        assert_eq!(stats.program_compiles, 1);
        assert_eq!(stats.cache_misses, 0, "the flat DNF was never compiled");
    }

    #[test]
    fn programs_survive_writes_and_track_the_data() {
        let kb = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .strategy(Strategy::Program)
            .build()
            .unwrap();
        let q = kb.prepare(&kb.queries()[0].clone()).unwrap();
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 2);
        let pinned = kb.snapshot();

        // New data flows through the *same* compiled program.
        kb.apply(
            UpdateBatch::new()
                .insert(Atom::make("sp", ["z"]))
                .insert(Atom::make("t", ["z", "b"])),
        )
        .unwrap();
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 3);
        // The pinned snapshot still answers at its epoch.
        assert_eq!(kb.execute_at(&q, &pinned).unwrap().tuples.len(), 2);
        // Exactly one program compile across all of it.
        assert_eq!(kb.stats().program_compiles, 1);
        assert_eq!(kb.stats().cache_misses, 0, "the flat UCQ was never built");
    }

    #[test]
    fn program_sql_ships_ctes_under_the_program_strategy() {
        let kb = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .strategy(Strategy::Program)
            .build()
            .unwrap();
        let q = kb.prepare(&kb.queries()[0].clone()).unwrap();
        let sql = kb.sql(&q).unwrap();
        assert!(sql.starts_with("WITH "), "{sql}");
        assert!(sql.contains(" AS ("), "{sql}");
        // The flat form would be a UNION of full joins; the program form
        // joins the cluster CTEs exactly once in the goal SELECT.
        let kb_flat = KnowledgeBase::builder()
            .program_text(DECOMPOSABLE)
            .unwrap()
            .strategy(Strategy::Ucq)
            .build()
            .unwrap();
        let flat = kb_flat
            .sql(&kb_flat.prepare(&kb.queries()[0].clone()).unwrap())
            .unwrap();
        assert!(!flat.contains("WITH"), "{flat}");
    }

    #[test]
    fn recursive_programs_surface_a_typed_error() {
        use nyaya_core::{DatalogRule, Predicate, Term};
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let p = |n: &str| Predicate::new(n, 1);
        let atom = |n: &str| nyaya_core::Atom::new(p(n), vec![Term::var("X")]);
        let program = DatalogProgram::new(
            atom("a"),
            vec![
                DatalogRule::new(atom("a"), vec![atom("b")]),
                DatalogRule::new(atom("b"), vec![atom("a")]),
            ],
        );
        assert_eq!(
            kb.execute_program(&program).unwrap_err(),
            NyayaError::RecursiveProgram
        );
    }

    #[test]
    fn budget_exhaustion_is_an_error_not_a_wrong_answer() {
        let kb = KnowledgeBase::builder()
            .program_text(PROGRAM)
            .unwrap()
            .max_queries(1)
            .build()
            .unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        match kb.execute(&q) {
            Err(NyayaError::BudgetExhausted { budget: 1, .. }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    /// The current answers of a query, as a set (for diff comparison).
    fn answer_set(
        kb: &KnowledgeBase,
        q: &PreparedQuery,
    ) -> std::collections::BTreeSet<Vec<nyaya_core::Term>> {
        kb.execute(q).unwrap().tuples.into_iter().collect()
    }

    #[test]
    fn subscriptions_track_every_epoch_with_exact_diffs() {
        use nyaya_core::Term;
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        let sub = kb.subscribe(&q).unwrap();
        assert_eq!(kb.stats().subscriptions_active, 1);

        // The first diff is the full current answer set at the seed epoch.
        let initial = sub.poll();
        assert_eq!(initial.len(), 1);
        assert_eq!(initial[0].epoch, 0);
        assert_eq!(
            initial[0]
                .added
                .iter()
                .cloned()
                .collect::<std::collections::BTreeSet<_>>(),
            answer_set(&kb, &q)
        );
        assert!(initial[0].removed.is_empty());
        assert_eq!(sub.current(), answer_set(&kb, &q));

        // An insert shows up as exactly its derived answers.
        kb.apply(UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"])))
            .unwrap();
        let diffs = sub.poll();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].epoch, 1);
        assert_eq!(
            diffs[0].added,
            vec![vec![Term::constant("sap_s"), Term::constant("fund2")]]
        );
        assert!(diffs[0].removed.is_empty());
        assert_eq!(sub.current(), answer_set(&kb, &q));

        // A retraction is exact (support counting, no recomputation).
        kb.apply(UpdateBatch::new().retract(Atom::make("has_stock", ["ibm_s", "fund1"])))
            .unwrap();
        let diffs = sub.poll();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].epoch, 2);
        assert_eq!(
            diffs[0].removed,
            vec![vec![Term::constant("ibm_s"), Term::constant("fund1")]]
        );
        assert!(diffs[0].added.is_empty());
        assert_eq!(sub.current(), answer_set(&kb, &q));

        // A batch over an unrelated predicate still yields its epoch's
        // diff (empty), keeping the stream aligned with the epochs.
        kb.apply(UpdateBatch::new().insert(Atom::make("unrelated", ["x"])))
            .unwrap();
        let diffs = sub.poll();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].epoch, 3);
        assert!(diffs[0].is_empty());
        assert_eq!(sub.epoch(), 3);

        let stats = kb.stats();
        assert_eq!(stats.subscription_diffs, 3);
        assert_eq!(stats.ivm_added_tuples, 1);
        assert_eq!(stats.ivm_removed_tuples, 1);
    }

    #[test]
    fn dropping_a_subscription_unregisters_it() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        let sub = kb.subscribe(&q).unwrap();
        assert_eq!(kb.stats().subscriptions_active, 1);
        drop(sub);
        assert_eq!(kb.stats().subscriptions_active, 0);
        kb.apply(UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"])))
            .unwrap();
        assert_eq!(kb.stats().subscription_diffs, 0, "no live views: no work");
    }

    #[test]
    fn same_fact_retract_insert_is_deterministic_and_nets_to_zero() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        let sub = kb.subscribe(&q).unwrap();
        sub.poll();

        // Present fact, both ops queued insert-first: retractions still
        // run first, so the fact survives and both count as effective.
        let f = Atom::make("has_stock", ["ibm_s", "fund1"]);
        let outcome = kb
            .apply(UpdateBatch::new().insert(f.clone()).retract(f.clone()))
            .unwrap();
        assert_eq!((outcome.retracted, outcome.inserted), (1, 1));
        assert_eq!(kb.snapshot().len(), 1, "net: the fact is still present");
        // …and the net-zero delta propagates nothing to subscriptions.
        let diffs = sub.poll();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_empty(), "{diffs:?}");

        // Absent fact: the retraction is a no-op, the insertion lands.
        let g = Atom::make("has_stock", ["sap_s", "fund2"]);
        let outcome = kb
            .apply(UpdateBatch::new().retract(g.clone()).insert(g.clone()))
            .unwrap();
        assert_eq!((outcome.retracted, outcome.inserted), (0, 1));
        assert_eq!(kb.snapshot().len(), 2);
        let diffs = sub.poll();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].added.len(), 1);
        assert!(diffs[0].removed.is_empty());
        assert_eq!(sub.current(), answer_set(&kb, &q));
    }

    #[test]
    fn poisoned_reader_locks_recover_instead_of_wedging() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        kb.execute(&q).unwrap(); // warm the rewriting cache
        let kb = &kb;
        std::thread::scope(|s| {
            for what in ["cache", "program cache", "state"] {
                let handle = s.spawn(move || {
                    // Deliberately panic while holding each advisory lock.
                    match what {
                        "cache" => {
                            let _guard = kb.cache.write().unwrap();
                            panic!("poisoning the rewriting cache");
                        }
                        "program cache" => {
                            let _guard = kb.program_cache.write().unwrap();
                            panic!("poisoning the program cache");
                        }
                        _ => {
                            let _guard = kb.state.write().unwrap();
                            panic!("poisoning the snapshot pointer");
                        }
                    }
                });
                assert!(handle.join().is_err(), "the thread must have panicked");
            }
        });
        // Reads, compiles and writes all still work.
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 1);
        let q2 = kb.prepare_text("q(B) :- has_stock(A, B).").unwrap();
        assert_eq!(kb.execute(&q2).unwrap().tuples.len(), 1);
        let outcome = kb
            .apply(UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"])))
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 2);
        assert!(kb.stats().cached_rewritings >= 1);
    }

    #[test]
    fn poisoned_writer_lock_is_a_typed_error_not_a_panic() {
        let kb = KnowledgeBase::from_program_text(PROGRAM).unwrap();
        let q = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = kb.apply_lock.lock().unwrap();
                panic!("poisoning the writer lock");
            });
            assert!(handle.join().is_err());
        });
        // Writes and subscriptions refuse with a typed error…
        match kb.apply(UpdateBatch::new().insert(Atom::make("has_stock", ["sap_s", "fund2"]))) {
            Err(NyayaError::Poisoned { what: "writer" }) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
        match kb.subscribe(&q) {
            Err(NyayaError::Poisoned { what: "writer" }) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // …while reads over the published snapshot keep working.
        assert_eq!(kb.execute(&q).unwrap().tuples.len(), 1);
        assert_eq!(kb.epoch(), 0, "the refused batch published nothing");
    }
}
