//! The structured error type of the facade.
//!
//! Every failure mode of the compile-once / execute-many pipeline is a
//! variant here — loading, parsing, normalization preconditions, rewriting
//! budgets, schema gaps, inconsistency — so callers can match on what went
//! wrong instead of string-scraping, and nothing in the facade panics on
//! user input.

use std::error::Error;
use std::fmt;

use nyaya_parser::ParseError;
use nyaya_rewrite::RewriteError;

/// An error from the [`KnowledgeBase`](crate::KnowledgeBase) pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NyayaError {
    /// A source file could not be read.
    Io { path: String, message: String },
    /// A front end rejected its input (`line:col: message` in `source`).
    Parse {
        /// Which front end: `datalog±`, `dl-lite` or `owl2-ql`.
        front_end: &'static str,
        message: String,
    },
    /// A TGD reached a rewriting engine without being in Lemma 1/2 normal
    /// form. The facade always normalizes at build time, so seeing this
    /// from [`crate::KnowledgeBase`] indicates a bug; it is surfaced for
    /// callers that drive the engines directly.
    NotNormalized {
        algorithm: &'static str,
        tgd: String,
    },
    /// The rewriting explored `budget` distinct queries without reaching a
    /// fixpoint; the result would be incomplete, so none is returned.
    BudgetExhausted { explored: usize, budget: usize },
    /// SQL translation met a predicate with no table in the catalog.
    UnregisteredPredicate,
    /// The database violates a key dependency.
    KeyViolation { key: String },
    /// The database contradicts a negative constraint — the theory is
    /// inconsistent and every Boolean query would be trivially entailed.
    ConstraintViolation { constraint: String },
    /// The consistency chase hit its budget before reaching a verdict.
    ConsistencyUnknown,
    /// A query was expected but none was found (empty program, empty body).
    NoQuery,
    /// The query's body is empty — it has no canonical form and nothing to
    /// rewrite.
    EmptyQuery,
}

impl fmt::Display for NyayaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NyayaError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            NyayaError::Parse { front_end, message } => {
                write!(f, "{front_end} parse error: {message}")
            }
            NyayaError::NotNormalized { algorithm, tgd } => write!(
                f,
                "{algorithm} requires normalized TGDs (Lemmas 1\u{2013}2); offending TGD: {tgd}"
            ),
            NyayaError::BudgetExhausted { explored, budget } => write!(
                f,
                "rewriting exceeded the query budget ({explored} explored, budget {budget}); \
                 result would be incomplete"
            ),
            NyayaError::UnregisteredPredicate => {
                write!(f, "rewriting mentions predicates with no registered table")
            }
            NyayaError::KeyViolation { key } => {
                write!(f, "database violates key dependency {key}")
            }
            NyayaError::ConstraintViolation { constraint } => {
                write!(
                    f,
                    "theory is inconsistent: violated constraint `{constraint}`"
                )
            }
            NyayaError::ConsistencyUnknown => {
                write!(f, "consistency check exceeded the chase budget")
            }
            NyayaError::NoQuery => {
                write!(f, "program contains no query (add `q(X) :- \u{2026}.`)")
            }
            NyayaError::EmptyQuery => write!(f, "query body is empty"),
        }
    }
}

impl Error for NyayaError {}

impl From<RewriteError> for NyayaError {
    fn from(err: RewriteError) -> Self {
        match err {
            RewriteError::NotNormalized { algorithm, tgd } => {
                NyayaError::NotNormalized { algorithm, tgd }
            }
        }
    }
}

impl NyayaError {
    pub(crate) fn parse(front_end: &'static str, err: ParseError) -> Self {
        NyayaError::Parse {
            front_end,
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_for_cli_consumers() {
        let err = NyayaError::BudgetExhausted {
            explored: 10,
            budget: 10,
        };
        assert!(err.to_string().contains("incomplete"));
        let err = NyayaError::Io {
            path: "x.dlp".into(),
            message: "no such file".into(),
        };
        assert_eq!(err.to_string(), "cannot read x.dlp: no such file");
    }

    #[test]
    fn rewrite_error_converts() {
        let err: NyayaError = RewriteError::NotNormalized {
            algorithm: "tgd_rewrite",
            tgd: "t".into(),
        }
        .into();
        assert!(matches!(err, NyayaError::NotNormalized { .. }));
    }
}
