//! The structured error type of the facade.
//!
//! Every failure mode of the compile-once / execute-many pipeline is a
//! variant here — loading, parsing, normalization preconditions, rewriting
//! budgets, schema gaps, inconsistency — so callers can match on what went
//! wrong instead of string-scraping, and nothing in the facade panics on
//! user input.

use std::error::Error;
use std::fmt;

use nyaya_parser::ParseError;
use nyaya_rewrite::RewriteError;

/// An error from the [`KnowledgeBase`](crate::KnowledgeBase) pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NyayaError {
    /// A source file could not be read.
    Io {
        /// The path that failed to load.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// A front end rejected its input (`line:col: message` in `source`).
    Parse {
        /// Which front end: `datalog±`, `dl-lite` or `owl2-ql`.
        front_end: &'static str,
        /// The parser's `line:col: message` diagnostic.
        message: String,
    },
    /// A TGD reached a rewriting engine without being in Lemma 1/2 normal
    /// form. The facade always normalizes at build time, so seeing this
    /// from [`crate::KnowledgeBase`] indicates a bug; it is surfaced for
    /// callers that drive the engines directly.
    NotNormalized {
        /// The engine that refused the TGD.
        algorithm: &'static str,
        /// The offending TGD, rendered in Datalog± syntax.
        tgd: String,
    },
    /// The rewriting explored `budget` distinct queries without reaching a
    /// fixpoint; the result would be incomplete, so none is returned.
    BudgetExhausted {
        /// Distinct queries explored before giving up.
        explored: usize,
        /// The configured budget that was hit.
        budget: usize,
    },
    /// A query reached the rewriting step with more same-predicate body
    /// atoms than the 2ⁿ subset enumeration of Algorithm 1 can handle
    /// ([`nyaya_rewrite::MAX_SUBSET_ATOMS`]).
    AtomGroupTooLarge {
        /// The predicate whose body-atom group overflowed.
        predicate: String,
        /// Size of the group.
        atoms: usize,
        /// The enforced limit.
        limit: usize,
    },
    /// SQL translation met a predicate with no table in the catalog.
    UnregisteredPredicate {
        /// The first predicate found without a registered table.
        predicate: String,
    },
    /// A Datalog program reached bottom-up evaluation with a cycle in its
    /// defined-predicate dependency graph. The rewriters never produce
    /// recursive programs; this surfaces hand-built ones as an error
    /// instead of a panic.
    RecursiveProgram,
    /// A program rule is not range-restricted (a head variable never
    /// occurs in the body), so its derived relation would be unbounded.
    UnsafeRule {
        /// The offending rule, rendered in Datalog syntax.
        rule: String,
    },
    /// A program rule contains terms SQL cannot express (labeled nulls or
    /// function terms).
    UntranslatableRule {
        /// The offending rule, rendered in Datalog syntax.
        rule: String,
    },
    /// The database violates a key dependency.
    KeyViolation {
        /// The violated key dependency, rendered for display.
        key: String,
    },
    /// The database contradicts a negative constraint — the theory is
    /// inconsistent and every Boolean query would be trivially entailed.
    ConstraintViolation {
        /// The violated constraint, rendered in Datalog± syntax.
        constraint: String,
    },
    /// The consistency chase hit its budget before reaching a verdict.
    ConsistencyUnknown,
    /// A query was expected but none was found (empty program, empty body).
    NoQuery,
    /// The query's body is empty — it has no canonical form and nothing to
    /// rewrite.
    EmptyQuery,
    /// An [`UpdateBatch`](crate::UpdateBatch) queued an atom containing a
    /// variable; only ground facts can be inserted or retracted. The
    /// whole batch is rejected and no snapshot is published.
    NonGroundFact {
        /// The offending atom, rendered in Datalog± syntax.
        fact: String,
    },
    /// [`execute_at`](crate::KnowledgeBase::execute_at) was handed a
    /// [`Snapshot`](crate::Snapshot) published by a *different* knowledge
    /// base — its data belongs to another ontology, so evaluating this
    /// base's rewritings over it would be meaningless.
    ForeignSnapshot {
        /// The foreign snapshot's epoch, for diagnostics.
        epoch: u64,
    },
    /// The durable ledger hit an underlying file-system failure.
    LedgerIo {
        /// The file or directory involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The durable ledger found invalid bytes: a bad checksum or magic, a
    /// duplicated or out-of-order record, or an undecodable payload. The
    /// damaged state is never served and nothing is silently dropped.
    LedgerCorrupt {
        /// The file that failed validation (`<payload>` for a decoded
        /// record or segment body).
        path: String,
        /// Byte offset of the first invalid record or field.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// The ledger's epoch sequence has a hole — some epoch's record is
    /// missing from both the sealed history and the active log.
    LedgerEpochGap {
        /// The epoch the contiguous sequence required next.
        expected: u64,
        /// The epoch actually found.
        found: u64,
    },
    /// [`snapshot_at`](crate::KnowledgeBase::snapshot_at) asked for an
    /// epoch this knowledge base never published. The valid range is
    /// `0..=latest`.
    EpochNotFound {
        /// The epoch asked for.
        requested: u64,
        /// The newest epoch that exists.
        latest: u64,
    },
    /// A historical epoch was requested on a memory-only knowledge base —
    /// past epochs are reconstructible only with a durable data
    /// directory (see
    /// [`KnowledgeBaseBuilder::durable`](crate::KnowledgeBaseBuilder::durable)).
    NotDurable {
        /// The epoch that could not be served.
        requested: u64,
    },
    /// Result modifiers (filters, ORDER BY, aggregates) reference columns
    /// outside the query head, or are otherwise malformed.
    InvalidSelect {
        /// What exactly is wrong, with 1-based column numbers.
        detail: String,
    },
    /// A lock protecting *write* state was poisoned: some thread panicked
    /// while holding it, so the guarded invariants cannot be trusted. The
    /// operation is refused instead of panicking in turn; reads over
    /// already-published snapshots keep working. (Locks over advisory
    /// state — caches, the published-snapshot pointer — recover from
    /// poisoning silently and never produce this error.)
    Poisoned {
        /// Which lock was found poisoned.
        what: &'static str,
    },
}

impl fmt::Display for NyayaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NyayaError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            NyayaError::Parse { front_end, message } => {
                write!(f, "{front_end} parse error: {message}")
            }
            NyayaError::NotNormalized { algorithm, tgd } => write!(
                f,
                "{algorithm} requires normalized TGDs (Lemmas 1\u{2013}2); offending TGD: {tgd}"
            ),
            NyayaError::BudgetExhausted { explored, budget } => write!(
                f,
                "rewriting exceeded the query budget ({explored} explored, budget {budget}); \
                 result would be incomplete"
            ),
            NyayaError::AtomGroupTooLarge {
                predicate,
                atoms,
                limit,
            } => write!(
                f,
                "rewriting step cannot enumerate the subsets of {atoms} \
                 same-predicate body atoms over `{predicate}` (limit {limit})"
            ),
            NyayaError::UnregisteredPredicate { predicate } => {
                write!(
                    f,
                    "rewriting mentions predicate `{predicate}` with no registered table"
                )
            }
            NyayaError::RecursiveProgram => {
                write!(
                    f,
                    "Datalog program is recursive; bottom-up evaluation requires a stratification"
                )
            }
            NyayaError::UnsafeRule { rule } => {
                write!(f, "unsafe program rule (unbound head variable): {rule}")
            }
            NyayaError::UntranslatableRule { rule } => {
                write!(f, "program rule contains terms SQL cannot express: {rule}")
            }
            NyayaError::KeyViolation { key } => {
                write!(f, "database violates key dependency {key}")
            }
            NyayaError::ConstraintViolation { constraint } => {
                write!(
                    f,
                    "theory is inconsistent: violated constraint `{constraint}`"
                )
            }
            NyayaError::ConsistencyUnknown => {
                write!(f, "consistency check exceeded the chase budget")
            }
            NyayaError::NoQuery => {
                write!(f, "program contains no query (add `q(X) :- \u{2026}.`)")
            }
            NyayaError::EmptyQuery => write!(f, "query body is empty"),
            NyayaError::NonGroundFact { fact } => {
                write!(f, "update batches hold ground facts only, got {fact}")
            }
            NyayaError::ForeignSnapshot { epoch } => {
                write!(
                    f,
                    "snapshot (epoch {epoch}) was published by a different knowledge base"
                )
            }
            NyayaError::LedgerIo { path, message } => {
                write!(f, "ledger I/O on {path}: {message}")
            }
            NyayaError::LedgerCorrupt {
                path,
                offset,
                detail,
            } => write!(f, "ledger corruption in {path} at byte {offset}: {detail}"),
            NyayaError::LedgerEpochGap { expected, found } => write!(
                f,
                "ledger epoch sequence broken: expected epoch {expected}, found {found}"
            ),
            NyayaError::EpochNotFound { requested, latest } => write!(
                f,
                "epoch {requested} does not exist; valid epochs are 0..={latest}"
            ),
            NyayaError::NotDurable { requested } => write!(
                f,
                "epoch {requested} is not reconstructible: this knowledge base is \
                 memory-only (build with .durable(path) for time travel)"
            ),
            NyayaError::InvalidSelect { detail } => {
                write!(f, "invalid select options: {detail}")
            }
            NyayaError::Poisoned { what } => write!(
                f,
                "{what} lock poisoned by a panicking writer; refusing to touch its state"
            ),
        }
    }
}

impl Error for NyayaError {}

impl From<RewriteError> for NyayaError {
    fn from(err: RewriteError) -> Self {
        match err {
            RewriteError::NotNormalized { algorithm, tgd } => {
                NyayaError::NotNormalized { algorithm, tgd }
            }
            RewriteError::AtomGroupTooLarge {
                predicate,
                atoms,
                limit,
            } => NyayaError::AtomGroupTooLarge {
                predicate,
                atoms,
                limit,
            },
        }
    }
}

impl From<nyaya_sql::ProgramError> for NyayaError {
    fn from(err: nyaya_sql::ProgramError) -> Self {
        match err {
            nyaya_sql::ProgramError::Recursive => NyayaError::RecursiveProgram,
            nyaya_sql::ProgramError::UnsafeRule { rule } => NyayaError::UnsafeRule { rule },
            nyaya_sql::ProgramError::UnregisteredPredicate { predicate } => {
                NyayaError::UnregisteredPredicate { predicate }
            }
            nyaya_sql::ProgramError::Untranslatable { rule } => {
                NyayaError::UntranslatableRule { rule }
            }
        }
    }
}

impl NyayaError {
    pub(crate) fn parse(front_end: &'static str, err: ParseError) -> Self {
        NyayaError::Parse {
            front_end,
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_for_cli_consumers() {
        let err = NyayaError::BudgetExhausted {
            explored: 10,
            budget: 10,
        };
        assert!(err.to_string().contains("incomplete"));
        let err = NyayaError::Io {
            path: "x.dlp".into(),
            message: "no such file".into(),
        };
        assert_eq!(err.to_string(), "cannot read x.dlp: no such file");
    }

    #[test]
    fn rewrite_error_converts() {
        let err: NyayaError = RewriteError::NotNormalized {
            algorithm: "tgd_rewrite",
            tgd: "t".into(),
        }
        .into();
        assert!(matches!(err, NyayaError::NotNormalized { .. }));
    }
}
