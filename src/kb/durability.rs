//! The durable-ledger layer behind [`KnowledgeBase`](crate::KnowledgeBase).
//!
//! A durable knowledge base (built with
//! [`KnowledgeBaseBuilder::durable`](crate::KnowledgeBaseBuilder::durable))
//! wires three pieces around the in-memory snapshot machinery:
//!
//! 1. **Write-ahead log** — inside `apply()`, the encoded batch is
//!    appended and fsynced *before* the successor snapshot is published.
//!    If the append fails, nothing is published: a batch is either on
//!    disk and visible, or neither.
//! 2. **Index segments** — every `flush_interval` epochs the freshly
//!    published snapshot is handed to a background compactor thread,
//!    which encodes the full database and writes an immutable segment,
//!    sealing the replayed WAL prefix into the ledger's history.
//!    Segment writes are an optimization (bounding recovery replay and
//!    as-of reconstruction cost), never a correctness requirement: the
//!    sealed WAL retains every batch ever applied.
//! 3. **Recovery & time travel** — on build over a non-empty directory,
//!    the newest valid segment is decoded and the WAL tail replayed to
//!    reconstruct the latest epoch; any *historical* epoch is
//!    materialized on demand from the nearest segment at or below it
//!    plus the sealed log, with a small cache of recently materialized
//!    snapshots.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use nyaya_core::Atom;
use nyaya_ledger::{Ledger, LedgerError, LedgerHistory, RecoveredState, SegmentFlush};
use nyaya_sql::segment::{decode_batch, decode_database, encode_batch, encode_database};
use nyaya_sql::{BuildCache, Catalog, Database};

use super::error::NyayaError;
use super::update::{Snapshot, UpdateBatch};

/// How many materialized historical snapshots to keep around.
const MATERIALIZED_CACHE_CAP: usize = 16;

/// One decoded WAL batch: `(epoch, retracts, inserts)`.
pub(crate) type LoggedBatch = (u64, Vec<Atom>, Vec<Atom>);

/// Lifetime counters of the durability layer, shared with the compactor.
#[derive(Default)]
pub(crate) struct LedgerCounters {
    pub(crate) wal_records: AtomicU64,
    pub(crate) wal_bytes: AtomicU64,
    pub(crate) segments_flushed: AtomicU64,
    pub(crate) segment_bytes: AtomicU64,
    pub(crate) last_segment_epoch: AtomicU64,
    pub(crate) epochs_materialized: AtomicU64,
    pub(crate) recovery_replayed: AtomicU64,
}

/// What [`Durability::open`] reconstructed from a non-empty data
/// directory.
pub(crate) struct RecoveredData {
    /// The database at the newest durable epoch.
    pub(crate) database: Database,
    /// That epoch.
    pub(crate) epoch: u64,
}

/// A request to the background compactor.
enum CompactorMsg {
    Flush(Arc<Snapshot>),
}

/// The per-knowledge-base durability state. Dropping it shuts the
/// compactor down (the channel closes, the thread drains and exits).
pub(crate) struct Durability {
    root: PathBuf,
    ledger: Arc<Mutex<Ledger>>,
    flush_interval: u64,
    pub(crate) counters: Arc<LedgerCounters>,
    materialized: Mutex<BTreeMap<u64, Arc<Snapshot>>>,
    sender: Option<SyncSender<CompactorMsg>>,
    worker: Option<JoinHandle<()>>,
}

impl Durability {
    /// The ledger mutex, surfacing poisoning as a typed error instead of
    /// a panic. The ledger is *write* state (WAL offsets, segment
    /// bookkeeping): a thread that panicked while holding it may have
    /// torn an in-memory invariant, so callers get
    /// [`NyayaError::Poisoned`] and the on-disk ledger stays untouched —
    /// reads over published snapshots keep working either way.
    fn ledger(&self) -> Result<MutexGuard<'_, Ledger>, NyayaError> {
        self.ledger.lock().map_err(|_| NyayaError::Poisoned {
            what: "durable ledger",
        })
    }

    /// Open the ledger at `root`, recovering whatever it holds.
    pub(crate) fn open(
        root: &Path,
        flush_interval: u64,
    ) -> Result<(Durability, Option<RecoveredData>), NyayaError> {
        let (ledger, recovered) = Ledger::open(root)?;
        let counters = Arc::new(LedgerCounters::default());
        let recovered = match recovered {
            None => None,
            Some(state) => Some(Self::rebuild(state, &counters)?),
        };
        let ledger = Arc::new(Mutex::new(ledger));
        // Bounded to 1: at most one flush queued behind the one in
        // progress. A full queue skips the flush — the WAL keeps every
        // batch, so a skipped segment only delays replay-bound shrinking.
        let (sender, receiver) = std::sync::mpsc::sync_channel(1);
        let worker = std::thread::Builder::new()
            .name("nyaya-compactor".into())
            .spawn({
                let ledger = Arc::clone(&ledger);
                let counters = Arc::clone(&counters);
                move || run_compactor(receiver, ledger, counters)
            })
            .map_err(|e| NyayaError::LedgerIo {
                path: root.display().to_string(),
                message: format!("cannot spawn compactor thread: {e}"),
            })?;
        let durability = Durability {
            root: root.to_path_buf(),
            ledger,
            flush_interval: flush_interval.max(1),
            counters,
            materialized: Mutex::new(BTreeMap::new()),
            sender: Some(sender),
            worker: Some(worker),
        };
        Ok((durability, recovered))
    }

    /// Decode the recovered segment and replay the WAL tail over it.
    fn rebuild(
        state: RecoveredState,
        counters: &LedgerCounters,
    ) -> Result<RecoveredData, NyayaError> {
        let (seg_epoch, mut database) = match state.segment {
            Some((epoch, payload)) => (epoch, decode_database(&payload)?),
            None => {
                // A durable build always seeds segment 0 before the first
                // append, so records without any base mean the segment
                // store was damaged beyond the newest-segment fallback.
                return Err(NyayaError::LedgerCorrupt {
                    path: "segments/".into(),
                    offset: 0,
                    detail: "log records present but no valid base segment".into(),
                });
            }
        };
        let mut replayed = 0u64;
        for record in &state.tail {
            debug_assert!(record.epoch > seg_epoch);
            let (retracts, inserts) = decode_batch(&record.payload)?;
            for fact in &retracts {
                database.remove(fact);
            }
            for fact in inserts {
                database.insert(fact);
            }
            replayed += 1;
        }
        counters
            .recovery_replayed
            .store(replayed, Ordering::Relaxed);
        Ok(RecoveredData {
            database,
            epoch: state.latest_epoch,
        })
    }

    /// Write the epoch-0 base segment for a freshly created ledger. Done
    /// synchronously at build time so recovery always has a base to
    /// replay from.
    pub(crate) fn seed(&self, database: &Database) -> Result<(), NyayaError> {
        let payload = encode_database(database);
        let flush = self.ledger()?.flush_segment(0, &payload)?;
        self.record_flush(&flush);
        Ok(())
    }

    /// Append one batch as the record producing `epoch`, fsynced. Called
    /// by `apply()` **before** the snapshot swap.
    pub(crate) fn append_batch(&self, epoch: u64, batch: &UpdateBatch) -> Result<(), NyayaError> {
        let payload = encode_batch(batch.retracts(), batch.inserts());
        let bytes = self.ledger()?.append(epoch, &payload)?;
        self.counters.wal_records.fetch_add(1, Ordering::Relaxed);
        self.counters.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Hand the snapshot to the background compactor if its epoch is on
    /// the flush interval. Never blocks: a busy compactor skips the
    /// flush (the WAL retains everything).
    pub(crate) fn maybe_flush(&self, snapshot: &Arc<Snapshot>) {
        if snapshot.epoch() == 0 || !snapshot.epoch().is_multiple_of(self.flush_interval) {
            return;
        }
        if let Some(sender) = &self.sender {
            match sender.try_send(CompactorMsg::Flush(Arc::clone(snapshot))) {
                Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }

    /// Synchronously flush a segment for `snapshot` (the CLI `compact`
    /// command and tests). Runs on the caller's thread.
    pub(crate) fn compact_now(&self, snapshot: &Snapshot) -> Result<SegmentFlush, NyayaError> {
        let payload = encode_database(snapshot.database());
        let flush = self.ledger()?.flush_segment(snapshot.epoch(), &payload)?;
        self.record_flush(&flush);
        Ok(flush)
    }

    /// The logged batches producing epochs `after + 1 ..= to`, decoded,
    /// in ascending epoch order — the catch-up feed for a subscription
    /// resuming from a historical epoch
    /// ([`KnowledgeBase::subscribe_from`]). Each entry is
    /// `(epoch, retracts, inserts)`.
    ///
    /// [`KnowledgeBase::subscribe_from`]: crate::KnowledgeBase::subscribe_from
    pub(crate) fn batches_between(
        &self,
        after: u64,
        to: u64,
    ) -> Result<Vec<LoggedBatch>, NyayaError> {
        let records = self.ledger()?.records_between(after, to)?;
        let mut out = Vec::with_capacity(records.len());
        for record in &records {
            let (retracts, inserts) = decode_batch(&record.payload)?;
            out.push((record.epoch, retracts, inserts));
        }
        Ok(out)
    }

    /// Materialize the snapshot of a historical `epoch` from the nearest
    /// segment at or below it plus the sealed log, with caching.
    pub(crate) fn materialize(
        &self,
        epoch: u64,
        owner: u64,
        catalog: &Catalog,
    ) -> Result<Arc<Snapshot>, NyayaError> {
        // The materialized cache is advisory (immutable Arc'd snapshots):
        // poisoning cannot tear an entry, so recover on both sides.
        if let Some(hit) = self
            .materialized
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&epoch)
        {
            return Ok(Arc::clone(hit));
        }
        let (base_epoch, mut database, records) = {
            let ledger = self.ledger()?;
            let (base_epoch, payload) =
                ledger
                    .segment_at_or_before(epoch)?
                    .ok_or_else(|| NyayaError::LedgerCorrupt {
                        path: "segments/".into(),
                        offset: 0,
                        detail: format!("no valid segment at or below epoch {epoch}"),
                    })?;
            let records = ledger.records_between(base_epoch, epoch)?;
            (base_epoch, decode_database(&payload)?, records)
        };
        debug_assert!(base_epoch <= epoch);
        // Per-predicate write epochs for the answer cache: a predicate
        // written by a replayed record carries that record's epoch (its
        // last write at or below `epoch`), everything else the segment's
        // base epoch — exactly the fingerprint the live snapshot of this
        // epoch published, for every predicate written after the segment.
        let mut pred_epochs: std::collections::HashMap<nyaya_core::Predicate, u64> =
            std::collections::HashMap::new();
        for record in &records {
            let (retracts, inserts) = decode_batch(&record.payload)?;
            for fact in &retracts {
                if database.remove(fact) {
                    pred_epochs.insert(fact.pred, record.epoch);
                }
            }
            for fact in inserts {
                let pred = fact.pred;
                if database.insert(fact) {
                    pred_epochs.insert(pred, record.epoch);
                }
            }
        }
        // The current catalog is a superset of every historical one
        // (registrations only accumulate), so it is safe for SQL over
        // any past epoch.
        let snapshot = Arc::new(Snapshot::with_epochs(
            owner,
            epoch,
            database,
            catalog.clone(),
            BuildCache::new(),
            base_epoch,
            pred_epochs,
        ));
        self.counters
            .epochs_materialized
            .fetch_add(1, Ordering::Relaxed);
        let mut cache = self
            .materialized
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if cache.len() >= MATERIALIZED_CACHE_CAP {
            // Evict the oldest epoch — as-of workloads skew recent.
            cache.pop_first();
        }
        cache.insert(epoch, Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Everything the ledger holds on disk.
    pub(crate) fn history(&self) -> Result<LedgerHistory, NyayaError> {
        Ok(self.ledger()?.history()?)
    }

    /// The data directory this ledger lives in.
    pub(crate) fn root(&self) -> &Path {
        &self.root
    }

    fn record_flush(&self, flush: &SegmentFlush) {
        record_flush_counters(&self.counters, flush);
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Closing the channel lets the compactor drain queued flushes
        // and exit; joining makes the shutdown deterministic for tests.
        drop(self.sender.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn record_flush_counters(counters: &LedgerCounters, flush: &SegmentFlush) {
    counters.segments_flushed.fetch_add(1, Ordering::Relaxed);
    counters
        .segment_bytes
        .fetch_add(flush.segment_bytes, Ordering::Relaxed);
    counters
        .last_segment_epoch
        .fetch_max(flush.epoch, Ordering::Relaxed);
}

fn run_compactor(
    receiver: Receiver<CompactorMsg>,
    ledger: Arc<Mutex<Ledger>>,
    counters: Arc<LedgerCounters>,
) {
    while let Ok(CompactorMsg::Flush(snapshot)) = receiver.recv() {
        let payload = encode_database(snapshot.database());
        // A poisoned ledger means a writer panicked mid-operation; the
        // background worker must neither panic in turn nor write through
        // possibly-torn bookkeeping. Skip the flush — the foreground path
        // reports the poisoning as a typed error.
        let Ok(mut guard) = ledger.lock() else {
            continue;
        };
        let result = guard.flush_segment(snapshot.epoch(), &payload);
        drop(guard);
        // A failed background flush is not fatal: the WAL holds every
        // batch, so only replay-length shrinking is lost. The next
        // interval (or an explicit `compact`) will retry.
        if let Ok(flush) = result {
            record_flush_counters(&counters, &flush);
        }
    }
}

impl From<LedgerError> for NyayaError {
    fn from(err: LedgerError) -> Self {
        match err {
            LedgerError::Io { path, message } => NyayaError::LedgerIo { path, message },
            LedgerError::Corrupt {
                path,
                offset,
                detail,
            } => NyayaError::LedgerCorrupt {
                path,
                offset,
                detail,
            },
            LedgerError::EpochGap { expected, found } => {
                NyayaError::LedgerEpochGap { expected, found }
            }
        }
    }
}

impl From<nyaya_sql::CodecError> for NyayaError {
    fn from(err: nyaya_sql::CodecError) -> Self {
        NyayaError::LedgerCorrupt {
            path: "<payload>".into(),
            offset: err.offset as u64,
            detail: err.detail,
        }
    }
}
