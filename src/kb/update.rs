//! Batched ABox updates and epoch-stamped snapshots.
//!
//! The TODS extension of the paper separates the *fixed* TBox-compiled
//! rewriting from an *evolving* extensional database: the ontology is
//! compiled once, while facts arrive and retire continuously. This module
//! is that split made concrete:
//!
//! - an [`UpdateBatch`] collects ground-fact insertions and retractions
//!   and is applied atomically by
//!   [`KnowledgeBase::apply`](crate::KnowledgeBase::apply);
//! - every apply publishes a new [`Snapshot`] — an immutable,
//!   epoch-stamped view of the data (indexed database, relational
//!   catalog, warm build-side cache, lazily-derived chase instance).
//!   In-flight readers keep the snapshot they started with; new readers
//!   see the new epoch. Nothing blocks on anything.
//!
//! Snapshots are cheap: the underlying tables are copy-on-write
//! ([`Database`] clones share untouched tables), and the build-side cache
//! of the previous epoch is carried over for every predicate the batch
//! did not touch. Rewritings — which depend on the TBox only — are never
//! invalidated by data updates.

use std::collections::HashMap;
use std::sync::OnceLock;

use nyaya_chase::Instance;
use nyaya_core::{Atom, Predicate};
use nyaya_sql::{BuildCache, Catalog, Database};

/// A set of ABox insertions and retractions, applied atomically.
///
/// Within one batch, **retractions are applied first, then insertions**,
/// regardless of the order the builder calls were made in — a batch
/// containing both `retract(f)` and `insert(f)` therefore always leaves
/// `f` present, whether or not `f` existed before. Because the batch is
/// atomic, no reader (and no standing query — see
/// [`KnowledgeBase::subscribe`](crate::KnowledgeBase::subscribe)) ever
/// observes the intermediate state between the two phases: a same-fact
/// retract+insert over a present fact is a net no-op for the published
/// snapshot and propagates **no** delta to subscriptions, even though
/// both operations are counted in the [`ApplyOutcome`].
///
/// Facts must be ground;
/// [`KnowledgeBase::apply`](crate::KnowledgeBase::apply) rejects the
/// whole batch (without publishing anything) if any atom contains a
/// variable.
///
/// ```
/// use nyaya::prelude::*;
/// use nyaya::UpdateBatch;
///
/// let batch = UpdateBatch::new()
///     .insert(Atom::make("has_stock", ["sap_s", "fund2"]))
///     .retract(Atom::make("has_stock", ["ibm_s", "fund1"]));
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    pub(crate) inserts: Vec<Atom>,
    pub(crate) retracts: Vec<Atom>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a fact for insertion.
    pub fn insert(mut self, fact: Atom) -> Self {
        self.inserts.push(fact);
        self
    }

    /// Queue a fact for retraction.
    pub fn retract(mut self, fact: Atom) -> Self {
        self.retracts.push(fact);
        self
    }

    /// Queue many insertions.
    pub fn insert_all(mut self, facts: impl IntoIterator<Item = Atom>) -> Self {
        self.inserts.extend(facts);
        self
    }

    /// Queue many retractions.
    pub fn retract_all(mut self, facts: impl IntoIterator<Item = Atom>) -> Self {
        self.retracts.extend(facts);
        self
    }

    /// Queued insertions, in application order.
    pub fn inserts(&self) -> &[Atom] {
        &self.inserts
    }

    /// Queued retractions, in application order.
    pub fn retracts(&self) -> &[Atom] {
        &self.retracts
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.retracts.len()
    }

    /// Does the batch queue no operations at all?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }
}

/// What one [`KnowledgeBase::apply`](crate::KnowledgeBase::apply) did.
///
/// The `inserted`/`retracted` counters count *effective* operations in
/// application order (retractions first, then insertions; see
/// [`UpdateBatch`]): a retraction counts iff the fact was present when
/// the retraction phase reached it, an insertion counts iff the fact was
/// absent when the insertion phase reached it. A same-fact
/// retract+insert over a present fact therefore reports
/// `retracted: 1, inserted: 1` even though the published snapshot is
/// unchanged for that fact; over an absent fact it reports
/// `retracted: 0, inserted: 1`. Duplicate operations within one phase
/// count once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The epoch the new snapshot was published under.
    pub epoch: u64,
    /// Facts actually inserted (duplicates of existing facts don't count).
    pub inserted: usize,
    /// Facts actually retracted (absent facts don't count).
    pub retracted: usize,
    /// Build-cache entries evicted because their predicate was written.
    pub builds_invalidated: u64,
    /// Build-cache entries carried over into the new snapshot's cache.
    pub builds_carried_over: usize,
}

/// An immutable, epoch-stamped view of the knowledge base's data.
///
/// Obtained from [`KnowledgeBase::snapshot`](crate::KnowledgeBase::snapshot)
/// (behind an [`Arc`](std::sync::Arc)) and pinned by executors for the
/// duration of one query: every read within an execution sees the same
/// epoch, regardless of concurrent
/// [`apply`](crate::KnowledgeBase::apply) calls. Holding a snapshot never
/// blocks writers — it only keeps this epoch's (largely COW-shared)
/// tables alive.
pub struct Snapshot {
    /// Identity of the [`KnowledgeBase`](crate::KnowledgeBase) that
    /// published this snapshot — checked by
    /// [`execute_at`](crate::KnowledgeBase::execute_at) so a snapshot
    /// cannot silently serve a *different* base's rewritings over this
    /// base's data.
    pub(crate) owner: u64,
    pub(crate) epoch: u64,
    pub(crate) database: Database,
    pub(crate) catalog: Catalog,
    pub(crate) build_cache: BuildCache,
    /// Per-predicate write epochs, the answer cache's exactness witness:
    /// `pred_epochs[p] = e` (default [`base_epoch`](Self::pred_epoch))
    /// guarantees `p`'s table in this snapshot is bit-identical to `p`'s
    /// table at epoch `e` — `p` has not been written since. Two
    /// snapshots agreeing on these epochs for every predicate a query
    /// reads therefore yield *identical* answers, which is what lets a
    /// cached answer be served without any staleness risk.
    pub(crate) base_epoch: u64,
    pub(crate) pred_epochs: HashMap<Predicate, u64>,
    /// The chase-facing view of the data, derived on first use: pure
    /// rewriting workloads never pay for it.
    chase_instance: OnceLock<Instance>,
}

impl Snapshot {
    pub(crate) fn new(
        owner: u64,
        epoch: u64,
        database: Database,
        catalog: Catalog,
        cache: BuildCache,
    ) -> Self {
        // A snapshot built whole (build time, ledger recovery) pins every
        // predicate to its own epoch: trivially exact, maximally
        // conservative for cache matching (false misses only).
        Snapshot::with_epochs(
            owner,
            epoch,
            database,
            catalog,
            cache,
            epoch,
            HashMap::new(),
        )
    }

    /// Construct with explicit per-predicate write epochs (successor
    /// snapshots carry their predecessor's map forward; materialized
    /// historical snapshots derive theirs from the replayed log).
    pub(crate) fn with_epochs(
        owner: u64,
        epoch: u64,
        database: Database,
        catalog: Catalog,
        cache: BuildCache,
        base_epoch: u64,
        pred_epochs: HashMap<Predicate, u64>,
    ) -> Self {
        Snapshot {
            owner,
            epoch,
            database,
            catalog,
            build_cache: cache,
            base_epoch,
            pred_epochs,
            chase_instance: OnceLock::new(),
        }
    }

    /// The epoch `pred`'s table was last written at — this snapshot's
    /// content for `pred` equals its content at exactly that epoch.
    /// Predicates never written since the snapshot's base state report
    /// the base epoch.
    pub fn pred_epoch(&self, pred: Predicate) -> u64 {
        self.pred_epochs
            .get(&pred)
            .copied()
            .unwrap_or(self.base_epoch)
    }

    /// The answer-cache fingerprint of this snapshot over a query's
    /// touched predicates (parallel to `preds`, which callers keep
    /// sorted): equal fingerprints ⇒ equal table contents for every
    /// touched predicate ⇒ provably equal answers.
    pub(crate) fn fingerprint(&self, preds: &[Predicate]) -> Vec<u64> {
        preds.iter().map(|p| self.pred_epoch(*p)).collect()
    }

    /// The epoch this snapshot was published under. Epoch 0 is the
    /// [`build`](crate::KnowledgeBaseBuilder::build)-time state; every
    /// applied batch increments it by one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The indexed relational database of this epoch.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The relational catalog of this epoch (extended whenever an update
    /// introduces a predicate no TGD, query or earlier fact mentioned).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// This epoch's persistent build-side cache. Patterns hashed by any
    /// execution over this snapshot are reused by all later ones; a new
    /// epoch starts from this cache minus the written predicates.
    pub fn build_cache(&self) -> &BuildCache {
        &self.build_cache
    }

    /// The facts of this epoch as a chase [`Instance`], derived (in
    /// deterministic order) on first use and memoized.
    pub fn instance(&self) -> &Instance {
        self.chase_instance
            .get_or_init(|| Instance::from_atoms(self.facts()))
    }

    /// The facts of this epoch, in deterministic (sorted) order.
    pub fn facts(&self) -> Vec<Atom> {
        let mut facts: Vec<Atom> = self.database.facts().collect();
        facts.sort_unstable();
        facts
    }

    /// Number of facts in this epoch.
    pub fn len(&self) -> usize {
        self.database.len()
    }

    /// Does this epoch hold no facts?
    pub fn is_empty(&self) -> bool {
        self.database.is_empty()
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("facts", &self.database.len())
            .field("cached_builds", &self.build_cache.len())
            .finish()
    }
}
