//! The knowledge-base side of the serving layer: [`KbBackend`]
//! implements `nyaya_serve::Backend` over a shared [`KnowledgeBase`].
//!
//! This is the prepared-statement handshake's server half. `prepare`
//! compiles a rewriting once (through the kb's rewriting cache) and
//! hands back a numeric handle; `answer` executes the handle against a
//! snapshot pinned for the whole request, so every answer names the
//! exact epoch it reflects. The rewriting is TBox-only — no `apply`
//! batch ever invalidates a handle — which is the compile-once /
//! execute-many split the serving layer exists to exploit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use nyaya_serve::{AnswerSet, ApplySummary, Backend};

use crate::kb::{Answers, KnowledgeBase, NyayaError, PreparedQuery, Snapshot, UpdateBatch};

/// `nyaya_serve::Backend` over a shared [`KnowledgeBase`].
pub struct KbBackend {
    kb: Arc<KnowledgeBase>,
    /// Prepared handles. The lock is advisory (the map only memoizes
    /// handles), so poisoning recovers.
    handles: RwLock<HashMap<u64, PreparedQuery>>,
    next_handle: AtomicU64,
}

impl KbBackend {
    /// Wrap `kb` for serving.
    pub fn new(kb: Arc<KnowledgeBase>) -> Self {
        KbBackend {
            kb,
            handles: RwLock::new(HashMap::new()),
            next_handle: AtomicU64::new(1),
        }
    }

    /// The knowledge base behind this backend.
    pub fn kb(&self) -> &Arc<KnowledgeBase> {
        &self.kb
    }

    /// Pin the snapshot a request executes against: the live one, or —
    /// with `AT <epoch>` — the historical epoch (time travel requires a
    /// durable ledger unless the epoch is still the published one).
    fn pin(&self, at: Option<u64>) -> Result<Arc<Snapshot>, NyayaError> {
        let live = self.kb.snapshot();
        match at {
            None => Ok(live),
            Some(epoch) if epoch == live.epoch() => Ok(live),
            Some(epoch) => self.kb.snapshot_at(epoch),
        }
    }

    fn render(snapshot: &Snapshot, answers: &Answers) -> AnswerSet {
        AnswerSet {
            epoch: snapshot.epoch(),
            backend: answers.backend.to_owned(),
            complete: answers.complete,
            tuples: answers
                .tuples
                .iter()
                .map(|tuple| tuple.iter().map(ToString::to_string).collect())
                .collect(),
        }
    }
}

impl Backend for KbBackend {
    fn prepare(&self, query: &str) -> Result<u64, String> {
        let prepared = self.kb.prepare_text(query).map_err(|e| e.to_string())?;
        // Compile eagerly so the handshake pays the rewriting cost and
        // every later `answer` is pure database work.
        self.kb.rewriting(&prepared).map_err(|e| e.to_string())?;
        let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.handles
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(handle, prepared);
        Ok(handle)
    }

    fn answer(&self, handle: u64, at: Option<u64>) -> Result<AnswerSet, String> {
        let handles = self.handles.read().unwrap_or_else(PoisonError::into_inner);
        let prepared = handles
            .get(&handle)
            .ok_or_else(|| format!("no such handle: {handle}"))?;
        let snapshot = self.pin(at).map_err(|e| e.to_string())?;
        let answers = self
            .kb
            .execute_at(prepared, &snapshot)
            .map_err(|e| e.to_string())?;
        Ok(Self::render(&snapshot, &answers))
    }

    fn query(&self, query: &str, at: Option<u64>) -> Result<AnswerSet, String> {
        let prepared = self.kb.prepare_text(query).map_err(|e| e.to_string())?;
        let snapshot = self.pin(at).map_err(|e| e.to_string())?;
        let answers = self
            .kb
            .execute_at(&prepared, &snapshot)
            .map_err(|e| e.to_string())?;
        Ok(Self::render(&snapshot, &answers))
    }

    fn apply(&self, retracts: &[String], inserts: &[String]) -> Result<ApplySummary, String> {
        let mut batch = UpdateBatch::new();
        for fact in retracts {
            batch = batch.retract(parse_fact(fact)?);
        }
        for fact in inserts {
            batch = batch.insert(parse_fact(fact)?);
        }
        let outcome = self.kb.apply(batch).map_err(|e| e.to_string())?;
        Ok(ApplySummary {
            epoch: outcome.epoch,
            inserted: outcome.inserted as u64,
            retracted: outcome.retracted as u64,
        })
    }

    fn stats_json(&self) -> String {
        self.kb.stats().to_json()
    }

    fn explain(&self, handle: u64) -> Result<String, String> {
        let handles = self.handles.read().unwrap_or_else(PoisonError::into_inner);
        let prepared = handles
            .get(&handle)
            .ok_or_else(|| format!("no such handle: {handle}"))?;
        self.kb
            .explain(prepared, &nyaya_core::SelectOptions::default())
            .map_err(|e| e.to_string())
    }

    fn record_request(&self) {
        self.kb.record_net_request();
    }

    fn flush(&self) {
        // Graceful shutdown's durability hook. Memory-only bases have
        // nothing to flush (`NotDurable`), and a failed compact must not
        // turn a clean drain into a panic — the WAL already holds every
        // applied batch.
        let _ = self.kb.compact();
    }
}

/// Parse one ground fact like `p(a, b)` (trailing `.` optional) — shared
/// by the `APPLY` verb here and the CLI's `watch` stdin protocol.
pub fn parse_fact(text: &str) -> Result<nyaya_core::Atom, String> {
    let mut src = text.trim().to_owned();
    if !src.ends_with('.') {
        src.push('.');
    }
    let program =
        nyaya_parser::parse_program(&src).map_err(|e| format!("cannot parse `{text}`: {e}"))?;
    match program.facts.as_slice() {
        [fact] => Ok(fact.clone()),
        _ => Err(format!("`{text}` is not a single ground fact")),
    }
}
