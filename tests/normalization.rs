//! Semantic validation of the Lemma 1/2 normalization: for every database,
//! the raw and the normalized ontology entail exactly the same Boolean CQs
//! over the original schema (auxiliary predicates excluded).

use nyaya::chase::{chase, entails_bcq, ChaseConfig, Instance};
use nyaya::core::{normalize, Atom, ConjunctiveQuery};
use nyaya::ontologies::{load, running_example, BenchmarkId};
use nyaya::parser::parse_query;

fn config() -> ChaseConfig {
    ChaseConfig {
        max_rounds: 10,
        max_atoms: 100_000,
        ..Default::default()
    }
}

#[test]
fn running_example_normalization_preserves_entailment() {
    let ontology = running_example::ontology();
    let norm = normalize(&ontology.tgds);
    assert!(norm.tgds.len() > ontology.tgds.len());

    let db = Instance::from_atoms(running_example::database_facts());
    let raw_chase = chase(&db, &ontology.tgds, config());
    let norm_chase = chase(&db, &norm.tgds, config());
    assert!(raw_chase.saturated && norm_chase.saturated);

    let queries = [
        "q() :- fin_ins(A).",
        "q() :- fin_idx(nasdaq, T, M).",
        "q() :- has_stock(S, C), stock_portf(C, S, Q).",
        "q() :- company(ibm, C, S), legal_person(ibm).",
        "q() :- stock_portf(V, ibm_s, W).",
        "q() :- fin_idx(dax, T, M).",
    ];
    for src in queries {
        let q = parse_query(src).unwrap();
        assert_eq!(
            entails_bcq(&raw_chase.instance, &q),
            entails_bcq(&norm_chase.instance, &q),
            "normalization changed the answer to {src}"
        );
    }
}

#[test]
fn path5_normalization_preserves_entailment() {
    let bench = load(BenchmarkId::P5);
    // a3(v) entails a 3-edge chain from v in both the raw (multi-head) and
    // the normalized ontology.
    let db = Instance::from_atoms([Atom::make("a3", ["v"])]);
    let raw = chase(&db, &bench.raw.tgds, config());
    let norm = chase(&db, &bench.normalized, config());
    assert!(raw.saturated && norm.saturated);

    for n in 1..=3 {
        let body = (0..n)
            .map(|i| {
                Atom::make(
                    "edge",
                    [format!("B{i}").as_str(), format!("B{}", i + 1).as_str()],
                )
            })
            .map(|mut a| {
                // make B0 the constant v
                if let nyaya::core::Term::Var(v) = &a.args[0] {
                    if v.name() == "B0" {
                        a.args[0] = nyaya::core::Term::constant("v");
                    }
                }
                a
            })
            .collect::<Vec<_>>();
        let q = ConjunctiveQuery::boolean(body);
        assert!(
            entails_bcq(&raw.instance, &q),
            "raw P5 must entail the {n}-chain"
        );
        assert!(
            entails_bcq(&norm.instance, &q),
            "normalized P5 must entail the {n}-chain"
        );
    }
    // …but not a 4-chain from a level-3 vertex.
    let q4 = parse_query("q() :- edge(v, B1), edge(B1, B2), edge(B2, B3), edge(B3, B4).").unwrap();
    let q4 = ConjunctiveQuery::boolean(q4.body);
    assert!(!entails_bcq(&raw.instance, &q4));
    assert!(!entails_bcq(&norm.instance, &q4));
}

#[test]
fn aux_predicates_never_survive_into_hidden_rewritings() {
    for id in [BenchmarkId::U, BenchmarkId::A, BenchmarkId::P5] {
        let bench = load(id);
        let mut opts = nyaya::rewrite::RewriteOptions::nyaya();
        opts.hidden_predicates = bench.hidden_predicates.clone();
        let r = nyaya::rewrite::tgd_rewrite(&bench.queries[0].1, &bench.normalized, &[], &opts)
            .unwrap();
        for cq in r.ucq.iter() {
            for atom in &cq.body {
                assert!(
                    !bench.aux_predicates.contains(&atom.pred),
                    "{id}: auxiliary predicate {:?} leaked into the rewriting",
                    atom.pred
                );
            }
        }
    }
}
