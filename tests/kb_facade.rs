//! The `KnowledgeBase` facade contract: compile once, execute many.
//!
//! Pins the satellite guarantees of the facade: the prepared-query cache
//! really skips rewriting work, the chase fallback is auto-selected for
//! non-FO-rewritable ontologies, backends agree on answers, and custom
//! executors plug in through the `Executor` trait.

use std::sync::atomic::{AtomicUsize, Ordering};

use nyaya::prelude::*;
use nyaya::{Answers, InMemoryExecutor};

const LINEAR_PROGRAM: &str = "
    sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
    sigma6: has_stock(X, Y) -> stock_portf(Y, X, Z).
    has_stock(ibm_s, fund1).
    stock_portf(fund2, sap_s, q10).
    q(A, B) :- stock_portf(B, A, D).
";

/// Transitivity: not linear, not sticky, not weakly acyclic — outside
/// every FO-rewritable class the classifier knows.
const TRANSITIVE_PROGRAM: &str = "
    tr: e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b). e(b, c). e(c, d).
    q(A, B) :- e(A, B).
";

#[test]
fn same_query_twice_rewrites_once_and_answers_identically() {
    let kb = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let query = kb.queries()[0].clone();

    let first = kb.prepare(&query).unwrap();
    let a1 = kb.execute(&first).unwrap();
    let after_first = kb.stats();
    assert_eq!(after_first.cache_misses, 1, "first execution compiles");
    assert_eq!(after_first.cache_hits, 0);

    // Same query, fresh prepare: the compile must be skipped entirely.
    let second = kb.prepare(&query).unwrap();
    let a2 = kb.execute(&second).unwrap();
    let after_second = kb.stats();
    assert_eq!(a1, a2, "answers identical across executions");
    assert_eq!(
        after_second.cache_misses, 1,
        "second execution performs zero rewriting work"
    );
    assert_eq!(after_second.cache_hits, 1, "…because the cache served it");
    assert_eq!(after_second.cached_rewritings, 1);
    assert_eq!(after_second.prepared, 2);
    assert_eq!(after_second.executions, 2);

    // And the identical-rewriting guarantee is structural, not just
    // statistical: both handles resolve to the same compiled UCQ.
    assert_eq!(
        kb.rewriting(&first).unwrap().ucq.to_string(),
        kb.rewriting(&second).unwrap().ucq.to_string()
    );
}

#[test]
fn alpha_equivalent_queries_share_one_cache_slot() {
    let kb = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let q1 = kb.prepare_text("q(A, B) :- stock_portf(B, A, D).").unwrap();
    let q2 = kb.prepare_text("q(U, V) :- stock_portf(V, U, W).").unwrap();
    assert_eq!(q1.key(), q2.key(), "canonical keys agree modulo renaming");
    let a1 = kb.execute(&q1).unwrap();
    let a2 = kb.execute(&q2).unwrap();
    assert_eq!(a1.tuples, a2.tuples);
    assert_eq!(kb.stats().cache_misses, 1);
    assert_eq!(kb.stats().cached_rewritings, 1);
}

#[test]
fn distinct_queries_and_algorithms_get_distinct_slots() {
    let kb = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let query = kb.queries()[0].clone();
    for algorithm in [
        Algorithm::Nyaya,
        Algorithm::NyayaStar,
        Algorithm::QuOnto,
        Algorithm::Requiem,
    ] {
        let prepared = kb.prepare_with(&query, algorithm).unwrap();
        let answers = kb.execute(&prepared).unwrap();
        assert_eq!(answers.tuples.len(), 2, "{algorithm:?}");
    }
    let stats = kb.stats();
    assert_eq!(stats.cache_misses, 4, "one compile per engine");
    assert_eq!(stats.cached_rewritings, 4);
}

#[test]
fn chase_fallback_is_auto_selected_for_non_fo_rewritable_ontologies() {
    let kb = KnowledgeBase::from_program_text(TRANSITIVE_PROGRAM).unwrap();
    assert!(!kb.classification().fo_rewritable());
    assert_eq!(kb.executor_kind(), ExecutorKind::Chase);

    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let answers = kb.execute(&prepared).unwrap();
    assert_eq!(answers.backend, "chase");
    assert!(answers.complete);
    // Transitive closure of a → b → c → d: 6 pairs.
    assert_eq!(answers.tuples.len(), 6);
    // The chase backend never touched the rewriting cache.
    assert_eq!(kb.stats().cache_misses, 0);
    assert_eq!(kb.stats().cached_rewritings, 0);
}

#[test]
fn manual_executor_override_beats_auto_selection() {
    // Force the chase backend onto an FO-rewritable ontology.
    let kb = KnowledgeBase::builder()
        .program_text(LINEAR_PROGRAM)
        .unwrap()
        .executor(ExecutorKind::Chase)
        .build()
        .unwrap();
    assert!(kb.classification().fo_rewritable());
    assert_eq!(kb.executor_kind(), ExecutorKind::Chase);
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let answers = kb.execute(&prepared).unwrap();
    assert_eq!(answers.backend, "chase");
    assert_eq!(answers.tuples.len(), 2);
}

#[test]
fn backends_agree_on_the_round_trip() {
    let kb = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let fast = kb.execute_on(&prepared, ExecutorKind::InMemory).unwrap();
    let oracle = kb.execute_on(&prepared, ExecutorKind::Chase).unwrap();
    assert!(oracle.complete);
    assert_eq!(fast.tuples, oracle.tuples, "Theorem 10: backends agree");
    let sql = kb.execute_on(&prepared, ExecutorKind::Sql).unwrap();
    assert!(sql.sql.unwrap().contains("UNION"));
}

#[test]
fn custom_executors_plug_in_through_the_trait() {
    /// A tracing wrapper around the in-memory backend.
    struct Traced<'a> {
        calls: &'a AtomicUsize,
    }
    impl Executor for Traced<'_> {
        fn name(&self) -> &'static str {
            "traced"
        }
        fn execute(
            &self,
            kb: &KnowledgeBase,
            query: &PreparedQuery,
        ) -> Result<Answers, NyayaError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let mut answers = InMemoryExecutor::default().execute(kb, query)?;
            answers.backend = self.name();
            Ok(answers)
        }
    }

    let kb = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let calls = AtomicUsize::new(0);
    let traced = Traced { calls: &calls };
    let answers = kb.execute_with(&prepared, &traced).unwrap();
    assert_eq!(answers.backend, "traced");
    assert_eq!(answers.tuples.len(), 2);
    assert_eq!(calls.load(Ordering::Relaxed), 1);
    assert_eq!(kb.stats().executions, 1, "custom executors are counted too");
}

#[test]
fn file_front_end_dispatches_on_extension() {
    let dir = std::env::temp_dir();
    let dlp = dir.join(format!("kb_facade_{}.dlp", std::process::id()));
    std::fs::write(&dlp, LINEAR_PROGRAM).unwrap();
    let dl = dir.join(format!("kb_facade_{}.dl", std::process::id()));
    std::fs::write(&dl, "Person [= LegalAgent\nexists hasStock [= Person\n").unwrap();

    let kb = KnowledgeBase::from_file(&dlp).unwrap();
    assert_eq!(kb.queries().len(), 1);
    assert_eq!(kb.snapshot().len(), 2);

    let kb = KnowledgeBase::from_file(&dl).unwrap();
    assert_eq!(kb.ontology().tgds.len(), 2);
    assert!(kb.classification().linear);

    std::fs::remove_file(&dlp).ok();
    std::fs::remove_file(&dl).ok();

    match KnowledgeBase::from_file(dir.join("kb_facade_missing.dlp")) {
        Err(NyayaError::Io { .. }) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn parse_failures_are_typed_not_stringly() {
    match KnowledgeBase::builder().program_text("p(X ->") {
        Err(NyayaError::Parse { front_end, message }) => {
            assert_eq!(front_end, "datalog\u{b1}");
            assert!(message.contains(':'), "carries line:col — {message}");
        }
        other => panic!("expected Parse error, got {:?}", other.err()),
    }
}

#[test]
fn consistency_violations_surface_as_typed_errors() {
    let kb = KnowledgeBase::from_program_text(
        "
        delta: a(X), b(X) -> false.
        a(k). b(k).
        q(X) :- a(X).
        ",
    )
    .unwrap();
    match kb.check_consistency() {
        Err(NyayaError::ConstraintViolation { constraint }) => {
            assert!(constraint.contains("false"), "{constraint}");
        }
        other => panic!("expected NC violation, got {other:?}"),
    }

    let kb = KnowledgeBase::from_program_text(
        "
        key(r/2) = {1}.
        r(a, b). r(a, c).
        q(X) :- r(X, Y).
        ",
    )
    .unwrap();
    assert!(matches!(
        kb.check_consistency(),
        Err(NyayaError::KeyViolation { .. })
    ));
}

#[test]
fn exact_budget_fixpoint_completes_without_exhaustion() {
    // The perfect rewriting of the bundled query has exactly 2 CQs. A
    // budget of exactly 2 must let it complete; only a budget that forces
    // a genuinely new query to be dropped is exhaustion.
    let kb = KnowledgeBase::builder()
        .program_text(LINEAR_PROGRAM)
        .unwrap()
        .max_queries(2)
        .build()
        .unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let answers = kb.execute(&prepared).unwrap();
    assert_eq!(answers.tuples.len(), 2);
    assert_eq!(kb.rewriting(&prepared).unwrap().ucq.size(), 2);

    // One below the fixpoint: the second CQ is refused → typed error.
    let tight = KnowledgeBase::builder()
        .program_text(LINEAR_PROGRAM)
        .unwrap()
        .max_queries(1)
        .build()
        .unwrap();
    let prepared = tight.prepare(&tight.queries()[0].clone()).unwrap();
    assert!(matches!(
        tight.execute(&prepared),
        Err(NyayaError::BudgetExhausted { budget: 1, .. })
    ));
}

#[test]
fn prepared_query_executed_on_another_kb_uses_that_kbs_ontology() {
    // A handle prepared (and compiled) on kb1 must not leak kb1's
    // rewriting when executed against kb2, whose ontology differs.
    let kb1 = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let kb2 = KnowledgeBase::builder()
        .program_text(
            // No σ6: has_stock does NOT imply stock_portf here.
            "
            sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
            has_stock(ibm_s, fund1).
            stock_portf(fund2, sap_s, q10).
            ",
        )
        .unwrap()
        .build()
        .unwrap();

    let prepared = kb1
        .prepare_text("q(A, B) :- stock_portf(B, A, D).")
        .unwrap();
    // Compile + execute under kb1: σ6 turns the has_stock fact into an answer.
    assert_eq!(kb1.execute(&prepared).unwrap().tuples.len(), 2);
    // The same handle on kb2 must recompile under kb2's Σ: only the
    // literal stock_portf fact answers.
    let on_kb2 = kb2.execute(&prepared).unwrap();
    assert_eq!(
        on_kb2.tuples.len(),
        1,
        "kb1's rewriting must not leak into kb2"
    );
    assert_eq!(
        kb2.stats().cache_misses,
        1,
        "kb2 compiled its own rewriting"
    );
    // And kb1's inline fast path still serves kb1's own rewriting.
    assert_eq!(kb1.execute(&prepared).unwrap().tuples.len(), 2);
}

#[test]
fn parallel_and_minimized_compiles_answer_identically_and_report_stats() {
    // The compile-time knobs must never change answers: same program,
    // one default knowledge base, one with parallel workers + rewriting
    // minimization.
    let plain = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let tuned = KnowledgeBase::builder()
        .program_text(LINEAR_PROGRAM)
        .unwrap()
        .rewrite_workers(4)
        .minimize_rewritings(true)
        .build()
        .unwrap();
    let query = plain.queries()[0].clone();
    let a = plain.execute(&plain.prepare(&query).unwrap()).unwrap();
    let b = tuned.execute(&tuned.prepare(&query).unwrap()).unwrap();
    assert_eq!(a.tuples, b.tuples);

    // The compile-time counters surface in KbStats.
    let stats = tuned.stats();
    assert_eq!(stats.cache_misses, 1);
    assert!(stats.rewrite_explored > 0, "explored counter must flow up");
    assert_eq!(stats.rewrites_parallel, 1, "the compile ran parallel");
    // A cache hit adds no compile time.
    let before = tuned.stats().rewrite_micros;
    tuned.execute(&tuned.prepare(&query).unwrap()).unwrap();
    assert_eq!(tuned.stats().rewrite_micros, before);
}

#[test]
fn knowledge_base_is_shareable_across_threads() {
    // The serving scenario: one compiled knowledge base, many query
    // threads. The cache must stay coherent (one compile total).
    let kb = std::sync::Arc::new(KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap());
    let query = kb.queries()[0].clone();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let kb = std::sync::Arc::clone(&kb);
            let query = query.clone();
            std::thread::spawn(move || {
                let prepared = kb.prepare(&query).unwrap();
                kb.execute(&prepared).unwrap().tuples.len()
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), 2);
    }
    let stats = kb.stats();
    assert_eq!(stats.executions, 8);
    assert_eq!(stats.cached_rewritings, 1);
    assert!(stats.cache_misses >= 1, "at least one thread compiled");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        8,
        "every execution either hit or compiled"
    );
}

#[test]
fn memory_accounting_moves_with_inserts_and_retracts() {
    use nyaya::UpdateBatch;

    let kb = KnowledgeBase::from_program_text(LINEAR_PROGRAM).unwrap();
    let before = kb.stats();
    assert!(before.fact_bytes > 0, "{before:?}");
    assert!(before.index_bytes > 0, "{before:?}");
    // The per-table breakdown covers every live predicate and sums to
    // the totals.
    assert_eq!(
        before.tables.iter().map(|t| t.fact_bytes).sum::<u64>(),
        before.fact_bytes
    );
    assert_eq!(
        before.tables.iter().map(|t| t.index_bytes).sum::<u64>(),
        before.index_bytes
    );
    let names: Vec<&str> = before.tables.iter().map(|t| t.predicate.as_str()).collect();
    assert!(names.contains(&"has_stock"), "{names:?}");
    assert!(names.contains(&"stock_portf"), "{names:?}");

    // Inserting a batch of fresh facts grows the resident fact bytes.
    let mut batch = UpdateBatch::new();
    for i in 0..512 {
        batch = batch.insert(Atom::make(
            "has_stock",
            [format!("stk{i}").as_str(), "fund9"],
        ));
    }
    kb.apply(batch).unwrap();
    let grown = kb.stats();
    assert!(
        grown.fact_bytes > before.fact_bytes,
        "insert must grow fact bytes: {} -> {}",
        before.fact_bytes,
        grown.fact_bytes
    );
    assert!(
        grown.index_bytes > before.index_bytes,
        "insert must grow index bytes: {} -> {}",
        before.index_bytes,
        grown.index_bytes
    );
    let grown_table = grown
        .tables
        .iter()
        .find(|t| t.predicate == "has_stock")
        .unwrap();
    assert_eq!(grown_table.rows, 513, "512 inserted + 1 seed fact");

    // Retracting every inserted fact drops the table's accounted rows;
    // bytes shrink once the retractions actually land (capacity-based
    // accounting never reports freed rows as still resident after the
    // table itself is rebuilt by a fresh snapshot rebuild).
    let mut retract = UpdateBatch::new();
    for i in 0..512 {
        retract = retract.retract(Atom::make(
            "has_stock",
            [format!("stk{i}").as_str(), "fund9"],
        ));
    }
    kb.apply(retract).unwrap();
    let shrunk = kb.stats();
    let shrunk_table = shrunk
        .tables
        .iter()
        .find(|t| t.predicate == "has_stock")
        .unwrap();
    assert_eq!(shrunk_table.rows, 1, "only the seed fact remains");
    assert!(
        shrunk.fact_bytes <= grown.fact_bytes,
        "retract must not grow fact bytes: {} -> {}",
        grown.fact_bytes,
        shrunk.fact_bytes
    );
    // The JSON document carries the new accounting for both the CLI and
    // the serving layer's stats endpoint.
    let json = shrunk.to_json();
    assert!(json.contains("\"fact_bytes\":"), "{json}");
    assert!(json.contains("\"index_bytes\":"), "{json}");
    assert!(json.contains("\"tables\":[{\"predicate\":"), "{json}");
    assert!(json.contains("\"morsel_tasks\":"), "{json}");
}
