//! Plan-shape regression: the `--explain` text for the benchmark suites
//! is pinned, so a cost-model change that flips a chosen plan (join
//! order, hash→merge, ucq→program routing) shows up as a visible diff
//! in this file instead of a silent performance cliff.
//!
//! Everything runs inside ONE `#[test]` over a deterministic,
//! name-ordered ABox: plan text only mentions predicate/variable names
//! (never interner indices), and single-threaded construction keeps the
//! estimates byte-stable across runs and hosts.

use std::fmt::Write as _;

use nyaya::core::{Predicate, SelectOptions};
use nyaya::ontologies::{load, Benchmark, BenchmarkId};
use nyaya::{KnowledgeBase, UpdateBatch};

/// Deterministic ABox: base predicates in *name* order, 24 facts each
/// over a 12-individual domain — small enough that every suite explains
/// in debug mode, skewed enough that estimates differ per column.
fn populate(kb: &KnowledgeBase, bench: &Benchmark) {
    let mut preds: Vec<Predicate> = bench
        .raw
        .predicates()
        .into_iter()
        .filter(|p| !bench.aux_predicates.contains(p))
        .collect();
    preds.sort_by_key(|p| (p.to_string(), p.arity));
    let mut batch = UpdateBatch::new();
    for (pi, pred) in preds.iter().enumerate() {
        for i in 0..24usize {
            let args: Vec<nyaya::core::Term> = (0..pred.arity)
                .map(|a| {
                    nyaya::core::Term::constant(&format!("ind{}", (pi * 5 + i * (a + 3) + a) % 12))
                })
                .collect();
            batch = batch.insert(nyaya::core::Atom::new(*pred, args));
        }
    }
    kb.apply(batch).unwrap();
}

fn kb_for(bench: &Benchmark) -> KnowledgeBase {
    let kb = KnowledgeBase::builder()
        .ontology(bench.raw.clone())
        .show_aux(bench.hidden_predicates.is_empty())
        .build()
        .expect("benchmark builds");
    populate(&kb, bench);
    kb
}

fn explain(kb: &KnowledgeBase, bench: &Benchmark, qi: usize) -> String {
    let (name, query) = &bench.queries[qi];
    let prepared = kb.prepare(query).unwrap();
    let text = kb.explain(&prepared, &SelectOptions::default()).unwrap();
    format!("== {:?} {} ==\n{}", bench.id, name, text)
}

#[test]
fn explain_text_is_pinned_for_the_suite() {
    let mut got = String::new();
    // q1 of every suite: the cross-suite sweep.
    for id in BenchmarkId::ALL {
        let bench = load(id);
        let kb = kb_for(&bench);
        let _ = write!(got, "{}", explain(&kb, &bench, 0));
    }
    // The three named deeper cells: a wide union (U q5) and the
    // existential-heavy X-variant joins (P5X q2/q3).
    for (id, qis) in [(BenchmarkId::U, &[4][..]), (BenchmarkId::P5X, &[1, 2][..])] {
        let bench = load(id);
        let kb = kb_for(&bench);
        for &qi in qis {
            let _ = write!(got, "{}", explain(&kb, &bench, qi));
        }
    }
    let expected = include_str!("plan_shapes.golden");
    if got != expected {
        // Drop the full actual text next to the build so regenerating the
        // golden is `cp target/plan_shapes.actual tests/plan_shapes.golden`,
        // then fail with the first diverging line.
        let _ = std::fs::write("target/plan_shapes.actual", &got);
        println!("=== ACTUAL ===\n{got}\n=== END ===");
        for (ln, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
            assert_eq!(g, e, "first divergence at line {}", ln + 1);
        }
        assert_eq!(
            got.lines().count(),
            expected.lines().count(),
            "explain text grew or shrank"
        );
        unreachable!("texts differ but no line diverged?");
    }
}
