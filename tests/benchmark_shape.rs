//! Regression tests pinning the reproduced Table 1 cells.
//!
//! The V and P5 NY columns and the S/U NY⋆ columns match the paper
//! *exactly* (see EXPERIMENTS.md); these tests keep it that way. The
//! heaviest cells (P5 q4/q5, S NY q3–q5) are exercised by the release-mode
//! harness (`cargo run --release -p nyaya-bench --bin table1`) instead of
//! debug-mode `cargo test`.

use nyaya::ontologies::{load, Benchmark, BenchmarkId};
use nyaya::{Algorithm, KnowledgeBase};

/// Build a knowledge base over a benchmark. X-variants keep the auxiliary
/// predicates in the schema — expressed as `show_aux` on the builder.
fn kb_for(bench: &Benchmark) -> KnowledgeBase {
    KnowledgeBase::builder()
        .ontology(bench.raw.clone())
        .show_aux(bench.hidden_predicates.is_empty())
        .build()
        .expect("benchmark builds")
}

fn metrics(
    kb: &KnowledgeBase,
    bench: &Benchmark,
    qi: usize,
    algorithm: Algorithm,
) -> (usize, usize, usize) {
    let prepared = kb.prepare_with(&bench.queries[qi].1, algorithm).unwrap();
    let r = kb.rewriting(&prepared).unwrap();
    (r.ucq.size(), r.ucq.length(), r.ucq.width())
}

fn ny_metrics(id: BenchmarkId, qi: usize, star: bool) -> (usize, usize, usize) {
    let bench = load(id);
    let kb = kb_for(&bench);
    let algorithm = if star {
        Algorithm::NyayaStar
    } else {
        Algorithm::Nyaya
    };
    metrics(&kb, &bench, qi, algorithm)
}

#[test]
fn vicodi_ny_matches_table1_exactly() {
    // Table 1, V rows, NY column: size / length / width.
    let expected = [
        (15, 15, 0),
        (10, 30, 30),
        (72, 216, 144),
        (185, 555, 370),
        (30, 210, 270),
    ];
    for (qi, want) in expected.iter().enumerate() {
        let got = ny_metrics(BenchmarkId::V, qi, false);
        assert_eq!(got, *want, "V q{} NY", qi + 1);
        // V has no existential axioms ⇒ elimination is a no-op (NY = NY⋆).
        let star = ny_metrics(BenchmarkId::V, qi, true);
        assert_eq!(star, *want, "V q{} NY⋆", qi + 1);
    }
}

#[test]
fn path5_ny_matches_table1_exactly() {
    // Table 1, P5 rows, NY column (q1–q3 here; q4/q5 in the release
    // harness — they explore the full P5X space).
    let expected = [(6, 6, 0), (10, 16, 6), (13, 29, 16)];
    for (qi, want) in expected.iter().enumerate() {
        let got = ny_metrics(BenchmarkId::P5, qi, false);
        assert_eq!(got, *want, "P5 q{} NY", qi + 1);
        // Elimination finds nothing to remove in P5 chains.
        let star = ny_metrics(BenchmarkId::P5, qi, true);
        assert_eq!(star, *want, "P5 q{} NY⋆", qi + 1);
    }
}

#[test]
fn stockexchange_ny_star_matches_table1_exactly() {
    // Table 1, S rows, NY⋆ column: the headline optimization result —
    // q2–q5 reduce to pure role joins.
    let expected = [(6, 6, 0), (2, 2, 0), (4, 8, 4), (4, 8, 4), (8, 24, 16)];
    for (qi, want) in expected.iter().enumerate() {
        let got = ny_metrics(BenchmarkId::S, qi, true);
        assert_eq!(got, *want, "S q{} NY⋆", qi + 1);
    }
}

#[test]
fn university_ny_star_matches_table1_exactly() {
    // Table 1, U rows, NY⋆ column.
    let expected = [(2, 4, 2), (1, 1, 0), (4, 16, 20), (2, 2, 0), (10, 20, 20)];
    for (qi, want) in expected.iter().enumerate() {
        let got = ny_metrics(BenchmarkId::U, qi, true);
        assert_eq!(got, *want, "U q{} NY⋆", qi + 1);
    }
}

#[test]
fn elimination_never_grows_a_rewriting() {
    // NY⋆ ≤ NY on every cheap cell of the suite.
    let cells = [
        (BenchmarkId::V, 1),
        (BenchmarkId::S, 1),
        (BenchmarkId::U, 1),
        (BenchmarkId::U, 3),
        (BenchmarkId::A, 2),
        (BenchmarkId::P5, 1),
    ];
    for (id, qi) in cells {
        let plain = ny_metrics(id, qi, false);
        let star = ny_metrics(id, qi, true);
        assert!(
            star.0 <= plain.0,
            "{id} q{}: NY⋆ {} > NY {}",
            qi + 1,
            star.0,
            plain.0
        );
    }
}

#[test]
fn quonto_never_beats_ny() {
    // The exhaustive included factorization can only add queries.
    let cells = [
        (BenchmarkId::V, 4),
        (BenchmarkId::U, 1),
        (BenchmarkId::P5, 1),
    ];
    for (id, qi) in cells {
        let bench = load(id);
        let kb = kb_for(&bench);
        let qo = metrics(&kb, &bench, qi, Algorithm::QuOnto);
        let ny = metrics(&kb, &bench, qi, Algorithm::Nyaya);
        assert!(qo.0 >= ny.0, "{id} q{}: QO {} < NY {}", qi + 1, qo.0, ny.0);
    }
    // V q5 is the paper's sharpest QO-vs-NY gap in V: 150 vs 30 (5×).
    let bench = load(BenchmarkId::V);
    let kb = kb_for(&bench);
    let qo = metrics(&kb, &bench, 4, Algorithm::QuOnto);
    assert_eq!(qo, (150, 900, 1110));
}

#[test]
fn x_variants_are_never_smaller() {
    // UX/AX/P5X count queries over auxiliary predicates too.
    for (base, x) in [
        (BenchmarkId::U, BenchmarkId::UX),
        (BenchmarkId::A, BenchmarkId::AX),
        (BenchmarkId::P5, BenchmarkId::P5X),
    ] {
        let b = ny_metrics(base, 0, false);
        let bx = ny_metrics(x, 0, false);
        assert!(bx.0 >= b.0, "{x} q1 {} < {base} q1 {}", bx.0, b.0);
    }
}
