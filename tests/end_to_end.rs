//! End-to-end integration through the `KnowledgeBase` facade:
//! build → prepare → execute, checked against the chase oracle
//! (Theorems 6 and 10: `D ⊨ q_Σ ⇔ D ∪ Σ ⊨ q`).

use nyaya::ontologies::running_example;
use nyaya::prelude::*;

fn running_example_kb() -> KnowledgeBase {
    KnowledgeBase::builder()
        .ontology(running_example::ontology())
        .facts(running_example::database_facts())
        .build()
        .expect("running example builds")
}

#[test]
fn running_example_full_pipeline() {
    let kb = running_example_kb();
    let query = running_example::query();

    // The running example is linear Datalog± → FO-rewritable → the
    // in-memory backend is auto-selected.
    assert!(kb.classification().linear);
    assert!(kb.classification().fo_rewritable());
    assert_eq!(kb.executor_kind(), ExecutorKind::InMemory);

    for algorithm in [Algorithm::Nyaya, Algorithm::NyayaStar] {
        let prepared = kb.prepare_with(&query, algorithm).unwrap();

        // Execute on the in-memory engine…
        let from_rewriting = kb.execute(&prepared).unwrap();

        // …and compare with the certain answers computed by the chase.
        let oracle = kb.execute_on(&prepared, ExecutorKind::Chase).unwrap();
        assert!(oracle.complete);
        assert_eq!(
            from_rewriting.tuples, oracle.tuples,
            "{algorithm:?}: rewriting answers must equal certain answers"
        );
        assert!(
            !from_rewriting.tuples.is_empty(),
            "the sample database has answers"
        );
    }
}

#[test]
fn ny_and_ny_star_agree_on_answers_everywhere() {
    // Same ontology, two rewritings of very different size — identical
    // answers on any database (Theorem 10).
    let kb = running_example_kb();
    let query = running_example::query();
    let ny = kb.prepare_with(&query, Algorithm::Nyaya).unwrap();
    let ny_star = kb.prepare_with(&query, Algorithm::NyayaStar).unwrap();
    assert!(kb.rewriting(&ny_star).unwrap().ucq.size() < kb.rewriting(&ny).unwrap().ucq.size());
    assert_eq!(
        kb.execute(&ny).unwrap().tuples,
        kb.execute(&ny_star).unwrap().tuples
    );
}

#[test]
fn sql_generation_covers_the_whole_rewriting() {
    let kb = KnowledgeBase::builder()
        .ontology(running_example::ontology())
        .catalog(Catalog::stock_exchange())
        .build()
        .unwrap();
    let prepared = kb
        .prepare_with(&running_example::query(), Algorithm::NyayaStar)
        .unwrap();
    let sql = kb.sql(&prepared).expect("schema must cover rewriting");
    assert!(sql.contains("SELECT DISTINCT"));
    assert!(sql.contains("list_comp"));

    // The SQL backend reports itself as delegating: no tuples, not final.
    let shipped = kb.execute_on(&prepared, ExecutorKind::Sql).unwrap();
    assert_eq!(shipped.backend, "sql");
    assert!(shipped.tuples.is_empty());
    assert!(!shipped.complete);
    assert_eq!(shipped.sql.as_deref(), Some(sql.as_str()));
}

#[test]
fn negative_constraint_prunes_and_preserves_answers() {
    // An NC can only remove CQs that are unsatisfiable over consistent
    // databases — answers over a consistent database are unchanged.
    const PROGRAM: &str = "
        t1: employs(X, Y) -> person(Y).
        t2: robot(X), person(X) -> false.
        employs(acme, ada).
        person(bob).
        q(A) :- person(A).
    ";
    let pruned_kb = KnowledgeBase::from_program_text(PROGRAM).unwrap(); // NC ⇒ pruning on
    let plain_kb = KnowledgeBase::builder()
        .program_text(PROGRAM)
        .unwrap()
        .nc_pruning(false)
        .build()
        .unwrap();
    let query = pruned_kb.queries()[0].clone();

    let pruned = pruned_kb.prepare(&query).unwrap();
    let plain = plain_kb.prepare(&query).unwrap();
    assert!(
        pruned_kb.rewriting(&pruned).unwrap().ucq.size()
            <= plain_kb.rewriting(&plain).unwrap().ucq.size()
    );
    assert_eq!(
        pruned_kb.execute(&pruned).unwrap().tuples,
        plain_kb.execute(&plain).unwrap().tuples
    );
}

#[test]
fn dl_lite_front_end_pipeline() {
    // DL-Lite axioms → Datalog± → rewriting → execution, all via the
    // builder's DL-Lite front end.
    let kb = KnowledgeBase::builder()
        .dl_lite_text(
            "
            Professor [= FacultyStaff
            FacultyStaff [= Employee
            exists teacherOf [= FacultyStaff
            exists teacherOf- [= Course
            ",
        )
        .unwrap()
        .facts([
            Atom::make("Professor", ["turing"]),
            Atom::make("teacherOf", ["church", "logic101"]),
        ])
        .build()
        .unwrap();
    let prepared = kb.prepare_text("q(A) :- Employee(A).").unwrap();
    // Employee ⊇ FacultyStaff ⊇ Professor, ∃teacherOf: 4 alternatives.
    let rewriting = kb.rewriting(&prepared).unwrap();
    assert_eq!(rewriting.ucq.size(), 4, "{}", rewriting.ucq);

    let answers = kb.execute(&prepared).unwrap();
    assert_eq!(
        answers.tuples.len(),
        2,
        "both turing and church are employees"
    );
}
