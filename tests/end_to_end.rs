//! End-to-end integration: parse → normalize → rewrite → execute, checked
//! against the chase oracle (Theorems 6 and 10: `D ⊨ q_Σ ⇔ D ∪ Σ ⊨ q`).

use nyaya::chase::{certain_answers, ChaseConfig, Instance};
use nyaya::core::{classify, normalize};
use nyaya::ontologies::running_example;
use nyaya::parser::parse_program;
use nyaya::rewrite::{tgd_rewrite, RewriteOptions};
use nyaya::sql::{execute_ucq, ucq_to_sql, Catalog, Database};

#[test]
fn running_example_full_pipeline() {
    let ontology = running_example::ontology();
    let query = running_example::query();
    let facts = running_example::database_facts();

    // The running example is linear Datalog± → FO-rewritable.
    let classification = classify(&ontology.tgds);
    assert!(classification.linear);
    assert!(classification.fo_rewritable());

    let norm = normalize(&ontology.tgds);

    for star in [false, true] {
        let mut opts = if star {
            RewriteOptions::nyaya_star()
        } else {
            RewriteOptions::nyaya()
        };
        opts.hidden_predicates = norm.aux_predicates.clone();
        let rewriting = tgd_rewrite(&query, &norm.tgds, &ontology.ncs, &opts);
        assert!(!rewriting.stats.budget_exhausted);

        // Execute on the in-memory engine…
        let db = Database::from_facts(facts.clone());
        let from_rewriting = execute_ucq(&db, &rewriting.ucq);

        // …and compare with the certain answers computed by the chase.
        let instance = Instance::from_atoms(facts.clone());
        let oracle = certain_answers(&instance, &norm.tgds, &query, ChaseConfig::default());
        assert!(oracle.saturated);
        assert_eq!(
            from_rewriting, oracle.answers,
            "star={star}: rewriting answers must equal certain answers"
        );
        assert!(!from_rewriting.is_empty(), "the sample database has answers");
    }
}

#[test]
fn ny_and_ny_star_agree_on_answers_everywhere() {
    // Same ontology, two rewritings of very different size — identical
    // answers on any database (Theorem 10).
    let ontology = running_example::ontology();
    let query = running_example::query();
    let norm = normalize(&ontology.tgds);
    let mut plain = RewriteOptions::nyaya();
    plain.hidden_predicates = norm.aux_predicates.clone();
    let mut star = RewriteOptions::nyaya_star();
    star.hidden_predicates = norm.aux_predicates.clone();
    let ny = tgd_rewrite(&query, &norm.tgds, &[], &plain);
    let ny_star = tgd_rewrite(&query, &norm.tgds, &[], &star);
    assert!(ny_star.ucq.size() < ny.ucq.size());

    let db = Database::from_facts(running_example::database_facts());
    assert_eq!(execute_ucq(&db, &ny.ucq), execute_ucq(&db, &ny_star.ucq));
}

#[test]
fn sql_generation_covers_the_whole_rewriting() {
    let ontology = running_example::ontology();
    let query = running_example::query();
    let norm = normalize(&ontology.tgds);
    let mut opts = RewriteOptions::nyaya_star();
    opts.hidden_predicates = norm.aux_predicates.clone();
    let rewriting = tgd_rewrite(&query, &norm.tgds, &[], &opts);
    let catalog = Catalog::stock_exchange();
    let sql = ucq_to_sql(&rewriting.ucq, &catalog).expect("schema must cover rewriting");
    assert!(sql.contains("SELECT DISTINCT"));
    assert!(sql.contains("list_comp"));
}

#[test]
fn negative_constraint_prunes_and_preserves_answers() {
    // An NC can only remove CQs that are unsatisfiable over consistent
    // databases — answers over a consistent database are unchanged.
    let program = parse_program(
        "
        t1: employs(X, Y) -> person(Y).
        t2: robot(X), person(X) -> false.
        q(A) :- person(A).
        ",
    )
    .unwrap();
    let norm = normalize(&program.ontology.tgds);
    let query = &program.queries[0];

    let mut with_nc = RewriteOptions::nyaya();
    with_nc.nc_pruning = true;
    let pruned = tgd_rewrite(query, &norm.tgds, &program.ontology.ncs, &with_nc);
    let unpruned = tgd_rewrite(query, &norm.tgds, &[], &RewriteOptions::nyaya());
    assert!(pruned.ucq.size() <= unpruned.ucq.size());

    let db = Database::from_facts([
        nyaya::core::Atom::make("employs", ["acme", "ada"]),
        nyaya::core::Atom::make("person", ["bob"]),
    ]);
    assert_eq!(execute_ucq(&db, &pruned.ucq), execute_ucq(&db, &unpruned.ucq));
}

#[test]
fn dl_lite_front_end_pipeline() {
    // DL-Lite axioms → Datalog± → rewriting → execution.
    let onto = nyaya::parser::parse_dl_lite(
        "
        Professor [= FacultyStaff
        FacultyStaff [= Employee
        exists teacherOf [= FacultyStaff
        exists teacherOf- [= Course
        ",
    )
    .unwrap();
    let norm = normalize(&onto.tgds);
    let query = nyaya::parser::parse_query("q(A) :- Employee(A).").unwrap();
    let rewriting = tgd_rewrite(&query, &norm.tgds, &[], &RewriteOptions::nyaya_star());
    // Employee ⊇ FacultyStaff ⊇ Professor, ∃teacherOf: 4 alternatives.
    assert_eq!(rewriting.ucq.size(), 4, "{}", rewriting.ucq);

    let db = Database::from_facts([
        nyaya::core::Atom::make("Professor", ["turing"]),
        nyaya::core::Atom::make("teacherOf", ["church", "logic101"]),
    ]);
    let answers = execute_ucq(&db, &rewriting.ucq);
    assert_eq!(answers.len(), 2, "both turing and church are employees");
}
