//! Smoke tests for the `nyaya` command-line binary.

use std::io::Write as _;
use std::process::Command;

const PROGRAM: &str = "
sigma5: stock_portf(X, Y, Z) -> has_stock(Y, X).
sigma6: has_stock(X, Y) -> stock_portf(Y, X, Z).
delta1: legal_person(X), fin_ins(X) -> false.
key(list_comp/2) = {1}.
has_stock(ibm_s, fund1).
q(A, B) :- stock_portf(B, A, D).
";

fn write_program(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("nyaya_cli_test_{name}_{}.dlp", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nyaya"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn classify_reports_linearity() {
    let path = write_program("classify", PROGRAM);
    let (ok, stdout, _) = run(&["classify", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("linear:               true"), "{stdout}");
    assert!(stdout.contains("FO-rewritable:        true"), "{stdout}");
}

#[test]
fn rewrite_prints_the_ucq() {
    let path = write_program("rewrite", PROGRAM);
    let (ok, stdout, _) = run(&["rewrite", path.to_str().unwrap(), "--star"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("% 2 CQs"), "{stdout}");
    assert!(stdout.contains("has_stock"), "{stdout}");
}

#[test]
fn answer_executes_over_the_facts() {
    let path = write_program("answer", PROGRAM);
    let (ok, stdout, _) = run(&["answer", path.to_str().unwrap(), "--star"]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stdout}");
    assert!(stdout.contains("1 answer(s)"), "{stdout}");
    assert!(stdout.contains("q(ibm_s, fund1)"), "{stdout}");
}

#[test]
fn answer_json_emits_machine_readable_answers_and_stats() {
    let path = write_program("answer_json", PROGRAM);
    let (ok, stdout, stderr) = run(&["answer", path.to_str().unwrap(), "--star", "--json"]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stderr}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
    assert!(
        line.contains("\"answers\":[[\"ibm_s\",\"fund1\"]]"),
        "{stdout}"
    );
    assert!(line.contains("\"backend\":\"in-memory\""), "{stdout}");
    assert!(line.contains("\"rewriting\":{\"cqs\":2,"), "{stdout}");
    // The stats describe the user's workload: one query, compiled once,
    // executed once, zero cache hits. The JSON emitter's own rewriting
    // lookup for the `rewriting` block must not inflate the counters.
    assert!(line.contains("\"cache_misses\":1"), "{stdout}");
    assert!(line.contains("\"cache_hits\":0"), "{stdout}");
    assert!(line.contains("\"executions\":1"), "{stdout}");
    // Engine-side counters: one answer row from the in-memory engine; a
    // two-disjunct rewriting stays under the parallel-routing threshold.
    assert!(line.contains("\"rows_returned\":1"), "{stdout}");
    assert!(line.contains("\"parallel_executions\":0"), "{stdout}");
    // Snapshot/update counters: the CLI never applies batches, so the
    // state is the build-time epoch with the program's one fact.
    assert!(line.contains("\"epoch\":0"), "{stdout}");
    assert!(line.contains("\"batches_applied\":0"), "{stdout}");
    assert!(line.contains("\"snapshot_facts\":1"), "{stdout}");
    // Compile-time counters: one sequential compile, no minimization.
    assert!(line.contains("\"rewrite_explored\":"), "{stdout}");
    assert!(line.contains("\"rewrites_parallel\":0"), "{stdout}");
    assert!(
        line.contains("\"subsumption_checks_avoided\":0"),
        "{stdout}"
    );
}

#[test]
fn answer_with_workers_and_minimize_matches_default() {
    let path = write_program("answer_workers", PROGRAM);
    let (ok, plain, _) = run(&["answer", path.to_str().unwrap(), "--star"]);
    let (ok2, tuned, stderr) = run(&[
        "answer",
        path.to_str().unwrap(),
        "--star",
        "--workers",
        "4",
        "--minimize",
    ]);
    std::fs::remove_file(&path).ok();
    assert!(ok && ok2, "{stderr}");
    // Compare the answer lines only: the `%` header legitimately differs
    // when --minimize shrinks the printed rewriting size.
    let answers = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| !l.starts_with('%'))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        answers(&plain),
        answers(&tuned),
        "compile-time knobs must never change answers"
    );

    let path = write_program("answer_workers_json", PROGRAM);
    let (ok, stdout, stderr) = run(&[
        "answer",
        path.to_str().unwrap(),
        "--star",
        "--workers",
        "4",
        "--json",
    ]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"rewrites_parallel\":1"), "{stdout}");
}

#[test]
fn answer_rejects_inconsistent_database() {
    let bad = "
        delta: a(X), b(X) -> false.
        a(k). b(k).
        q(X) :- a(X).
    ";
    let path = write_program("inconsistent", bad);
    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("inconsistent"), "{stderr}");
}

#[test]
fn answer_rejects_key_violation() {
    let bad = "
        key(r/2) = {1}.
        r(a, b). r(a, c).
        q(X) :- r(X, Y).
    ";
    let path = write_program("kd", bad);
    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("key dependency"), "{stderr}");
}

#[test]
fn sql_emits_union() {
    let path = write_program("sql", PROGRAM);
    let (ok, stdout, _) = run(&["sql", path.to_str().unwrap(), "--star"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("SELECT DISTINCT"), "{stdout}");
    assert!(stdout.contains("UNION"), "{stdout}");
}

#[test]
fn chase_materializes() {
    let path = write_program("chase", PROGRAM);
    let (ok, stdout, _) = run(&["chase", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("saturated: true"), "{stdout}");
    assert!(stdout.contains("stock_portf(fund1,ibm_s,z"), "{stdout}");
}

#[test]
fn dl_lite_files_are_recognized() {
    let dl = "Person [= LegalAgent\nexists hasStock [= Person\n";
    let path = std::env::temp_dir().join(format!("nyaya_cli_test_dl_{}.dl", std::process::id()));
    std::fs::write(&path, dl).unwrap();
    let (ok, stdout, _) = run(&["classify", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("TGDs:                2"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn bad_algorithm_is_rejected() {
    let path = write_program("badalg", PROGRAM);
    let (ok, _, stderr) = run(&["rewrite", path.to_str().unwrap(), "--algorithm", "xx"]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
}

#[test]
fn baseline_algorithms_run_from_cli() {
    let path = write_program("baselines", PROGRAM);
    for alg in ["qo", "rq"] {
        let (ok, stdout, stderr) = run(&["rewrite", path.to_str().unwrap(), "--algorithm", alg]);
        assert!(ok, "{alg}: {stderr}");
        assert!(stdout.contains("CQs"), "{alg}: {stdout}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn program_emits_nonrecursive_datalog() {
    // Two independent sub-queries → the clustered construction kicks in.
    let src = "
r1: sp(X) -> p(X).
r2: su(X) -> u(X).
q(A) :- p(A), t(A, B), u(B).
";
    let path = write_program("program", src);
    let (ok, stdout, _) = run(&["program", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stdout}");
    assert!(stdout.contains("3 clusters"), "{stdout}");
    assert!(stdout.contains("goal: q(A)"), "{stdout}");
    assert!(stdout.contains(":-"), "{stdout}");
}

#[test]
fn program_views_prints_sql() {
    let src = "
r1: sp(X) -> p(X).
q(A) :- p(A).
";
    let path = write_program("program_views", src);
    let (ok, stdout, _) = run(&["program", path.to_str().unwrap(), "--views"]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stdout}");
    assert!(stdout.contains("CREATE VIEW"), "{stdout}");
    assert!(stdout.contains("UNION"), "{stdout}");
    assert!(stdout.contains("single-statement form"), "{stdout}");
}

#[test]
fn durable_data_dir_save_history_and_time_travel() {
    let src = "
sigma1: manager(X) -> employee(X).
sigma2: employee(X) -> person(X).
manager(ann).
q(A) :- person(A).
";
    let path = write_program("durable", src);
    let dir = std::env::temp_dir().join(format!("nyaya_cli_test_ledger_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().unwrap().to_owned();
    let p = path.to_str().unwrap().to_owned();

    // `save`, `compact` and `history` refuse to run without a ledger.
    let (ok, _, stderr) = run(&["save", &p]);
    assert!(!ok);
    assert!(stderr.contains("needs --data-dir"), "{stderr}");

    // First open seeds the ledger; the file's facts are already durable.
    let (ok, stdout, stderr) = run(&["save", &p, "--data-dir", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("nothing to save"), "{stdout}");

    // A grown file persists only the new facts, as one batch (epoch 1).
    let grown = format!("{src}manager(bob).\n");
    std::fs::write(&path, &grown).unwrap();
    let (ok, stdout, stderr) = run(&["save", &p, "--data-dir", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("saved 1 fact(s) as epoch 1"), "{stdout}");

    // A separate process recovers the store and time-travels to epoch 0.
    let (ok, now, stderr) = run(&["answer", &p, "--data-dir", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(now.contains("q(ann)") && now.contains("q(bob)"), "{now}");
    let (ok, then, stderr) = run(&["answer", &p, "--data-dir", &dir_s, "--at", "0"]);
    assert!(ok, "{stderr}");
    assert!(
        then.contains("q(ann)") && !then.contains("q(bob)"),
        "{then}"
    );

    // Asking for an epoch that never existed is a typed, ranged error.
    let (ok, _, stderr) = run(&["answer", &p, "--data-dir", &dir_s, "--at", "99"]);
    assert!(!ok);
    assert!(
        stderr.contains("epoch 99 does not exist") && stderr.contains("0..=1"),
        "{stderr}"
    );

    // `compact` seals the WAL; `history` reports the on-disk layout.
    let (ok, stdout, stderr) = run(&["compact", &p, "--data-dir", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("segment flushed at epoch 1"), "{stdout}");
    let (ok, stdout, stderr) = run(&["history", &p, "--data-dir", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("latest epoch 1"), "{stdout}");
    assert!(stdout.contains("sealed WAL range(s)"), "{stdout}");

    // `--json` reports the ledger counters.
    let (ok, stdout, stderr) = run(&["answer", &p, "--data-dir", &dir_s, "--json"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"durable\":true"), "{stdout}");
    let (ok, stdout, _) = run(&["answer", &p, "--json"]);
    assert!(ok);
    assert!(stdout.contains("\"durable\":false"), "{stdout}");

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strategy_program_routes_answers_and_sql() {
    let src = "
r1: sp(X) -> p(X).
r2: su(X) -> u(X).
p(a). u(b). sp(c). su(d). t(a, b). t(c, d).
q(A) :- p(A), t(A, B), u(B).
";
    let path = write_program("strategy_program", src);
    let (ok, stdout, _) = run(&[
        "answer",
        path.to_str().unwrap(),
        "--strategy",
        "program",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"backend\":\"program\""), "{stdout}");
    assert!(stdout.contains("\"program\":{\"rules\":"), "{stdout}");
    assert!(stdout.contains("\"program_compiles\":1"), "{stdout}");
    // The UCQ strategy answers identically through the flat path.
    let (ok, flat, _) = run(&[
        "answer",
        path.to_str().unwrap(),
        "--strategy",
        "ucq",
        "--json",
    ]);
    assert!(ok, "{flat}");
    assert!(flat.contains("\"backend\":\"in-memory\""), "{flat}");
    for tuple in ["[\"a\"]", "[\"c\"]"] {
        assert!(stdout.contains(tuple), "{stdout}");
        assert!(flat.contains(tuple), "{flat}");
    }
    // SQL under the program strategy ships the WITH-CTE form.
    let (ok, sql, _) = run(&["sql", path.to_str().unwrap(), "--strategy", "program"]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{sql}");
    assert!(sql.contains("WITH "), "{sql}");
    // An unknown strategy is a usage error.
    let path = write_program("strategy_bad", src);
    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap(), "--strategy", "dnf"]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("unknown strategy"), "{stderr}");
}

/// Run the binary with the given stdin, capturing stdout/stderr.
fn run_with_stdin(args: &[&str], input: &str) -> (bool, String, String) {
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_nyaya"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn watch_streams_per_epoch_answer_diffs() {
    let src = "
t0: c0(X) -> top(X).
t1: c1(X) -> top(X).
q(X, Y) :- top(X), edge(X, Y), top(Y).
c0(a).
c1(b).
edge(a, b).
";
    let path = write_program("watch", src);
    let input = "+edge(b, a)\ncommit\n-c0(a)\n\nnot a fact line\nquit\n";
    let (ok, stdout, stderr) = run_with_stdin(&["watch", path.to_str().unwrap()], input);
    assert!(ok, "{stdout}\n{stderr}");
    // Seed diff at epoch 0, then one diff per committed batch.
    assert!(stdout.contains("% epoch 0: q +1 -0"), "{stdout}");
    assert!(stdout.contains("+ q(a, b)"), "{stdout}");
    assert!(stdout.contains("% epoch 1: q +1 -0"), "{stdout}");
    assert!(stdout.contains("+ q(b, a)"), "{stdout}");
    // Retracting c0(a) removes top(a)'s only support: both answers die.
    assert!(stdout.contains("% epoch 2: q +0 -2"), "{stdout}");
    assert!(stdout.contains("- q(a, b)"), "{stdout}");
    assert!(stdout.contains("- q(b, a)"), "{stdout}");
    // Malformed lines are reported, not fatal.
    assert!(stderr.contains("ignored"), "{stderr}");

    // --json emits one machine-readable line per diff.
    let (ok, json, _) = run_with_stdin(
        &["watch", path.to_str().unwrap(), "--json"],
        "+edge(b, a)\n\n",
    );
    std::fs::remove_file(&path).ok();
    assert!(ok, "{json}");
    assert!(
        json.contains("{\"epoch\":0,\"query\":\"q\",\"added\":[[\"a\",\"b\"]],\"removed\":[]}"),
        "{json}"
    );
    assert!(
        json.contains("{\"epoch\":1,\"query\":\"q\",\"added\":[[\"b\",\"a\"]],\"removed\":[]}"),
        "{json}"
    );
}

const EDGES: &str = "
edge(a, b). edge(b, c). edge(c, a). edge(a, c).
q(X, Y) :- edge(X, Y).
";

#[test]
fn answer_applies_result_modifiers() {
    let path = write_program("modifiers", EDGES);

    // ORDER BY first column descending, top-2.
    let (ok, stdout, stderr) = run(&[
        "answer",
        path.to_str().unwrap(),
        "--order-by",
        "1:desc",
        "--limit",
        "2",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("% 2 row(s)"), "{stdout}");
    let rows: Vec<&str> = stdout.lines().filter(|l| l.starts_with("q(")).collect();
    assert_eq!(rows, ["q(c, a)", "q(b, c)"], "{stdout}");

    // Range filter on the first column.
    let (ok, stdout, _) = run(&["answer", path.to_str().unwrap(), "--where", "1>=b"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("% 2 row(s)"), "{stdout}");
    assert!(
        stdout.contains("q(b, c)") && stdout.contains("q(c, a)"),
        "{stdout}"
    );

    // Grouped COUNT: `a` has two outgoing edges.
    let (ok, stdout, _) = run(&[
        "answer",
        path.to_str().unwrap(),
        "--count",
        "--group-by",
        "1",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("% 3 row(s)"), "{stdout}");
    assert!(stdout.contains("q(a, 2)"), "{stdout}");
    assert!(
        stdout.contains("q(b, 1)") && stdout.contains("q(c, 1)"),
        "{stdout}"
    );

    // Global MIN over the second column.
    let (ok, stdout, _) = run(&["answer", path.to_str().unwrap(), "--min", "2"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("% 1 row(s)"), "{stdout}");
    assert!(stdout.contains("q(a)"), "{stdout}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn answer_modifiers_emit_ordered_json_rows_and_planner_stats() {
    let path = write_program("modifiers_json", EDGES);
    let (ok, stdout, stderr) = run(&["answer", path.to_str().unwrap(), "--count", "--json"]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stderr}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
    assert!(line.contains("\"rows\":[[\"4\"]]"), "{stdout}");
    // The planner counters ride along in the shared stats block; a global
    // COUNT is answered off the index without touching a row.
    assert!(line.contains("\"aggregate_pushdowns\":1"), "{stdout}");
    assert!(line.contains("\"plan_replans\":0"), "{stdout}");
}

#[test]
fn answer_explain_prints_the_chosen_plan() {
    let path = write_program("explain", EDGES);
    let (ok, stdout, stderr) = run(&["answer", path.to_str().unwrap(), "--explain"]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stderr}");
    assert!(stdout.contains("strategy: ucq (1 disjuncts)"), "{stdout}");
    assert!(
        stdout.contains("operators: scan 1, hash 0, merge 0"),
        "{stdout}"
    );
    assert!(stdout.contains("total estimated cost"), "{stdout}");
}

#[test]
fn answer_rejects_malformed_modifiers() {
    let path = write_program("bad_modifiers", EDGES);
    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap(), "--where", "1~x"]);
    assert!(!ok);
    assert!(stderr.contains("COL<OP>VALUE"), "{stderr}");

    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap(), "--group-by", "1"]);
    assert!(!ok);
    assert!(stderr.contains("--group-by needs"), "{stderr}");

    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap(), "--count", "--min", "2"]);
    assert!(!ok);
    assert!(stderr.contains("at most one of"), "{stderr}");

    // Column numbers are validated against the query head (1-based).
    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap(), "--where", "3<b"]);
    assert!(!ok);
    assert!(stderr.contains("invalid select options"), "{stderr}");

    let (ok, _, stderr) = run(&["answer", path.to_str().unwrap(), "--at", "0", "--count"]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("--at cannot be combined"), "{stderr}");
}
