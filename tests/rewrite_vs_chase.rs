//! End-to-end oracle: rewrite-then-execute versus chase certain answers.
//!
//! Theorem 1's contract is that evaluating the perfect rewriting over the
//! plain database equals the certain answers of the original query over
//! `D ∪ Σ`. This test exercises that contract *through the new execution
//! engine* on every bundled FO-rewritable benchmark suite, with generated
//! ABoxes:
//!
//! - when the chase saturates, the two answer sets must be equal
//!   (soundness and completeness);
//! - when the chase budget truncates, its answers are still sound, so
//!   they must be a subset of the rewrite-then-execute answers.

use nyaya::{ExecutorKind, KnowledgeBase, NyayaError};
use nyaya_chase::ChaseConfig;
use nyaya_ontologies::{generate_abox, load, AboxConfig, BenchmarkId};

/// Per-suite query budget. The ADOLENA q3 rewritings explore enough of
/// the search space to take minutes in debug builds, so A/AX stop at q2;
/// every other suite contributes three queries.
fn queries_for(id: BenchmarkId) -> usize {
    match id {
        BenchmarkId::A | BenchmarkId::AX => 2,
        _ => 3,
    }
}

#[test]
fn rewrite_then_execute_equals_chase_certain_answers() {
    let mut saturated_checks = 0usize;
    let mut compared = 0usize;
    for id in BenchmarkId::ALL {
        let bench = load(id);
        let abox = generate_abox(
            &bench,
            &AboxConfig {
                individuals: 8,
                facts: 40,
                seed: 0xC0FFEE ^ id as u64,
            },
        );
        let kb = KnowledgeBase::builder()
            .ontology(bench.raw.clone())
            .facts(abox)
            .show_aux(id.is_x_variant())
            .chase_config(ChaseConfig {
                max_rounds: 8,
                max_atoms: 20_000,
                ..ChaseConfig::default()
            })
            .build()
            .unwrap();

        for (name, query) in bench.queries.iter().take(queries_for(id)) {
            let prepared = match kb.prepare(query) {
                Ok(p) => p,
                Err(e) => panic!("{id} {name}: prepare failed: {e}"),
            };
            let rewritten = match kb.execute_on(&prepared, ExecutorKind::InMemory) {
                Ok(a) => a,
                Err(NyayaError::BudgetExhausted { .. }) => continue,
                Err(e) => panic!("{id} {name}: in-memory execution failed: {e}"),
            };
            assert!(rewritten.complete, "{id} {name}");
            let chased = kb.execute_on(&prepared, ExecutorKind::Chase).unwrap();
            compared += 1;
            if chased.complete {
                saturated_checks += 1;
                assert_eq!(
                    rewritten.tuples, chased.tuples,
                    "{id} {name}: rewrite-then-execute disagrees with saturated \
                     chase certain answers"
                );
            } else {
                // A truncated chase under-approximates: every answer it
                // found must also be found by the perfect rewriting.
                assert!(
                    chased.tuples.is_subset(&rewritten.tuples),
                    "{id} {name}: truncated chase produced answers the rewriting \
                     missed — the rewriting is incomplete"
                );
            }
        }
    }
    assert!(compared >= 16, "only {compared} suite queries compared");
    assert!(
        saturated_checks >= 8,
        "only {saturated_checks} saturated equality checks — chase budget too small \
         for the oracle to bite"
    );
}

#[test]
fn running_example_certain_answers_survive_the_new_engine() {
    // The Section 1 walkthrough, end to end: σ1–σ9 + the example database,
    // executed via rewriting on the indexed engine and via the chase.
    let kb = KnowledgeBase::builder()
        .ontology(nyaya_ontologies::running_example::ontology())
        .facts(nyaya_ontologies::running_example::database_facts())
        .build()
        .unwrap();
    let q = kb
        .prepare(&nyaya_ontologies::running_example::query())
        .unwrap();
    let rewritten = kb.execute_on(&q, ExecutorKind::InMemory).unwrap();
    let chased = kb.execute_on(&q, ExecutorKind::Chase).unwrap();
    assert!(chased.complete);
    assert_eq!(rewritten.tuples, chased.tuples);
    assert!(
        !rewritten.tuples.is_empty(),
        "the running example has at least ⟨ibm_s, ibm, nasdaq⟩"
    );
}
