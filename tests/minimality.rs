//! The minimization ladder of Sections 2 and 6, end to end:
//!
//! 1. **query elimination** (Section 6) — polynomial, Σ-aware, but only
//!    sees coverage witnessed by equality-type-compatible TGD chains;
//! 2. **Σ-free core minimization + subsumption** (Chandra–Merlin [21]) —
//!    polynomial-ish in practice, no Σ;
//! 3. **chase & back-chase** (C&B [15]) — complete minimization, but pays
//!    a chase per candidate subquery (Example 8: it finds redundancy the
//!    elimination provably cannot).

use nyaya::core::{minimize_cq, Term};
use nyaya::parser::{parse_query, parse_tgds};
use nyaya::rewrite::{
    chase_and_backchase, fully_minimize_union, tgd_rewrite, CnbConfig, EliminationContext,
    RewriteOptions,
};

fn example6_tgds() -> Vec<nyaya::core::Tgd> {
    parse_tgds(
        "s1: p(X, Y) -> r(X, Y, Z).
         s2: r(X, Y, c) -> s(X, Y, Y).
         s3: s(X, X, Y) -> p(X, Y).",
    )
    .unwrap()
}

#[test]
fn example8_cnb_beats_elimination() {
    // q() :- r(A,A,c), p(A,A): the p-atom IS implied by the r-atom (via σ2
    // then σ3), but eq(body(σ3)) ⊄ eq(head(σ2)) breaks the chain the
    // elimination needs — the paper's Example 8.
    let tgds = example6_tgds();
    let q = parse_query("q() :- r(A, A, c), p(A, A).").unwrap();

    // (1) Elimination keeps both atoms.
    let ctx = EliminationContext::new(&tgds);
    assert_eq!(ctx.eliminate(&q).body.len(), 2);

    // (2) Σ-free minimization cannot help either (the atoms do not fold).
    assert_eq!(minimize_cq(&q).body.len(), 2);

    // (3) C&B finds the single-atom reformulation.
    let reformulations = chase_and_backchase(&q, &tgds, &CnbConfig::default()).unwrap();
    let best = reformulations
        .iter()
        .map(|r| r.body.len())
        .min()
        .expect("C&B returns at least the identity reformulation");
    assert_eq!(best, 1, "C&B must discover q() :- r(A,A,c)");
}

#[test]
fn full_minimization_after_rewriting_preserves_answers() {
    // Post-process a real rewriting with core + subsumption minimization
    // and check answer equivalence on the running example's database.
    use nyaya::ontologies::running_example;
    use nyaya::sql::{execute_ucq, Database};

    let ontology = running_example::ontology();
    let norm = nyaya::core::normalize(&ontology.tgds);
    let query = running_example::query();
    let mut opts = RewriteOptions::nyaya(); // NY, not NY⋆: leave redundancy in
    opts.hidden_predicates = norm.aux_predicates.clone();
    let rewriting = tgd_rewrite(&query, &norm.tgds, &ontology.ncs, &opts).unwrap();

    let minimized = fully_minimize_union(&rewriting.ucq);
    assert!(minimized.size() <= rewriting.ucq.size());
    assert!(minimized.length() < rewriting.ucq.length());

    let db = Database::from_facts(running_example::database_facts());
    let a: Vec<Vec<Term>> = execute_ucq(&db, &rewriting.ucq).into_iter().collect();
    let b: Vec<Vec<Term>> = execute_ucq(&db, &minimized).into_iter().collect();
    assert_eq!(a, b);
}

#[test]
fn minimization_ladder_is_monotone_on_stockexchange() {
    // On S-q3 (NY): plain < subsumption+core ≤ … each rung only shrinks,
    // never changes answers (spot-checked by the other tests/benches).
    use nyaya::ontologies::{load, BenchmarkId};
    let bench = load(BenchmarkId::S);
    let (_, q) = &bench.queries[2];
    let mut opts = RewriteOptions::nyaya();
    opts.hidden_predicates = bench.hidden_predicates.clone();
    let ny = tgd_rewrite(q, &bench.normalized, &[], &opts).unwrap().ucq;

    let minimized = fully_minimize_union(&ny);
    assert!(
        minimized.size() < ny.size(),
        "{} vs {}",
        minimized.size(),
        ny.size()
    );

    // Post-hoc minimization converges to the same canonical minimal union
    // as TGD-rewrite⋆ (both are equivalent UCQs, and minimal equivalents
    // of equivalent unions coincide) — but only after paying the full
    // exponential exploration plus O(n²) containment checks over 1710 CQs.
    // Eliminating *during* rewriting gets there while exploring a few
    // dozen queries: the paper's Section 6 point is about cost, not just
    // output size.
    let mut star = RewriteOptions::nyaya_star();
    star.hidden_predicates = bench.hidden_predicates.clone();
    let star_run = tgd_rewrite(q, &bench.normalized, &[], &star).unwrap();
    assert!(star_run.ucq.size() <= minimized.size());
    let ny_run = tgd_rewrite(q, &bench.normalized, &[], &opts).unwrap();
    assert!(star_run.stats.explored * 10 < ny_run.stats.explored);
}
