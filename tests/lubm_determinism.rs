//! Cross-process determinism of the LUBM generator.
//!
//! The scale benchmarks assume `lubm_abox` is a pure function of its
//! config — same seed ⇒ bit-identical fact stream — **across separate
//! processes**, not just within one. In-process determinism would
//! survive accidental dependence on interner indices or hash-map
//! iteration order (both stable within a run); the cross-process check
//! would not. The test re-spawns its own binary as a child (gated by an
//! environment variable), has both processes hash the full `Display`
//! stream of the generated facts, and compares.

use std::env;
use std::process::Command;

use nyaya_ontologies::lubm::{fact_count, lubm_abox, LubmConfig};

const CHILD_VAR: &str = "LUBM_DETERMINISM_CHILD";

fn config() -> LubmConfig {
    LubmConfig {
        universities: 2,
        departments_per_university: 3,
        seed: 0xD15EED,
    }
}

/// Order-sensitive FNV-1a over the rendered fact stream: any change in
/// fact content *or* generation order changes the digest.
fn stream_digest(cfg: &LubmConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for atom in lubm_abox(cfg) {
        for byte in atom.to_string().bytes().chain([b'\n']) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[test]
fn same_seed_is_bit_identical_across_processes() {
    if env::var(CHILD_VAR).is_ok() {
        // Child mode: print the digest and exit. The harness runs this
        // test function in the child too, but only this branch.
        println!("digest={:016x}", stream_digest(&config()));
        return;
    }
    let parent_digest = stream_digest(&config());

    // Re-spawn this very test binary, filtered to this test, in child
    // mode. `current_exe` is the test binary itself under libtest.
    let exe = env::current_exe().expect("test binary path");
    let output = Command::new(&exe)
        .args([
            "same_seed_is_bit_identical_across_processes",
            "--exact",
            "--nocapture",
        ])
        .env(CHILD_VAR, "1")
        .output()
        .expect("spawn child generator process");
    assert!(
        output.status.success(),
        "child process failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // The marker can land mid-line: libtest prints `test name ... `
    // without a newline before the test body's own output. Search for
    // it anywhere rather than as a line prefix.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let at = stdout
        .find("digest=")
        .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
    let child_digest: String = stdout[at + "digest=".len()..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();

    assert_eq!(
        format!("{parent_digest:016x}"),
        child_digest,
        "LUBM fact stream differs across processes for the same config"
    );
    // And the stream the digest covers is the exact advertised size.
    assert_eq!(lubm_abox(&config()).len(), fact_count(&config()));
}
