//! Cross-engine differential tests for the rewriting compiler.
//!
//! Two properties pin the PR 4 worklist refactor:
//!
//! 1. **Engine agreement** — NY, NY⋆, QuOnto and Requiem are all sound and
//!    complete on normalized linear TGDs, so after Σ-free minimization
//!    ([`fully_minimize_union`]) their rewritings must be answer-equivalent
//!    (mutual UCQ containment), on seeded random ontologies and queries.
//! 2. **Parallel determinism** — the shared worklist core guarantees that
//!    parallel exploration is bit-identical to sequential exploration for
//!    every run that completes within budget: same UCQ text, same stats
//!    (wall-clock aside). Checked across 200 fuzz seeds for all three
//!    engines and across the full 8-ontology benchmark suite (q1–q3 per
//!    suite in debug; the release-mode `rewrite_bench` harness covers
//!    every cell, q5 included).

use nyaya::core::UnionQuery;
use nyaya::ontologies::rng::Prng;
use nyaya::ontologies::{load_all, random_cq, random_linear_tgds, FuzzConfig};
use nyaya::rewrite::{
    fully_minimize_union, quonto_rewrite, requiem_rewrite, tgd_rewrite, RewriteOptions,
    RewriteStats, Rewriting,
};

const BUDGET: usize = 30_000;

fn opts(star: bool, workers: usize) -> RewriteOptions {
    RewriteOptions {
        elimination: star,
        max_queries: BUDGET,
        parallel_workers: workers,
        ..Default::default()
    }
}

/// `a ⊇ b`: every disjunct of `b` is contained in some disjunct of `a`
/// (exact for UCQs by Sagiv–Yannakakis).
fn union_contains(a: &UnionQuery, b: &UnionQuery) -> bool {
    b.iter().all(|qb| a.iter().any(|qa| qa.contains(qb)))
}

fn answer_equivalent(a: &UnionQuery, b: &UnionQuery) -> bool {
    union_contains(a, b) && union_contains(b, a)
}

/// Stats with the order-dependent fields (wall-clock) and configuration
/// fields (worker count) blanked, for sequential-vs-parallel comparison.
fn comparable(stats: &RewriteStats) -> RewriteStats {
    RewriteStats {
        rewrite_micros: 0,
        workers: 0,
        ..stats.clone()
    }
}

#[test]
fn engines_agree_after_full_minimization_on_fuzz_ontologies() {
    let config = FuzzConfig {
        max_atoms: 3,
        ..Default::default()
    };
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for seed in 0..120u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let tgds = random_linear_tgds(&mut rng, 1 + (seed as usize % 5));
        let head_arity = rng.gen_range(0..3);
        let q = random_cq(&mut rng, &config, head_arity);

        let ny = tgd_rewrite(&q, &tgds, &[], &opts(false, 1)).unwrap();
        let ny_star = tgd_rewrite(&q, &tgds, &[], &opts(true, 1)).unwrap();
        let qo = quonto_rewrite(&q, &tgds, &opts(false, 1)).unwrap();
        let rq = requiem_rewrite(&q, &tgds, &opts(false, 1)).unwrap();
        if [&ny, &ny_star, &qo, &rq]
            .iter()
            .any(|r| r.stats.budget_exhausted)
        {
            // A truncated rewriting is not comparable; the seed is skipped
            // deterministically (same seeds explode on every run).
            skipped += 1;
            continue;
        }
        compared += 1;

        let reference = fully_minimize_union(&ny.ucq);
        for (label, other) in [("NY*", &ny_star), ("QO", &qo), ("RQ", &rq)] {
            let minimized = fully_minimize_union(&other.ucq);
            assert!(
                answer_equivalent(&reference, &minimized),
                "seed {seed}: {label} disagrees with NY\n\
                 Σ = {}\nq = {q}\nNY:\n{reference}\n{label}:\n{minimized}",
                tgds.iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join("  ")
            );
        }
    }
    assert!(
        compared >= 100,
        "too few comparable seeds: {compared} compared, {skipped} skipped"
    );
}

#[test]
fn parallel_rewriting_is_bit_identical_across_200_fuzz_seeds() {
    let config = FuzzConfig {
        max_atoms: 3,
        ..Default::default()
    };
    let assert_equal = |label: &str, seed: u64, seq: &Rewriting, par: &Rewriting| {
        assert_eq!(
            seq.ucq.to_string(),
            par.ucq.to_string(),
            "seed {seed}: {label} parallel UCQ differs from sequential"
        );
        assert_eq!(
            comparable(&seq.stats),
            comparable(&par.stats),
            "seed {seed}: {label} parallel stats differ from sequential"
        );
    };
    for seed in 0..200u64 {
        let mut rng = Prng::seed_from_u64(0x9E37 ^ seed);
        let tgds = random_linear_tgds(&mut rng, 1 + (seed as usize % 6));
        let head_arity = rng.gen_range(0..3);
        let q = random_cq(&mut rng, &config, head_arity);

        let seq = tgd_rewrite(&q, &tgds, &[], &opts(false, 1)).unwrap();
        let par = tgd_rewrite(&q, &tgds, &[], &opts(false, 3)).unwrap();
        if seq.stats.budget_exhausted {
            continue;
        }
        assert_equal("NY", seed, &seq, &par);

        // Exercise the baselines' parallel paths on a rotating subset.
        if seed % 4 == 0 {
            let seq = quonto_rewrite(&q, &tgds, &opts(false, 1)).unwrap();
            let par = quonto_rewrite(&q, &tgds, &opts(false, 3)).unwrap();
            if !seq.stats.budget_exhausted {
                assert_equal("QO", seed, &seq, &par);
            }
            let seq = requiem_rewrite(&q, &tgds, &opts(false, 1)).unwrap();
            let par = requiem_rewrite(&q, &tgds, &opts(false, 3)).unwrap();
            if !seq.stats.budget_exhausted {
                assert_equal("RQ", seed, &seq, &par);
            }
        }
    }
}

#[test]
fn parallel_rewriting_is_bit_identical_on_the_benchmark_suites() {
    for bench in load_all() {
        // Per-suite query caps keep debug-mode runtime sane (A/AX q3 alone
        // cost minutes unoptimized); the release-mode rewrite_bench drives
        // every cell (q4/q5 included) and self-checks the same way.
        let queries = match bench.id {
            nyaya::ontologies::BenchmarkId::A | nyaya::ontologies::BenchmarkId::AX => 2,
            _ => 3,
        };
        for (name, query) in bench.queries.iter().take(queries) {
            let mut seq_opts = RewriteOptions::nyaya_star();
            seq_opts.max_queries = 120_000;
            seq_opts.hidden_predicates = bench.hidden_predicates.clone();
            let mut par_opts = seq_opts.clone();
            par_opts.parallel_workers = 4;
            let seq = tgd_rewrite(query, &bench.normalized, &[], &seq_opts).unwrap();
            let par = tgd_rewrite(query, &bench.normalized, &[], &par_opts).unwrap();
            assert!(
                !seq.stats.budget_exhausted,
                "{} {name}: unexpected budget exhaustion",
                bench.id
            );
            assert_eq!(
                seq.ucq.to_string(),
                par.ucq.to_string(),
                "{} {name}: parallel NY⋆ differs from sequential",
                bench.id
            );
            assert_eq!(
                comparable(&seq.stats),
                comparable(&par.stats),
                "{} {name}: parallel stats differ from sequential",
                bench.id
            );
        }
    }
}
