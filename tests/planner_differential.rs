//! Randomized differential testing of the cost-based planner and the
//! result-modifier (`SelectOptions`) execution paths.
//!
//! The greedy planner that shipped before the cost model is preserved
//! verbatim (`execute_ucq_greedy` / `plan_cq`) as an in-tree oracle.
//! For hundreds of seeded random databases, unions and modifier
//! combinations, three independent evaluations must agree:
//!
//! - the cost-based planner (hash-vs-merge per join, index statistics,
//!   optional cardinality-feedback correction),
//! - the preserved greedy planner, and
//! - the seed reference engine (`nyaya_sql::reference`, textual order,
//!   no indexes).
//!
//! Modifier queries additionally must match the reference semantics
//! `apply_select` (filter → group/aggregate → sort → limit) applied to
//! the reference engine's answer set — whichever fast path (aggregate
//! pushdown, top-k walk, range index scan) the engine picked. Every
//! assertion prints the failing seed so a mismatch reproduces exactly.

use nyaya_core::select::{apply_select, ColumnFilter, FilterOp, SelectOptions};
use nyaya_ontologies::fuzz::{random_select_ucq, random_ucq};
use nyaya_ontologies::rng::Prng;
use nyaya_ontologies::{random_database, FuzzConfig};
use nyaya_sql::{
    execute_ucq, execute_ucq_corrected, execute_ucq_greedy, execute_ucq_select, reference,
    BuildCache, Database,
};

/// Seeds each harness sweeps. The acceptance criterion for the planner
/// rework is zero mismatches across at least 300 random seeds.
const SEEDS: u64 = 300;

#[test]
fn cost_planner_matches_greedy_oracle_and_reference_engine() {
    let config = FuzzConfig::default();
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let ucq = random_ucq(&mut rng, &config);

        let cost_planned = execute_ucq(&db, &ucq);
        let greedy = execute_ucq_greedy(&db, &ucq);
        assert_eq!(
            cost_planned, greedy,
            "seed {seed}: cost-based plan disagrees with the preserved greedy \
             planner on {ucq}"
        );
        let seed_engine = reference::execute_ucq_reference(&db, &ucq);
        assert_eq!(
            cost_planned, seed_engine,
            "seed {seed}: cost-based plan disagrees with the reference engine \
             on {ucq}"
        );
    }
}

#[test]
fn corrected_plans_stay_answer_identical_across_the_feedback_range() {
    // Whatever the cardinality-feedback loop multiplies into the
    // estimates — from "estimates were 64x too high" to "64x too low" —
    // the chosen plan may change but the answers must not.
    let config = FuzzConfig::default();
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(0xC0_57ED ^ seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let ucq = random_ucq(&mut rng, &config);
        let baseline = execute_ucq_greedy(&db, &ucq);
        for correction in [1.0 / 64.0, 0.25, 1.0, 4.0, 64.0] {
            let cache = BuildCache::new();
            let (got, _) = execute_ucq_corrected(&db, &ucq, 1, &cache, correction);
            assert_eq!(
                got, baseline,
                "seed {seed}: correction {correction} changed the answers on {ucq}"
            );
        }
    }
}

#[test]
fn modifier_execution_matches_reference_semantics() {
    let config = FuzzConfig::default();
    let mut fast_paths = 0u64;
    let mut fallbacks = 0u64;
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(0x5E1EC7 ^ (seed << 1));
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let (ucq, sel) = random_select_ucq(&mut rng, &config);

        let cache = BuildCache::new();
        let (got, metrics) = execute_ucq_select(&db, &ucq, &sel, 1, &cache)
            .unwrap_or_else(|e| panic!("seed {seed}: fuzzer made invalid options: {e}"));
        let expected = apply_select(reference::execute_ucq_reference(&db, &ucq), &sel);
        assert_eq!(
            got, expected,
            "seed {seed}: modifier execution disagrees with apply_select over \
             the reference answers on {ucq} with {sel:?}"
        );
        fast_paths +=
            metrics.aggregate_pushdowns + metrics.topk_early_exits + metrics.range_index_scans;
        fallbacks += metrics.filter_fallback_scans;
    }
    // The sweep must have exercised both the index fast paths and the
    // counted fallback — otherwise the differential proves nothing about
    // one of them.
    assert!(
        fast_paths > 0,
        "no fast path ever fired across {SEEDS} seeds"
    );
    assert!(fallbacks > 0, "no counted fallback across {SEEDS} seeds");
}

#[test]
fn cardinality_feedback_repicks_the_plan_when_the_estimate_misses() {
    use nyaya::{KnowledgeBase, UpdateBatch, REPLAN_RATIO};

    // A skewed join the uniform-distinct estimate gets badly wrong:
    // p = {hub}, and r has 100 rows over 51 distinct keys — but 50 of
    // them share the key `hub`. The estimate (|p|·|r|/distinct ≈ 2) is
    // ≥ 8x under the actual 50 rows, so the first execution must trip
    // the feedback loop and later plans must carry the correction.
    const {
        assert!(REPLAN_RATIO < 25.0, "test skew must exceed the threshold");
    }
    // Answer cache off: this test measures *re-execution* under the
    // corrected plan, which an answer-cache hit would skip.
    let kb = KnowledgeBase::builder()
        .program_text("q(X, Y) :- p(X), r(X, Y).")
        .unwrap()
        .answer_cache(false)
        .build()
        .unwrap();
    let mut batch = UpdateBatch::new().insert(nyaya_core::Atom::make("p", ["hub"]));
    for i in 0..50 {
        batch = batch
            .insert(nyaya_core::Atom::make(
                "r",
                ["hub", format!("y{i}").as_str()],
            ))
            .insert(nyaya_core::Atom::make(
                "r",
                [format!("x{i}").as_str(), format!("z{i}").as_str()],
            ));
    }
    kb.apply(batch).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();

    assert_eq!(kb.plan_correction(&prepared), 1.0, "no feedback yet");
    let first = kb.execute(&prepared).unwrap();
    assert_eq!(first.tuples.len(), 50);
    let correction = kb.plan_correction(&prepared);
    assert!(
        correction > 1.0,
        "a ≥8x estimate miss must store a correction, got {correction}"
    );
    assert_eq!(kb.stats().plan_replans, 1, "{:?}", kb.stats());

    // The corrected plan answers identically, and the learned factor is
    // now visible in the explain text.
    let second = kb.execute(&prepared).unwrap();
    assert_eq!(second.tuples, first.tuples);
    let explain = kb
        .explain(&prepared, &nyaya_core::SelectOptions::default())
        .unwrap();
    assert!(
        explain.contains("feedback correction:"),
        "explain must surface the learned correction:\n{explain}"
    );
    // Estimated-vs-actual is tracked per run for observability.
    let stats = kb.stats();
    assert!(stats.plan_estimated_rows > 0, "{stats:?}");
    assert!(stats.plan_actual_rows >= 100, "{stats:?}");
}

#[test]
fn unindexed_filter_fallback_is_planned_and_counted() {
    // Regression for the silent-fallback gap: a filter over the head of a
    // *join* (no single-table direct access, so no range index applies)
    // must still answer correctly AND be visible in the metrics as a
    // planned, counted scan — not an invisible degradation.
    let db = Database::from_facts(
        (0..50)
            .flat_map(|i| {
                [
                    nyaya_core::Atom::make("e", [format!("a{i}").as_str(), "hub"]),
                    nyaya_core::Atom::make("f", ["hub", format!("b{i}").as_str()]),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let cq = nyaya_parser::parse_query("q(X, Z) :- e(X, Y), f(Y, Z).").unwrap();
    let ucq = nyaya_core::UnionQuery::new(vec![cq]);
    let sel = SelectOptions {
        filters: vec![ColumnFilter {
            column: 0,
            op: FilterOp::Le,
            value: nyaya_core::Term::constant("a3"),
        }],
        ..SelectOptions::default()
    };
    let cache = BuildCache::new();
    let (rows, metrics) = execute_ucq_select(&db, &ucq, &sel, 1, &cache).unwrap();
    let expected = apply_select(reference::execute_ucq_reference(&db, &ucq), &sel);
    assert_eq!(rows, expected);
    assert!(!rows.is_empty(), "filter must keep a1/a2/a3 rows");
    assert_eq!(
        metrics.filter_fallback_scans, 1,
        "row-by-row post-filter must be counted, not silent: {metrics:?}"
    );
    assert_eq!(metrics.range_index_scans, 0, "{metrics:?}");
}
