//! Bit-identity harness for the predicate-hash scatter-gather path.
//!
//! Sharding is a pure execution-layer rearrangement: the ABox is carved
//! into per-shard views by predicate hash, UCQ disjuncts execute against
//! their home shard (cross-shard disjuncts against the full database),
//! and the per-shard answer sets union back together. None of that may
//! ever change an answer. Three layers of evidence:
//!
//! - a 300-seed random differential at the engine layer, sweeping shard
//!   counts and thread counts against the unsharded executor;
//! - the full 8-suite benchmark set (V, S, U, A, P5 + X-variants) at the
//!   knowledge-base layer, 4 shards vs 1 over identical generated ABoxes;
//! - a random-writes harness where sharded and unsharded twins ingest
//!   the same batches and must agree at every epoch — with the answer
//!   cache on and off.

use std::collections::BTreeSet;

use nyaya::core::Term;
use nyaya::ontologies::fuzz::random_ucq;
use nyaya::ontologies::rng::Prng;
use nyaya::ontologies::{
    generate_abox, load, random_database, AboxConfig, BenchmarkId, FuzzConfig,
};
use nyaya::sql::{execute_ucq_corrected, execute_ucq_sharded, BuildCache, Database};
use nyaya::{KnowledgeBase, Strategy, UpdateBatch};

const SEEDS: u64 = 300;

#[test]
fn sharded_execution_is_bit_identical_across_300_seeds() {
    let config = FuzzConfig::default();
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(0x5AA2D ^ seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let ucq = random_ucq(&mut rng, &config);

        let cache = BuildCache::new();
        let (unsharded, _) = execute_ucq_corrected(&db, &ucq, 1, &cache, 1.0);
        for shards in [2, 4, 8] {
            for threads in [1, 3] {
                let cache = BuildCache::new();
                let (sharded, metrics) =
                    execute_ucq_sharded(&db, &ucq, shards, threads, &cache, 1.0);
                assert_eq!(
                    sharded, unsharded,
                    "seed {seed}: {shards} shards x {threads} threads changed \
                     the answers on {ucq}"
                );
                assert!(
                    metrics.shard_scatter_ops >= 1,
                    "seed {seed}: scatter must be counted"
                );
            }
        }
    }
}

/// Sharded and unsharded twins over one benchmark suite must agree on
/// every checked query.
fn check_suite(id: BenchmarkId, query_indices: &[usize]) {
    let bench = load(id);
    let abox = generate_abox(
        &bench,
        &AboxConfig {
            individuals: 60,
            facts: 600,
            seed: 0xB0B ^ id as u64,
        },
    );
    let build = |shards: usize| -> KnowledgeBase {
        let kb = KnowledgeBase::builder()
            .ontology(bench.raw.clone())
            .show_aux(bench.hidden_predicates.is_empty())
            .strategy(Strategy::Ucq)
            .answer_cache(false)
            .shards(shards)
            .build()
            .expect("benchmark builds");
        kb.apply(UpdateBatch::new().insert_all(abox.iter().cloned()))
            .expect("populate");
        kb
    };
    let sharded = build(4);
    let unsharded = build(1);
    for &qi in query_indices {
        let (name, query) = &bench.queries[qi];
        let fast = sharded
            .execute(&sharded.prepare(query).unwrap())
            .unwrap_or_else(|e| panic!("{id} {name} sharded: {e}"));
        let base = unsharded
            .execute(&unsharded.prepare(query).unwrap())
            .unwrap_or_else(|e| panic!("{id} {name} unsharded: {e}"));
        assert_eq!(fast.tuples, base.tuples, "{id} {name}");
        assert_eq!(fast.complete, base.complete, "{id} {name}");
    }
    assert!(
        sharded.stats().shard_scatter_ops > 0,
        "{id}: the sharded twin never scattered: {:?}",
        sharded.stats()
    );
    assert_eq!(
        unsharded.stats().shard_scatter_ops,
        0,
        "{id}: one shard must not scatter"
    );
}

#[test]
fn all_8_suites_agree_between_4_shards_and_1() {
    // q1/q2 everywhere (debug-mode rewriting budget; the heavy P5 q4/q5
    // and S q3-q5 cells are release-harness territory), all five
    // queries on the cheap V suite.
    for id in BenchmarkId::ALL {
        check_suite(id, &[0, 1]);
    }
    check_suite(BenchmarkId::V, &[0, 1, 2, 3, 4]);
}

#[test]
fn sharded_twin_tracks_unsharded_across_random_writes() {
    const ONTOLOGY: &str = "
        t1: manager(X) -> employee(X).
        t2: employee(X) -> person(X).
        t3: works_for(X, Y) -> employee(X).
    ";
    const QUERIES: [&str; 3] = [
        "q(A) :- person(A).",
        "q(A, B) :- works_for(A, B).",
        "q(A) :- employee(A), person(A).",
    ];
    let build = |shards: usize, cache: bool| {
        KnowledgeBase::builder()
            .program_text(ONTOLOGY)
            .unwrap()
            .strategy(Strategy::Ucq)
            .shards(shards)
            .answer_cache(cache)
            .build()
            .unwrap()
    };
    let answers = |kb: &KnowledgeBase, q: &str| -> BTreeSet<Vec<Term>> {
        kb.execute(&kb.prepare_text(q).unwrap()).unwrap().tuples
    };

    for seed in 0..50u64 {
        let mut rng = Prng::seed_from_u64(0x5CA7 ^ seed);
        // Sharded with the answer cache both off and on: the cache must
        // not change what the scatter path returns, and vice versa.
        let twins = [build(4, false), build(4, true)];
        let oracle = build(1, false);
        for _ in 0..3 {
            let mut batch = UpdateBatch::new();
            for _ in 0..rng.gen_range(1..4) {
                let c = format!("c{}", rng.gen_range(0..6));
                let d = format!("c{}", rng.gen_range(0..6));
                let fact = match rng.gen_range(0..3) {
                    0 => nyaya::core::Atom::make("manager", [c.as_str()]),
                    1 => nyaya::core::Atom::make("person", [c.as_str()]),
                    _ => nyaya::core::Atom::make("works_for", [c.as_str(), d.as_str()]),
                };
                batch = if rng.gen_bool(0.2) {
                    batch.retract(fact)
                } else {
                    batch.insert(fact)
                };
            }
            for twin in &twins {
                twin.apply(batch.clone()).unwrap();
            }
            oracle.apply(batch).unwrap();
            for q in QUERIES {
                let expected = answers(&oracle, q);
                for twin in &twins {
                    // Twice, so the cached twin serves a hit the second
                    // time — which must still be the sharded answer.
                    assert_eq!(answers(twin, q), expected, "seed {seed} query {q}");
                    assert_eq!(answers(twin, q), expected, "seed {seed} query {q} (repeat)");
                }
            }
        }
    }
}
