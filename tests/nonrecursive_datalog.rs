//! The non-recursive Datalog rewriting target (Sections 2 and 8) against
//! the UCQ engine, across the benchmark suite:
//!
//! 1. unfolding the program gives a UCQ equivalent to `TGD-rewrite`'s;
//! 2. bottom-up program evaluation returns the same answers as executing
//!    the UCQ rewriting;
//! 3. on cluster-decomposable queries the program is *smaller* than the
//!    DNF it hides.
//!
//! Each (ontology, query) rewriting is computed once and re-used for all
//! three checks — the rewritings, not the checks, dominate the cost.

use std::collections::HashSet;

use nyaya::core::UnionQuery;
use nyaya::ontologies::{generate_abox, load, AboxConfig, BenchmarkId};
use nyaya::rewrite::{nr_datalog_rewrite, tgd_rewrite, ProgramStrategy, RewriteOptions};
use nyaya::sql::{execute_program, execute_ucq, Database};

/// Mutual containment of two UCQs (each disjunct of one is contained in
/// some disjunct of the other — the classical UCQ-containment criterion).
fn ucq_equivalent(a: &UnionQuery, b: &UnionQuery) -> bool {
    a.iter().all(|qa| b.iter().any(|qb| qb.contains(qa)))
        && b.iter().all(|qb| a.iter().any(|qa| qa.contains(qb)))
}

fn canonical_keys(u: &UnionQuery) -> HashSet<String> {
    u.iter()
        .map(|q| nyaya::core::canonical_key(q).as_str().to_owned())
        .collect()
}

fn check_benchmark(id: BenchmarkId, star: bool) {
    let bench = load(id);
    let config = AboxConfig {
        seed: 20260610,
        ..Default::default()
    };
    let db = Database::from_facts(generate_abox(&bench, &config));
    let mut decomposed = 0usize;
    for (name, q) in &bench.queries {
        let mut opts = if star {
            RewriteOptions::nyaya_star()
        } else {
            RewriteOptions::nyaya()
        };
        opts.hidden_predicates = bench.hidden_predicates.clone();
        let ucq = tgd_rewrite(q, &bench.normalized, &[], &opts).unwrap().ucq;
        if ucq.size() > 500 {
            continue; // keep the suite fast; covered by benches instead
        }
        let out = nr_datalog_rewrite(q, &bench.normalized, &[], &opts).unwrap();
        let program = &out.program;

        // (1) Expansion equivalence: fast canonical-key path first, full
        // semantic containment only when the sets differ syntactically.
        let expanded = program.expand();
        if canonical_keys(&ucq) != canonical_keys(&expanded) {
            assert!(
                ucq.size() <= 200 && ucq_equivalent(&ucq, &expanded) || ucq.size() > 200, // too large for containment — covered by (2)
                "{id} {name} (star={star}): expansion differs ({} vs {} CQs)",
                ucq.size(),
                expanded.size()
            );
        }

        // (2) Answer agreement on a generated ABox.
        assert_eq!(
            execute_ucq(&db, &ucq),
            execute_program(&db, program).expect("suite programs evaluate"),
            "{id} {name} (star={star}): answers differ"
        );

        // (3) Size accounting for decomposed queries.
        if let ProgramStrategy::Clustered { clusters } = out.strategy {
            assert!(clusters >= 2, "{id} {name}");
            decomposed += 1;
        }
    }
    // V/S/U have several decomposable queries; P5 has none (chain queries
    // are one interaction cluster). The expectation only applies when all
    // five queries run — with star=false the size cap skips the large ones.
    match id {
        BenchmarkId::P5 => assert_eq!(decomposed, 0, "P5 chains must not split"),
        BenchmarkId::S | BenchmarkId::U if star => {
            assert!(decomposed >= 2, "{id}: expected decomposable queries")
        }
        _ => {}
    }
}

#[test]
fn vicodi_programs_match_ucq() {
    check_benchmark(BenchmarkId::V, true);
}

#[test]
fn stockexchange_programs_match_ucq() {
    check_benchmark(BenchmarkId::S, true);
}

#[test]
fn university_programs_match_ucq() {
    check_benchmark(BenchmarkId::U, true);
}

#[test]
fn adolena_programs_match_ucq() {
    check_benchmark(BenchmarkId::A, true);
}

#[test]
fn path5_programs_match_ucq() {
    check_benchmark(BenchmarkId::P5, true);
}

#[test]
fn plain_ny_programs_match_ucq_on_stockexchange() {
    // Without elimination the DNF is much larger — exercise the clustered
    // construction where it matters most.
    check_benchmark(BenchmarkId::S, false);
}

#[test]
fn clustered_programs_beat_the_dnf_in_size() {
    let mut saved = 0usize;
    for id in [BenchmarkId::S, BenchmarkId::U] {
        let bench = load(id);
        for (_, q) in &bench.queries {
            let mut opts = RewriteOptions::nyaya();
            opts.hidden_predicates = bench.hidden_predicates.clone();
            let out = nr_datalog_rewrite(q, &bench.normalized, &[], &opts).unwrap();
            if matches!(out.strategy, ProgramStrategy::Clustered { .. }) {
                let ucq = tgd_rewrite(q, &bench.normalized, &[], &opts).unwrap().ucq;
                if out.program.total_atoms() < ucq.length() {
                    saved += 1;
                }
            }
        }
    }
    assert!(
        saved >= 3,
        "expected the program to beat the DNF on several S/U queries, got {saved}"
    );
}

#[test]
fn x_variant_programs_stay_sound() {
    // The UX benchmark exposes the auxiliary predicates; programs must
    // still evaluate to the same answers as the UCQ.
    let bench = load(BenchmarkId::UX);
    let config = AboxConfig {
        seed: 7,
        ..Default::default()
    };
    let db = Database::from_facts(generate_abox(&bench, &config));
    for (name, q) in bench.queries.iter().take(2) {
        let opts = RewriteOptions::nyaya_star();
        let ucq = tgd_rewrite(q, &bench.normalized, &[], &opts).unwrap().ucq;
        let program = nr_datalog_rewrite(q, &bench.normalized, &[], &opts)
            .unwrap()
            .program;
        assert_eq!(
            execute_ucq(&db, &ucq),
            execute_program(&db, &program).expect("UX programs evaluate"),
            "UX {name}"
        );
    }
}
