//! Sorted-index maintenance under random update traffic.
//!
//! The engine keeps, per (predicate, column), the distinct values in
//! canonical order next to the hash postings (the range/merge-join
//! index). These suites pin the maintenance contract:
//!
//! 1. After every one of 200 seeded insert/retract batches, the
//!    incrementally-maintained sorted index is **identical** to the one a
//!    from-scratch `Database::from_facts` rebuild produces — same values,
//!    same canonical order — and every indexed value's posting list
//!    points at rows that actually carry it (the swap-remove renumbering
//!    path).
//! 2. Kill-and-reopen: serializing the live database through the segment
//!    codec and decoding it back yields the same sorted indexes and the
//!    same answers, so durability does not depend on insertion order or
//!    in-memory interner state.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use nyaya::prelude::*;
use nyaya::UpdateBatch;
use nyaya_ontologies::rng::Prng;
use nyaya_sql::{decode_database, encode_database, execute_ucq};

const TAXONOMY: &str = "
    s0: c0(X) -> top(X).
    s1: c1(X) -> top(X).
    s2: c2(X) -> top(X).
    s3: c3(X) -> top(X).
    s4: c4(X) -> top(X).
    s5: c5(X) -> top(X).
    q(X, Y) :- top(X), edge(X, Y), top(Y).
";

fn random_fact(rng: &mut Prng, individuals: usize) -> Atom {
    let ind = |rng: &mut Prng| format!("i{}", rng.gen_range(0..individuals));
    match rng.gen_range(0..8) {
        0..=5 => {
            let class = format!("c{}", rng.gen_range(0..6));
            Atom::make(&class, [ind(rng).as_str()])
        }
        6 => Atom::make("top", [ind(rng).as_str()]),
        _ => {
            let (a, b) = (ind(rng), ind(rng));
            Atom::make("edge", [a.as_str(), b.as_str()])
        }
    }
}

/// Retraction-heavy batches: the sorted index's delete path (value
/// drained from a column, swap-remove renumbering of the moved last row)
/// only fires when retractions actually land.
fn random_batch(rng: &mut Prng, live: &BTreeSet<Atom>, individuals: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..6) {
        batch = batch.insert(random_fact(rng, individuals));
    }
    let live_vec: Vec<&Atom> = live.iter().collect();
    for _ in 0..rng.gen_range(0..5) {
        if !live_vec.is_empty() && rng.gen_bool(0.8) {
            batch = batch.retract(live_vec[rng.gen_range(0..live_vec.len())].clone());
        } else {
            batch = batch.retract(random_fact(rng, individuals));
        }
    }
    batch
}

fn apply_to_model(model: &mut BTreeSet<Atom>, batch: &UpdateBatch) {
    for f in batch.retracts() {
        model.remove(f);
    }
    for f in batch.inserts() {
        model.insert(f.clone());
    }
}

/// Every sorted-index invariant of one database, checked against a
/// from-scratch rebuild of the same fact set.
fn assert_indexes_match(db: &Database, rebuilt: &Database, context: &str) {
    let mut preds: Vec<Predicate> = db.predicates().collect();
    let mut rebuilt_preds: Vec<Predicate> = rebuilt.predicates().collect();
    preds.sort();
    rebuilt_preds.sort();
    assert_eq!(preds, rebuilt_preds, "{context}: live predicate sets");

    for pred in preds {
        assert_eq!(
            db.table_len(pred),
            rebuilt.table_len(pred),
            "{context}: {pred:?} row count"
        );
        for col in 0..pred.arity {
            let live = db.sorted_values(pred, col);
            let fresh = rebuilt.sorted_values(pred, col);
            assert_eq!(live, fresh, "{context}: {pred:?} col {col} sorted index");
            assert_eq!(
                live.len(),
                db.distinct(pred, col),
                "{context}: {pred:?} col {col} index covers every distinct value"
            );
            // Canonical order is strict: no duplicates, no inversions.
            for pair in live.windows(2) {
                assert_eq!(
                    pair[0].canonical_cmp(&pair[1]),
                    Ordering::Less,
                    "{context}: {pred:?} col {col} out of order"
                );
            }
            // Each indexed value's postings point at rows that actually
            // carry it — stale row ids left by swap-remove renumbering
            // would fail here.
            for value in live {
                let posting = db.posting(pred, col, &value);
                assert!(
                    !posting.is_empty(),
                    "{context}: {pred:?} col {col} indexed value {value} has no rows"
                );
                for &row_id in posting {
                    let row = db.row(pred, row_id);
                    assert_eq!(
                        row[col], value,
                        "{context}: {pred:?} col {col} posting points at a renumbered row"
                    );
                }
            }
        }
    }
}

#[test]
fn two_hundred_seeded_batches_keep_sorted_indexes_identical_to_rebuilds() {
    let mut rng = Prng::seed_from_u64(0x50F7ED);
    let kb = KnowledgeBase::from_program_text(TAXONOMY).unwrap();
    let mut model: BTreeSet<Atom> = BTreeSet::new();

    for round in 0..200u64 {
        let batch = random_batch(&mut rng, &model, 20);
        apply_to_model(&mut model, &batch);
        kb.apply(batch).unwrap();

        let snapshot = kb.snapshot();
        let rebuilt = Database::from_facts(model.iter().cloned());
        assert_indexes_match(snapshot.database(), &rebuilt, &format!("round {round}"));
    }
}

#[test]
fn sorted_indexes_survive_kill_and_reopen_through_the_segment_codec() {
    let mut rng = Prng::seed_from_u64(0xD1E0FF);
    let kb = KnowledgeBase::from_program_text(TAXONOMY).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let rewriting = kb.rewriting(&prepared).unwrap();
    let mut model: BTreeSet<Atom> = BTreeSet::new();

    for round in 0..200u64 {
        let batch = random_batch(&mut rng, &model, 20);
        apply_to_model(&mut model, &batch);
        kb.apply(batch).unwrap();

        // "Kill": serialize the live epoch into segment bytes. "Reopen":
        // decode them into a fresh database, as ledger recovery does.
        if round % 10 == 9 {
            let snapshot = kb.snapshot();
            let bytes = encode_database(snapshot.database());
            let reopened = decode_database(&bytes).unwrap();
            assert_indexes_match(
                &reopened,
                &Database::from_facts(model.iter().cloned()),
                &format!("round {round} (reopened)"),
            );
            // The reopened database answers exactly like the live one.
            assert_eq!(
                execute_ucq(&reopened, &rewriting.ucq),
                kb.execute(&prepared).unwrap().tuples,
                "round {round}: reopened answers"
            );
            // Segment bytes are canonical: re-encoding the decoded
            // database reproduces them bit for bit.
            assert_eq!(
                encode_database(&reopened),
                bytes,
                "round {round}: canonical segment bytes"
            );
        }
    }
}
