//! Property-based validation of Theorems 6 and 10: for random linear
//! ontologies, random databases and random BCQs,
//! `D ⊨ TGD-rewrite(q, Σ) ⇔ chase(D, Σ) ⊨ q`, and likewise for
//! TGD-rewrite⋆. The QuOnto- and Requiem-style baselines must agree on
//! entailment too.

use proptest::prelude::*;

use nyaya::chase::{chase, entails_bcq, ChaseConfig, Instance};
use nyaya::core::{Atom, ConjunctiveQuery, Predicate, Term, Tgd};
use nyaya::rewrite::{quonto_rewrite, requiem_rewrite, tgd_rewrite, RewriteOptions};
use nyaya::sql::{execute_ucq, Database};

/// Predicates: p1..p3 unary, r1..r3 binary.
fn pred(i: usize) -> Predicate {
    if i < 3 {
        Predicate::new(["p1", "p2", "p3"][i], 1)
    } else {
        Predicate::new(["r1", "r2", "r3"][i - 3], 2)
    }
}

fn var(i: usize) -> Term {
    Term::var(["X", "Y", "Z", "W"][i % 4])
}

fn atom_strategy(max_var: usize) -> impl Strategy<Value = Atom> {
    (0..6usize, proptest::collection::vec(0..max_var, 2)).prop_map(|(p, vs)| {
        let pr = pred(p);
        let args = (0..pr.arity).map(|k| var(vs[k])).collect();
        Atom::new(pr, args)
    })
}

/// A random *linear, normal* TGD: one body atom, one head atom, and any
/// head variable not in the body is existential — normality is enforced by
/// deduplicating existential occurrences.
fn tgd_strategy() -> impl Strategy<Value = Tgd> {
    (atom_strategy(2), atom_strategy(3)).prop_filter_map("normal tgd", |(body, head)| {
        let tgd = Tgd::new(vec![body], vec![head]);
        tgd.is_normal().then_some(tgd)
    })
}

fn db_strategy() -> impl Strategy<Value = Vec<Atom>> {
    proptest::collection::vec(
        (0..6usize, proptest::collection::vec(0..3usize, 2)).prop_map(|(p, cs)| {
            let pr = pred(p);
            let names = ["a", "b", "c"];
            let args = (0..pr.arity).map(|k| Term::constant(names[cs[k]])).collect();
            Atom::new(pr, args)
        }),
        1..6,
    )
}

fn bcq_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    proptest::collection::vec(atom_strategy(4), 1..4)
        .prop_map(ConjunctiveQuery::boolean)
}

/// Chase deep enough that, for these tiny linear ontologies, every BCQ with
/// ≤ 3 atoms entailed at all is entailed within the bound. With ≤ 6 rules
/// over 6 predicates, atom shapes repeat after a handful of rounds; 12
/// rounds is generous (validated by the saturation flag below: most runs
/// saturate outright).
const CHASE: ChaseConfig = ChaseConfig {
    max_rounds: 12,
    max_atoms: 60_000,
    kind: nyaya::chase::ChaseKind::Restricted,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rewriting_matches_chase_semantics(
        tgds in proptest::collection::vec(tgd_strategy(), 1..5),
        facts in db_strategy(),
        q in bcq_strategy(),
    ) {
        let db = Instance::from_atoms(facts.clone());
        let outcome = chase(&db, &tgds, CHASE);
        // Only saturated chases give an exact oracle; budget-limited runs
        // are skipped (rare with these sizes).
        prop_assume!(outcome.saturated);
        let expected = entails_bcq(&outcome.instance, &q);

        let mut opts = RewriteOptions::nyaya();
        opts.max_queries = 40_000;
        let rewriting = tgd_rewrite(&q, &tgds, &[], &opts).unwrap();
        prop_assume!(!rewriting.stats.budget_exhausted);

        let sql_db = Database::from_facts(facts);
        let got = !execute_ucq(&sql_db, &rewriting.ucq).is_empty();
        prop_assert_eq!(
            got, expected,
            "NY disagrees with chase\nΣ = {:?}\nq = {}\nrewriting:\n{}",
            tgds, q, rewriting.ucq
        );
    }

    #[test]
    fn star_rewriting_matches_plain(
        tgds in proptest::collection::vec(tgd_strategy(), 1..5),
        facts in db_strategy(),
        q in bcq_strategy(),
    ) {
        let mut plain_opts = RewriteOptions::nyaya();
        plain_opts.max_queries = 40_000;
        let plain = tgd_rewrite(&q, &tgds, &[], &plain_opts).unwrap();
        prop_assume!(!plain.stats.budget_exhausted);
        let mut star_opts = RewriteOptions::nyaya_star();
        star_opts.max_queries = 40_000;
        let star = tgd_rewrite(&q, &tgds, &[], &star_opts).unwrap();
        prop_assume!(!star.stats.budget_exhausted);

        // Elimination may only shrink the rewriting…
        prop_assert!(star.ucq.size() <= plain.ucq.size());
        // …while preserving answers over every database.
        let sql_db = Database::from_facts(facts);
        prop_assert_eq!(
            !execute_ucq(&sql_db, &plain.ucq).is_empty(),
            !execute_ucq(&sql_db, &star.ucq).is_empty(),
            "Σ = {:?}\nq = {}", tgds, q
        );
    }

    #[test]
    fn baselines_agree_on_entailment(
        tgds in proptest::collection::vec(tgd_strategy(), 1..4),
        facts in db_strategy(),
        q in bcq_strategy(),
    ) {
        let mut opts = RewriteOptions::nyaya();
        opts.max_queries = 40_000;
        let qo = quonto_rewrite(&q, &tgds, &opts).unwrap();
        let rq = requiem_rewrite(&q, &tgds, &opts).unwrap();
        let ny = tgd_rewrite(&q, &tgds, &[], &opts).unwrap();
        prop_assume!(
            !qo.stats.budget_exhausted
                && !rq.stats.budget_exhausted
                && !ny.stats.budget_exhausted
        );

        let sql_db = Database::from_facts(facts);
        let answers = [
            !execute_ucq(&sql_db, &qo.ucq).is_empty(),
            !execute_ucq(&sql_db, &rq.ucq).is_empty(),
            !execute_ucq(&sql_db, &ny.ucq).is_empty(),
        ];
        prop_assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "QO/RQ/NY disagree: {:?}\nΣ = {:?}\nq = {}",
            answers, tgds, q
        );
    }
}
