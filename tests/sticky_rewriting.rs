//! TGD-rewrite beyond linear TGDs: sticky sets (Section 4.1/5).
//!
//! Algorithm 1 is sound and complete for arbitrary TGDs (Theorem 6) and
//! terminates for sticky sets (Theorem 7). These tests run the engine on
//! non-linear sticky ontologies — the fragment where Datalog± strictly
//! exceeds DL-Lite — and validate against the chase.

use nyaya::chase::{chase, entails_bcq, ChaseConfig, Instance};
use nyaya::core::{classes, normalize, ConjunctiveQuery};
use nyaya::parser::parse_program;
use nyaya::rewrite::{tgd_rewrite, RewriteOptions};
use nyaya::sql::{execute_ucq, Database};

#[test]
fn example5_sticky_set_rewrites_and_terminates() {
    // Example 5's TGD: t(X), s(Y) → ∃Z p(Y,Z) — non-linear, sticky.
    let program = parse_program(
        "
        sig: t(X), s(Y) -> p(Y, Z).
        q() :- p(B, C).
        ",
    )
    .unwrap();
    assert!(!classes::is_linear(&program.ontology.tgds));
    assert!(classes::is_sticky(&program.ontology.tgds));

    let norm = normalize(&program.ontology.tgds);
    let r = tgd_rewrite(
        &program.queries[0],
        &norm.tgds,
        &[],
        &RewriteOptions::nyaya(),
    );
    assert!(!r.stats.budget_exhausted);
    // q() ← p(B,C)  ∨  q() ← t(X), s(Y).
    assert_eq!(r.ucq.size(), 2, "{}", r.ucq);

    // Validate on data: t and s facts entail q through the rewriting.
    let db = Database::from_facts([
        nyaya::core::Atom::make("t", ["a"]),
        nyaya::core::Atom::make("s", ["b"]),
    ]);
    assert!(!execute_ucq(&db, &r.ucq).is_empty());
    let empty_db = Database::from_facts([nyaya::core::Atom::make("t", ["a"])]);
    assert!(execute_ucq(&empty_db, &r.ucq).is_empty());
}

#[test]
fn sticky_join_ontology_with_ternary_predicates() {
    // The paper's argument for Datalog± (Section 1): n-ary predicates are
    // native. A sticky, non-linear set over the ternary stock schema.
    // Stickiness requires join variables to "stick" to all derived atoms,
    // so the stock S is propagated through every head.
    let program = parse_program(
        "
        % a portfolio position plus an index listing yield an exposure
        r1: stock_portf(C, S, Q), list_comp(S, L) -> exposure(C, S, L).
        % every exposure is reported in some filing
        r2: exposure(C, S, L) -> filing(C, S, L, F).
        q() :- filing(C, S, nasdaq, F).
        ",
    )
    .unwrap();
    let tgds = &program.ontology.tgds;
    assert!(!classes::is_linear(tgds));
    assert!(classes::is_sticky(tgds), "S sticks to every derived atom");

    let norm = normalize(tgds);
    let r = tgd_rewrite(&program.queries[0], &norm.tgds, &[], &RewriteOptions::nyaya());
    assert!(!r.stats.budget_exhausted);
    // filing ∨ exposure ∨ (stock_portf ⋈ list_comp)
    assert_eq!(r.ucq.size(), 3, "{}", r.ucq);

    // Cross-check entailment against the chase on two databases.
    for (facts, expected) in [
        (
            vec![
                nyaya::core::Atom::make("stock_portf", ["fund1", "ibm_s", "q10"]),
                nyaya::core::Atom::make("list_comp", ["ibm_s", "nasdaq"]),
            ],
            true,
        ),
        (
            vec![
                nyaya::core::Atom::make("stock_portf", ["fund1", "ibm_s", "q10"]),
                nyaya::core::Atom::make("list_comp", ["sap_s", "nasdaq"]),
            ],
            false,
        ),
    ] {
        let db = Database::from_facts(facts.clone());
        let got = !execute_ucq(&db, &r.ucq).is_empty();
        assert_eq!(got, expected, "rewriting wrong on {facts:?}");

        let instance = Instance::from_atoms(facts);
        let out = chase(&instance, &norm.tgds, ChaseConfig::default());
        assert!(out.saturated);
        let q = ConjunctiveQuery::boolean(program.queries[0].body.clone());
        assert_eq!(entails_bcq(&out.instance, &q), expected);
    }
}

#[test]
fn non_sticky_set_still_rewrites_under_budget() {
    // Transitivity is neither guarded-friendly for rewriting nor sticky; the
    // rewriting of a chain query under it does not terminate. The budget
    // must stop the engine and report truncation instead of spinning.
    let program = parse_program(
        "
        tr: e(X, Y), e(Y, Z) -> e(X, Z).
        q() :- e(a, b).
        ",
    )
    .unwrap();
    assert!(!classes::is_sticky(&program.ontology.tgds));
    let mut opts = RewriteOptions::nyaya();
    opts.max_queries = 500;
    let r = tgd_rewrite(&program.queries[0], &program.ontology.tgds, &[], &opts);
    assert!(r.stats.budget_exhausted);
}

#[test]
fn sticky_marking_matches_paper_intuition() {
    // r(X,Y), r(Y,Z) → r(X,Z): Y marked twice → not sticky (Section 4.1).
    let t = parse_program("tr: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
    assert!(!classes::is_sticky(&t.ontology.tgds));
    // r(X,Y), s(X,Y,Z) → ∃W s(Z,X,W) is guarded (via the s-atom).
    let g = parse_program("g: r(X, Y), s(X, Y, Z) -> s2(Z, X, W).").unwrap();
    assert!(classes::is_guarded(&g.ontology.tgds));
}
