//! TGD-rewrite beyond linear TGDs: sticky sets (Section 4.1/5).
//!
//! Algorithm 1 is sound and complete for arbitrary TGDs (Theorem 6) and
//! terminates for sticky sets (Theorem 7). These tests run the facade on
//! non-linear sticky ontologies — the fragment where Datalog± strictly
//! exceeds DL-Lite — and validate against the chase backend.

use nyaya::core::classes;
use nyaya::prelude::*;

#[test]
fn example5_sticky_set_rewrites_and_terminates() {
    // Example 5's TGD: t(X), s(Y) → ∃Z p(Y,Z) — non-linear, sticky.
    let kb = KnowledgeBase::from_program_text(
        "
        sig: t(X), s(Y) -> p(Y, Z).
        t(a). s(b).
        q() :- p(B, C).
        ",
    )
    .unwrap();
    assert!(!kb.classification().linear);
    assert!(kb.classification().sticky);
    // Sticky ⇒ FO-rewritable ⇒ the in-memory UCQ backend, and plain
    // TGD-rewrite (elimination is only proven for linear sets).
    assert_eq!(kb.executor_kind(), ExecutorKind::InMemory);
    assert_eq!(kb.default_algorithm(), Algorithm::Nyaya);

    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    // q() ← p(B,C)  ∨  q() ← t(X), s(Y).
    let r = kb.rewriting(&prepared).unwrap();
    assert_eq!(r.ucq.size(), 2, "{}", r.ucq);

    // Validate on data: t and s facts entail q through the rewriting.
    assert!(!kb.execute(&prepared).unwrap().tuples.is_empty());
    let empty_kb = KnowledgeBase::from_program_text(
        "
        sig: t(X), s(Y) -> p(Y, Z).
        t(a).
        q() :- p(B, C).
        ",
    )
    .unwrap();
    let prepared = empty_kb.prepare(&empty_kb.queries()[0].clone()).unwrap();
    assert!(empty_kb.execute(&prepared).unwrap().tuples.is_empty());
}

#[test]
fn sticky_join_ontology_with_ternary_predicates() {
    // The paper's argument for Datalog± (Section 1): n-ary predicates are
    // native. A sticky, non-linear set over the ternary stock schema.
    // Stickiness requires join variables to "stick" to all derived atoms,
    // so the stock S is propagated through every head.
    const PROGRAM: &str = "
        % a portfolio position plus an index listing yield an exposure
        r1: stock_portf(C, S, Q), list_comp(S, L) -> exposure(C, S, L).
        % every exposure is reported in some filing
        r2: exposure(C, S, L) -> filing(C, S, L, F).
        q() :- filing(C, S, nasdaq, F).
    ";
    let probe = KnowledgeBase::from_program_text(PROGRAM).unwrap();
    assert!(!probe.classification().linear);
    assert!(
        probe.classification().sticky,
        "S sticks to every derived atom"
    );

    // filing ∨ exposure ∨ (stock_portf ⋈ list_comp)
    let r = probe
        .rewriting(&probe.prepare(&probe.queries()[0].clone()).unwrap())
        .unwrap();
    assert_eq!(r.ucq.size(), 3, "{}", r.ucq);

    // Cross-check entailment against the chase backend on two databases.
    for (facts, expected) in [
        (
            vec![
                Atom::make("stock_portf", ["fund1", "ibm_s", "q10"]),
                Atom::make("list_comp", ["ibm_s", "nasdaq"]),
            ],
            true,
        ),
        (
            vec![
                Atom::make("stock_portf", ["fund1", "ibm_s", "q10"]),
                Atom::make("list_comp", ["sap_s", "nasdaq"]),
            ],
            false,
        ),
    ] {
        let kb = KnowledgeBase::builder()
            .program_text(PROGRAM)
            .unwrap()
            .facts(facts.clone())
            .build()
            .unwrap();
        let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
        let got = !kb.execute(&prepared).unwrap().tuples.is_empty();
        assert_eq!(got, expected, "rewriting wrong on {facts:?}");

        let oracle = kb.execute_on(&prepared, ExecutorKind::Chase).unwrap();
        assert!(oracle.complete);
        assert_eq!(
            !oracle.tuples.is_empty(),
            expected,
            "chase wrong on {facts:?}"
        );
    }
}

#[test]
fn non_sticky_set_still_rewrites_under_budget() {
    // Transitivity is neither guarded-friendly for rewriting nor sticky; the
    // rewriting of a chain query under it does not terminate. The budget
    // must stop the engine and surface a typed error instead of spinning —
    // and the facade must fall back to the chase backend for execution.
    let kb = KnowledgeBase::builder()
        .program_text(
            "
            tr: e(X, Y), e(Y, Z) -> e(X, Z).
            e(a, m). e(m, b).
            q() :- e(a, b).
            ",
        )
        .unwrap()
        .max_queries(500)
        .build()
        .unwrap();
    assert!(!kb.classification().sticky);
    assert!(!kb.classification().fo_rewritable());
    // Not FO-rewritable ⇒ the chase backend was auto-selected…
    assert_eq!(kb.executor_kind(), ExecutorKind::Chase);

    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    // …and it answers the transitive query without any rewriting.
    let answers = kb.execute(&prepared).unwrap();
    assert!(answers.complete);
    assert_eq!(answers.tuples.len(), 1, "e(a,b) is certain");
    assert_eq!(kb.stats().cache_misses, 0, "chase backend never rewrites");

    // Forcing the UCQ backend runs the rewriting, which hits the budget
    // and reports a typed error rather than an incomplete answer set.
    match kb.execute_on(&prepared, ExecutorKind::InMemory) {
        Err(NyayaError::BudgetExhausted { budget: 500, .. }) => {}
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

#[test]
fn sticky_marking_matches_paper_intuition() {
    // r(X,Y), r(Y,Z) → r(X,Z): Y marked twice → not sticky (Section 4.1).
    let t = parse_program("tr: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
    assert!(!classes::is_sticky(&t.ontology.tgds));
    // r(X,Y), s(X,Y,Z) → ∃W s(Z,X,W) is guarded (via the s-atom).
    let g = parse_program("g: r(X, Y), s(X, Y, Z) -> s2(Z, X, W).").unwrap();
    assert!(classes::is_guarded(&g.ontology.tgds));
}
