//! The incremental-update contract: batched ABox writes, epoch-stamped
//! snapshots, and per-predicate cache invalidation.
//!
//! Three pillars, each pinned by a seeded/deterministic suite:
//!
//! 1. **Differential correctness** — after every one of hundreds of
//!    random insert/retract batches, the incrementally-maintained
//!    knowledge base answers exactly like a from-scratch
//!    `Database::from_facts` rebuild of the same fact set, and the
//!    repaired indexes (postings, distinct counts) agree with rebuilt
//!    ones.
//! 2. **Snapshot isolation** — readers pinned to an epoch see
//!    bit-identical answers no matter how far the writer advances, and
//!    concurrent readers only ever observe published epochs whose
//!    answers match the writer's own per-epoch expectation.
//! 3. **Invalidation granularity** — a write to predicate P evicts only
//!    P-keyed build-cache entries; compiled rewritings (TBox-only)
//!    survive every data write.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use nyaya::prelude::*;
use nyaya::UpdateBatch;
use nyaya_ontologies::rng::Prng;
use nyaya_sql::execute_ucq;

/// A small linear taxonomy: six subclasses under `top`, queried through
/// a binary join — the rewriting has (6+1)² = 49 disjuncts, so every
/// batch exercises a realistically wide union.
const TAXONOMY: &str = "
    s0: c0(X) -> top(X).
    s1: c1(X) -> top(X).
    s2: c2(X) -> top(X).
    s3: c3(X) -> top(X).
    s4: c4(X) -> top(X).
    s5: c5(X) -> top(X).
    q(X, Y) :- top(X), edge(X, Y), top(Y).
";

/// A random ground fact over the taxonomy's schema.
fn random_fact(rng: &mut Prng, individuals: usize) -> Atom {
    let ind = |rng: &mut Prng| format!("i{}", rng.gen_range(0..individuals));
    match rng.gen_range(0..8) {
        0..=5 => {
            let class = format!("c{}", rng.gen_range(0..6));
            Atom::make(&class, [ind(rng).as_str()])
        }
        6 => Atom::make("top", [ind(rng).as_str()]),
        _ => {
            let (a, b) = (ind(rng), ind(rng));
            Atom::make("edge", [a.as_str(), b.as_str()])
        }
    }
}

/// A random batch: a few inserts, and retractions drawn (mostly) from
/// the currently live facts so they actually hit.
fn random_batch(rng: &mut Prng, live: &BTreeSet<Atom>, individuals: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..5) {
        batch = batch.insert(random_fact(rng, individuals));
    }
    let retractions = rng.gen_range(0..4);
    let live_vec: Vec<&Atom> = live.iter().collect();
    for _ in 0..retractions {
        if !live_vec.is_empty() && rng.gen_bool(0.7) {
            batch = batch.retract(live_vec[rng.gen_range(0..live_vec.len())].clone());
        } else {
            // Sometimes retract something that may not exist: must no-op.
            batch = batch.retract(random_fact(rng, individuals));
        }
    }
    batch
}

/// Mirror `KnowledgeBase::apply` semantics on a plain fact set:
/// retractions first, then insertions, set semantics throughout.
fn apply_to_model(model: &mut BTreeSet<Atom>, batch: &UpdateBatch) {
    for f in batch.retracts() {
        model.remove(f);
    }
    for f in batch.inserts() {
        model.insert(f.clone());
    }
}

#[test]
fn two_hundred_seeded_batches_match_from_scratch_rebuilds() {
    let mut rng = Prng::seed_from_u64(0xA11CE);
    let kb = KnowledgeBase::from_program_text(TAXONOMY).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let rewriting = kb.rewriting(&prepared).unwrap();
    assert!(rewriting.ucq.size() >= 49, "{}", rewriting.ucq.size());

    let mut model: BTreeSet<Atom> = BTreeSet::new();
    for round in 0..200u64 {
        let batch = random_batch(&mut rng, &model, 25);
        apply_to_model(&mut model, &batch);
        let outcome = kb.apply(batch).unwrap();
        assert_eq!(outcome.epoch, round + 1, "one epoch per batch");

        // The incrementally-maintained snapshot must hold exactly the
        // model's facts…
        let snapshot = kb.snapshot();
        assert_eq!(snapshot.len(), model.len(), "round {round}");
        assert_eq!(
            snapshot.facts(),
            model.iter().cloned().collect::<Vec<_>>(),
            "round {round}"
        );
        // …and answer exactly like a from-scratch rebuild of them.
        let rebuilt = Database::from_facts(model.iter().cloned());
        let expected = execute_ucq(&rebuilt, &rewriting.ucq);
        let got = kb.execute(&prepared).unwrap();
        assert_eq!(got.tuples, expected, "round {round}");

        // Spot-check the repaired indexes against rebuilt ones.
        for pred in rebuilt.predicates() {
            assert_eq!(
                snapshot.database().table_len(pred),
                rebuilt.table_len(pred),
                "round {round}, {pred:?}"
            );
            for col in 0..pred.arity {
                assert_eq!(
                    snapshot.database().distinct(pred, col),
                    rebuilt.distinct(pred, col),
                    "round {round}, {pred:?} col {col}"
                );
            }
        }
    }
    // Only one rewriting was ever compiled across all 200 epochs.
    assert_eq!(kb.stats().cache_misses, 1);
    assert_eq!(kb.stats().batches_applied, 200);
}

#[test]
fn concurrent_pinned_readers_see_bit_identical_answers_while_writer_advances() {
    let kb = KnowledgeBase::from_program_text(TAXONOMY).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let rewriting = kb.rewriting(&prepared).unwrap();

    // The writer records, for every epoch it publishes, the answers a
    // from-scratch rebuild of that epoch's facts produces. Readers
    // verify against this map after the fact.
    let expected: Mutex<Vec<(u64, BTreeSet<Vec<Term>>)>> = Mutex::new(Vec::new());
    expected.lock().unwrap().push((0, BTreeSet::new())); // epoch 0: empty ABox, empty answers
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writer: 200 seeded batches, back to back.
        let writer = scope.spawn(|| {
            let mut rng = Prng::seed_from_u64(0xBEE);
            let mut model: BTreeSet<Atom> = BTreeSet::new();
            for _ in 0..200u64 {
                let batch = random_batch(&mut rng, &model, 25);
                apply_to_model(&mut model, &batch);
                let answers =
                    execute_ucq(&Database::from_facts(model.iter().cloned()), &rewriting.ucq);
                let outcome = kb.apply(batch).unwrap();
                expected.lock().unwrap().push((outcome.epoch, answers));
            }
            done.store(true, Ordering::Release);
        });

        // Readers: pin a snapshot, answer it twice (with writer traffic
        // in between), and log what they saw per epoch.
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut observed: Vec<(u64, BTreeSet<Vec<Term>>)> = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        let pinned = kb.snapshot();
                        let first = kb.execute_at(&prepared, &pinned).unwrap();
                        std::thread::yield_now(); // let the writer advance
                        let second = kb.execute_at(&prepared, &pinned).unwrap();
                        assert_eq!(
                            first.tuples,
                            second.tuples,
                            "pinned epoch {} changed under a reader",
                            pinned.epoch()
                        );
                        observed.push((pinned.epoch(), first.tuples));
                    }
                    observed
                })
            })
            .collect();

        writer.join().unwrap();
        let expected = expected.lock().unwrap();
        let mut verified = 0usize;
        for reader in readers {
            for (epoch, tuples) in reader.join().unwrap() {
                let (_, want) = expected
                    .iter()
                    .find(|(e, _)| *e == epoch)
                    .unwrap_or_else(|| panic!("reader observed unpublished epoch {epoch}"));
                assert_eq!(&tuples, want, "epoch {epoch}");
                verified += 1;
            }
        }
        assert!(verified > 0, "readers observed at least one epoch");
    });
    assert_eq!(kb.epoch(), 200);
}

#[test]
fn writes_evict_only_the_touched_predicates_build_sides() {
    // No TGDs: each query rewrites to itself, so the build-cache
    // patterns are exactly one scan per queried predicate. The answer
    // cache is disabled: this test measures *re-execution* (build-cache
    // hits), which an answer-cache hit would skip entirely.
    let kb = KnowledgeBase::builder()
        .program_text(
            "
        p(a, b). p(c, d).
        r(e, f). r(g, h).
        ",
        )
        .unwrap()
        .answer_cache(false)
        .build()
        .unwrap();
    let q_p = kb.prepare_text("qp(X) :- p(X, Y).").unwrap();
    let q_r = kb.prepare_text("qr(X) :- r(X, Y).").unwrap();

    // First executions hash one build side each.
    kb.execute(&q_p).unwrap();
    kb.execute(&q_r).unwrap();
    let s = kb.stats();
    assert_eq!((s.build_cache_hits, s.build_cache_misses), (0, 2), "{s:?}");

    // Re-execution over the same snapshot hits the persistent cache.
    kb.execute(&q_p).unwrap();
    kb.execute(&q_r).unwrap();
    let s = kb.stats();
    assert_eq!((s.build_cache_hits, s.build_cache_misses), (2, 2), "{s:?}");

    // A write to p must evict p's build side and carry r's over.
    let outcome = kb
        .apply(UpdateBatch::new().insert(Atom::make("p", ["x", "y"])))
        .unwrap();
    assert_eq!(outcome.builds_invalidated, 1, "{outcome:?}");
    assert_eq!(outcome.builds_carried_over, 1, "{outcome:?}");

    kb.execute(&q_r).unwrap(); // untouched predicate: carried build hits
    let s = kb.stats();
    assert_eq!((s.build_cache_hits, s.build_cache_misses), (3, 2), "{s:?}");

    kb.execute(&q_p).unwrap(); // written predicate: rebuilt
    let s = kb.stats();
    assert_eq!((s.build_cache_hits, s.build_cache_misses), (3, 3), "{s:?}");
    assert_eq!(s.build_cache_invalidations, 1);
    assert_eq!(
        kb.execute(&q_p).unwrap().tuples.len(),
        3,
        "new fact visible"
    );
}

#[test]
fn rewriting_cache_and_hit_counters_are_unaffected_by_abox_writes() {
    let kb = KnowledgeBase::from_program_text(TAXONOMY).unwrap();
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    kb.execute(&prepared).unwrap();
    let before = kb.stats();
    assert_eq!(before.cache_misses, 1);
    assert_eq!(before.cached_rewritings, 1);

    for i in 0..10 {
        kb.apply(UpdateBatch::new().insert(Atom::make("top", [format!("i{i}").as_str()])))
            .unwrap();
        kb.execute(&prepared).unwrap();
    }
    let after = kb.stats();
    assert_eq!(
        after.cache_misses, 1,
        "ten epochs later, still exactly one compile"
    );
    assert_eq!(after.cached_rewritings, 1);
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 10,
        "every post-write execution was served from the rewriting cache"
    );
}

#[test]
fn retraction_repairs_postings_and_distinct_counts() {
    let kb = KnowledgeBase::from_program_text(
        "
        e(a, b). e(b, c). e(c, c).
        q(X) :- e(X, Y).
        ",
    )
    .unwrap();
    let e = Predicate::new("e", 2);
    assert_eq!(kb.snapshot().database().distinct(e, 1), 2); // {b, c}

    kb.apply(UpdateBatch::new().retract(Atom::make("e", ["a", "b"])))
        .unwrap();
    let snapshot = kb.snapshot();
    let db = snapshot.database();
    assert_eq!(db.table_len(e), 2);
    assert_eq!(db.distinct(e, 0), 2, "a gone from column 0");
    assert_eq!(db.distinct(e, 1), 1, "b gone from column 1");
    assert!(db.posting(e, 1, &Term::constant("b")).is_empty());
    assert_eq!(db.posting(e, 1, &Term::constant("c")).len(), 2);
    assert!(!db.contains(&Atom::make("e", ["a", "b"])));

    // And the chase-facing view follows the same epoch.
    let q = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let via_chase = kb.execute_on(&q, ExecutorKind::Chase).unwrap();
    let via_engine = kb.execute_on(&q, ExecutorKind::InMemory).unwrap();
    assert_eq!(via_chase.tuples, via_engine.tuples);
    assert_eq!(via_engine.tuples.len(), 2); // b, c
}
