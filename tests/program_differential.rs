//! Differential tests for the non-recursive Datalog program target
//! (Sections 2 and 8): the program must be indistinguishable from the
//! flat UCQ rewriting — and from the chase — everywhere.
//!
//! 1. **Triple agreement on fuzz ontologies** — on seeded random
//!    normalized-linear TGD sets, random queries and random databases:
//!    bottom-up program execution == UCQ execution == chase certain
//!    answers (when the chase saturates).
//! 2. **Parallel determinism** — the clustered program rewriter explores
//!    clusters across worker threads; its output must be bit-identical to
//!    the sequential compile. Fresh intensional-predicate names are
//!    erased by [`DatalogProgram::canonical_text`]; everything else —
//!    rule content and order, strategy, estimated DNF, optimizer
//!    counters, engine stats — is compared exactly.
//! 3. **Suite agreement** — across all 8 Section 7 benchmark suites,
//!    program execution equals UCQ execution on a generated ABox (UCQ ==
//!    chase on those suites is pinned by `tests/rewrite_vs_chase.rs`, so
//!    agreement here closes the triangle), and every clustered compile is
//!    parallel-deterministic.
//!
//! [`DatalogProgram::canonical_text`]: nyaya::core::DatalogProgram::canonical_text

use nyaya::chase::{certain_answers, ChaseConfig, Instance};
use nyaya::ontologies::rng::Prng;
use nyaya::ontologies::{
    generate_abox, load_all, random_cq, random_database, random_linear_tgds, AboxConfig, FuzzConfig,
};
use nyaya::rewrite::{
    nr_datalog_rewrite, tgd_rewrite, ProgramRewriting, ProgramStrategy, RewriteOptions,
    RewriteStats,
};
use nyaya::sql::{execute_program, execute_ucq, Database};

const BUDGET: usize = 30_000;

fn opts(star: bool, workers: usize) -> RewriteOptions {
    RewriteOptions {
        elimination: star,
        max_queries: BUDGET,
        parallel_workers: workers,
        ..Default::default()
    }
}

/// Stats with the order-dependent (wall-clock) and configuration (worker
/// count) fields blanked, for sequential-vs-parallel comparison.
fn comparable(stats: &RewriteStats) -> RewriteStats {
    RewriteStats {
        rewrite_micros: 0,
        workers: 0,
        ..stats.clone()
    }
}

fn assert_parallel_deterministic(label: &str, seq: &ProgramRewriting, par: &ProgramRewriting) {
    assert_eq!(
        seq.program.canonical_text(),
        par.program.canonical_text(),
        "{label}: parallel program differs from sequential"
    );
    assert_eq!(seq.strategy, par.strategy, "{label}");
    assert_eq!(seq.estimated_dnf, par.estimated_dnf, "{label}");
    assert_eq!(seq.opt, par.opt, "{label}: optimizer counters differ");
    assert_eq!(
        comparable(&seq.stats),
        comparable(&par.stats),
        "{label}: engine stats differ"
    );
}

#[test]
fn program_equals_ucq_equals_chase_on_fuzz_ontologies() {
    let config = FuzzConfig {
        max_atoms: 3,
        ..Default::default()
    };
    let chase_config = ChaseConfig {
        max_rounds: 16,
        max_atoms: 12_000,
        ..Default::default()
    };
    let mut compared = 0usize;
    let mut chased = 0usize;
    for seed in 0..100u64 {
        let mut rng = Prng::seed_from_u64(0x5105 ^ seed);
        let tgds = random_linear_tgds(&mut rng, 1 + (seed as usize % 5));
        let head_arity = rng.gen_range(0..3);
        let q = random_cq(&mut rng, &config, head_arity);
        let facts = random_database(&mut rng, &config);

        let ucq = tgd_rewrite(&q, &tgds, &[], &opts(false, 1)).unwrap();
        if ucq.stats.budget_exhausted || ucq.ucq.size() > 2_000 {
            continue; // deterministic skip: same seeds explode every run
        }
        let pr = nr_datalog_rewrite(&q, &tgds, &[], &opts(false, 1)).unwrap();
        compared += 1;

        let db = Database::from_facts(facts.iter().cloned());
        let via_ucq = execute_ucq(&db, &ucq.ucq);
        let via_program = execute_program(&db, &pr.program).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: program evaluation failed: {e}\n{}",
                pr.program
            )
        });
        assert_eq!(
            via_ucq, via_program,
            "seed {seed}: program answers differ from UCQ answers\n{}",
            pr.program
        );

        let oracle = certain_answers(&Instance::from_atoms(facts), &tgds, &q, chase_config);
        if oracle.saturated {
            chased += 1;
            assert_eq!(
                via_program, oracle.answers,
                "seed {seed}: program answers differ from chase certain answers"
            );
        }
    }
    assert!(compared >= 80, "too few comparable seeds: {compared}");
    assert!(chased >= 60, "too few saturated chase oracles: {chased}");
}

#[test]
fn parallel_program_rewriting_is_bit_identical_on_fuzz_ontologies() {
    let config = FuzzConfig {
        max_atoms: 4,
        ..Default::default()
    };
    let mut clustered = 0usize;
    for seed in 0..150u64 {
        let mut rng = Prng::seed_from_u64(0xC1A5 ^ seed);
        let tgds = random_linear_tgds(&mut rng, 1 + (seed as usize % 6));
        let head_arity = rng.gen_range(0..3);
        let q = random_cq(&mut rng, &config, head_arity);

        let seq = match nr_datalog_rewrite(&q, &tgds, &[], &opts(false, 1)) {
            Ok(pr) if !pr.stats.budget_exhausted => pr,
            _ => continue,
        };
        let par = nr_datalog_rewrite(&q, &tgds, &[], &opts(false, 4)).unwrap();
        assert_parallel_deterministic(&format!("seed {seed}"), &seq, &par);
        if matches!(seq.strategy, ProgramStrategy::Clustered { .. }) {
            clustered += 1;
        }
    }
    // The guarantee is only interesting if the *clustered* (parallel)
    // path actually ran — multi-atom fuzz queries decompose often.
    assert!(clustered >= 30, "too few clustered programs: {clustered}");
}

#[test]
fn suite_programs_match_ucq_answers_and_parallel_compiles() {
    let abox = AboxConfig {
        seed: 20260731,
        ..Default::default()
    };
    let mut decomposed = 0usize;
    for bench in load_all() {
        let db = Database::from_facts(generate_abox(&bench, &abox));
        // Per-suite query caps keep debug-mode runtime sane (A/AX q4–q5
        // compiles alone cost minutes unoptimized); the release-mode
        // program_bench drives the heavy cells with the same self-checks.
        let queries = match bench.id {
            nyaya::ontologies::BenchmarkId::A | nyaya::ontologies::BenchmarkId::AX => 2,
            _ => 3,
        };
        for (name, q) in bench.queries.iter().take(queries) {
            let mut o = opts(true, 1);
            o.max_queries = 120_000;
            o.hidden_predicates = bench.hidden_predicates.clone();
            let ucq = tgd_rewrite(q, &bench.normalized, &[], &o).unwrap();
            if ucq.stats.budget_exhausted || ucq.ucq.size() > 300 {
                continue; // the heavy cells run in release via program_bench
            }
            let seq = nr_datalog_rewrite(q, &bench.normalized, &[], &o).unwrap();
            let mut par_opts = o.clone();
            par_opts.parallel_workers = 4;
            let par = nr_datalog_rewrite(q, &bench.normalized, &[], &par_opts).unwrap();
            assert_parallel_deterministic(&format!("{} {name}", bench.id), &seq, &par);
            if matches!(seq.strategy, ProgramStrategy::Clustered { .. }) {
                decomposed += 1;
            }
            assert_eq!(
                execute_ucq(&db, &ucq.ucq),
                execute_program(&db, &seq.program).expect("suite program evaluates"),
                "{} {name}: program answers differ from UCQ answers",
                bench.id
            );
        }
    }
    assert!(
        decomposed >= 4,
        "too few clustered suite programs: {decomposed}"
    );
}
