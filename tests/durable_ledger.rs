//! Durability integration tests: crash recovery, corruption handling,
//! historical-epoch time travel, and a many-seed differential harness
//! against an in-memory oracle knowledge base.

use std::collections::BTreeSet;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use nyaya::core::{Atom, Term};
use nyaya::prelude::*;
use nyaya::KnowledgeBaseBuilder;
use nyaya_ontologies::rng::Prng;

const ONTOLOGY: &str = "
    t1: manager(X) -> employee(X).
    t2: employee(X) -> person(X).
    t3: person(X) -> member(X, Y).
";

const QUERY: &str = "q(A) :- person(A).";

/// A temp data directory removed on drop.
struct DataDir(PathBuf);

impl DataDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "nyaya-durable-test-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DataDir(dir)
    }

    fn wal(&self) -> PathBuf {
        self.0.join("wal.log")
    }
}

impl Drop for DataDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn durable_builder(dir: &DataDir) -> KnowledgeBaseBuilder {
    KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .expect("parse ontology")
        .durable(&dir.0)
}

fn person(name: &str) -> Atom {
    Atom::make("person", [name])
}

fn answers_of(kb: &KnowledgeBase, query: &PreparedQuery) -> BTreeSet<Vec<Term>> {
    kb.execute(query).expect("execute").tuples
}

#[test]
fn durable_kb_survives_a_restart_with_identical_answers() {
    let dir = DataDir::new("restart");
    let before: BTreeSet<Vec<Term>>;
    {
        let kb = durable_builder(&dir)
            .facts([person("alice")])
            .build()
            .expect("build fresh");
        assert!(kb.is_durable());
        assert_eq!(kb.epoch(), 0);
        kb.apply(UpdateBatch::new().insert(Atom::make("employee", ["bob"])))
            .expect("apply 1");
        kb.apply(
            UpdateBatch::new()
                .insert(Atom::make("manager", ["carol"]))
                .retract(person("alice")),
        )
        .expect("apply 2");
        let q = kb.prepare_text(QUERY).expect("prepare");
        before = answers_of(&kb, &q);
        assert_eq!(kb.stats().wal_records, 2);
    }

    // Reopen over the same directory: the ledger wins, builder facts are
    // the original seed and must not re-apply on top.
    let kb = durable_builder(&dir).build().expect("recover");
    assert_eq!(kb.epoch(), 2);
    assert_eq!(kb.stats().recovery_replayed, 2);
    let q = kb.prepare_text(QUERY).expect("prepare");
    assert_eq!(answers_of(&kb, &q), before);
    // Epoch 0 is still reachable: exactly the seeded facts.
    let at0 = kb.execute_at_epoch(&q, 0).expect("as-of 0");
    assert_eq!(at0.tuples, BTreeSet::from([vec![Term::constant("alice")]]));
}

/// The acceptance-criterion test: ≥ 100 applied batches, killed
/// mid-write (a torn final record in the WAL), recovered, and **every**
/// historical epoch's answers bit-identical to an uninterrupted
/// in-memory oracle run — including epochs older than flushed segments.
#[test]
fn kill_mid_write_recovers_every_historical_epoch() {
    let dir = DataDir::new("kill");
    let mut rng = Prng::seed_from_u64(0xD1CE);
    let pool: Vec<Atom> = (0..40)
        .flat_map(|i| {
            [
                Atom::make("person", [format!("p{i}").as_str()]),
                Atom::make("employee", [format!("e{i}").as_str()]),
                Atom::make("manager", [format!("m{i}").as_str()]),
            ]
        })
        .collect();

    let batches: Vec<UpdateBatch> = (0..120)
        .map(|_| {
            let mut batch = UpdateBatch::new();
            for _ in 0..rng.gen_range(1..6) {
                batch = batch.insert(pool[rng.gen_range(0..pool.len())].clone());
            }
            for _ in 0..rng.gen_range(0..3) {
                batch = batch.retract(pool[rng.gen_range(0..pool.len())].clone());
            }
            batch
        })
        .collect();

    // Oracle: uninterrupted, memory-only; record the answers per epoch.
    let oracle = KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .expect("parse")
        .facts([person("seed")])
        .build()
        .expect("build oracle");
    let oq = oracle.prepare_text(QUERY).expect("prepare");
    let mut per_epoch = vec![answers_of(&oracle, &oq)];
    for batch in &batches {
        oracle.apply(batch.clone()).expect("oracle apply");
        per_epoch.push(answers_of(&oracle, &oq));
    }

    // Durable run with background segment flushes, then a simulated
    // crash mid-append.
    {
        let kb = durable_builder(&dir)
            .facts([person("seed")])
            .flush_interval(16)
            .build()
            .expect("build durable");
        for batch in &batches {
            kb.apply(batch.clone()).expect("durable apply");
        }
        assert!(kb.stats().segments_flushed >= 1);
    }
    let mut torn = OpenOptions::new()
        .append(true)
        .open(dir.wal())
        .expect("open wal");
    torn.write_all(&[0x77, 0x03, 0x00, 0x00, 0xDE, 0xAD, 0xBE])
        .expect("torn record");
    drop(torn);

    let kb = durable_builder(&dir).build().expect("recover");
    assert_eq!(kb.epoch(), batches.len() as u64);
    let q = kb.prepare_text(QUERY).expect("prepare");
    for (epoch, expected) in per_epoch.iter().enumerate() {
        let got = kb
            .execute_at_epoch(&q, epoch as u64)
            .unwrap_or_else(|e| panic!("as-of epoch {epoch}: {e}"));
        assert_eq!(&got.tuples, expected, "answers diverge at epoch {epoch}");
    }
    assert!(kb.stats().epochs_materialized > 0);
}

#[test]
fn epoch_not_found_is_a_typed_error_with_the_valid_range() {
    let dir = DataDir::new("notfound");
    let kb = durable_builder(&dir)
        .facts([person("alice")])
        .build()
        .expect("build");
    kb.apply(UpdateBatch::new().insert(person("bob")))
        .expect("apply");
    let q = kb.prepare_text(QUERY).expect("prepare");

    // Beyond the current epoch: never created.
    match kb.execute_at_epoch(&q, 7) {
        Err(NyayaError::EpochNotFound { requested, latest }) => {
            assert_eq!((requested, latest), (7, 1));
        }
        other => panic!("expected EpochNotFound, got {other:?}"),
    }
    match kb.snapshot_at(2) {
        Err(NyayaError::EpochNotFound { requested, latest }) => {
            assert_eq!((requested, latest), (2, 1));
        }
        other => panic!("expected EpochNotFound, got {other:?}"),
    }

    // A memory-only knowledge base cannot reconstruct past epochs.
    let memory = KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .expect("parse")
        .build()
        .expect("build");
    memory
        .apply(UpdateBatch::new().insert(person("x")))
        .expect("apply");
    match memory.snapshot_at(0) {
        Err(NyayaError::NotDurable { requested }) => assert_eq!(requested, 0),
        other => panic!("expected NotDurable, got {other:?}"),
    }
}

/// Satellite: truncated, bit-flipped, and duplicated WAL records surface
/// typed `Ledger*` errors (or clean torn-tail recovery) — never a panic
/// and never silently wrong answers.
#[test]
fn corruption_fuzz_truncate_flip_duplicate() {
    // Build once to learn the WAL image, then mutate copies of it.
    let dir = DataDir::new("fuzz");
    {
        let kb = durable_builder(&dir)
            .facts([person("alice")])
            .build()
            .expect("build");
        for i in 0..8 {
            kb.apply(UpdateBatch::new().insert(person(&format!("p{i}"))))
                .expect("apply");
        }
    }
    let pristine = fs::read(dir.wal()).expect("read wal");
    let header = 8usize; // magic
    let mut rng = Prng::seed_from_u64(0xFADE);

    // Truncation anywhere: recovery must stop cleanly at the last valid
    // record and serve a consistent prefix.
    for _ in 0..40 {
        let cut = rng.gen_range(header..pristine.len());
        fs::write(dir.wal(), &pristine[..cut]).expect("truncate");
        let kb = durable_builder(&dir).build().expect("torn tail tolerated");
        assert!(kb.epoch() <= 8);
        let q = kb.prepare_text(QUERY).expect("prepare");
        // Every surviving epoch must still answer.
        for epoch in 0..=kb.epoch() {
            kb.execute_at_epoch(&q, epoch).expect("as-of survives");
        }
    }

    // Bit flips: either the tail record (torn, tolerated) or a typed
    // corruption error. Never a panic, never an epoch gap served.
    let mut outcomes = [0usize; 2];
    for _ in 0..60 {
        let mut bytes = pristine.clone();
        let target = rng.gen_range(0..bytes.len());
        bytes[target] ^= 1 << rng.gen_range(0..8);
        fs::write(dir.wal(), &bytes).expect("flip");
        match durable_builder(&dir).build() {
            Ok(kb) => {
                outcomes[0] += 1;
                assert!(kb.epoch() <= 8);
                // Repair the file for the next iteration (a torn-tail
                // open truncates in place).
            }
            Err(NyayaError::LedgerCorrupt { .. } | NyayaError::LedgerEpochGap { .. }) => {
                outcomes[1] += 1
            }
            Err(other) => panic!("expected a Ledger* error, got {other}"),
        }
        fs::write(dir.wal(), &pristine).expect("restore");
    }
    assert!(outcomes[1] > 0, "no flip ever hit a checksummed region?");

    // Duplicated final record: typed corruption, not a double-applied batch.
    let record_start = {
        // Find the last record by re-scanning lengths from the header.
        let mut pos = header;
        let mut last = pos;
        while pos + 8 <= pristine.len() {
            let len = u32::from_le_bytes(pristine[pos..pos + 4].try_into().unwrap()) as usize;
            last = pos;
            pos += 8 + len;
        }
        last
    };
    let mut bytes = pristine.clone();
    bytes.extend_from_slice(&pristine[record_start..]);
    fs::write(dir.wal(), &bytes).expect("duplicate");
    match durable_builder(&dir).build() {
        Err(NyayaError::LedgerCorrupt { detail, .. }) => {
            assert!(detail.contains("duplicate"), "detail: {detail}")
        }
        other => panic!("expected LedgerCorrupt, got {other:?}"),
    }
}

/// Satellite: the many-seed differential harness. Random batches, killed
/// without flushing segments at a random point, recovered, and every
/// historical epoch checked bit-equal against the in-memory oracle.
#[test]
fn differential_recovery_over_200_seeds() {
    for seed in 0..200u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let dir = DataDir::new("diff");
        let pool: Vec<Atom> = (0..12)
            .flat_map(|i| {
                [
                    Atom::make("person", [format!("p{i}").as_str()]),
                    Atom::make("employee", [format!("e{i}").as_str()]),
                    Atom::make("manager", [format!("m{i}").as_str()]),
                ]
            })
            .collect();
        let n_batches = rng.gen_range(3..15);
        let batches: Vec<UpdateBatch> = (0..n_batches)
            .map(|_| {
                let mut batch = UpdateBatch::new();
                for _ in 0..rng.gen_range(1..5) {
                    if rng.gen_bool(0.7) {
                        batch = batch.insert(pool[rng.gen_range(0..pool.len())].clone());
                    } else {
                        batch = batch.retract(pool[rng.gen_range(0..pool.len())].clone());
                    }
                }
                batch
            })
            .collect();

        let oracle = KnowledgeBase::builder()
            .program_text(ONTOLOGY)
            .expect("parse")
            .facts([person("seed")])
            .build()
            .expect("oracle");
        let oq = oracle.prepare_text(QUERY).expect("prepare");
        let mut per_epoch = vec![answers_of(&oracle, &oq)];

        {
            // Huge flush interval: no background segments — the kill
            // point leaves only the seed segment plus the WAL.
            let kb = durable_builder(&dir)
                .facts([person("seed")])
                .flush_interval(1_000_000)
                .build()
                .expect("durable");
            let kill_after = rng.gen_range(0..batches.len() + 1);
            for (i, batch) in batches.iter().enumerate() {
                if i == kill_after {
                    break;
                }
                oracle.apply(batch.clone()).expect("oracle apply");
                per_epoch.push(answers_of(&oracle, &oq));
                kb.apply(batch.clone()).expect("durable apply");
                // Occasionally compact mid-run so some seeds exercise
                // segment + sealed-history materialization too.
                if rng.gen_bool(0.15) {
                    kb.compact().expect("compact");
                }
            }
            // `kb` dropped here without any final flush: the "kill".
        }

        let kb = durable_builder(&dir).build().expect("recover");
        assert_eq!(
            kb.epoch() as usize,
            per_epoch.len() - 1,
            "seed {seed}: wrong recovered epoch"
        );
        let q = kb.prepare_text(QUERY).expect("prepare");
        for (epoch, expected) in per_epoch.iter().enumerate() {
            let got = kb
                .execute_at_epoch(&q, epoch as u64)
                .unwrap_or_else(|e| panic!("seed {seed}, epoch {epoch}: {e}"));
            assert_eq!(
                &got.tuples, expected,
                "seed {seed}: answers diverge at epoch {epoch}"
            );
        }
    }
}

/// Compaction bounds recovery replay without losing any history, and the
/// ledger history report reflects what is on disk.
#[test]
fn compaction_seals_history_and_bounds_replay() {
    let dir = DataDir::new("compact");
    {
        let kb = durable_builder(&dir)
            .facts([person("alice")])
            .build()
            .expect("build");
        for i in 0..10 {
            kb.apply(UpdateBatch::new().insert(person(&format!("p{i}"))))
                .expect("apply");
        }
        let flush = kb.compact().expect("compact");
        assert_eq!(flush.epoch, 10);
        assert_eq!(flush.sealed_records, 10);
        for i in 10..14 {
            kb.apply(UpdateBatch::new().insert(person(&format!("p{i}"))))
                .expect("apply");
        }
        let history = kb.ledger_history().expect("history");
        assert_eq!(history.latest_epoch, 14);
        assert_eq!(history.active_records, 4);
        assert!(history.segments.iter().any(|s| s.epoch == 10));
        assert_eq!(history.sealed.len(), 1);
    }

    let kb = durable_builder(&dir).build().expect("recover");
    // Only the 4 post-segment records replay…
    assert_eq!(kb.stats().recovery_replayed, 4);
    assert_eq!(kb.epoch(), 14);
    // …but epochs sealed before the segment are still materializable.
    let q = kb.prepare_text(QUERY).expect("prepare");
    let at3 = kb.execute_at_epoch(&q, 3).expect("as-of 3");
    assert!(at3.tuples.contains(&vec![Term::constant("p2")]));
    assert!(!at3.tuples.contains(&vec![Term::constant("p3")]));
}

/// Memory-only knowledge bases are entirely unaffected by the ledger
/// layer: no data dir, `NotDurable` for ledger-only operations.
#[test]
fn memory_only_kbs_report_not_durable() {
    let kb = KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .expect("parse")
        .facts([person("alice")])
        .build()
        .expect("build");
    assert!(!kb.is_durable());
    assert!(kb.data_dir().is_none());
    assert!(!kb.stats().durable);
    assert!(matches!(kb.compact(), Err(NyayaError::NotDurable { .. })));
    assert!(matches!(
        kb.ledger_history(),
        Err(NyayaError::NotDurable { .. })
    ));
}
