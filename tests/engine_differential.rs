//! Randomized differential testing of the indexed, planned, shared-work
//! execution engine.
//!
//! For hundreds of seeded random databases and (unions of) conjunctive
//! queries, the optimized engine must agree with two independent oracles:
//!
//! - the naive homomorphism-semantics evaluator from `nyaya-chase`
//!   (Section 3.1 semantics, no join machinery at all), and
//! - the seed engine preserved in `nyaya_sql::reference` (textual order,
//!   no indexes, no build sharing),
//!
//! and the parallel union path must agree with the sequential one. Every
//! assertion prints the failing seed so a mismatch reproduces exactly.

use std::collections::BTreeSet;

use nyaya_chase::Instance;
use nyaya_core::Term;
use nyaya_ontologies::rng::Prng;
use nyaya_ontologies::{random_database, random_ucq, FuzzConfig};
use nyaya_sql::{execute_ucq, execute_ucq_instrumented, execute_ucq_parallel, reference, Database};

/// Seeds the harness sweeps. Keep ≥ 200 (acceptance criterion of the
/// engine rework: zero mismatches across at least 200 random seeds).
const SEEDS: u64 = 300;

#[test]
fn engine_matches_homomorphism_and_reference_oracles_on_random_inputs() {
    let config = FuzzConfig::default();
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let instance = Instance::from_atoms(facts.iter().cloned());
        let ucq = random_ucq(&mut rng, &config);

        let planned = execute_ucq(&db, &ucq);
        let oracle = nyaya_chase::answers_union(&instance, &ucq);
        assert_eq!(
            planned, oracle,
            "seed {seed}: planned/indexed engine disagrees with homomorphism \
             semantics on {ucq}"
        );
        let seed_engine = reference::execute_ucq_reference(&db, &ucq);
        assert_eq!(
            planned, seed_engine,
            "seed {seed}: planned/indexed engine disagrees with the seed engine \
             on {ucq}"
        );
    }
}

#[test]
fn parallel_union_path_matches_sequential_on_random_inputs() {
    let config = FuzzConfig::default();
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(0x9A7A_11E1 ^ seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts);
        let ucq = random_ucq(&mut rng, &config);
        let sequential = execute_ucq(&db, &ucq);
        for threads in [2, 4] {
            assert_eq!(
                execute_ucq_parallel(&db, &ucq, threads),
                sequential,
                "seed {seed}: parallel ({threads} threads) disagrees with \
                 sequential on {ucq}"
            );
        }
    }
}

/// A program whose `q(A) :- top(A).` rewriting has `n + 1` disjuncts:
/// `top` plus `n` subclasses — comfortably above the in-memory executor's
/// parallel-routing threshold.
fn wide_taxonomy_program(n: usize) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "sigma{i}: sub{i}(X) -> top(X).");
        let _ = writeln!(src, "sub{i}(a{i}).");
    }
    let _ = writeln!(src, "top(troot).");
    let _ = writeln!(src, "q(A) :- top(A).");
    src
}

#[test]
fn in_memory_executor_routes_large_unions_through_the_parallel_path() {
    use nyaya::{ExecutorKind, KnowledgeBase};

    let kb = KnowledgeBase::from_program_text(&wide_taxonomy_program(120)).unwrap();
    assert_eq!(kb.executor_kind(), ExecutorKind::InMemory);
    let prepared = kb.prepare(&kb.queries()[0].clone()).unwrap();
    let answers = kb.execute(&prepared).unwrap();
    assert_eq!(answers.backend, "in-memory");
    assert_eq!(answers.tuples.len(), 121, "120 subclass members + troot");

    // The 121-disjunct union crossed the threshold: the run must have
    // been recorded as parallel, and its result must equal a sequential
    // evaluation of the same rewriting.
    let stats = kb.stats();
    assert_eq!(stats.parallel_executions, 1, "{stats:?}");
    assert_eq!(stats.rows_returned, 121, "{stats:?}");
    let rewriting = kb.rewriting(&prepared).unwrap();
    assert!(rewriting.ucq.size() >= 121, "{}", rewriting.ucq.size());
    let sequential = execute_ucq(kb.snapshot().database(), &rewriting.ucq);
    let tuples: BTreeSet<Vec<Term>> = answers.tuples;
    assert_eq!(tuples, sequential);

    // Small unions stay sequential: the counter must not move again.
    let small = kb.prepare_text("q2(A) :- sub0(A).").unwrap();
    kb.execute(&small).unwrap();
    assert_eq!(kb.stats().parallel_executions, 1);
}

#[test]
fn shared_build_cache_collapses_repeated_patterns_across_disjuncts() {
    let config = FuzzConfig::default();
    let mut rng = Prng::seed_from_u64(99);
    let facts = random_database(&mut rng, &config);
    let db = Database::from_facts(facts);
    // 40 copies of the same single-atom disjunct: one build, 39 hits.
    let cq = nyaya_ontologies::random_cq(&mut rng, &config, 1);
    let atoms = cq.body.len() as u64;
    let ucq = nyaya_core::UnionQuery::new(vec![cq; 40]);
    let (_, metrics) = execute_ucq_instrumented(&db, &ucq, 1);
    // Identical disjuncts produce identical access patterns: each pattern
    // is built exactly once and then served from the cache for all 39
    // remaining disjuncts (the pipeline may stop early on an empty
    // intermediate, but it stops at the same atom in every copy).
    assert!(metrics.build_cache_misses >= 1, "{metrics:?}");
    assert!(metrics.build_cache_misses <= atoms, "{metrics:?}");
    assert!(
        metrics.build_cache_hits >= 39 * metrics.build_cache_misses,
        "{metrics:?}"
    );
}
