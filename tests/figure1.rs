//! Figure 1 of the paper: the first steps of the (partial) rewriting of the
//! Stock Exchange example query. The figure lists
//!
//! ```text
//! q[0](A,B,C) ← fin_ins(A), stock_portf(B,A,D), company(B,E,F),
//!               list_comp(A,C), fin_idx(C,G,H)
//! q[1]: … stock_portf(B,A,D) replaced by has_stock(A,B)        (σ6)
//! q[2]: … company(B,E,F) replaced by stock_portf(B,E,F)        (σ1)
//! q[3]: … fin_ins(A) replaced by stock(A,J,K)                  (σ8)
//! ```
//!
//! All four must be members of the perfect rewriting computed by
//! TGD-rewrite (σ1 is applied through its Lemma-2 auxiliary chain, so the
//! *auxiliary-free* q[2] shows up after two internal steps).

use nyaya::core::canonical_key;
use nyaya::ontologies::running_example;
use nyaya::parser::parse_query;
use nyaya::{Algorithm, KnowledgeBase};

#[test]
fn figure1_queries_appear_in_the_perfect_rewriting() {
    let kb = KnowledgeBase::builder()
        .ontology(running_example::ontology())
        .build()
        .unwrap();
    let q0 = running_example::query();
    let prepared = kb.prepare_with(&q0, Algorithm::Nyaya).unwrap();
    let rewriting = kb.rewriting(&prepared).unwrap();

    let figure1 = [
        // q[0]
        "q(A, B, C) :- fin_ins(A), stock_portf(B, A, D), company(B, E, F), \
         list_comp(A, C), fin_idx(C, G, H).",
        // q[1] — σ6
        "q(A, B, C) :- fin_ins(A), has_stock(A, B), company(B, E, F), \
         list_comp(A, C), fin_idx(C, G, H).",
        // q[2] — σ1
        "q(A, B, C) :- fin_ins(A), has_stock(A, B), stock_portf(B, E, F), \
         list_comp(A, C), fin_idx(C, G, H).",
        // q[3] — σ8
        "q(A, B, C) :- stock(A, J, K), has_stock(A, B), stock_portf(B, E, F), \
         list_comp(A, C), fin_idx(C, G, H).",
    ];
    let keys: std::collections::HashSet<_> = rewriting.ucq.iter().map(canonical_key).collect();
    for (i, src) in figure1.iter().enumerate() {
        let q = parse_query(src).unwrap();
        assert!(
            keys.contains(&canonical_key(&q)),
            "Figure 1's q[{i}] missing from the rewriting ({} CQs)",
            rewriting.ucq.size()
        );
    }

    // Section 1: "the complete perfect rewriting contains more than 200
    // queries executing more than 1000 joins". With exact dedup modulo
    // variable renaming our engine lands at 100 CQs / 444 joins — the
    // same two-orders-of-magnitude gap to the 2-CQ NY⋆ result.
    assert_eq!(rewriting.ucq.size(), 100);
    assert_eq!(rewriting.ucq.width(), 444);

    // And the optimized rewriting collapses to the two queries of Section 1.
    let starred = kb.prepare_with(&q0, Algorithm::NyayaStar).unwrap();
    let optimized = kb.rewriting(&starred).unwrap();
    assert_eq!(optimized.ucq.size(), 2);
    assert_eq!(optimized.ucq.width(), 2);
}
