//! Ontology-exchange round trip: every benchmark DL ontology rendered to
//! OWL 2 QL functional-style syntax, re-imported through the knowledge-base
//! builder's OWL front end, and pushed through the full rewriting pipeline
//! must reproduce the exact Table 1 metrics of the original. This pins the
//! OWL front end (Section 2: DL-Lite underlies the W3C QL profile) against
//! the DL-Lite front end.

use nyaya::core::classify;
use nyaya::ontologies::{load, BenchmarkId};
use nyaya::parser::{parse_owl_ql, render_owl_ql};
use nyaya::{Algorithm, KnowledgeBase};

#[test]
fn benchmark_ontologies_survive_the_owl_roundtrip() {
    // P5 is authored in raw Datalog± (single-head after normalization
    // introduces ternary auxiliaries), so only the DL-shaped four apply.
    for id in [
        BenchmarkId::V,
        BenchmarkId::S,
        BenchmarkId::U,
        BenchmarkId::A,
    ] {
        let bench = load(id);
        let owl = render_owl_ql(&bench.raw, &[])
            .unwrap_or_else(|| panic!("{id}: DL-Lite_R benchmark must render to OWL 2 QL"));
        let back = parse_owl_ql(&owl).unwrap_or_else(|e| panic!("{id}: re-parse failed: {e}"));

        assert_eq!(
            bench.raw.tgds.len(),
            back.ontology.tgds.len(),
            "{id}: TGD count changed"
        );
        assert_eq!(bench.raw.ncs.len(), back.ontology.ncs.len(), "{id}");
        assert!(classify(&back.ontology.tgds).linear, "{id}");

        // The re-imported ontology must rewrite identically (all three
        // Table 1 metrics, NY⋆ configuration) on every Table 2 query
        // (A's two largest rewritings are skipped for test-suite time —
        // they are covered by the Table 1 harness).
        let original = KnowledgeBase::builder()
            .ontology(bench.raw.clone())
            .build()
            .unwrap();
        let reimported = KnowledgeBase::builder()
            .owl_ql_text(&owl)
            .unwrap()
            .build()
            .unwrap();
        let keep = if id == BenchmarkId::A { 3 } else { 5 };
        for (name, q) in bench.queries.iter().take(keep) {
            let orig = original
                .rewriting(&original.prepare_with(q, Algorithm::NyayaStar).unwrap())
                .unwrap();
            let back = reimported
                .rewriting(&reimported.prepare_with(q, Algorithm::NyayaStar).unwrap())
                .unwrap();
            assert_eq!(orig.ucq.size(), back.ucq.size(), "{id} {name}: size");
            assert_eq!(orig.ucq.length(), back.ucq.length(), "{id} {name}: length");
            assert_eq!(orig.ucq.width(), back.ucq.width(), "{id} {name}: width");
        }
    }
}
