//! Ontology-exchange round trip: every benchmark DL ontology rendered to
//! OWL 2 QL functional-style syntax, re-imported, and pushed through the
//! full rewriting pipeline must reproduce the exact Table 1 metrics of
//! the original. This pins the OWL front end (Section 2: DL-Lite underlies
//! the W3C QL profile) against the DL-Lite front end.

use nyaya::core::{classify, normalize};
use nyaya::ontologies::{load, BenchmarkId};
use nyaya::parser::{parse_owl_ql, render_owl_ql};
use nyaya::rewrite::{tgd_rewrite, RewriteOptions};

#[test]
fn benchmark_ontologies_survive_the_owl_roundtrip() {
    // P5 is authored in raw Datalog± (single-head after normalization
    // introduces ternary auxiliaries), so only the DL-shaped four apply.
    for id in [BenchmarkId::V, BenchmarkId::S, BenchmarkId::U, BenchmarkId::A] {
        let bench = load(id);
        let owl = render_owl_ql(&bench.raw, &[])
            .unwrap_or_else(|| panic!("{id}: DL-Lite_R benchmark must render to OWL 2 QL"));
        let back = parse_owl_ql(&owl).unwrap_or_else(|e| panic!("{id}: re-parse failed: {e}"));

        assert_eq!(
            bench.raw.tgds.len(),
            back.ontology.tgds.len(),
            "{id}: TGD count changed"
        );
        assert_eq!(bench.raw.ncs.len(), back.ontology.ncs.len(), "{id}");
        assert!(classify(&back.ontology.tgds).linear, "{id}");

        // The re-imported ontology must rewrite identically (all three
        // Table 1 metrics, NY⋆ configuration) on every Table 2 query
        // (A's two largest rewritings are skipped for test-suite time —
        // they are covered by the Table 1 harness).
        let keep = if id == BenchmarkId::A { 3 } else { 5 };
        let norm = normalize(&back.ontology.tgds);
        for (name, q) in bench.queries.iter().take(keep) {
            let mut orig_opts = RewriteOptions::nyaya_star();
            orig_opts.hidden_predicates = bench.hidden_predicates.clone();
            let orig = tgd_rewrite(q, &bench.normalized, &[], &orig_opts).ucq;

            let mut back_opts = RewriteOptions::nyaya_star();
            back_opts.hidden_predicates = norm.aux_predicates.clone();
            let reimported = tgd_rewrite(q, &norm.tgds, &[], &back_opts).ucq;

            assert_eq!(orig.size(), reimported.size(), "{id} {name}: size");
            assert_eq!(orig.length(), reimported.length(), "{id} {name}: length");
            assert_eq!(orig.width(), reimported.width(), "{id} {name}: width");
        }
    }
}
