//! Exactness harness for the answer cache.
//!
//! The cache claims to be *exact*: a hit is provably bit-identical to
//! re-execution, because entries are keyed by the snapshot's
//! per-predicate write epochs over the query's touched predicates. This
//! harness attacks that claim differentially: for hundreds of seeded
//! random write workloads, every answer a cache-enabled knowledge base
//! produces — live, pinned to old snapshots, and (durably) via
//! `snapshot_at` time travel — must bit-equal a cache-disabled twin fed
//! the identical batches.

use std::collections::BTreeSet;
use std::sync::Arc;

use nyaya::core::{Atom, Term};
use nyaya::{KnowledgeBase, PreparedQuery, Snapshot, UpdateBatch};
use nyaya_ontologies::rng::Prng;

const ONTOLOGY: &str = "
    t1: manager(X) -> employee(X).
    t2: employee(X) -> person(X).
    t3: person(X) -> member(X, Y).
";

/// Queries over distinct touched-predicate sets, so batches that write
/// one predicate leave the others' cache entries valid.
const QUERIES: [&str; 4] = [
    "q(A) :- person(A).",
    "q(A) :- employee(A).",
    "q(A, B) :- member(A, B).",
    "q(A) :- manager(A), employee(A).",
];

const SEEDS: u64 = 200;

fn build(cache: bool) -> KnowledgeBase {
    KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .unwrap()
        .answer_cache(cache)
        .build()
        .unwrap()
}

/// One random fact over a small constant pool (collisions intended, so
/// retractions sometimes hit and inserts sometimes duplicate).
fn random_fact(rng: &mut Prng) -> Atom {
    let c = |rng: &mut Prng| format!("c{}", rng.gen_range(0..8));
    match rng.gen_range(0..3) {
        0 => Atom::make("manager", [c(rng).as_str()]),
        1 => Atom::make("person", [c(rng).as_str()]),
        _ => Atom::make("member", [c(rng).as_str(), c(rng).as_str()]),
    }
}

fn random_batch(rng: &mut Prng) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..4) {
        let fact = random_fact(rng);
        if rng.gen_bool(0.25) {
            batch = batch.retract(fact);
        } else {
            batch = batch.insert(fact);
        }
    }
    batch
}

fn tuples(kb: &KnowledgeBase, query: &PreparedQuery) -> BTreeSet<Vec<Term>> {
    kb.execute(query).expect("execute").tuples
}

fn tuples_at(kb: &KnowledgeBase, query: &PreparedQuery, snap: &Snapshot) -> BTreeSet<Vec<Term>> {
    kb.execute_at(query, snap).expect("execute_at").tuples
}

#[test]
fn cached_answers_bit_equal_uncached_reexecution_across_200_seeds() {
    let mut total_hits = 0u64;
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(0xAC_CE55 ^ seed);
        let cached = build(true);
        let plain = build(false);
        let cached_queries: Vec<PreparedQuery> = QUERIES
            .iter()
            .map(|q| cached.prepare_text(q).unwrap())
            .collect();
        let plain_queries: Vec<PreparedQuery> = QUERIES
            .iter()
            .map(|q| plain.prepare_text(q).unwrap())
            .collect();
        let mut pins: Vec<(Arc<Snapshot>, Arc<Snapshot>)> = Vec::new();

        for epoch in 0..4u64 {
            if epoch > 0 {
                // Identical interleaved writer batch on both twins.
                let batch = random_batch(&mut rng);
                let a = cached.apply(batch.clone()).expect("apply cached");
                let b = plain.apply(batch).expect("apply plain");
                assert_eq!((a.inserted, a.retracted), (b.inserted, b.retracted));
            }
            pins.push((cached.snapshot(), plain.snapshot()));
            for (cq, pq) in cached_queries.iter().zip(&plain_queries) {
                let expected = tuples(&plain, pq);
                // Twice: the first execution fills the cache, the second
                // is the hit under test. Both must be bit-identical.
                assert_eq!(tuples(&cached, cq), expected, "seed {seed} epoch {epoch}");
                assert_eq!(
                    tuples(&cached, cq),
                    expected,
                    "seed {seed} epoch {epoch} (cache hit)"
                );
            }
        }

        // Pinned snapshots: hits keyed by *old* predicate epochs must
        // still be exact after later writes changed the live tables.
        for (e, (cached_pin, plain_pin)) in pins.iter().enumerate() {
            for (cq, pq) in cached_queries.iter().zip(&plain_queries) {
                let expected = tuples_at(&plain, pq, plain_pin);
                assert_eq!(
                    tuples_at(&cached, cq, cached_pin),
                    expected,
                    "seed {seed} pinned epoch {e}"
                );
                assert_eq!(
                    tuples_at(&cached, cq, cached_pin),
                    expected,
                    "seed {seed} pinned epoch {e} (cache hit)"
                );
            }
        }

        let stats = cached.stats();
        total_hits += stats.cache_answer_hits;
        assert_eq!(plain.stats().cache_answer_hits, 0, "cache off means off");
        assert_eq!(plain.stats().cache_answer_misses, 0);
    }
    // The harness proves nothing if the cache never actually hit.
    assert!(
        total_hits >= SEEDS * QUERIES.len() as u64,
        "only {total_hits} cache hits across {SEEDS} seeds"
    );
}

#[test]
fn writes_invalidate_only_touched_predicates() {
    let kb = build(true);
    let member = kb.prepare_text("q(A, B) :- member(A, B).").unwrap();
    let manager = kb.prepare_text("q(A) :- manager(A).").unwrap();
    kb.apply(UpdateBatch::new().insert(Atom::make("manager", ["ada"])))
        .unwrap();

    // Fill both entries, then hit both once.
    for query in [&member, &manager] {
        tuples(&kb, query);
        tuples(&kb, query);
    }
    let before = kb.stats();
    assert_eq!(before.cache_answer_hits, 2, "{before:?}");

    // Write ONLY `member`: the member entry must miss, the manager
    // entry (fingerprinted over untouched predicates) must still hit.
    kb.apply(UpdateBatch::new().insert(Atom::make("member", ["ada", "grace"])))
        .unwrap();
    // (Only the explicit member fact answers: B is a head variable, so
    // the existential in t3 cannot bind it.)
    assert_eq!(tuples(&kb, &member).len(), 1);
    assert_eq!(tuples(&kb, &manager).len(), 1);
    let after = kb.stats();
    assert_eq!(
        after.cache_answer_hits,
        before.cache_answer_hits + 1,
        "manager must hit across the member-only write: {after:?}"
    );
    assert_eq!(
        after.cache_answer_misses,
        before.cache_answer_misses + 1,
        "member must miss after its predicate was written: {after:?}"
    );
}

#[test]
fn time_travel_hits_are_exact_over_a_durable_ledger() {
    let dir = std::env::temp_dir().join(format!("nyaya-answer-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let kb = KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .unwrap()
        .durable(&dir)
        .build()
        .unwrap();
    let query = kb.prepare_text("q(A) :- person(A).").unwrap();

    let mut rng = Prng::seed_from_u64(0x7173);
    let mut expected_by_epoch = vec![tuples(&kb, &query)];
    for _ in 0..6 {
        kb.apply(random_batch(&mut rng)).expect("apply");
        expected_by_epoch.push(tuples(&kb, &query));
    }

    // `snapshot_at` materializes historical epochs; repeated executions
    // at the same epoch must serve exact cache hits, and every answer
    // must equal what the live execution saw when that epoch was
    // current.
    let before = kb.stats().cache_answer_hits;
    for (epoch, expected) in expected_by_epoch.iter().enumerate() {
        let snap = kb.snapshot_at(epoch as u64).expect("snapshot_at");
        for _ in 0..2 {
            assert_eq!(&tuples_at(&kb, &query, &snap), expected, "epoch {epoch}");
        }
    }
    assert!(
        kb.stats().cache_answer_hits > before,
        "time-travel re-executions never hit the cache: {:?}",
        kb.stats()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
