//! End-to-end tests of the network serving layer: the prepared-statement
//! handshake, pinned-epoch answers, batch applies, error paths, the
//! connection scheduler under more connections than workers, and
//! graceful shutdown with a ledger flush.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nyaya::serve::{serve, Client, ClientError, Server, ServerConfig};
use nyaya::{KbBackend, KnowledgeBase};

const ONTOLOGY: &str = "
    t1: manager(X) -> employee(X).
    t2: employee(X) -> person(X).
    manager(ada).
    employee(grace).
";

/// Serve `kb` on an ephemeral port with `workers` scheduler threads.
fn spawn(kb: KnowledgeBase, workers: usize) -> (Server, String) {
    let backend = Arc::new(KbBackend::new(Arc::new(kb)));
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = serve("127.0.0.1:0", backend, config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn shut_down(server: Server) {
    server.handle().shutdown();
    server.join();
}

#[test]
fn prepared_handshake_answers_applies_and_time_travels() {
    let kb = KnowledgeBase::from_program_text(ONTOLOGY).unwrap();
    let (server, addr) = spawn(kb, 2);
    let mut client = Client::connect(&addr).expect("connect");

    client.ping().expect("ping");

    // Compile once server-side; the handle survives any number of writes.
    let handle = client.prepare("q(A) :- person(A).").expect("prepare");
    let at_zero = client.answer(handle, None).expect("answer");
    assert_eq!(at_zero.epoch, 0);
    assert!(at_zero.complete);
    assert_eq!(
        at_zero.tuples,
        vec![vec!["ada".to_owned()], vec!["grace".to_owned()]]
    );

    // A write batch publishes a new epoch; the same handle sees it.
    let applied = client
        .apply(&[], &["manager(kurt)".to_owned()])
        .expect("apply");
    assert_eq!(applied.epoch, 1);
    assert_eq!(applied.inserted, 1);
    let at_one = client.answer(handle, None).expect("answer after apply");
    assert_eq!(at_one.epoch, 1);
    assert_eq!(at_one.tuples.len(), 3);

    // Time travel: the published epoch is reachable without a ledger…
    let pinned = client.answer(handle, Some(1)).expect("answer at 1");
    assert_eq!(pinned.tuples, at_one.tuples);
    // …and the one-shot path agrees with the prepared path.
    let one_shot = client
        .query("q(A) :- person(A).", None)
        .expect("one-shot query");
    assert_eq!(one_shot.tuples, at_one.tuples);

    let explain = client.explain(handle).expect("explain");
    assert!(explain.contains("strategy:"), "{explain}");

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"net_requests\":"), "{stats}");
    assert!(stats.contains("\"cache_answer_hits\":"), "{stats}");

    shut_down(server);
}

#[test]
fn errors_come_back_as_messages_and_the_connection_survives() {
    let kb = KnowledgeBase::from_program_text(ONTOLOGY).unwrap();
    let (server, addr) = spawn(kb, 1);
    let mut client = Client::connect(&addr).expect("connect");

    match client.query("this is not datalog", None) {
        Err(ClientError::Server(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected a server error, got {other:?}"),
    }
    match client.answer(999, None) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("999"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    // The failed requests did not wedge the connection.
    client.ping().expect("ping after errors");
    let ok = client.query("q(A) :- person(A).", None).expect("query");
    assert_eq!(ok.tuples.len(), 2);

    shut_down(server);
}

#[test]
fn few_workers_schedule_many_concurrent_connections() {
    let kb = KnowledgeBase::from_program_text(ONTOLOGY).unwrap();
    let (server, addr) = spawn(kb, 2);

    // 8 connections over 2 workers: the scheduler must requeue quiet
    // connections instead of camping, or this deadlocks/starves.
    let done = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let handle = client.prepare("q(A) :- person(A).").expect("prepare");
                for _ in 0..25 {
                    let answer = client.answer(handle, None).expect("answer");
                    assert_eq!(answer.tuples.len(), 2);
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread");
    }
    assert_eq!(done.load(Ordering::SeqCst), 8);

    shut_down(server);
}

#[test]
fn pipelined_frames_survive_scheduler_rotations() {
    use nyaya::serve::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME};

    let kb = KnowledgeBase::from_program_text(ONTOLOGY).unwrap();
    let (server, addr) = spawn(kb, 1);

    // A second connection keeps the scheduler rotating (the worker must
    // requeue between bursts rather than camp), while the raw client
    // pipelines bursts of frames without reading responses in between.
    // Every byte the server read ahead of its parse must survive the
    // rotation: 30 requests in, exactly 30 responses out, in order.
    let mut background = Client::connect(&addr).expect("connect background");
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect raw");
    for burst in 0..10u32 {
        for _ in 0..3 {
            write_frame(&mut stream, &Request::Ping.encode()).expect("write");
        }
        background.ping().expect("background ping");
        for _ in 0..3 {
            let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME)
                .expect("read")
                .expect("open");
            assert!(
                matches!(Response::parse(&payload), Ok(Response::Pong)),
                "burst {burst}"
            );
        }
    }

    shut_down(server);
}

#[test]
fn client_shutdown_drains_and_flushes_the_ledger() {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "nyaya-serving-test-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);

    let kb = KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .unwrap()
        .durable(&dir)
        .build()
        .unwrap();
    let (server, addr) = spawn(kb, 2);

    let mut client = Client::connect(&addr).expect("connect");
    client
        .apply(&[], &["manager(edsger)".to_owned()])
        .expect("apply");
    // The SHUTDOWN verb (not a local handle) must drain and flush.
    client.shutdown_server().expect("shutdown request");
    server.join();

    // A fresh knowledge base over the same directory recovers the write
    // that went through the wire.
    let reopened = KnowledgeBase::builder()
        .program_text(ONTOLOGY)
        .unwrap()
        .durable(&dir)
        .build()
        .unwrap();
    let query = reopened.prepare_text("q(A) :- person(A).").unwrap();
    let tuples = reopened.execute(&query).unwrap().tuples;
    assert_eq!(tuples.len(), 3, "{tuples:?}");
    assert!(reopened.stats().durable);

    let _ = fs::remove_dir_all(&dir);
}
