//! Differential tests for standing queries (incremental view
//! maintenance): across hundreds of seeded batch sequences, the diff
//! stream of a subscription — replayed from its seed epoch — must
//! bit-equal per-epoch full re-execution of the same prepared query,
//! including retraction-heavy and same-fact insert+retract batches. A
//! durable variant kills the process state mid-stream and resumes a
//! subscriber from a historical epoch via the ledger.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use nyaya::core::{Atom, Term};
use nyaya::prelude::*;
use nyaya::{AnswerDiff, Subscription};
use nyaya_ontologies::rng::Prng;

const CLASSES: usize = 4;
const INDIVIDUALS: usize = 8;

/// A small taxonomy whose query answers flow through an intensional
/// predicate on both join sides — exercising multi-level delta
/// propagation, support counting (one `top` tuple can have several
/// derivations) and goal projection.
fn ontology_text() -> String {
    let mut text = String::new();
    for i in 0..CLASSES {
        text.push_str(&format!("t{i}: c{i}(X) -> top(X).\n"));
    }
    text.push_str("q(X, Y) :- top(X), edge(X, Y), top(Y).\n");
    text
}

fn individual(i: usize) -> String {
    format!("ind{i}")
}

fn random_fact(rng: &mut Prng) -> Atom {
    if rng.gen_bool(0.5) {
        let class = format!("c{}", rng.gen_range(0..CLASSES));
        Atom::make(
            class.as_str(),
            [individual(rng.gen_range(0..INDIVIDUALS)).as_str()],
        )
    } else {
        Atom::make(
            "edge",
            [
                individual(rng.gen_range(0..INDIVIDUALS)).as_str(),
                individual(rng.gen_range(0..INDIVIDUALS)).as_str(),
            ],
        )
    }
}

/// A random batch: mixed inserts and retracts over a narrow fact domain
/// (so retractions frequently hit), with every third batch
/// retraction-heavy and an occasional same-fact insert+retract pair.
fn random_batch(rng: &mut Prng, batch_no: usize) -> UpdateBatch {
    let insert_p = if batch_no % 3 == 2 { 0.25 } else { 0.7 };
    let mut batch = UpdateBatch::new();
    for _ in 0..rng.gen_range(1..6) {
        let fact = random_fact(rng);
        if rng.gen_bool(insert_p) {
            batch = batch.insert(fact);
        } else {
            batch = batch.retract(fact);
        }
    }
    if rng.gen_bool(0.3) {
        // The documented semantics: retract-then-insert, so the fact is
        // present afterwards and the net delta is zero if it already was.
        let fact = random_fact(rng);
        batch = batch.insert(fact.clone()).retract(fact);
    }
    batch
}

/// Fold one diff into the replayed answer set, asserting the diff is
/// exact: nothing added twice, nothing removed that was absent.
fn replay_diff(replayed: &mut BTreeSet<Vec<Term>>, diff: &AnswerDiff, context: &str) {
    for tuple in &diff.added {
        assert!(
            replayed.insert(tuple.clone()),
            "{context}: epoch {} added an already-present tuple {tuple:?}",
            diff.epoch
        );
    }
    for tuple in &diff.removed {
        assert!(
            replayed.remove(tuple),
            "{context}: epoch {} removed an absent tuple {tuple:?}",
            diff.epoch
        );
    }
}

fn answers_of(kb: &KnowledgeBase, query: &PreparedQuery) -> BTreeSet<Vec<Term>> {
    kb.execute(query).expect("execute").tuples
}

/// Drain the subscription, expecting exactly one diff at `epoch`.
fn single_diff(sub: &Subscription, epoch: u64, context: &str) -> AnswerDiff {
    let mut diffs = sub.poll();
    assert_eq!(
        diffs.len(),
        1,
        "{context}: expected one diff, got {diffs:?}"
    );
    let diff = diffs.pop().unwrap();
    assert_eq!(diff.epoch, epoch, "{context}");
    diff
}

#[test]
fn seeded_batch_sequences_replay_to_full_reexecution() {
    for seed in 0..200u64 {
        let kb = KnowledgeBase::from_program_text(&ontology_text()).expect("build");
        let query = kb.prepare(&kb.queries()[0].clone()).expect("prepare");
        let sub = kb.subscribe(&query).expect("subscribe");
        let context = format!("seed {seed}");

        let mut replayed = BTreeSet::new();
        let initial = single_diff(&sub, 0, &context);
        assert!(initial.removed.is_empty(), "{context}");
        replay_diff(&mut replayed, &initial, &context);
        assert_eq!(replayed, answers_of(&kb, &query), "{context}: seed diff");

        let mut rng = Prng::seed_from_u64(seed);
        for batch_no in 0..10usize {
            let epoch = kb
                .apply(random_batch(&mut rng, batch_no))
                .expect("apply")
                .epoch;
            let context = format!("seed {seed}, batch {batch_no}");
            let diff = single_diff(&sub, epoch, &context);
            replay_diff(&mut replayed, &diff, &context);
            // The replayed diff stream equals full re-execution, every epoch.
            assert_eq!(replayed, answers_of(&kb, &query), "{context}");
            assert_eq!(sub.current(), replayed, "{context}: view answers");
        }
    }
}

/// A temp data directory removed on drop.
struct DataDir(PathBuf);

impl DataDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("nyaya-ivm-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DataDir(dir)
    }
}

impl Drop for DataDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn durable_subscriptions_resume_from_any_epoch_across_restarts() {
    const BATCHES: u64 = 8;
    for seed in 0..10u64 {
        let dir = DataDir::new("resume");
        // First life: apply batches, recording the per-epoch answer sets
        // a live subscriber would have tracked.
        let mut expected = Vec::new();
        {
            let kb = KnowledgeBase::builder()
                .program_text(&ontology_text())
                .expect("parse")
                .durable(&dir.0)
                .build()
                .expect("build durable");
            let query = kb.prepare(&kb.queries()[0].clone()).expect("prepare");
            expected.push(answers_of(&kb, &query)); // epoch 0
            let mut rng = Prng::seed_from_u64(seed);
            for batch_no in 0..BATCHES as usize {
                kb.apply(random_batch(&mut rng, batch_no)).expect("apply");
                expected.push(answers_of(&kb, &query));
            }
            assert_eq!(kb.epoch(), BATCHES);
        } // dropped mid-stream: the ledger is all that survives

        // Second life: resume a subscriber from a mid-stream epoch. The
        // catch-up diffs must replay the exact per-epoch history.
        let kb = KnowledgeBase::builder()
            .program_text(&ontology_text())
            .expect("parse")
            .durable(&dir.0)
            .build()
            .expect("reopen durable");
        assert_eq!(kb.epoch(), BATCHES, "recovery replays the full WAL");
        let query = kb.prepare(&kb.queries()[0].clone()).expect("prepare");
        let resume_from = 3u64;
        let sub = kb
            .subscribe_from(&query, resume_from)
            .expect("subscribe_from");
        let diffs = sub.poll();
        assert_eq!(
            diffs.len(),
            (BATCHES - resume_from + 1) as usize,
            "seed {seed}"
        );
        let mut replayed = BTreeSet::new();
        for (i, diff) in diffs.iter().enumerate() {
            let context = format!("seed {seed}, catch-up diff {i}");
            assert_eq!(diff.epoch, resume_from + i as u64, "{context}");
            replay_diff(&mut replayed, diff, &context);
            assert_eq!(replayed, expected[diff.epoch as usize], "{context}");
        }
        assert_eq!(sub.epoch(), BATCHES);

        // The resumed subscription is live: new batches keep streaming.
        let mut rng = Prng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        for batch_no in 0..3usize {
            let epoch = kb
                .apply(random_batch(&mut rng, batch_no))
                .expect("apply after resume")
                .epoch;
            let context = format!("seed {seed}, post-resume batch {batch_no}");
            let diff = single_diff(&sub, epoch, &context);
            replay_diff(&mut replayed, &diff, &context);
            assert_eq!(replayed, answers_of(&kb, &query), "{context}");
        }
    }
}

#[test]
fn subscribe_from_past_epoch_requires_durability() {
    let kb = KnowledgeBase::from_program_text(&ontology_text()).expect("build");
    let query = kb.prepare(&kb.queries()[0].clone()).expect("prepare");
    kb.apply(UpdateBatch::new().insert(Atom::make("edge", ["ind0", "ind1"])))
        .expect("apply");
    match kb.subscribe_from(&query, 0) {
        Err(NyayaError::NotDurable { requested: 0 }) => {}
        other => panic!("expected NotDurable, got {other:?}"),
    }
    // A future epoch is EpochNotFound, durable or not.
    match kb.subscribe_from(&query, 99) {
        Err(NyayaError::EpochNotFound {
            requested: 99,
            latest: 1,
        }) => {}
        other => panic!("expected EpochNotFound, got {other:?}"),
    }
    // The current epoch needs no ledger.
    let sub = kb.subscribe_from(&query, 1).expect("subscribe at current");
    assert_eq!(sub.poll().len(), 1);
}
