//! Lockdown of the columnar storage engine against the preserved
//! row-at-a-time oracle.
//!
//! The ground-fact store is column-major (flat `u32` cell vectors per
//! column, exotic terms in a tagged side-table) and joins run in
//! morsel-batched kernels with optional intra-query parallelism. None of
//! that may be observable in any answer. Four suites pin it:
//!
//! 1. **Fuzz**: 300 seeded random databases × UCQs — the columnar engine,
//!    the greedy planner, and every intra-query worker split agree with
//!    the preserved `reference` row engine bit for bit.
//! 2. **Benchmark suites**: the Table 1 ontologies' queries over
//!    generated ABoxes agree the same way, per suite.
//! 3. **SelectOptions fuzz**: random filter/order/limit/aggregate
//!    combinations through the engine's index fast paths equal the pure
//!    `apply_select` reference over the oracle's answer set.
//! 4. **Segment v3 kill-and-reopen**: encode → decode → re-encode is bit
//!    stable, and a decoded database is indistinguishable (bytes and
//!    answers) from a from-scratch rebuild of the same facts.

use nyaya_core::select::{AggFunc, Aggregate, ColumnFilter, FilterOp, SelectOptions, SortDir};
use nyaya_core::{Atom, Term, UnionQuery};
use nyaya_ontologies::rng::Prng;
use nyaya_ontologies::{
    generate_abox, lubm_abox, random_database, random_ucq, AboxConfig, FuzzConfig, LubmConfig,
};
use nyaya_sql::{
    decode_database, encode_database, execute_ucq, execute_ucq_greedy, execute_ucq_intra,
    execute_ucq_select, reference, BuildCache, Database,
};

const SEEDS: u64 = 300;

#[test]
fn columnar_engine_matches_row_oracle_across_fuzz_seeds_and_worker_splits() {
    let config = FuzzConfig::default();
    for seed in 0..SEEDS {
        let mut rng = Prng::seed_from_u64(0xC01A_0000 ^ seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let ucq = random_ucq(&mut rng, &config);

        let oracle = reference::execute_ucq_reference(&db, &ucq);
        assert_eq!(
            execute_ucq(&db, &ucq),
            oracle,
            "seed {seed}: columnar cost-planned engine vs row oracle on {ucq}"
        );
        assert_eq!(
            execute_ucq_greedy(&db, &ucq),
            oracle,
            "seed {seed}: columnar greedy engine vs row oracle on {ucq}"
        );
        for intra in [2, 5] {
            let (answers, _) = execute_ucq_intra(&db, &ucq, 1, intra, &BuildCache::new(), 1.0);
            assert_eq!(
                answers, oracle,
                "seed {seed}: intra={intra} morsel split vs row oracle on {ucq}"
            );
        }
    }
}

/// A join whose intermediate comfortably exceeds two morsels, so the
/// intra-query path really splits (guarded by the engine's 2-morsel
/// floor) instead of silently running sequentially.
#[test]
fn intra_query_split_really_engages_and_stays_bit_identical() {
    let n = 5_000u32;
    let mut facts: Vec<Atom> = Vec::new();
    for i in 0..n {
        facts.push(Atom::make(
            "edge",
            [format!("a{i}").as_str(), format!("b{}", i % 97).as_str()],
        ));
    }
    for i in 0..97u32 {
        facts.push(Atom::make(
            "label",
            [format!("b{i}").as_str(), format!("l{}", i % 5).as_str()],
        ));
    }
    // A third atom over the join's 5000-tuple intermediate: the planner
    // scans the small side first, so only this step's probe side is big
    // enough to split.
    for i in 0..n {
        facts.push(Atom::make("check", [format!("a{i}").as_str()]));
    }
    let db = Database::from_facts(facts);
    let ucq = UnionQuery::new(vec![nyaya_parser::parse_query(
        "q(X, L) :- edge(X, Y), label(Y, L), check(X).",
    )
    .unwrap()]);

    let (sequential, seq_metrics) = execute_ucq_intra(&db, &ucq, 1, 1, &BuildCache::new(), 1.0);
    assert_eq!(sequential.len(), n as usize);
    // 5000 probe tuples = 5 logical morsels on the second join step; the
    // counter is split-independent, so sequential and parallel agree.
    assert!(
        seq_metrics.morsel_tasks >= 5,
        "morsel batching never engaged: {seq_metrics:?}"
    );
    for intra in [2, 4, 16] {
        let (parallel, par_metrics) =
            execute_ucq_intra(&db, &ucq, 1, intra, &BuildCache::new(), 1.0);
        assert_eq!(parallel, sequential, "intra={intra}");
        assert_eq!(
            par_metrics.morsel_tasks, seq_metrics.morsel_tasks,
            "morsel count must be host- and split-stable (intra={intra})"
        );
    }
    assert_eq!(
        sequential,
        reference::execute_ucq_reference(&db, &ucq),
        "columnar vs row oracle on the wide join"
    );
}

#[test]
fn benchmark_suite_queries_agree_with_the_row_oracle() {
    for bench in nyaya_ontologies::load_all() {
        let facts = generate_abox(&bench, &AboxConfig::default());
        let db = Database::from_facts(facts);
        for (name, query) in &bench.queries {
            let ucq = UnionQuery::new(vec![query.clone()]);
            let oracle = reference::execute_ucq_reference(&db, &ucq);
            assert_eq!(
                execute_ucq(&db, &ucq),
                oracle,
                "{}/{name}: columnar engine vs row oracle",
                bench.id
            );
            let (intra, _) = execute_ucq_intra(&db, &ucq, 1, 4, &BuildCache::new(), 1.0);
            assert_eq!(
                intra, oracle,
                "{}/{name}: intra-parallel engine vs row oracle",
                bench.id
            );
        }
    }
}

fn random_select(rng: &mut Prng, head_arity: usize, constants: usize) -> SelectOptions {
    let mut sel = SelectOptions::default();
    if head_arity == 0 {
        return sel;
    }
    let rand_value = |rng: &mut Prng| Term::constant(&format!("c{}", rng.gen_range(0..constants)));
    for _ in 0..rng.gen_range(0..3) {
        sel.filters.push(ColumnFilter {
            column: rng.gen_range(0..head_arity),
            op: match rng.gen_range(0..5) {
                0 => FilterOp::Lt,
                1 => FilterOp::Le,
                2 => FilterOp::Gt,
                3 => FilterOp::Ge,
                _ => FilterOp::Ne,
            },
            value: rand_value(rng),
        });
    }
    if rng.gen_bool(0.4) {
        sel.aggregate = Some(Aggregate {
            group_by: if rng.gen_bool(0.5) {
                vec![rng.gen_range(0..head_arity)]
            } else {
                Vec::new()
            },
            func: match rng.gen_range(0..3) {
                0 => AggFunc::Count,
                1 => AggFunc::Min(rng.gen_range(0..head_arity)),
                _ => AggFunc::Max(rng.gen_range(0..head_arity)),
            },
        });
    }
    let out_arity = sel.output_arity(head_arity);
    for _ in 0..rng.gen_range(0..2) {
        sel.order_by.push((
            rng.gen_range(0..out_arity),
            if rng.gen_bool(0.5) {
                SortDir::Asc
            } else {
                SortDir::Desc
            },
        ));
    }
    if rng.gen_bool(0.5) {
        sel.limit = Some(rng.gen_range(0..8));
    }
    sel
}

#[test]
fn select_shaping_matches_the_pure_reference_semantics() {
    let config = FuzzConfig::default();
    for seed in 0..150u64 {
        let mut rng = Prng::seed_from_u64(0x5E1E_C700 ^ seed);
        let facts = random_database(&mut rng, &config);
        let db = Database::from_facts(facts.iter().cloned());
        let ucq = random_ucq(&mut rng, &config);
        let head_arity = ucq.cqs.first().map(|q| q.head.len()).unwrap_or(0);
        let sel = random_select(&mut rng, head_arity, config.constants);
        sel.validate(head_arity).expect("generated select is valid");

        let oracle_rows =
            nyaya_core::select::apply_select(reference::execute_ucq_reference(&db, &ucq), &sel);
        for threads in [1, 3] {
            let (rows, _) = execute_ucq_select(&db, &ucq, &sel, threads, &BuildCache::new())
                .expect("valid select executes");
            assert_eq!(
                rows, oracle_rows,
                "seed {seed} threads {threads}: shaped execution vs apply_select \
                 reference on {ucq} with {sel:?}"
            );
        }
    }
}

#[test]
fn segment_v3_reopen_is_bit_identical_to_a_fresh_rebuild() {
    // Random fuzz databases plus a LUBM ABox (realistic shape, ~20k
    // facts, shared constants across predicates).
    let config = FuzzConfig::default();
    let mut cases: Vec<Vec<Atom>> = (0..40u64)
        .map(|seed| {
            let mut rng = Prng::seed_from_u64(0x5E6_3000 ^ seed);
            random_database(&mut rng, &config)
        })
        .collect();
    cases.push(lubm_abox(&LubmConfig {
        universities: 1,
        departments_per_university: 15,
        seed: 7,
    }));

    for (i, facts) in cases.into_iter().enumerate() {
        let live = Database::from_facts(facts.iter().cloned());
        let bytes = encode_database(&live);
        let reopened = decode_database(&bytes).expect("own segment bytes decode");

        // Canonical bytes: re-encoding the decoded database reproduces
        // the segment bit for bit.
        assert_eq!(
            encode_database(&reopened),
            bytes,
            "case {i}: canonical bytes"
        );
        // And the reopened database is indistinguishable from a
        // from-scratch rebuild over the same facts.
        let rebuilt = Database::from_facts(facts.iter().cloned());
        assert_eq!(
            encode_database(&rebuilt),
            bytes,
            "case {i}: reopen vs fresh rebuild"
        );
        assert_eq!(reopened.len(), live.len(), "case {i}: fact count");
    }
}
