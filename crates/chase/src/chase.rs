//! The restricted TGD chase (paper, Section 3.3).
//!
//! The chase exhaustively applies the TGD chase rule in breadth-first
//! fashion. Under arbitrary TGDs it may not terminate, so every run carries
//! a budget (rounds and atoms); the outcome records whether a fixpoint was
//! actually reached.

use std::collections::HashSet;

use nyaya_core::{HomSearch, Substitution, Term, Tgd};

use crate::instance::Instance;

/// Which chase rule to apply.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ChaseKind {
    /// The restricted (standard) chase of Section 3.3: a trigger fires only
    /// if no extension of the homomorphism already satisfies the head.
    #[default]
    Restricted,
    /// The oblivious chase: every trigger fires exactly once, regardless of
    /// satisfaction. Produces a larger (often infinite) but simpler-to-
    /// reason-about universal model; terminates for weakly-acyclic sets.
    Oblivious,
    /// The Skolem (semi-oblivious) chase: existential variables become
    /// function terms over the frontier, so re-firing a trigger is a no-op
    /// by construction — the firing history the oblivious chase has to
    /// keep is encoded in the terms themselves. This is the chase the
    /// Requiem-style baseline reasons against (Skolemized TGD heads).
    Skolem,
}

/// Budget for a chase run.
#[derive(Copy, Clone, Debug)]
pub struct ChaseConfig {
    /// Maximum number of breadth-first rounds (chase "levels").
    pub max_rounds: usize,
    /// Hard cap on the number of atoms in the chase instance.
    pub max_atoms: usize,
    /// Restricted (default) or oblivious firing.
    pub kind: ChaseKind,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 32,
            max_atoms: 100_000,
            kind: ChaseKind::Restricted,
        }
    }
}

impl ChaseConfig {
    pub fn rounds(max_rounds: usize) -> Self {
        ChaseConfig {
            max_rounds,
            ..Default::default()
        }
    }

    pub fn oblivious() -> Self {
        ChaseConfig {
            kind: ChaseKind::Oblivious,
            ..Default::default()
        }
    }

    pub fn skolem() -> Self {
        ChaseConfig {
            kind: ChaseKind::Skolem,
            ..Default::default()
        }
    }
}

/// The result of a chase run.
#[derive(Clone)]
pub struct ChaseOutcome {
    pub instance: Instance,
    /// Did the chase reach a fixpoint (i.e. is `instance` a universal model)?
    pub saturated: bool,
    /// Number of rounds actually executed.
    pub rounds: usize,
}

/// Run the restricted chase of `db` with `tgds` under `config`.
///
/// Each round finds every TGD trigger `(σ, h)` with `h(body(σ)) ⊆ I` whose
/// head is not already satisfiable by an extension of `h` (the *restricted*
/// applicability check of the TGD chase rule), then fires them all with
/// fresh labeled nulls.
pub fn chase(db: &Instance, tgds: &[Tgd], config: ChaseConfig) -> ChaseOutcome {
    let mut instance = db.clone();
    let mut rounds = 0usize;
    // Oblivious firing history: (TGD index, body image) pairs already used.
    let mut fired: HashSet<(usize, Vec<Term>)> = HashSet::new();
    while rounds < config.max_rounds {
        let additions = chase_round(&instance, tgds, config.kind, &mut fired);
        if additions.is_empty() {
            return ChaseOutcome {
                instance,
                saturated: true,
                rounds,
            };
        }
        rounds += 1;
        let mut grew = false;
        for head in additions {
            grew |= apply_trigger(&mut instance, head);
            if instance.len() >= config.max_atoms {
                return ChaseOutcome {
                    instance,
                    saturated: false,
                    rounds,
                };
            }
        }
        if !grew {
            return ChaseOutcome {
                instance,
                saturated: true,
                rounds,
            };
        }
    }
    // Budget exhausted: check whether we were, by luck, already saturated.
    let saturated = chase_round(&instance, tgds, config.kind, &mut fired).is_empty();
    ChaseOutcome {
        instance,
        saturated,
        rounds,
    }
}

/// A pending trigger: the head atoms under `h` with existential variables
/// still unbound (they get fresh nulls at application time), plus the part
/// of the head pattern needed to re-check satisfaction.
struct Trigger {
    /// Head atoms with frontier variables substituted, existential
    /// variables left as variables.
    head_pattern: Vec<nyaya_core::Atom>,
    /// Oblivious triggers skip the pre-fire satisfaction re-check.
    oblivious: bool,
}

fn chase_round(
    instance: &Instance,
    tgds: &[Tgd],
    kind: ChaseKind,
    fired: &mut HashSet<(usize, Vec<Term>)>,
) -> Vec<Trigger> {
    let search = HomSearch::new(instance.atoms());
    let mut triggers = Vec::new();
    for (ti, tgd) in tgds.iter().enumerate() {
        let body_vars = tgd.body_vars();
        search.search(&tgd.body, &Substitution::new(), &mut |h| {
            match kind {
                ChaseKind::Restricted => {
                    // Skip if some extension of h satisfies the head.
                    let head_pattern: Vec<nyaya_core::Atom> =
                        tgd.head.iter().map(|a| partial_apply(h, a, tgd)).collect();
                    if !search.exists(&head_pattern, &Substitution::new()) {
                        triggers.push(Trigger {
                            head_pattern,
                            oblivious: false,
                        });
                    }
                }
                ChaseKind::Oblivious => {
                    // Fire every (σ, h) exactly once.
                    let image: Vec<Term> = body_vars
                        .iter()
                        .map(|v| h.apply_term(&Term::Var(*v)))
                        .collect();
                    if fired.insert((ti, image)) {
                        let head_pattern: Vec<nyaya_core::Atom> =
                            tgd.head.iter().map(|a| partial_apply(h, a, tgd)).collect();
                        triggers.push(Trigger {
                            head_pattern,
                            oblivious: true,
                        });
                    }
                }
                ChaseKind::Skolem => {
                    // Existentials become f_{σ,Z}(frontier): the resulting
                    // atoms are ground, so set insertion dedups re-firings.
                    let mut s = h.clone();
                    let frontier: Vec<Term> = tgd
                        .frontier()
                        .iter()
                        .map(|v| h.apply_term(&Term::Var(*v)))
                        .collect();
                    for (k, z) in tgd.existential_vars().into_iter().enumerate() {
                        let sym = nyaya_core::symbols::intern(&format!("sk{ti}_{k}"));
                        s.bind(z, Term::Func(sym, frontier.clone().into_boxed_slice()));
                    }
                    let head_pattern: Vec<nyaya_core::Atom> =
                        tgd.head.iter().map(|a| s.apply_atom(a)).collect();
                    if head_pattern.iter().any(|a| !instance.contains(a)) {
                        triggers.push(Trigger {
                            head_pattern,
                            oblivious: true,
                        });
                    }
                }
            }
            true
        });
    }
    triggers
}

/// Apply `h` to the head atom, substituting only universally quantified
/// (body) variables; existential variables stay as variables.
fn partial_apply(h: &Substitution, atom: &nyaya_core::Atom, tgd: &Tgd) -> nyaya_core::Atom {
    let existential: Vec<_> = tgd.existential_vars();
    let restricted = h.restrict(|v| !existential.contains(&v));
    restricted.apply_atom(atom)
}

/// Fire a trigger against the current instance, re-checking satisfaction
/// first (another firing in the same round may have satisfied it).
fn apply_trigger(instance: &mut Instance, trigger: Trigger) -> bool {
    if !trigger.oblivious {
        let search = HomSearch::new(instance.atoms());
        if search.exists(&trigger.head_pattern, &Substitution::new()) {
            return false;
        }
    }
    // Bind remaining variables (the existential ones) to fresh nulls.
    let mut s = Substitution::new();
    let mut grew = false;
    let mut vars = Vec::new();
    for a in &trigger.head_pattern {
        a.collect_vars(&mut vars);
    }
    vars.dedup();
    for v in vars {
        if !s.contains(v) {
            let n = instance.fresh_null();
            s.bind(v, n);
        }
    }
    for a in &trigger.head_pattern {
        grew |= instance.insert(s.apply_atom(a));
    }
    grew
}

/// Does the instance satisfy every TGD (no applicable trigger remains)?
pub fn satisfies_tgds(instance: &Instance, tgds: &[Tgd]) -> bool {
    chase_round(instance, tgds, ChaseKind::Restricted, &mut HashSet::new()).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nyaya_core::{Atom, Predicate, Term};

    fn tgd(body: &[(&str, &[&str])], head: &[(&str, &[&str])]) -> Tgd {
        let mk = |spec: &[(&str, &[&str])]| {
            spec.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args
                        .iter()
                        .map(|a| {
                            if a.chars().next().unwrap().is_uppercase() {
                                Term::var(a)
                            } else {
                                Term::constant(a)
                            }
                        })
                        .collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect::<Vec<_>>()
        };
        Tgd::new(mk(body), mk(head))
    }

    #[test]
    fn full_tgd_closure() {
        // edge(X,Y) → reach(X,Y); reach(X,Y),edge(Y,Z) → reach(X,Z)
        let tgds = vec![
            tgd(&[("edge", &["X", "Y"])], &[("reach", &["X", "Y"])]),
            tgd(
                &[("reach", &["X", "Y"]), ("edge", &["Y", "Z"])],
                &[("reach", &["X", "Z"])],
            ),
        ];
        let db = Instance::from_atoms([
            Atom::make("edge", ["a", "b"]),
            Atom::make("edge", ["b", "c"]),
        ]);
        let out = chase(&db, &tgds, ChaseConfig::default());
        assert!(out.saturated);
        assert!(out.instance.contains(&Atom::make("reach", ["a", "c"])));
        assert_eq!(out.instance.len(), 2 + 3);
    }

    #[test]
    fn existential_introduces_null_once() {
        // Example 4 of the paper: p(X) → ∃Y t(X,Y);  t(X,Y) → s(Y)
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("t", &["X", "Y"])]),
            tgd(&[("t", &["X", "Y"])], &[("s", &["Y"])]),
        ];
        let db = Instance::from_atoms([Atom::make("p", ["a"])]);
        let out = chase(&db, &tgds, ChaseConfig::default());
        assert!(out.saturated);
        // chase(D,Σ) = {p(a), t(a,z1), s(z1)}
        assert_eq!(out.instance.len(), 3);
        assert!(out.instance.has_nulls());
    }

    #[test]
    fn restricted_chase_does_not_refire_satisfied_heads() {
        // p(X) → ∃Y t(X,Y): already satisfied when t(a,b) present.
        let tgds = vec![tgd(&[("p", &["X"])], &[("t", &["X", "Y"])])];
        let db = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("t", ["a", "b"])]);
        let out = chase(&db, &tgds, ChaseConfig::default());
        assert!(out.saturated);
        assert_eq!(out.instance.len(), 2, "no new atom should be created");
    }

    #[test]
    fn non_terminating_chase_respects_budget() {
        // r(X,Y) → ∃Z r(Y,Z): infinite chain under the restricted chase.
        let tgds = vec![tgd(&[("r", &["X", "Y"])], &[("r", &["Y", "Z"])])];
        let db = Instance::from_atoms([Atom::make("r", ["a", "b"])]);
        let out = chase(&db, &tgds, ChaseConfig::rounds(5));
        assert!(!out.saturated);
        assert_eq!(out.rounds, 5);
        assert_eq!(out.instance.len(), 6);
    }

    #[test]
    fn multi_head_tgds_fire_atomically() {
        let tgds = vec![tgd(&[("c", &["X"])], &[("r", &["X", "Y"]), ("d", &["Y"])])];
        let db = Instance::from_atoms([Atom::make("c", ["a"])]);
        let out = chase(&db, &tgds, ChaseConfig::default());
        assert!(out.saturated);
        assert_eq!(out.instance.len(), 3);
        // The same null links r and d.
        let r_atom = out
            .instance
            .by_predicate(Predicate::new("r", 2))
            .next()
            .unwrap()
            .clone();
        let d_atom = out
            .instance
            .by_predicate(Predicate::new("d", 1))
            .next()
            .unwrap()
            .clone();
        assert_eq!(r_atom.args[1], d_atom.args[0]);
    }

    #[test]
    fn oblivious_chase_fires_satisfied_triggers() {
        // p(X) → ∃Y t(X,Y) with t(a,b) present: the restricted chase adds
        // nothing; the oblivious chase invents a fresh null anyway.
        let tgds = vec![tgd(&[("p", &["X"])], &[("t", &["X", "Y"])])];
        let db = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("t", ["a", "b"])]);
        let restricted = chase(&db, &tgds, ChaseConfig::default());
        assert!(restricted.saturated);
        assert_eq!(restricted.instance.len(), 2);
        let oblivious = chase(&db, &tgds, ChaseConfig::oblivious());
        assert!(oblivious.saturated);
        assert_eq!(oblivious.instance.len(), 3);
    }

    #[test]
    fn oblivious_chase_diverges_where_restricted_terminates() {
        // p(X) → ∃Y p(Y): the restricted chase adds nothing at all — p(a)
        // itself witnesses ∃Y p(Y); the oblivious chase fires on every new
        // null forever.
        let tgds = vec![tgd(&[("p", &["X"])], &[("p", &["Y"])])];
        let db = Instance::from_atoms([Atom::make("p", ["a"])]);
        let restricted = chase(&db, &tgds, ChaseConfig::default());
        assert!(restricted.saturated);
        assert_eq!(restricted.instance.len(), 1);
        let oblivious = chase(
            &db,
            &tgds,
            ChaseConfig {
                max_rounds: 6,
                kind: ChaseKind::Oblivious,
                ..Default::default()
            },
        );
        assert!(!oblivious.saturated);
        assert_eq!(oblivious.instance.len(), 7); // one new null per round
    }

    #[test]
    fn oblivious_and_restricted_agree_on_bcq_entailment() {
        // Both chases are universal models, so they entail the same BCQs
        // (when both saturate). Weakly-acyclic example.
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("t", &["X", "Y"])]),
            tgd(&[("t", &["X", "Y"])], &[("s", &["Y"])]),
        ];
        let db = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("t", ["a", "b"])]);
        let r = chase(&db, &tgds, ChaseConfig::default());
        let o = chase(&db, &tgds, ChaseConfig::oblivious());
        assert!(r.saturated && o.saturated);
        assert!(o.instance.len() >= r.instance.len());
        for src in [
            vec![Atom::make("s", ["B"])],
            vec![Atom::make("t", ["A", "B"]), Atom::make("s", ["B"])],
            vec![Atom::make("s", ["b"])],
        ] {
            let q = nyaya_core::ConjunctiveQuery::boolean(src);
            assert_eq!(
                crate::answer::entails_bcq(&r.instance, &q),
                crate::answer::entails_bcq(&o.instance, &q),
                "disagreement on {q}"
            );
        }
    }

    #[test]
    fn skolem_chase_invents_function_terms() {
        // Example 4: p(X) → ∃Y t(X,Y); t(X,Y) → s(Y) over {p(a)} gives
        // {p(a), t(a, sk(a)), s(sk(a))}.
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("t", &["X", "Y"])]),
            tgd(&[("t", &["X", "Y"])], &[("s", &["Y"])]),
        ];
        let db = Instance::from_atoms([Atom::make("p", ["a"])]);
        let out = chase(&db, &tgds, ChaseConfig::skolem());
        assert!(out.saturated);
        assert_eq!(out.instance.len(), 3);
        assert!(
            !out.instance.has_nulls(),
            "Skolem chase uses terms, not nulls"
        );
        let t_atom = out
            .instance
            .by_predicate(Predicate::new("t", 2))
            .next()
            .unwrap();
        assert!(t_atom.args[1].is_func());
        let s_atom = out
            .instance
            .by_predicate(Predicate::new("s", 1))
            .next()
            .unwrap();
        assert_eq!(t_atom.args[1], s_atom.args[0], "terms share structure");
    }

    #[test]
    fn skolem_refiring_is_a_noop() {
        // Unlike the oblivious chase, the Skolem chase is idempotent per
        // trigger: with t(a,b) present, p(a) still fires, but only once
        // ever — the invented atom t(a, sk(a)) is stable across rounds.
        let tgds = vec![tgd(&[("p", &["X"])], &[("t", &["X", "Y"])])];
        let db = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("t", ["a", "b"])]);
        let out = chase(&db, &tgds, ChaseConfig::skolem());
        assert!(out.saturated);
        assert_eq!(out.instance.len(), 3); // p(a), t(a,b), t(a,sk(a))
    }

    #[test]
    fn skolem_and_restricted_agree_on_bcq_entailment() {
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("t", &["X", "Y"])]),
            tgd(&[("t", &["X", "Y"])], &[("s", &["Y"])]),
            tgd(&[("s", &["X"])], &[("u", &["X", "X"])]),
        ];
        let db = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("t", ["a", "b"])]);
        let r = chase(&db, &tgds, ChaseConfig::default());
        let k = chase(&db, &tgds, ChaseConfig::skolem());
        assert!(r.saturated && k.saturated);
        for src in [
            vec![Atom::make("u", ["B", "B"])],
            vec![Atom::make("t", ["A", "B"])],
            vec![Atom::make("s", ["b"])],
            vec![Atom::make("u", ["a", "a"])],
        ] {
            let q = nyaya_core::ConjunctiveQuery::boolean(src);
            assert_eq!(
                crate::answer::entails_bcq(&r.instance, &q),
                crate::answer::entails_bcq(&k.instance, &q),
                "disagreement on {q}"
            );
        }
    }

    #[test]
    fn skolem_diverges_on_non_terminating_sets() {
        // r(X,Y) → ∃Z r(Y,Z): sk-terms nest unboundedly.
        let tgds = vec![tgd(&[("r", &["X", "Y"])], &[("r", &["Y", "Z"])])];
        let db = Instance::from_atoms([Atom::make("r", ["a", "b"])]);
        let out = chase(
            &db,
            &tgds,
            ChaseConfig {
                max_rounds: 4,
                kind: ChaseKind::Skolem,
                ..Default::default()
            },
        );
        assert!(!out.saturated);
        assert_eq!(out.instance.len(), 5);
    }

    #[test]
    fn satisfies_tgds_checks_fixpoint() {
        let tgds = vec![tgd(&[("p", &["X"])], &[("q", &["X"])])];
        let incomplete = Instance::from_atoms([Atom::make("p", ["a"])]);
        assert!(!satisfies_tgds(&incomplete, &tgds));
        let complete = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("q", ["a"])]);
        assert!(satisfies_tgds(&complete, &tgds));
    }

    #[test]
    fn running_example_derivation() {
        // Section 1: list_comp(ibm, nasdaq) and ∃list_comp⁻ ⊑ fin_idx,
        // i.e. list_comp(X,Y) → ∃Z∃W fin_idx(Y,Z,W).
        let tgds = vec![tgd(
            &[("list_comp", &["X", "Y"])],
            &[("fin_idx", &["Y", "Z", "W"])],
        )];
        let db = Instance::from_atoms([Atom::make("list_comp", ["ibm", "nasdaq"])]);
        let out = chase(&db, &tgds, ChaseConfig::default());
        assert!(out.saturated);
        let fin = out
            .instance
            .by_predicate(Predicate::new("fin_idx", 3))
            .next()
            .unwrap();
        assert_eq!(fin.args[0], Term::constant("nasdaq"));
    }
}
