//! Query answering over instances and certain-answer evaluation via the
//! chase (paper, Sections 3.1–3.3).

use std::collections::BTreeSet;

use nyaya_core::{ConjunctiveQuery, HomSearch, Substitution, Term, Tgd, UnionQuery};

use crate::chase::{chase, ChaseConfig, ChaseOutcome};
use crate::instance::Instance;

/// Does the instance entail the BCQ (`I ⊨ q`)?
pub fn entails_bcq(instance: &Instance, q: &ConjunctiveQuery) -> bool {
    debug_assert!(q.is_boolean(), "entails_bcq expects a Boolean CQ");
    HomSearch::new(instance.atoms()).exists(&q.body, &Substitution::new())
}

/// The answer `q(I)`: all tuples of **constants** `t` with a homomorphism
/// mapping the body into `I` and the head to `t`. (Tuples containing nulls
/// are not answers — Section 3.1 requires `t ∈ (Δ_c)^n`.)
pub fn answers(instance: &Instance, q: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    HomSearch::new(instance.atoms()).search(&q.body, &Substitution::new(), &mut |h| {
        let tuple: Vec<Term> = q.head.iter().map(|t| h.apply_term(t)).collect();
        if tuple.iter().all(Term::is_const) {
            out.insert(tuple);
        }
        true
    });
    out
}

/// The answer to a union of CQs over an instance.
pub fn answers_union(instance: &Instance, u: &UnionQuery) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    for q in u.iter() {
        out.extend(answers(instance, q));
    }
    out
}

/// Does the instance entail some disjunct of a Boolean UCQ?
pub fn entails_union_bcq(instance: &Instance, u: &UnionQuery) -> bool {
    u.iter().any(|q| entails_bcq(instance, q))
}

/// Certain-answer evaluation: `ans(q, D, Σ)` computed on the (budgeted)
/// chase. The `saturated` flag tells whether the result is exact (fixpoint
/// reached) or a sound under-approximation (budget hit: every returned
/// answer is certain, but some certain answer may be missing).
pub struct CertainAnswers {
    pub answers: BTreeSet<Vec<Term>>,
    pub saturated: bool,
    pub chase: ChaseOutcome,
}

/// Compute the certain answers of `q` w.r.t. `db` and `tgds`.
pub fn certain_answers(
    db: &Instance,
    tgds: &[Tgd],
    q: &ConjunctiveQuery,
    config: ChaseConfig,
) -> CertainAnswers {
    let outcome = chase(db, tgds, config);
    let answers = answers(&outcome.instance, q);
    CertainAnswers {
        answers,
        saturated: outcome.saturated,
        chase: outcome,
    }
}

/// `D ∪ Σ ⊨ q` for a Boolean CQ, via the (budgeted) chase. Returns
/// `(entailed, exact)` — when `exact` is false a negative answer is
/// inconclusive.
pub fn certain_bcq(
    db: &Instance,
    tgds: &[Tgd],
    q: &ConjunctiveQuery,
    config: ChaseConfig,
) -> (bool, bool) {
    let outcome = chase(db, tgds, config);
    let entailed = entails_bcq(&outcome.instance, q);
    (entailed, entailed || outcome.saturated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nyaya_core::{Atom, Predicate};

    fn tgd(body: &[(&str, &[&str])], head: &[(&str, &[&str])]) -> Tgd {
        let mk = |spec: &[(&str, &[&str])]| {
            spec.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args
                        .iter()
                        .map(|a| {
                            if a.chars().next().unwrap().is_uppercase() {
                                Term::var(a)
                            } else {
                                Term::constant(a)
                            }
                        })
                        .collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect::<Vec<_>>()
        };
        Tgd::new(mk(body), mk(head))
    }

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head.iter().map(|a| Term::var(a)).collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    #[test]
    fn intro_example_fin_idx_query() {
        // Section 1: q(X) ← fin_idx(X) should return nasdaq after reasoning.
        let tgds = vec![tgd(&[("list_comp", &["X", "Y"])], &[("fin_idx", &["Y"])])];
        let db = Instance::from_atoms([
            Atom::make("company", ["ibm"]),
            Atom::make("list_comp", ["ibm", "nasdaq"]),
        ]);
        let q = cq(&["X"], &[("fin_idx", &["X"])]);
        let res = certain_answers(&db, &tgds, &q, ChaseConfig::default());
        assert!(res.saturated);
        assert_eq!(res.answers.len(), 1);
        assert!(res.answers.contains(&vec![Term::constant("nasdaq")]));
    }

    #[test]
    fn null_tuples_are_not_answers() {
        // p(X) → ∃Y r(X,Y): r's second column is a null → q(Y) ← r(X,Y) has
        // no certain answers.
        let tgds = vec![tgd(&[("p", &["X"])], &[("r", &["X", "Y"])])];
        let db = Instance::from_atoms([Atom::make("p", ["a"])]);
        let q = cq(&["Y"], &[("r", &["X", "Y"])]);
        let res = certain_answers(&db, &tgds, &q, ChaseConfig::default());
        assert!(res.saturated);
        assert!(res.answers.is_empty());
        // But the Boolean projection is entailed.
        let bq = ConjunctiveQuery::boolean(q.body.clone());
        let (yes, exact) = certain_bcq(&db, &tgds, &bq, ChaseConfig::default());
        assert!(yes && exact);
    }

    #[test]
    fn example4_completeness_case() {
        // Example 4: D = {p(a)}, σ1: p(X) → ∃Y t(X,Y), σ2: t(X,Y) → s(Y);
        // q() ← t(A,B), s(B) is entailed.
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("t", &["X", "Y"])]),
            tgd(&[("t", &["X", "Y"])], &[("s", &["Y"])]),
        ];
        let db = Instance::from_atoms([Atom::make("p", ["a"])]);
        let q = cq(&[], &[("t", &["A", "B"]), ("s", &["B"])]);
        let (yes, exact) = certain_bcq(&db, &tgds, &q, ChaseConfig::default());
        assert!(yes && exact);
    }

    #[test]
    fn example3_soundness_case() {
        // Example 3: Σ = {σ1: s(X) → ∃Z t(X,X,Z), σ2: t(X,Y,Z) → r(Y,Z)},
        // D = {s(b), t(a,b,d)}; q() ← t(A,B,c) (constant c) is NOT entailed.
        let tgds = vec![
            tgd(&[("s", &["X"])], &[("t", &["X", "X", "Z"])]),
            tgd(&[("t", &["X", "Y", "Z"])], &[("r", &["Y", "Z"])]),
        ];
        let db = Instance::from_atoms([Atom::make("s", ["b"]), Atom::make("t", ["a", "b", "d"])]);
        let q1 = cq(&[], &[("t", &["A", "B", "c"])]);
        let (yes, exact) = certain_bcq(&db, &tgds, &q1, ChaseConfig::default());
        assert!(exact);
        assert!(!yes);
        // q'' () ← t(A,B,B) is also not entailed (no t with equal 2nd/3rd).
        let q2 = cq(&[], &[("t", &["A", "B", "B"])]);
        let (yes2, exact2) = certain_bcq(&db, &tgds, &q2, ChaseConfig::default());
        assert!(exact2);
        assert!(!yes2);
    }

    #[test]
    fn union_answers_accumulate() {
        let db = Instance::from_atoms([Atom::make("p", ["a"]), Atom::make("r", ["b"])]);
        let u = UnionQuery::new(vec![
            cq(&["X"], &[("p", &["X"])]),
            cq(&["X"], &[("r", &["X"])]),
        ]);
        let ans = answers_union(&db, &u);
        assert_eq!(ans.len(), 2);
    }
}
