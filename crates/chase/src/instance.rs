//! Relational instances: finite (or chase-grown) sets of atoms over
//! constants and labeled nulls, with a per-predicate index.

use std::collections::{HashMap, HashSet};
use std::fmt;

use nyaya_core::{Atom, Predicate, Term};

/// A relational instance (paper, Section 3.1). A *database* is an instance
/// containing only constants; the chase extends it with labeled nulls.
#[derive(Clone, Default)]
pub struct Instance {
    atoms: Vec<Atom>,
    index: HashMap<Predicate, Vec<usize>>,
    set: HashSet<Atom>,
    next_null: u64,
}

impl Instance {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an instance from ground atoms. Panics if any atom contains a
    /// variable (instances hold only constants and nulls).
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Insert an atom; returns `true` if it was new. Tracks the highest null
    /// id seen so that [`Instance::fresh_null`] never collides.
    pub fn insert(&mut self, atom: Atom) -> bool {
        assert!(
            atom.is_ground(),
            "instances contain ground atoms only, got {atom}"
        );
        for t in &atom.args {
            if let Term::Null(n) = t {
                self.next_null = self.next_null.max(n + 1);
            }
        }
        if self.set.contains(&atom) {
            return false;
        }
        let idx = self.atoms.len();
        self.index.entry(atom.pred).or_default().push(idx);
        self.set.insert(atom.clone());
        self.atoms.push(atom);
        true
    }

    /// A fresh labeled null, never used in this instance before.
    pub fn fresh_null(&mut self) -> Term {
        let n = self.next_null;
        self.next_null += 1;
        Term::Null(n)
    }

    pub fn contains(&self, atom: &Atom) -> bool {
        self.set.contains(atom)
    }

    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All atoms, in insertion order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Atoms of a given predicate.
    pub fn by_predicate(&self, pred: Predicate) -> impl Iterator<Item = &Atom> {
        self.index
            .get(&pred)
            .into_iter()
            .flatten()
            .map(move |&i| &self.atoms[i])
    }

    /// The predicates present in the instance.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.index.keys().copied()
    }

    /// Every constant occurring in the instance (the active domain ∩ Δ_c).
    pub fn constants(&self) -> HashSet<Term> {
        let mut out = HashSet::new();
        for a in &self.atoms {
            for t in &a.args {
                if t.is_const() {
                    out.insert(t.clone());
                }
            }
        }
        out
    }

    /// Does the instance contain any labeled null?
    pub fn has_nulls(&self) -> bool {
        self.atoms.iter().any(|a| a.args.iter().any(Term::is_null))
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut strs: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        strs.sort();
        write!(f, "{{{}}}", strs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut i = Instance::new();
        assert!(i.insert(Atom::make("p", ["a"])));
        assert!(!i.insert(Atom::make("p", ["a"])));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn fresh_nulls_avoid_existing_ones() {
        let mut i = Instance::new();
        i.insert(Atom::new(
            nyaya_core::Predicate::new("p", 1),
            vec![Term::Null(5)],
        ));
        assert_eq!(i.fresh_null(), Term::Null(6));
        assert_eq!(i.fresh_null(), Term::Null(7));
    }

    #[test]
    #[should_panic(expected = "ground atoms only")]
    fn variables_are_rejected() {
        let mut i = Instance::new();
        i.insert(Atom::make("p", ["X"]));
    }

    #[test]
    fn by_predicate_filters() {
        let mut i = Instance::new();
        i.insert(Atom::make("p", ["a"]));
        i.insert(Atom::make("r", ["a", "b"]));
        i.insert(Atom::make("p", ["b"]));
        assert_eq!(i.by_predicate(Predicate::new("p", 1)).count(), 2);
        assert_eq!(i.by_predicate(Predicate::new("r", 2)).count(), 1);
        assert_eq!(i.by_predicate(Predicate::new("s", 1)).count(), 0);
    }

    #[test]
    fn constants_and_nulls() {
        let mut i = Instance::new();
        i.insert(Atom::make("p", ["a"]));
        assert!(!i.has_nulls());
        let n = i.fresh_null();
        i.insert(Atom::new(nyaya_core::Predicate::new("p", 1), vec![n]));
        assert!(i.has_nulls());
        assert_eq!(i.constants().len(), 1);
    }
}
