//! Negative constraints and key dependencies (paper, Sections 4.2 and 5.1).
//!
//! Checking an NC `φ(X) → ⊥` is tantamount to answering the BCQ
//! `q() ← φ(X)`; a theory `D ∪ Σ ∪ Σ⊥` is consistent iff no NC body is
//! entailed by `chase(D, Σ)`. Non-conflicting KDs are handled by a
//! preliminary direct check on the database (separability), optionally via
//! the `neq` encoding.

use std::collections::HashMap;

use nyaya_core::{
    Atom, ConjunctiveQuery, KeyDependency, NegativeConstraint, Ontology, Predicate, Term, Tgd,
};

use crate::answer::entails_bcq;
use crate::chase::{chase, ChaseConfig};
use crate::instance::Instance;

/// Does the instance (already chased, or plain) violate some NC?
pub fn violates_ncs(instance: &Instance, ncs: &[NegativeConstraint]) -> Option<usize> {
    ncs.iter().position(|nc| {
        let q = ConjunctiveQuery::boolean(nc.body.clone());
        entails_bcq(instance, &q)
    })
}

/// Direct key-dependency check on a database: no two atoms of `kd.pred` may
/// agree on all key positions and differ elsewhere.
pub fn violates_kd(db: &Instance, kd: &KeyDependency) -> bool {
    let mut groups: HashMap<Vec<&Term>, &Atom> = HashMap::new();
    for atom in db.by_predicate(kd.pred) {
        let key: Vec<&Term> = kd.key.iter().map(|&i| &atom.args[i]).collect();
        match groups.get(&key) {
            None => {
                groups.insert(key, atom);
            }
            Some(prev) => {
                if prev != &atom {
                    return true;
                }
            }
        }
    }
    false
}

/// The `neq` auxiliary predicate used by the KD→NC encoding.
pub fn neq_predicate() -> Predicate {
    Predicate::new("neq", 2)
}

/// Materialize `neq(a, b)` for all distinct pairs of constants in `db`
/// (the `D≠` construction of Section 4.2).
pub fn add_neq_facts(db: &mut Instance) {
    let consts: Vec<Term> = db.constants().into_iter().collect();
    let neq = neq_predicate();
    for a in &consts {
        for b in &consts {
            if a != b {
                db.insert(Atom::new(neq, vec![a.clone(), b.clone()]));
            }
        }
    }
}

/// Outcome of a full consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    Consistent,
    /// A key dependency is violated directly by the database.
    KdViolated(usize),
    /// A negative constraint is violated by the chase.
    NcViolated(usize),
    /// The chase budget was exhausted before reaching a verdict.
    Unknown,
}

/// Full consistency workflow of Sections 4.2/5.1:
/// 1. check the KDs directly on `db` (separability's preliminary check);
/// 2. chase `db` with the TGDs;
/// 3. check every NC body against the chase.
pub fn check_consistency(db: &Instance, ontology: &Ontology, config: ChaseConfig) -> Consistency {
    for (i, kd) in ontology.kds.iter().enumerate() {
        if violates_kd(db, kd) {
            return Consistency::KdViolated(i);
        }
    }
    if ontology.ncs.is_empty() {
        return Consistency::Consistent;
    }
    let outcome = chase(db, &ontology.tgds, config);
    if let Some(i) = violates_ncs(&outcome.instance, &ontology.ncs) {
        return Consistency::NcViolated(i);
    }
    if outcome.saturated {
        Consistency::Consistent
    } else {
        Consistency::Unknown
    }
}

/// The KD→NC translation applied to a whole ontology: each KD becomes
/// negative constraints over the `neq` predicate (Section 4.2). The caller
/// is responsible for materializing `neq` facts with [`add_neq_facts`].
pub fn kds_as_ncs(kds: &[KeyDependency]) -> Vec<NegativeConstraint> {
    kds.iter()
        .flat_map(|kd| kd.to_negative_constraints(neq_predicate()))
        .collect()
}

/// TGDs of an ontology whose KDs passed the preliminary check can be used
/// alone (separability): convenience accessor making call sites explicit.
pub fn separable_tgds(ontology: &Ontology) -> &[Tgd] {
    &ontology.tgds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kd_violation_detected_directly() {
        // key(list_comp) = {1}: a stock is listed on at most one index.
        let pred = Predicate::new("list_comp", 2);
        let kd = KeyDependency::new(pred, vec![0]);
        let ok = Instance::from_atoms([
            Atom::make("list_comp", ["ibm", "nasdaq"]),
            Atom::make("list_comp", ["sap", "dax"]),
        ]);
        assert!(!violates_kd(&ok, &kd));
        let bad = Instance::from_atoms([
            Atom::make("list_comp", ["ibm", "nasdaq"]),
            Atom::make("list_comp", ["ibm", "dax"]),
        ]);
        assert!(violates_kd(&bad, &kd));
    }

    #[test]
    fn kd_as_nc_with_neq_detects_same_violation() {
        let pred = Predicate::new("list_comp", 2);
        let kd = KeyDependency::new(pred, vec![0]);
        let ncs = kds_as_ncs(std::slice::from_ref(&kd));
        assert_eq!(ncs.len(), 1);
        let mut bad = Instance::from_atoms([
            Atom::make("list_comp", ["ibm", "nasdaq"]),
            Atom::make("list_comp", ["ibm", "dax"]),
        ]);
        add_neq_facts(&mut bad);
        assert!(violates_ncs(&bad, &ncs).is_some());
        let mut ok = Instance::from_atoms([
            Atom::make("list_comp", ["ibm", "nasdaq"]),
            Atom::make("list_comp", ["sap", "dax"]),
        ]);
        add_neq_facts(&mut ok);
        assert!(violates_ncs(&ok, &ncs).is_none());
    }

    #[test]
    fn nc_violation_through_chase() {
        // δ1 of the running example: legal_person(X), fin_ins(X) → ⊥, with
        // σ8: stock(X,Y,Z) → fin_ins(X) and σ9: company(X,Y,Z) → legal_person(X).
        let tgds = vec![
            Tgd::new(
                vec![Atom::make("stock", ["X", "Y", "Z"])],
                vec![Atom::make("fin_ins", ["X"])],
            ),
            Tgd::new(
                vec![Atom::make("company", ["X", "Y", "Z"])],
                vec![Atom::make("legal_person", ["X"])],
            ),
        ];
        let ncs = vec![NegativeConstraint::new(vec![
            Atom::make("legal_person", ["X"]),
            Atom::make("fin_ins", ["X"]),
        ])];
        let ontology = Ontology {
            tgds,
            ncs,
            kds: vec![],
        };
        // acme is both a stock id and a company name → inconsistent.
        let bad = Instance::from_atoms([
            Atom::make("stock", ["acme", "acme_corp", "p10"]),
            Atom::make("company", ["acme", "us", "tech"]),
        ]);
        assert_eq!(
            check_consistency(&bad, &ontology, ChaseConfig::default()),
            Consistency::NcViolated(0)
        );
        let good = Instance::from_atoms([
            Atom::make("stock", ["ibm_s", "ibm_stock", "p10"]),
            Atom::make("company", ["ibm", "us", "tech"]),
        ]);
        assert_eq!(
            check_consistency(&good, &ontology, ChaseConfig::default()),
            Consistency::Consistent
        );
    }

    #[test]
    fn kd_check_runs_before_chase() {
        let pred = Predicate::new("r", 2);
        let ontology = Ontology {
            tgds: vec![],
            ncs: vec![],
            kds: vec![KeyDependency::new(pred, vec![0])],
        };
        let bad = Instance::from_atoms([Atom::make("r", ["a", "b"]), Atom::make("r", ["a", "c"])]);
        assert_eq!(
            check_consistency(&bad, &ontology, ChaseConfig::default()),
            Consistency::KdViolated(0)
        );
    }
}
