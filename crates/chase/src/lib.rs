//! # nyaya-chase
//!
//! The TGD chase substrate (paper, Section 3.3): relational instances, the
//! restricted chase with budgets, query answering over instances,
//! certain-answer evaluation, and consistency checking with negative
//! constraints and key dependencies.
//!
//! The chase serves three roles in this reproduction:
//! 1. the *semantics oracle* against which the rewriting algorithms are
//!    validated (`D ⊨ q_Σ ⇔ chase(D,Σ) ⊨ q`, Theorems 6 and 10);
//! 2. the engine of the chase & back-chase baseline (Section 2);
//! 3. the consistency checker for NC/KD handling (Sections 4.2, 5.1).

pub mod answer;
pub mod chase;
pub mod consistency;
pub mod instance;

pub use answer::{
    answers, answers_union, certain_answers, certain_bcq, entails_bcq, entails_union_bcq,
    CertainAnswers,
};
pub use chase::{chase, satisfies_tgds, ChaseConfig, ChaseKind, ChaseOutcome};
pub use consistency::{
    add_neq_facts, check_consistency, kds_as_ncs, neq_predicate, violates_kd, violates_ncs,
    Consistency,
};
pub use instance::Instance;
