//! Property-based tests for the chase: a saturated chase is a model, it
//! extends the database monotonically, and certain answers contain only
//! constants.

use proptest::prelude::*;

use nyaya_chase::{answers, chase, satisfies_tgds, ChaseConfig, Instance};
use nyaya_core::{Atom, ConjunctiveQuery, Predicate, Term, Tgd};

const PREDS: [(&str, usize); 4] = [("cp1", 1), ("cp2", 1), ("cr1", 2), ("cr2", 2)];
const VARS: [&str; 3] = ["X", "Y", "Z"];
const CONSTS: [&str; 3] = ["a", "b", "c"];

fn pred(i: usize) -> Predicate {
    let (n, a) = PREDS[i];
    Predicate::new(n, a)
}

fn body_atom() -> impl Strategy<Value = Atom> {
    (0..PREDS.len(), proptest::collection::vec(0..VARS.len(), 2)).prop_map(|(p, vs)| {
        let pr = pred(p);
        let args = (0..pr.arity).map(|k| Term::var(VARS[vs[k]])).collect();
        Atom::new(pr, args)
    })
}

fn tgd_strategy() -> impl Strategy<Value = Tgd> {
    (body_atom(), body_atom()).prop_map(|(b, h)| Tgd::new(vec![b], vec![h]))
}

fn fact_strategy() -> impl Strategy<Value = Atom> {
    (0..PREDS.len(), proptest::collection::vec(0..CONSTS.len(), 2)).prop_map(|(p, cs)| {
        let pr = pred(p);
        let args = (0..pr.arity)
            .map(|k| Term::constant(CONSTS[cs[k]]))
            .collect();
        Atom::new(pr, args)
    })
}

const CONFIG: ChaseConfig = ChaseConfig {
    max_rounds: 10,
    max_atoms: 20_000,
    kind: nyaya_chase::ChaseKind::Restricted,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn saturated_chase_satisfies_all_tgds(
        tgds in proptest::collection::vec(tgd_strategy(), 1..5),
        facts in proptest::collection::vec(fact_strategy(), 1..6),
    ) {
        let db = Instance::from_atoms(facts);
        let out = chase(&db, &tgds, CONFIG);
        if out.saturated {
            prop_assert!(satisfies_tgds(&out.instance, &tgds));
        }
    }

    #[test]
    fn chase_extends_the_database(
        tgds in proptest::collection::vec(tgd_strategy(), 1..5),
        facts in proptest::collection::vec(fact_strategy(), 1..6),
    ) {
        let db = Instance::from_atoms(facts.clone());
        let out = chase(&db, &tgds, CONFIG);
        for f in &facts {
            prop_assert!(out.instance.contains(f), "chase lost fact {f}");
        }
        prop_assert!(out.instance.len() >= db.len());
    }

    #[test]
    fn answers_contain_only_constants(
        tgds in proptest::collection::vec(tgd_strategy(), 1..4),
        facts in proptest::collection::vec(fact_strategy(), 1..6),
    ) {
        let db = Instance::from_atoms(facts);
        let out = chase(&db, &tgds, CONFIG);
        // q(X,Y) ← cr1(X,Y)
        let q = ConjunctiveQuery::new(
            vec![Term::var("X"), Term::var("Y")],
            vec![Atom::new(pred(2), vec![Term::var("X"), Term::var("Y")])],
        );
        for tuple in answers(&out.instance, &q) {
            prop_assert!(tuple.iter().all(Term::is_const), "null leaked: {tuple:?}");
        }
    }

    #[test]
    fn chase_is_monotone_in_the_database(
        tgds in proptest::collection::vec(tgd_strategy(), 1..4),
        facts in proptest::collection::vec(fact_strategy(), 2..6),
    ) {
        // Chasing a subset derives a subset of the *constant* atoms (null
        // names may differ, so compare only null-free atoms).
        let db_all = Instance::from_atoms(facts.clone());
        let db_some = Instance::from_atoms(facts[..facts.len() / 2].to_vec());
        let out_all = chase(&db_all, &tgds, CONFIG);
        let out_some = chase(&db_some, &tgds, CONFIG);
        if out_all.saturated && out_some.saturated {
            for atom in out_some.instance.atoms() {
                if atom.args.iter().all(Term::is_const) {
                    prop_assert!(
                        out_all.instance.contains(atom),
                        "monotonicity violated on {atom}"
                    );
                }
            }
        }
    }
}
