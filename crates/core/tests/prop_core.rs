//! Property-based tests for the core data structures: MGUs, homomorphisms,
//! canonical forms and containment.

use proptest::prelude::*;

use nyaya_core::{
    canonical_key, mgu_pair, Atom, ConjunctiveQuery, Predicate,
    Substitution, Term,
};

const VARS: [&str; 6] = ["X", "Y", "Z", "V", "W", "U"];
const CONSTS: [&str; 3] = ["a", "b", "c"];
const PREDS: [(&str, usize); 4] = [("p", 1), ("r", 2), ("t", 3), ("s", 2)];

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..VARS.len()).prop_map(|i| Term::var(VARS[i])),
        (0..CONSTS.len()).prop_map(|i| Term::constant(CONSTS[i])),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (0..PREDS.len()).prop_flat_map(|p| {
        let (name, arity) = PREDS[p];
        proptest::collection::vec(term_strategy(), arity)
            .prop_map(move |args| Atom::new(Predicate::new(name, arity), args))
    })
}

fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    (
        proptest::collection::vec(atom_strategy(), 1..5),
        proptest::collection::vec(0..VARS.len(), 0..3),
    )
        .prop_filter_map("head vars must occur in body", |(body, head_idx)| {
            let head: Vec<Term> = head_idx.iter().map(|&i| Term::var(VARS[i])).collect();
            let safe = head.iter().all(|t| match t {
                Term::Var(v) => body.iter().any(|a| a.contains_var(*v)),
                _ => true,
            });
            safe.then(|| ConjunctiveQuery::new(head, body))
        })
}

/// A random bijective renaming of the six variable names, derived from a
/// seed (proptest's internal RNG is a different `rand` major version, so we
/// build our own).
fn renaming_strategy() -> impl Strategy<Value = Substitution> {
    any::<u64>().prop_map(|seed| {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fresh: Vec<String> = (0..VARS.len()).map(|i| format!("R{i}")).collect();
        let mut order: Vec<usize> = (0..VARS.len()).collect();
        order.shuffle(&mut rng);
        let mut s = Substitution::new();
        for (i, &j) in order.iter().enumerate() {
            s.bind(nyaya_core::symbols::intern(VARS[i]), Term::var(&fresh[j]));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mgu_unifies_and_is_idempotent(a in atom_strategy(), b in atom_strategy()) {
        if let Some(s) = mgu_pair(&a, &b) {
            prop_assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
            prop_assert!(s.is_idempotent());
            // Applying twice changes nothing.
            let once = s.apply_atom(&a);
            prop_assert_eq!(s.apply_atom(&once), once.clone());
        }
    }

    #[test]
    fn mgu_is_most_general(a in atom_strategy(), b in atom_strategy()) {
        // Any ground unifier factors through the MGU: if h(a) = h(b) for a
        // grounding h, then h also grounds mgu(a,b) consistently.
        let grounding = {
            let mut s = Substitution::new();
            for v in VARS {
                s.bind(nyaya_core::symbols::intern(v), Term::constant("a"));
            }
            s
        };
        if grounding.apply_atom(&a) == grounding.apply_atom(&b) {
            // a and b unify (witnessed by `grounding`), so the MGU exists.
            prop_assert!(mgu_pair(&a, &b).is_some());
        }
    }

    #[test]
    fn canonical_key_invariant_under_renaming_and_shuffle(
        q in query_strategy(),
        renaming in renaming_strategy(),
        seed in any::<u64>(),
    ) {
        let renamed = q.apply(&renaming);
        prop_assert_eq!(canonical_key(&q), canonical_key(&renamed));

        // Shuffle body atoms deterministically from the seed.
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut shuffled = renamed.clone();
        shuffled.body.shuffle(&mut rng);
        prop_assert_eq!(canonical_key(&q), canonical_key(&shuffled));
    }

    #[test]
    fn canonical_key_distinguishes_ground_instances(q in query_strategy()) {
        // Grounding a variable changes the query (unless it had none).
        let vars = q.variables();
        if let Some(&v) = vars.first() {
            let mut s = Substitution::new();
            s.bind(v, Term::constant("zzz_fresh"));
            let grounded = q.apply(&s);
            prop_assert_ne!(canonical_key(&q), canonical_key(&grounded));
        }
    }

    #[test]
    fn homomorphism_witnesses_are_correct(
        from in proptest::collection::vec(atom_strategy(), 1..4),
        to in proptest::collection::vec(atom_strategy(), 1..4),
    ) {
        // Freeze the target (replace variables by constants), then verify
        // that any found homomorphism actually maps `from` into it.
        let freeze = {
            let mut s = Substitution::new();
            for v in VARS {
                s.bind(nyaya_core::symbols::intern(v), Term::constant(&format!("f_{v}")));
            }
            s
        };
        let target: Vec<Atom> = to.iter().map(|a| freeze.apply_atom(a)).collect();
        if let Some(h) = nyaya_core::find_homomorphism(&from, &target) {
            for atom in &from {
                let image = h.apply_atom(atom);
                prop_assert!(
                    target.contains(&image),
                    "image {image} not in target {target:?}"
                );
            }
        }
    }

    #[test]
    fn containment_is_reflexive_and_respects_extension(q in query_strategy()) {
        prop_assert!(q.contains(&q));
        // Adding an atom only constrains: q_ext ⊆ q.
        let mut ext = q.clone();
        ext.body.push(Atom::new(
            Predicate::new("extra", 1),
            vec![Term::var("X")],
        ));
        prop_assert!(q.contains(&ext));
    }

    #[test]
    fn freeze_produces_ground_body(q in query_strategy()) {
        let (body, head, _) = q.freeze();
        for a in &body {
            prop_assert!(a.is_ground());
        }
        for t in &head {
            prop_assert!(t.is_ground());
        }
    }

    #[test]
    fn equal_canonical_keys_imply_mutual_containment(
        q in query_strategy(),
        renaming in renaming_strategy(),
    ) {
        // Sanity link between the two equivalence machineries: isomorphic
        // queries are, in particular, equivalent.
        let renamed = q.apply(&renaming);
        if canonical_key(&q) == canonical_key(&renamed) {
            prop_assert!(q.equivalent_to(&renamed));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core of a CQ is equivalent to the CQ (Chandra–Merlin).
    #[test]
    fn minimization_preserves_equivalence(q in query_strategy()) {
        let m = nyaya_core::minimize_cq(&q);
        prop_assert!(m.body.len() <= q.body.len());
        prop_assert!(m.equivalent_to(&q), "{q} vs {m}");
    }

    /// Minimization reaches a fixpoint in one pass.
    #[test]
    fn minimization_is_idempotent(q in query_strategy()) {
        let once = nyaya_core::minimize_cq(&q);
        let twice = nyaya_core::minimize_cq(&once);
        prop_assert_eq!(once.body.len(), twice.body.len());
        prop_assert!(nyaya_core::is_minimal(&once));
    }

    /// Core sizes are renaming-invariant (cores are unique up to iso).
    #[test]
    fn core_size_is_renaming_invariant(q in query_strategy(), s in renaming_strategy()) {
        let renamed = q.apply(&s);
        prop_assume!(renamed.body.len() == q.body.len()); // bijective on atoms
        let a = nyaya_core::minimize_cq(&q);
        let b = nyaya_core::minimize_cq(&renamed);
        prop_assert_eq!(a.body.len(), b.body.len());
        prop_assert_eq!(canonical_key(&a), canonical_key(&b));
    }
}
