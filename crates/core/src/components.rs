//! Connected components of a conjunctive query.
//!
//! Section 2 criticises the QuOnto rewriting for not splitting queries into
//! connected components (Presto does): two body atoms are connected when
//! they share a variable, and each component can be rewritten independently
//! — the perfect rewriting of the whole query is the componentwise product,
//! so exploring components separately avoids multiplying their search
//! spaces.

use std::collections::HashMap;

use crate::query::ConjunctiveQuery;
use crate::symbols::Symbol;

/// Partition `body(q)` into variable-connected components.
///
/// Atoms sharing a variable (directly or transitively) end up in one
/// component; ground atoms are singleton components. Components are
/// returned in first-atom order, each as an index list into `q.body`.
pub fn connected_components(q: &ConjunctiveQuery) -> Vec<Vec<usize>> {
    let n = q.body.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    let mut seen_var: HashMap<Symbol, usize> = HashMap::new();
    for (i, atom) in q.body.iter().enumerate() {
        for v in atom.variables() {
            match seen_var.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    seen_var.insert(v, i);
                }
            }
        }
    }

    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut root_index: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        match root_index.get(&root) {
            Some(&c) => components[c].push(i),
            None => {
                root_index.insert(root, components.len());
                components.push(vec![i]);
            }
        }
    }
    components
}

/// Split a *Boolean* CQ into one BCQ per connected component.
///
/// `q` is entailed iff every component query is entailed, so components can
/// be rewritten and evaluated independently. Panics on non-Boolean queries
/// — answer variables tie components together.
pub fn split_boolean_query(q: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    assert!(
        q.is_boolean(),
        "component splitting is defined for Boolean queries"
    );
    connected_components(q)
        .into_iter()
        .map(|indices| {
            ConjunctiveQuery::boolean(indices.into_iter().map(|i| q.body[i].clone()).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    fn bcq(body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            crate::term::Term::var(a)
                        } else {
                            crate::term::Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(crate::atom::Predicate::new(p, args.len()), terms)
            })
            .collect();
        ConjunctiveQuery::boolean(atoms)
    }

    #[test]
    fn disconnected_atoms_split() {
        let q = bcq(&[("p", &["X", "Y"]), ("r", &["Z"]), ("s", &["Y"])]);
        let comps = connected_components(&q);
        // p and s share Y; r is alone.
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 2]);
        assert_eq!(comps[1], vec![1]);
    }

    #[test]
    fn chain_is_one_component() {
        let q = bcq(&[("e", &["A", "B"]), ("e", &["B", "C"]), ("e", &["C", "D"])]);
        assert_eq!(connected_components(&q).len(), 1);
    }

    #[test]
    fn ground_atoms_are_singletons() {
        let q = bcq(&[("p", &["a"]), ("p", &["b"]), ("r", &["X"])]);
        assert_eq!(connected_components(&q).len(), 3);
    }

    #[test]
    fn transitive_connection() {
        // X–Y via the middle atom: all three connected.
        let q = bcq(&[("p", &["X"]), ("r", &["X", "Y"]), ("s", &["Y"])]);
        assert_eq!(connected_components(&q).len(), 1);
    }

    #[test]
    fn split_produces_boolean_subqueries() {
        let q = bcq(&[("p", &["X"]), ("r", &["Z", "W"])]);
        let parts = split_boolean_query(&q);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(ConjunctiveQuery::is_boolean));
        assert_eq!(parts[0].body.len(), 1);
        assert_eq!(parts[1].body.len(), 1);
    }

    #[test]
    #[should_panic(expected = "Boolean")]
    fn split_rejects_non_boolean() {
        let mut q = bcq(&[("p", &["X"])]);
        q.head = vec![crate::term::Term::var("X")];
        split_boolean_query(&q);
    }
}
