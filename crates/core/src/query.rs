//! Conjunctive queries, unions of conjunctive queries, and the evaluation
//! metrics of Section 7 (size / length / width).

use std::collections::HashMap;
use std::fmt;

use crate::atom::Atom;
use crate::homomorphism::HomSearch;
use crate::substitution::Substitution;
use crate::symbols::{self, Symbol};
use crate::term::Term;

/// A conjunctive query `q(X) ← φ(X, Y)`.
///
/// A Boolean CQ has an empty head vector. The body is kept duplicate-free
/// (the paper identifies conjunctions with sets of atoms).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Head predicate name (conventionally `q`).
    pub head_pred: Symbol,
    /// Distinguished terms (variables or constants).
    pub head: Vec<Term>,
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// A Boolean CQ `q() ← body`.
    pub fn boolean(body: Vec<Atom>) -> Self {
        ConjunctiveQuery::new(Vec::new(), body)
    }

    /// A CQ with the given head terms.
    pub fn new(head: Vec<Term>, body: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "CQ body must be non-empty");
        let mut q = ConjunctiveQuery {
            head_pred: symbols::intern("q"),
            head,
            body,
        };
        q.dedup_body();
        q
    }

    /// Remove duplicate body atoms while preserving first-occurrence order.
    pub fn dedup_body(&mut self) {
        let mut seen: Vec<Atom> = Vec::with_capacity(self.body.len());
        for a in self.body.drain(..) {
            if !seen.contains(&a) {
                seen.push(a);
            }
        }
        self.body = seen;
    }

    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Number of occurrences of each variable across the whole query
    /// (head and body), counting repeated occurrences within one atom.
    pub fn occurrence_counts(&self) -> HashMap<Symbol, usize> {
        let mut counts: HashMap<Symbol, usize> = HashMap::new();
        let mut occ = Vec::new();
        for t in &self.head {
            t.collect_vars(&mut occ);
        }
        for a in &self.body {
            a.collect_vars(&mut occ);
        }
        for v in occ {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    /// Shared variables: those occurring more than once in the query
    /// (Section 5 — for non-Boolean CQs the head occurrences count).
    pub fn shared_vars(&self) -> HashMap<Symbol, usize> {
        self.occurrence_counts()
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .collect()
    }

    /// Is `v` shared in this query?
    pub fn is_shared(&self, v: Symbol) -> bool {
        let mut count = 0usize;
        let mut occ = Vec::new();
        for t in &self.head {
            t.collect_vars(&mut occ);
        }
        for a in &self.body {
            a.collect_vars(&mut occ);
        }
        for w in occ {
            if w == v {
                count += 1;
                if count > 1 {
                    return true;
                }
            }
        }
        false
    }

    /// Distinct variables of the query in first-occurrence order (head
    /// first).
    pub fn variables(&self) -> Vec<Symbol> {
        let mut occ = Vec::new();
        for t in &self.head {
            t.collect_vars(&mut occ);
        }
        for a in &self.body {
            a.collect_vars(&mut occ);
        }
        let mut out = Vec::new();
        for v in occ {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Apply a substitution to head and body (body is re-deduplicated, since
    /// unification can collapse atoms).
    pub fn apply(&self, s: &Substitution) -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery {
            head_pred: self.head_pred,
            head: self.head.iter().map(|t| s.apply_term(t)).collect(),
            body: s.apply_atoms(&self.body),
        };
        q.dedup_body();
        q
    }

    /// Freeze the query: replace every variable with a fresh constant.
    /// Returns the frozen body together with the freezing substitution
    /// (used by the chase & back-chase algorithm and containment tests).
    pub fn freeze(&self) -> (Vec<Atom>, Vec<Term>, Substitution) {
        let mut s = Substitution::new();
        for v in self.variables() {
            s.bind(v, Term::Const(symbols::fresh("c")));
        }
        let body = s.apply_atoms(&self.body);
        let head = self.head.iter().map(|t| s.apply_term(t)).collect();
        (body, head, s)
    }

    /// Does `self` contain `other` (i.e. `other ⊆ self`: every answer of
    /// `other` over every database is an answer of `self`)?
    ///
    /// Decided via the Chandra–Merlin containment-mapping criterion: freeze
    /// `other` and look for a homomorphism from `self` that maps the head
    /// onto the frozen head.
    pub fn contains(&self, other: &ConjunctiveQuery) -> bool {
        if self.head.len() != other.head.len() {
            return false;
        }
        let (frozen_body, frozen_head, _) = other.freeze();
        let search = HomSearch::new(&frozen_body);
        let mut init = Substitution::new();
        for (t, target) in self.head.iter().zip(frozen_head.iter()) {
            match t {
                Term::Var(v) => match init.get(*v) {
                    Some(bound) => {
                        if bound != target {
                            return false;
                        }
                    }
                    None => init.bind(*v, target.clone()),
                },
                other_t => {
                    if other_t != target {
                        return false;
                    }
                }
            }
        }
        search.exists(&self.body, &init)
    }

    /// Mutual containment.
    pub fn equivalent_to(&self, other: &ConjunctiveQuery) -> bool {
        self.contains(other) && other.contains(self)
    }

    /// `length` contribution: number of body atoms.
    pub fn length(&self) -> usize {
        self.body.len()
    }

    /// `width` contribution: the number of joins executed when evaluating
    /// this CQ, counted as Σ_v C(m_v, 2) where `m_v` is the number of
    /// distinct body atoms in which variable `v` occurs (reverse-engineered
    /// from Table 1; see DESIGN.md).
    pub fn width(&self) -> usize {
        let mut per_var: HashMap<Symbol, usize> = HashMap::new();
        for a in &self.body {
            for v in a.variables() {
                *per_var.entry(v).or_insert(0) += 1;
            }
        }
        per_var
            .values()
            .map(|m| m * (m.saturating_sub(1)) / 2)
            .sum()
    }

    /// Does any body atom contain a function term (Skolemized rewritings
    /// keep such CQs out of the final result)?
    pub fn has_function_terms(&self) -> bool {
        self.body.iter().any(Atom::has_function_term) || self.head.iter().any(|t| t.is_func())
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_pred)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries with the paper's three quality metrics.
#[derive(Clone, Default)]
pub struct UnionQuery {
    pub cqs: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    pub fn new(cqs: Vec<ConjunctiveQuery>) -> Self {
        UnionQuery { cqs }
    }

    /// Table 1 "Size": the number of CQs in the perfect rewriting.
    pub fn size(&self) -> usize {
        self.cqs.len()
    }

    /// Table 1 "Length": total number of atoms over all CQs.
    pub fn length(&self) -> usize {
        self.cqs.iter().map(ConjunctiveQuery::length).sum()
    }

    /// Table 1 "Width": total number of joins over all CQs.
    pub fn width(&self) -> usize {
        self.cqs.iter().map(ConjunctiveQuery::width).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.cqs.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, ConjunctiveQuery> {
        self.cqs.iter()
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in &self.cqs {
            writeln!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(crate::atom::Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    #[test]
    fn shared_variables_count_head_occurrences() {
        // q(A) ← p(A,B): A is shared (head + body), B is not.
        let query = q(&["A"], &[("p", &["A", "B"])]);
        assert!(query.is_shared(symbols::intern("A")));
        assert!(!query.is_shared(symbols::intern("B")));
    }

    #[test]
    fn shared_within_single_atom_counts() {
        // q() ← t(A,C,C): C occurs twice in one atom → shared.
        let query = q(&[], &[("t", &["A", "C", "C"])]);
        assert!(query.is_shared(symbols::intern("C")));
        assert!(!query.is_shared(symbols::intern("A")));
    }

    #[test]
    fn width_matches_table1_examples() {
        // V-q5: q5(A) ← Individual(A), hasRole(A,B), Scientist(B),
        //       hasRole(A,C), Discoverer(C), hasRole(A,D), Inventor(D)
        // Table 1 reports width 270 for 30 CQs of this shape → 9 each.
        let v_q5 = q(
            &["A"],
            &[
                ("Individual", &["A"]),
                ("hasRole", &["A", "B"]),
                ("Scientist", &["B"]),
                ("hasRole", &["A", "C"]),
                ("Discoverer", &["C"]),
                ("hasRole", &["A", "D"]),
                ("Inventor", &["D"]),
            ],
        );
        assert_eq!(v_q5.width(), 9);
        // U-q3 shape: 9 joins (3 variables in 3 atoms each).
        let u_q3 = q(
            &["A", "B", "C"],
            &[
                ("Student", &["A"]),
                ("advisor", &["A", "B"]),
                ("FacultyStaff", &["B"]),
                ("takesCourse", &["A", "C"]),
                ("teacherOf", &["B", "C"]),
                ("Course", &["C"]),
            ],
        );
        assert_eq!(u_q3.width(), 9);
        // S-q2 shape: 2 joins.
        let s_q2 = q(
            &["A", "B"],
            &[
                ("Person", &["A"]),
                ("hasStock", &["A", "B"]),
                ("Stock", &["B"]),
            ],
        );
        assert_eq!(s_q2.width(), 2);
        // single-atom query: width 0.
        let v_q1 = q(&["A"], &[("Location", &["A"])]);
        assert_eq!(v_q1.width(), 0);
    }

    #[test]
    fn body_is_deduplicated() {
        let query = q(&[], &[("p", &["X"]), ("p", &["X"])]);
        assert_eq!(query.body.len(), 1);
    }

    #[test]
    fn containment_basic() {
        // q1() ← p(X,Y)  contains  q2() ← p(X,X)
        let q1 = q(&[], &[("p", &["X", "Y"])]);
        let q2 = q(&[], &[("p", &["X", "X"])]);
        assert!(q1.contains(&q2));
        assert!(!q2.contains(&q1));
    }

    #[test]
    fn containment_respects_head() {
        // q(A) ← p(A,B) vs q(B) ← p(A,B): not equivalent.
        let qa = q(&["A"], &[("p", &["A", "B"])]);
        let qb = q(&["B"], &[("p", &["A", "B"])]);
        assert!(!qa.contains(&qb));
        assert!(!qb.contains(&qa));
        assert!(qa.contains(&qa));
    }

    #[test]
    fn equivalence_modulo_redundant_atom() {
        // q() ← p(X,Y), p(X,Z)  ≡  q() ← p(X,Y)
        let big = q(&[], &[("p", &["X", "Y"]), ("p", &["X", "Z"])]);
        let small = q(&[], &[("p", &["X", "Y"])]);
        assert!(big.equivalent_to(&small));
    }

    #[test]
    fn union_metrics_sum() {
        let u = UnionQuery::new(vec![
            q(&["A"], &[("p", &["A", "B"]), ("r", &["B"])]),
            q(&["A"], &[("s", &["A"])]),
        ]);
        assert_eq!(u.size(), 2);
        assert_eq!(u.length(), 3);
        assert_eq!(u.width(), 1);
    }
}
