//! Global string interner for predicate, constant, variable and function
//! symbols.
//!
//! Every name that appears in a Datalog± program is interned once and
//! referred to by a compact [`Symbol`] (a `u32`). Interning happens at
//! program-construction time; the hot rewriting loops only ever compare and
//! hash `u32`s.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// An interned name. Cheap to copy, compare and hash.
///
/// Symbols are process-global: the same string always interns to the same
/// symbol within one process, so symbol equality is name equality.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw interner index. Stable within a process run only.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from a raw interner index previously obtained via
    /// [`Symbol::index`] **in this process run**. Indices are assigned in
    /// first-intern order, so an index from another run (or one never
    /// handed out by `index()`) names an arbitrary — possibly absent —
    /// string. Callers that persist data must go through names instead.
    #[inline]
    pub fn from_index(index: u32) -> Symbol {
        Symbol(index)
    }

    /// The interned string for this symbol.
    pub fn name(self) -> String {
        resolve(self)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", resolve(*self))
    }
}

struct Interner {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::with_capacity(256),
            index: HashMap::with_capacity(256),
        })
    })
}

/// Intern `name`, returning its symbol. Idempotent.
pub fn intern(name: &str) -> Symbol {
    // The interner is process-global and append-only; the only panics
    // possible inside the critical section are allocation failures,
    // which abort. A poisoned lock therefore guards intact state —
    // recover rather than wedging every later parse in the process.
    let mut guard = interner().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&sym) = guard.index.get(name) {
        return sym;
    }
    let sym = Symbol(u32::try_from(guard.names.len()).expect("interner overflow"));
    guard.names.push(name.to_owned());
    guard.index.insert(name.to_owned(), sym);
    sym
}

/// Resolve a symbol back to its string.
pub fn resolve(sym: Symbol) -> String {
    // See `intern` for why recovery is sound here.
    let guard = interner().lock().unwrap_or_else(PoisonError::into_inner);
    guard.names[sym.0 as usize].clone()
}

/// Compare two symbols by their interned *names* under a single lock
/// acquisition, without cloning either string.
///
/// The derived `Ord` on [`Symbol`] compares interner indices, which are
/// assigned in first-intern order and therefore differ between process
/// runs. Anything that must order identically across restarts (sorted
/// index postings serialized into ledger segments, canonical answer
/// ordering) goes through this name order instead.
pub fn cmp_names(a: Symbol, b: Symbol) -> std::cmp::Ordering {
    if a == b {
        return std::cmp::Ordering::Equal;
    }
    let guard = interner().lock().unwrap_or_else(PoisonError::into_inner);
    guard.names[a.0 as usize].cmp(&guard.names[b.0 as usize])
}

/// Value order for constants: names that parse as integers compare
/// numerically (`"9" < "10"`, `"-3" < "2"`), integers sort before
/// non-numeric names, and everything else falls back to byte-wise name
/// order. Ties between distinct spellings of one number (`"01"` vs
/// `"1"`) break on the exact name, keeping this a strict total order
/// where `Equal` implies the same symbol.
pub fn cmp_values(a: Symbol, b: Symbol) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    if a == b {
        return Ordering::Equal;
    }
    let guard = interner().lock().unwrap_or_else(PoisonError::into_inner);
    let (sa, sb) = (&guard.names[a.0 as usize], &guard.names[b.0 as usize]);
    match (sa.parse::<i128>(), sb.parse::<i128>()) {
        (Ok(x), Ok(y)) => x.cmp(&y).then_with(|| sa.cmp(sb)),
        (Ok(_), Err(_)) => Ordering::Less,
        (Err(_), Ok(_)) => Ordering::Greater,
        (Err(_), Err(_)) => sa.cmp(sb),
    }
}

/// Sort a slice of symbols into [`cmp_values`] order under a **single**
/// lock acquisition.
///
/// Sorting n symbols through `cmp_values` directly takes O(n log n) lock
/// round-trips on the global interner; bulk index rebuilds over columnar
/// tables sort whole columns at once, so this precomputes each symbol's
/// `(parsed integer, name)` sort key with the lock held once and sorts on
/// the keys. The order produced is identical to `cmp_values` (numeric
/// ties break on the exact name, so `Equal` implies the same symbol).
pub fn sort_by_value(syms: &mut [Symbol]) {
    let guard = interner().lock().unwrap_or_else(PoisonError::into_inner);
    let mut keyed: Vec<(Option<i128>, &str, Symbol)> = syms
        .iter()
        .map(|&s| {
            let name = guard.names[s.0 as usize].as_str();
            (name.parse::<i128>().ok(), name, s)
        })
        .collect();
    keyed.sort_unstable_by(|(xa, na, _), (xb, nb, _)| {
        use std::cmp::Ordering;
        match (xa, xb) {
            (Some(x), Some(y)) => x.cmp(y).then_with(|| na.cmp(nb)),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => na.cmp(nb),
        }
    });
    for (slot, (_, _, s)) in syms.iter_mut().zip(keyed) {
        *slot = s;
    }
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Intern a globally fresh name with the given prefix.
///
/// Fresh names start with `_` which the parser rejects in user input, so a
/// fresh symbol can never collide with a user-written one.
pub fn fresh(prefix: &str) -> Symbol {
    let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
    intern(&format!("_{prefix}{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("stock");
        let b = intern("stock");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "stock");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        assert_ne!(intern("company"), intern("companies"));
    }

    #[test]
    fn fresh_symbols_are_unique_and_prefixed() {
        let a = fresh("V");
        let b = fresh("V");
        assert_ne!(a, b);
        assert!(resolve(a).starts_with("_V"));
        assert!(resolve(b).starts_with("_V"));
    }

    #[test]
    fn sort_by_value_matches_cmp_values() {
        let mut syms: Vec<Symbol> = ["10", "9", "-3", "apple", "01", "1", "zeta", "Zed", "2"]
            .iter()
            .map(|s| intern(s))
            .collect();
        let mut expect = syms.clone();
        expect.sort_by(|&a, &b| cmp_values(a, b));
        sort_by_value(&mut syms);
        assert_eq!(syms, expect);
        assert_eq!(Symbol::from_index(syms[0].index()), syms[0]);
    }

    #[test]
    fn display_matches_resolve() {
        let s = intern("fin_idx");
        assert_eq!(format!("{s}"), "fin_idx");
        assert_eq!(format!("{s:?}"), "fin_idx");
    }
}
