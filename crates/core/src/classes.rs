//! Syntactic Datalog± language classes (paper, Section 4): linear, guarded,
//! weakly-acyclic, sticky, and a sufficient check for sticky-join.

use std::collections::{HashMap, HashSet};

use crate::atom::Position;
use crate::symbols::Symbol;
use crate::tgd::Tgd;

/// Is every TGD linear (single body atom)?
pub fn is_linear(tgds: &[Tgd]) -> bool {
    tgds.iter().all(Tgd::is_linear)
}

/// Is every TGD guarded (some body atom contains all universal variables)?
pub fn is_guarded(tgds: &[Tgd]) -> bool {
    tgds.iter().all(Tgd::is_guarded)
}

/// Weak acyclicity (Fagin et al., referenced as \[29\]): build the position
/// graph with regular and special edges; the set is weakly acyclic iff no
/// cycle passes through a special edge. Guarantees chase termination.
pub fn is_weakly_acyclic(tgds: &[Tgd]) -> bool {
    let mut regular: HashMap<Position, HashSet<Position>> = HashMap::new();
    let mut special: Vec<(Position, Position)> = Vec::new();

    for tgd in tgds {
        let head_vars: HashSet<Symbol> = tgd.head_vars().into_iter().collect();
        let ex_vars: HashSet<Symbol> = tgd.existential_vars().into_iter().collect();
        // Positions of existential variables in the head.
        let mut ex_positions: Vec<Position> = Vec::new();
        for h in &tgd.head {
            for (i, t) in h.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    if ex_vars.contains(&v) {
                        ex_positions.push(Position {
                            pred: h.pred,
                            index: i,
                        });
                    }
                }
            }
        }
        for b in &tgd.body {
            for (i, t) in b.args.iter().enumerate() {
                let Some(v) = t.as_var() else { continue };
                if !head_vars.contains(&v) {
                    continue;
                }
                let from = Position {
                    pred: b.pred,
                    index: i,
                };
                // Regular edges: to every head position of the same variable.
                for h in &tgd.head {
                    for (j, u) in h.args.iter().enumerate() {
                        if u.as_var() == Some(v) {
                            regular.entry(from).or_default().insert(Position {
                                pred: h.pred,
                                index: j,
                            });
                        }
                    }
                }
                // Special edges: to every existential position of the head.
                for &to in &ex_positions {
                    special.push((from, to));
                    regular.entry(from).or_default(); // ensure node exists
                }
            }
        }
    }

    // Combined reachability (regular ∪ special edges).
    let mut all_edges: HashMap<Position, HashSet<Position>> = regular.clone();
    for (u, v) in &special {
        all_edges.entry(*u).or_default().insert(*v);
    }
    // A cycle through a special edge (u, v) exists iff v reaches u.
    for (u, v) in &special {
        if reaches(&all_edges, *v, *u) {
            return false;
        }
    }
    true
}

fn reaches(edges: &HashMap<Position, HashSet<Position>>, from: Position, to: Position) -> bool {
    if from == to {
        return true;
    }
    let mut stack = vec![from];
    let mut seen: HashSet<Position> = HashSet::new();
    seen.insert(from);
    while let Some(p) = stack.pop() {
        if let Some(next) = edges.get(&p) {
            for &n in next {
                if n == to {
                    return true;
                }
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
    }
    false
}

/// The sticky variable-marking procedure (\[9\], sketched in Section 4.1).
///
/// Returns, for each TGD, the set of marked body variables. A set of TGDs is
/// sticky iff no marked variable occurs more than once in its body.
pub fn sticky_marking(tgds: &[Tgd]) -> Vec<HashSet<Symbol>> {
    let mut marked: Vec<HashSet<Symbol>> = vec![HashSet::new(); tgds.len()];

    // Initial step: mark body variables that do not occur in the head.
    for (i, tgd) in tgds.iter().enumerate() {
        let head_vars: HashSet<Symbol> = tgd.head_vars().into_iter().collect();
        for v in tgd.body_vars() {
            if !head_vars.contains(&v) {
                marked[i].insert(v);
            }
        }
    }

    // Propagation: if a universal variable of head(σ) occurs (in the head)
    // at a position at which some body holds a marked variable, mark it in
    // body(σ). Iterate to fixpoint.
    loop {
        // Positions where some TGD's body has a marked variable.
        let mut marked_positions: HashSet<Position> = HashSet::new();
        for (i, tgd) in tgds.iter().enumerate() {
            for b in &tgd.body {
                for (j, t) in b.args.iter().enumerate() {
                    if let Some(v) = t.as_var() {
                        if marked[i].contains(&v) {
                            marked_positions.insert(Position {
                                pred: b.pred,
                                index: j,
                            });
                        }
                    }
                }
            }
        }
        let mut changed = false;
        for (i, tgd) in tgds.iter().enumerate() {
            let body_vars: HashSet<Symbol> = tgd.body_vars().into_iter().collect();
            for h in &tgd.head {
                for (j, t) in h.args.iter().enumerate() {
                    let Some(v) = t.as_var() else { continue };
                    if !body_vars.contains(&v) {
                        continue; // existential variables are never marked
                    }
                    let pos = Position {
                        pred: h.pred,
                        index: j,
                    };
                    if marked_positions.contains(&pos) && marked[i].insert(v) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return marked;
        }
    }
}

/// Is the set sticky (\[9\])? Decidable in PTIME via the marking procedure.
pub fn is_sticky(tgds: &[Tgd]) -> bool {
    let marking = sticky_marking(tgds);
    tgds.iter().zip(marking.iter()).all(|(tgd, marked)| {
        marked.iter().all(|v| {
            let mut occ = Vec::new();
            for b in &tgd.body {
                b.collect_vars(&mut occ);
            }
            occ.iter().filter(|w| *w == v).count() <= 1
        })
    })
}

/// A *sufficient* check for sticky-join membership.
///
/// Sticky-join sets (\[10\]) strictly generalise both linear and sticky sets,
/// and deciding membership is PSPACE-complete. We implement the practical
/// sufficient condition `linear(Σ) ∨ sticky(Σ)` — exactly the fragments the
/// paper's rewriting experiments exercise. A `true` answer guarantees
/// FO-rewritability; `false` is inconclusive.
pub fn is_sticky_join_sufficient(tgds: &[Tgd]) -> bool {
    is_linear(tgds) || is_sticky(tgds)
}

/// Human-readable classification report for an ontology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    pub linear: bool,
    pub guarded: bool,
    pub weakly_guarded: bool,
    pub weakly_acyclic: bool,
    pub sticky: bool,
    pub sticky_join_sufficient: bool,
}

impl Classification {
    /// Does the classification guarantee first-order rewritability
    /// (Section 1: linear, sticky and sticky-join sets are FO-rewritable)?
    pub fn fo_rewritable(&self) -> bool {
        self.linear || self.sticky || self.sticky_join_sufficient
    }
}

/// Classify a set of TGDs against all implemented language classes.
pub fn classify(tgds: &[Tgd]) -> Classification {
    Classification {
        linear: is_linear(tgds),
        guarded: is_guarded(tgds),
        weakly_guarded: crate::affected::is_weakly_guarded(tgds),
        weakly_acyclic: is_weakly_acyclic(tgds),
        sticky: is_sticky(tgds),
        sticky_join_sufficient: is_sticky_join_sufficient(tgds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Predicate};
    use crate::term::Term;

    fn tgd(body: &[(&str, &[&str])], head: &[(&str, &[&str])]) -> Tgd {
        let mk = |spec: &[(&str, &[&str])]| {
            spec.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args
                        .iter()
                        .map(|a| {
                            if a.chars().next().unwrap().is_uppercase() {
                                Term::var(a)
                            } else {
                                Term::constant(a)
                            }
                        })
                        .collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect::<Vec<_>>()
        };
        Tgd::new(mk(body), mk(head))
    }

    #[test]
    fn linear_implies_guarded() {
        let tgds = vec![tgd(&[("s", &["X"])], &[("t", &["X", "Z"])])];
        assert!(is_linear(&tgds));
        assert!(is_guarded(&tgds));
    }

    #[test]
    fn transitivity_is_not_guarded() {
        let tgds = vec![tgd(
            &[("r", &["X", "Y"]), ("r", &["Y", "Z"])],
            &[("r", &["X", "Z"])],
        )];
        assert!(!is_linear(&tgds));
        assert!(!is_guarded(&tgds));
        // …but it is sticky? r(X,Y), r(Y,Z) → r(X,Z): Y is marked (it does
        // not occur in the head) and occurs twice → NOT sticky.
        assert!(!is_sticky(&tgds));
    }

    #[test]
    fn weak_acyclicity_detects_self_feeding_existential() {
        // r(X,Y) → ∃Z r(Y,Z): Y propagates (regular r[2]→r[1]) and the
        // special edge r[2]→r[2] closes a cycle through itself → not WA.
        let looping = vec![tgd(&[("r", &["X", "Y"])], &[("r", &["Y", "Z"])])];
        assert!(!is_weakly_acyclic(&looping));
        // p(X) → ∃Y p(Y): X does not occur in the head, so the position
        // graph has no edges at all; weakly acyclic (and indeed the
        // restricted chase terminates: p(z1) already satisfies the TGD).
        let fresh_only = vec![tgd(&[("p", &["X"])], &[("p", &["Y"])])];
        assert!(is_weakly_acyclic(&fresh_only));
        // p(X) → q(X): no existential at all → weakly acyclic.
        let flat = vec![tgd(&[("p", &["X"])], &[("q", &["X"])])];
        assert!(is_weakly_acyclic(&flat));
    }

    #[test]
    fn weak_acyclicity_two_step_cycle() {
        // p(X) → ∃Y r(X,Y);  r(X,Y) → p(Y): null flows back into p[1].
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("r", &["X", "Y"])]),
            tgd(&[("r", &["X", "Y"])], &[("p", &["Y"])]),
        ];
        assert!(!is_weakly_acyclic(&tgds));
        // Without the feedback rule the set is weakly acyclic.
        let tgds2 = vec![tgd(&[("p", &["X"])], &[("r", &["X", "Y"])])];
        assert!(is_weakly_acyclic(&tgds2));
    }

    #[test]
    fn sticky_marking_example() {
        // σ1: r(X,Y) → p(X):  Y marked initially.
        // σ2: p(X), q(X) → s(X): X occurs twice; is X marked? X occurs in
        // head at s[1]; no body holds a marked variable at s[1], so X stays
        // unmarked and the set is sticky.
        let tgds = vec![
            tgd(&[("r", &["X", "Y"])], &[("p", &["X"])]),
            tgd(&[("p", &["X"]), ("q", &["X"])], &[("s", &["X"])]),
        ];
        assert!(is_sticky(&tgds));

        // Now feed s back into r's body: s(X,?)… make marking propagate:
        // σ3: s(X) → r(X, W) puts existential at r[2]; and σ1 marks Y at
        // r[2]; propagation: X of σ3's head occurs at r[1] — no marking.
        // Construct an explicitly non-sticky set instead:
        // σ: p(X), q(X) → t(X); τ: t(X) → u(X); u-body position carries X
        // which is joined… simplest non-sticky: join variable that does not
        // reach the head.
        let non_sticky = vec![tgd(
            &[("p", &["X", "Y"]), ("q", &["Y", "Z"])],
            &[("s", &["X", "Z"])],
        )];
        // Y occurs twice and not in head → marked twice → not sticky.
        assert!(!is_sticky(&non_sticky));
    }

    #[test]
    fn sticky_propagation_through_heads() {
        // σ1: a(X,Y) → b(X):   Y marked at a[2].
        // σ2: c(X,Y) → a(Y,X): head a[2] holds X (universal) — position a[2]
        //     is marked by σ1's body? marked positions are those of *bodies*
        //     holding marked vars: a[2] holds Y in σ1's body (marked) → X of
        //     σ2 becomes marked. X occurs once in σ2's body → still sticky.
        let tgds = vec![
            tgd(&[("a", &["X", "Y"])], &[("b", &["X"])]),
            tgd(&[("c", &["X", "Y"])], &[("a", &["Y", "X"])]),
        ];
        let marking = sticky_marking(&tgds);
        assert!(marking[1].contains(&crate::symbols::intern("X")));
        assert!(is_sticky(&tgds));

        // Same propagation but X occurs twice in σ2's body → not sticky.
        let tgds2 = vec![
            tgd(&[("a", &["X", "Y"])], &[("b", &["X"])]),
            tgd(&[("c", &["X", "X"])], &[("a", &["Y", "X"])]),
        ];
        assert!(!is_sticky(&tgds2));
    }

    #[test]
    fn classification_report() {
        let tgds = vec![tgd(&[("s", &["X"])], &[("t", &["X", "Z"])])];
        let c = classify(&tgds);
        assert!(c.linear && c.guarded && c.weakly_acyclic && c.sticky);
        assert!(c.weakly_guarded, "guarded ⊆ weakly guarded");
        assert!(c.fo_rewritable());
    }
}
