//! Conjunctive-query minimization: computing the *core* of a CQ.
//!
//! Section 2 traces query minimization back to Chandra–Merlin \[21\]: a CQ
//! is minimal iff no proper sub-query is equivalent to it, and every CQ
//! has a unique minimal equivalent (its core, up to isomorphism). Unlike
//! the query elimination of Section 6, minimization uses no constraints —
//! it removes atoms that are redundant *logically*, e.g. `p(X,Y), p(X,Z)`
//! collapses to `p(X,Y)`. The two optimizations compose: elimination
//! strips atoms implied by Σ, minimization strips atoms implied by the
//! rest of the body.

use crate::query::{ConjunctiveQuery, UnionQuery};

/// Compute the core of `q`: the unique (up to variable renaming) minimal
/// equivalent sub-query.
///
/// Greedy atom removal is correct here: an atom is removable iff the query
/// without it still contains the original, and removability is preserved
/// under other removals on the way to the core.
pub fn minimize_cq(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    let mut i = 0usize;
    while i < current.body.len() {
        if current.body.len() == 1 {
            break; // bodies must stay non-empty
        }
        let mut candidate = current.clone();
        candidate.body.remove(i);
        // Removing an atom weakens the query (current ⊆ candidate always);
        // equivalence needs the other direction.
        if current.contains(&candidate) {
            current = candidate; // same index now holds the next atom
        } else {
            i += 1;
        }
    }
    current
}

/// Is `q` already its own core?
pub fn is_minimal(q: &ConjunctiveQuery) -> bool {
    minimize_cq(q).body.len() == q.body.len()
}

/// Minimize every member of a union (does not remove subsumed members —
/// that is `nyaya-rewrite`'s `minimize_union`).
pub fn minimize_union_bodies(u: &UnionQuery) -> UnionQuery {
    UnionQuery::new(u.iter().map(minimize_cq).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Predicate};
    use crate::term::Term;

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let conv = |a: &&str| {
            if a.chars().next().unwrap().is_uppercase() {
                Term::var(a)
            } else {
                Term::constant(a)
            }
        };
        ConjunctiveQuery::new(
            head.iter().map(conv).collect(),
            body.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args.iter().map(conv).collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect(),
        )
    }

    #[test]
    fn redundant_sibling_atom_is_removed() {
        // q(X) ← p(X,Y), p(X,Z): the second atom folds onto the first.
        let q = cq(&["X"], &[("p", &["X", "Y"]), ("p", &["X", "Z"])]);
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 1);
        assert!(m.equivalent_to(&q));
    }

    #[test]
    fn non_redundant_atoms_survive() {
        // A 2-path cannot fold onto one edge atom (Y is shared).
        let q = cq(&["X"], &[("e", &["X", "Y"]), ("e", &["Y", "Z"])]);
        assert!(is_minimal(&q));
        // The triangle query is its own core.
        let tri = cq(
            &[],
            &[("e", &["X", "Y"]), ("e", &["Y", "Z"]), ("e", &["Z", "X"])],
        );
        assert!(is_minimal(&tri));
    }

    #[test]
    fn folding_respects_constants() {
        // p(X,a) cannot fold onto p(X,Y) unless Y ↦ a is allowed — it is,
        // but then the head variable must still be preserved.
        let q = cq(&["X"], &[("p", &["X", "Y"]), ("p", &["X", "a"])]);
        // p(X,Y) folds onto p(X,a) via Y ↦ a: core is the constant atom.
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 1);
        assert_eq!(m.body[0].args[1], Term::constant("a"));
    }

    #[test]
    fn head_variables_block_folding() {
        // q(X,Y) ← p(X,Y), p(X,Z): Z-atom folds, but not the Y-atom.
        let q = cq(&["X", "Y"], &[("p", &["X", "Y"]), ("p", &["X", "Z"])]);
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 1);
        assert!(m.body[0].contains_var(crate::symbols::intern("Y")));
    }

    #[test]
    fn classic_double_edge_example() {
        // e(X,Y), e(X,Z), e(W,Y): folds to a single edge atom? W ↦ X, Z ↦ Y
        // maps all three atoms onto e(X,Y) — Boolean query, so yes.
        let q = cq(
            &[],
            &[("e", &["X", "Y"]), ("e", &["X", "Z"]), ("e", &["W", "Y"])],
        );
        let m = minimize_cq(&q);
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn minimization_is_idempotent_and_order_stable() {
        let q = cq(
            &["X"],
            &[
                ("p", &["X", "Y"]),
                ("p", &["X", "Z"]),
                ("r", &["Y"]),
                ("p", &["X", "W"]),
            ],
        );
        let once = minimize_cq(&q);
        let twice = minimize_cq(&once);
        assert_eq!(once.body.len(), twice.body.len());
        assert!(once.equivalent_to(&q));
        // p(X,Y),r(Y) survive; the two free-ended p-atoms fold onto p(X,Y).
        assert_eq!(once.body.len(), 2);
    }

    #[test]
    fn union_body_minimization() {
        let u = UnionQuery::new(vec![
            cq(&["X"], &[("p", &["X", "Y"]), ("p", &["X", "Z"])]),
            cq(&["X"], &[("s", &["X"])]),
        ]);
        let m = minimize_union_bodies(&u);
        assert_eq!(m.size(), 2);
        assert_eq!(m.length(), 2);
    }

    #[test]
    fn single_atom_queries_are_untouched() {
        let q = cq(&["X"], &[("p", &["X", "X"])]);
        let m = minimize_cq(&q);
        assert_eq!(m.body, q.body);
    }
}
