//! Canonical forms of conjunctive queries modulo bijective variable
//! renaming.
//!
//! Algorithm 1 deduplicates generated queries "modulo bijective variable
//! renaming" (`notExists`). We implement an exact canonical key: colour
//! refinement over variables followed by a minimum-encoding search over the
//! (small) atom orderings that the refinement leaves ambiguous. Two queries
//! have equal keys iff they are identical up to a bijective renaming of
//! variables.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::symbols::{self, Symbol};
use crate::term::Term;

/// An opaque canonical key; equal iff the queries are isomorphic.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CanonicalKey(String);

impl CanonicalKey {
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Upper bound on the number of atom orderings explored; beyond it we panic
/// rather than silently producing unsound keys (never hit in practice —
/// colour refinement separates the atoms of all benchmark queries).
const MAX_ORDERINGS: usize = 1 << 16;

/// The minimum-encoding atom order and its encoding — the shared core of
/// [`canonical_key`] and [`canonicalize`]. Using the *same* winning order
/// in both guarantees that any two isomorphic queries not only get equal
/// keys but canonicalize to the *identical* query, independent of which
/// representative was at hand (the property the parallel rewriting
/// worklist's bit-identity claim rests on).
fn best_order(q: &ConjunctiveQuery) -> (Vec<usize>, String) {
    let colors = refine_colors(q);

    // Signature of every body atom under the final colouring.
    let mut sigs: Vec<(u64, usize)> = q
        .body
        .iter()
        .enumerate()
        .map(|(i, a)| (atom_signature(a, &colors), i))
        .collect();
    sigs.sort();

    // Tie groups: runs of equal signatures.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0;
    while i < sigs.len() {
        let mut j = i + 1;
        while j < sigs.len() && sigs[j].0 == sigs[i].0 {
            j += 1;
        }
        groups.push(sigs[i..j].iter().map(|(_, idx)| *idx).collect());
        i = j;
    }

    let mut count: usize = 1;
    for g in &groups {
        count = count.saturating_mul(factorial(g.len()));
        assert!(
            count <= MAX_ORDERINGS,
            "canonicalization blow-up: ambiguous atom group too large"
        );
    }

    let mut best: Option<(String, Vec<usize>)> = None;
    enumerate_orders(&groups, 0, &mut Vec::new(), &mut |order: &[usize]| {
        let enc = encode(q, order);
        match &best {
            Some((b, _)) if *b <= enc => {}
            _ => best = Some((enc, order.to_vec())),
        }
    });
    let (enc, order) = best.expect("query has at least one atom");
    (order, enc)
}

/// Compute the canonical key of a query.
pub fn canonical_key(q: &ConjunctiveQuery) -> CanonicalKey {
    CanonicalKey(best_order(q).1)
}

/// Rename the variables of `q` to canonical names `V0, V1, …` following the
/// canonical (minimum-encoding) ordering. Isomorphic queries canonicalize
/// to the identical query. Useful for stable display in tests and reports.
pub fn canonicalize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    canonicalize_keyed(q).0
}

/// [`canonicalize`] and [`canonical_key`] in one ordering search — the key
/// is renaming-invariant, so it is shared by `q` and the canonicalized
/// query. Bulk consumers (the rewriting worklist's output assembly) use
/// this to avoid running the minimum-encoding search twice per query.
pub fn canonicalize_keyed(q: &ConjunctiveQuery) -> (ConjunctiveQuery, CanonicalKey) {
    let (order, encoding) = best_order(q);
    let mut rename: HashMap<Symbol, Term> = HashMap::new();
    let mut next = 0usize;
    let process = |t: &Term, rename: &mut HashMap<Symbol, Term>, next: &mut usize| {
        let mut occ = Vec::new();
        t.collect_vars(&mut occ);
        for v in occ {
            rename.entry(v).or_insert_with(|| {
                let name = format!("V{}", *next);
                *next += 1;
                Term::Var(symbols::intern(&name))
            });
        }
    };
    for t in &q.head {
        process(t, &mut rename, &mut next);
    }
    for &i in &order {
        for t in &q.body[i].args {
            process(t, &mut rename, &mut next);
        }
    }
    let sub = {
        let mut s = crate::substitution::Substitution::new();
        for (v, t) in rename {
            s.bind(v, t);
        }
        s
    };
    let mut out = ConjunctiveQuery {
        head_pred: q.head_pred,
        head: q.head.iter().map(|t| sub.apply_term(t)).collect(),
        body: order.iter().map(|&i| sub.apply_atom(&q.body[i])).collect(),
    };
    out.dedup_body();
    (out, CanonicalKey(encoding))
}

fn factorial(n: usize) -> usize {
    (2..=n).product::<usize>().max(1)
}

fn enumerate_orders(
    groups: &[Vec<usize>],
    g: usize,
    prefix: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if g == groups.len() {
        visit(prefix);
        return;
    }
    permute(&groups[g], &mut Vec::new(), &mut |perm| {
        let mark = prefix.len();
        prefix.extend_from_slice(perm);
        enumerate_orders(groups, g + 1, prefix, visit);
        prefix.truncate(mark);
    });
}

fn permute(items: &[usize], current: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
    if current.len() == items.len() {
        visit(current);
        return;
    }
    for &it in items {
        if !current.contains(&it) {
            current.push(it);
            permute(items, current, visit);
            current.pop();
        }
    }
}

/// Iteratively refine variable colours until the partition stabilises.
fn refine_colors(q: &ConjunctiveQuery) -> HashMap<Symbol, u64> {
    let vars = q.variables();
    let mut colors: HashMap<Symbol, u64> = HashMap::with_capacity(vars.len());

    // Initial colour: the (canonical) head positions at which the variable
    // occurs — head order is fixed, so this is renaming-invariant.
    for &v in &vars {
        let mut h = DefaultHasher::new();
        for (i, t) in q.head.iter().enumerate() {
            if t.contains_var(v) {
                i.hash(&mut h);
            }
        }
        colors.insert(v, h.finish());
    }

    for _round in 0..vars.len() + 1 {
        // Recompute atom signatures under current colours, then per-variable
        // multiset of (signature, positions) over the body.
        let sigs: Vec<u64> = q.body.iter().map(|a| atom_signature(a, &colors)).collect();
        let mut new_colors: HashMap<Symbol, u64> = HashMap::with_capacity(vars.len());
        for &v in &vars {
            let mut occurrences: Vec<(u64, Vec<usize>)> = Vec::new();
            for (ai, a) in q.body.iter().enumerate() {
                let mut positions = Vec::new();
                collect_positions_of(&a.args, v, &mut positions, &mut 0);
                if !positions.is_empty() {
                    occurrences.push((sigs[ai], positions));
                }
            }
            occurrences.sort();
            let mut h = DefaultHasher::new();
            colors[&v].hash(&mut h);
            occurrences.hash(&mut h);
            new_colors.insert(v, h.finish());
        }
        if partition_of(&new_colors, &vars) == partition_of(&colors, &vars) {
            colors = new_colors;
            break;
        }
        colors = new_colors;
    }
    colors
}

/// Flattened (depth-first) positions of variable `v` within a term list.
fn collect_positions_of(terms: &[Term], v: Symbol, out: &mut Vec<usize>, counter: &mut usize) {
    for t in terms {
        match t {
            Term::Var(w) => {
                if *w == v {
                    out.push(*counter);
                }
                *counter += 1;
            }
            Term::Func(_, args) => {
                *counter += 1;
                collect_positions_of(args, v, out, counter);
            }
            _ => {
                *counter += 1;
            }
        }
    }
}

fn partition_of(colors: &HashMap<Symbol, u64>, vars: &[Symbol]) -> Vec<Vec<usize>> {
    // Group variable indices by colour, represented order-independently.
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, v) in vars.iter().enumerate() {
        groups.entry(colors[v]).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

/// Renaming-invariant signature of one atom under a variable colouring.
/// Includes the intra-atom equality pattern (which argument slots hold the
/// same variable).
fn atom_signature(a: &Atom, colors: &HashMap<Symbol, u64>) -> u64 {
    let mut h = DefaultHasher::new();
    a.pred.sym.index().hash(&mut h);
    a.pred.arity.hash(&mut h);
    let mut local: HashMap<Symbol, usize> = HashMap::new();
    let mut slot = 0usize;
    for t in &a.args {
        sig_term(t, colors, &mut local, &mut slot, &mut h);
    }
    h.finish()
}

fn sig_term(
    t: &Term,
    colors: &HashMap<Symbol, u64>,
    local: &mut HashMap<Symbol, usize>,
    slot: &mut usize,
    h: &mut DefaultHasher,
) {
    match t {
        Term::Const(c) => {
            0u8.hash(h);
            c.index().hash(h);
            *slot += 1;
        }
        Term::Null(n) => {
            1u8.hash(h);
            n.hash(h);
            *slot += 1;
        }
        Term::Var(v) => {
            2u8.hash(h);
            colors.get(v).copied().unwrap_or(0).hash(h);
            let first = *local.entry(*v).or_insert(*slot);
            first.hash(h);
            *slot += 1;
        }
        Term::Func(f, args) => {
            3u8.hash(h);
            f.index().hash(h);
            args.len().hash(h);
            *slot += 1;
            for a in args.iter() {
                sig_term(a, colors, local, slot, h);
            }
        }
    }
}

/// Encode the query under a fixed body ordering with first-occurrence
/// variable renumbering. Distinct encodings ⟺ non-isomorphic labelled
/// structures for this ordering.
fn encode(q: &ConjunctiveQuery, order: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut rename: HashMap<Symbol, usize> = HashMap::new();
    let mut next = 0usize;
    let mut out = String::with_capacity(64);
    out.push('H');
    for t in &q.head {
        encode_term(t, &mut rename, &mut next, &mut out);
    }
    for &i in order {
        let a = &q.body[i];
        let _ = write!(out, "|{}#{}", a.pred.sym.index(), a.pred.arity);
        for t in &a.args {
            encode_term(t, &mut rename, &mut next, &mut out);
        }
    }
    out
}

fn encode_term(t: &Term, rename: &mut HashMap<Symbol, usize>, next: &mut usize, out: &mut String) {
    use std::fmt::Write as _;
    match t {
        Term::Const(c) => {
            let _ = write!(out, ",c{}", c.index());
        }
        Term::Null(n) => {
            let _ = write!(out, ",n{n}");
        }
        Term::Var(v) => {
            let id = *rename.entry(*v).or_insert_with(|| {
                let id = *next;
                *next += 1;
                id
            });
            let _ = write!(out, ",v{id}");
        }
        Term::Func(f, args) => {
            let _ = write!(out, ",f{}[", f.index());
            for a in args.iter() {
                encode_term(a, rename, next, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Predicate;

    fn q(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    #[test]
    fn renaming_invariance() {
        let q1 = q(&["A"], &[("p", &["A", "B"]), ("r", &["B", "C"])]);
        let q2 = q(&["X"], &[("p", &["X", "Q"]), ("r", &["Q", "W"])]);
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn atom_order_invariance() {
        let q1 = q(&[], &[("p", &["A", "B"]), ("r", &["B", "C"])]);
        let q2 = q(&[], &[("r", &["Q", "W"]), ("p", &["X", "Q"])]);
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn distinguishes_intra_atom_equalities() {
        let q1 = q(&[], &[("t", &["A", "B", "C"])]);
        let q2 = q(&[], &[("t", &["A", "B", "B"])]);
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn distinguishes_head_bindings() {
        let q1 = q(&["A"], &[("p", &["A", "B"])]);
        let q2 = q(&["B"], &[("p", &["A", "B"])]);
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn distinguishes_constants_from_variables() {
        let q1 = q(&[], &[("p", &["A"])]);
        let q2 = q(&[], &[("p", &["a"])]);
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn symmetric_queries_canonicalize() {
        // edge(A,B), edge(B,A) under swap A↔B is the same query.
        let q1 = q(&[], &[("edge", &["A", "B"]), ("edge", &["B", "A"])]);
        let q2 = q(&[], &[("edge", &["B", "A"]), ("edge", &["A", "B"])]);
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn chain_queries_differ_by_length() {
        let q2 = q(&["A"], &[("edge", &["A", "B"]), ("edge", &["B", "C"])]);
        let q3 = q(
            &["A"],
            &[
                ("edge", &["A", "B"]),
                ("edge", &["B", "C"]),
                ("edge", &["C", "D"]),
            ],
        );
        assert_ne!(canonical_key(&q2), canonical_key(&q3));
    }

    #[test]
    fn cycle_vs_path_distinguished() {
        let path = q(&[], &[("e", &["A", "B"]), ("e", &["B", "C"])]);
        let cycle = q(&[], &[("e", &["A", "B"]), ("e", &["B", "A"])]);
        assert_ne!(canonical_key(&path), canonical_key(&cycle));
    }

    #[test]
    fn canonicalize_produces_stable_names() {
        let q1 = q(&["Z"], &[("p", &["Z", "Q"])]);
        let c = canonicalize(&q1);
        assert_eq!(c.to_string(), "q(V0) :- p(V0,V1)");
    }

    #[test]
    fn canonicalize_keyed_matches_separate_calls() {
        let q1 = q(&["A"], &[("p", &["A", "B"]), ("r", &["B", "C"])]);
        let (c, k) = canonicalize_keyed(&q1);
        assert_eq!(c.to_string(), canonicalize(&q1).to_string());
        assert_eq!(k, canonical_key(&q1));
        // The key is renaming-invariant: the canonicalized query shares it.
        assert_eq!(k, canonical_key(&c));
    }

    #[test]
    fn isomorphic_representatives_canonicalize_identically() {
        // e(A,B), e(B,C) under the reversal symmetry is an ambiguous atom
        // group: colour refinement cannot separate the two atoms. The
        // canonical form must not depend on which representative (atom
        // order, variable names) happens to be at hand — the parallel
        // rewriting worklist races representatives into its table.
        let q1 = q(&[], &[("e", &["A", "B"]), ("e", &["B", "C"])]);
        let q2 = q(&[], &[("e", &["B", "C"]), ("e", &["A", "B"])]);
        let q3 = q(&[], &[("e", &["Y", "Z"]), ("e", &["X", "Y"])]);
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
        assert_eq!(canonicalize(&q1).to_string(), canonicalize(&q2).to_string());
        assert_eq!(canonicalize(&q1).to_string(), canonicalize(&q3).to_string());
    }

    #[test]
    fn five_edge_chain_is_fast_and_exact() {
        // P5-style query: 5 atoms over the same predicate.
        let chain = q(
            &["A"],
            &[
                ("edge", &["A", "B"]),
                ("edge", &["B", "C"]),
                ("edge", &["C", "D"]),
                ("edge", &["D", "E"]),
                ("edge", &["E", "F"]),
            ],
        );
        let renamed = q(
            &["X1"],
            &[
                ("edge", &["X1", "X2"]),
                ("edge", &["X2", "X3"]),
                ("edge", &["X3", "X4"]),
                ("edge", &["X4", "X5"]),
                ("edge", &["X5", "X6"]),
            ],
        );
        assert_eq!(canonical_key(&chain), canonical_key(&renamed));
        let reversed = q(
            &["F"],
            &[
                ("edge", &["A", "B"]),
                ("edge", &["B", "C"]),
                ("edge", &["C", "D"]),
                ("edge", &["D", "E"]),
                ("edge", &["E", "F"]),
            ],
        );
        assert_ne!(canonical_key(&chain), canonical_key(&reversed));
    }
}
