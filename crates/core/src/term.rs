//! Terms: constants, variables, labeled nulls, and function terms.
//!
//! Constants and variables follow the paper's Section 3.1 (`Δ_c` and query
//! variables); labeled nulls (`Δ_z`) are introduced by the chase; function
//! terms only appear in the Requiem-style baseline (Skolemized existentials)
//! and in the Skolem chase.

use std::fmt;

use crate::symbols::{self, Symbol};

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant from `Δ_c`. Constants obey the unique name assumption.
    Const(Symbol),
    /// A variable, identified by its interned name.
    Var(Symbol),
    /// A labeled null from `Δ_z` (chase-invented value). Different nulls may
    /// denote the same value, but within an instance they are distinct terms.
    Null(u64),
    /// A function term `f(t1, …, tn)`; used for Skolemized existentials.
    Func(Symbol, Box<[Term]>),
}

impl Term {
    /// Convenience constructor: a constant named `name`.
    pub fn constant(name: &str) -> Self {
        Term::Const(symbols::intern(name))
    }

    /// Convenience constructor: a variable named `name`.
    pub fn var(name: &str) -> Self {
        Term::Var(symbols::intern(name))
    }

    /// A globally fresh variable (used when renaming TGDs apart).
    pub fn fresh_var() -> Self {
        Term::Var(symbols::fresh("V"))
    }

    #[inline]
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    #[inline]
    pub fn is_func(&self) -> bool {
        matches!(self, Term::Func(..))
    }

    /// The variable symbol if this term is a variable.
    #[inline]
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the term is a constant or a null (a "ground value").
    #[inline]
    pub fn is_ground_value(&self) -> bool {
        matches!(self, Term::Const(_) | Term::Null(_))
    }

    /// True if no variable occurs anywhere in the term.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Const(_) | Term::Null(_) => true,
            Term::Var(_) => false,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Append every variable occurring in this term (with repetitions, in
    /// left-to-right order) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Func(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            Term::Const(_) | Term::Null(_) => {}
        }
    }

    /// Does variable `v` occur anywhere in this term?
    pub fn contains_var(&self, v: Symbol) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::Func(_, args) => args.iter().any(|a| a.contains_var(v)),
            Term::Const(_) | Term::Null(_) => false,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Null(n) => write!(f, "z{n}"),
            Term::Func(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groundness() {
        assert!(Term::constant("a").is_ground());
        assert!(Term::Null(3).is_ground());
        assert!(!Term::var("X").is_ground());
        let f = Term::Func(
            symbols::intern("f"),
            vec![Term::constant("a"), Term::var("X")].into_boxed_slice(),
        );
        assert!(!f.is_ground());
        assert!(f.contains_var(symbols::intern("X")));
        assert!(!f.contains_var(symbols::intern("Y")));
    }

    #[test]
    fn collect_vars_preserves_repetitions() {
        let f = Term::Func(
            symbols::intern("f"),
            vec![Term::var("X"), Term::var("Y"), Term::var("X")].into_boxed_slice(),
        );
        let mut vars = Vec::new();
        f.collect_vars(&mut vars);
        assert_eq!(
            vars,
            vec![
                symbols::intern("X"),
                symbols::intern("Y"),
                symbols::intern("X")
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("nasdaq").to_string(), "nasdaq");
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::Null(7).to_string(), "z7");
    }

    #[test]
    fn fresh_vars_are_distinct() {
        assert_ne!(Term::fresh_var(), Term::fresh_var());
    }
}
