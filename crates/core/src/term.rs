//! Terms: constants, variables, labeled nulls, and function terms.
//!
//! Constants and variables follow the paper's Section 3.1 (`Δ_c` and query
//! variables); labeled nulls (`Δ_z`) are introduced by the chase; function
//! terms only appear in the Requiem-style baseline (Skolemized existentials)
//! and in the Skolem chase.

use std::fmt;

use crate::symbols::{self, Symbol};

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant from `Δ_c`. Constants obey the unique name assumption.
    Const(Symbol),
    /// A variable, identified by its interned name.
    Var(Symbol),
    /// A labeled null from `Δ_z` (chase-invented value). Different nulls may
    /// denote the same value, but within an instance they are distinct terms.
    Null(u64),
    /// A function term `f(t1, …, tn)`; used for Skolemized existentials.
    Func(Symbol, Box<[Term]>),
}

impl Term {
    /// Convenience constructor: a constant named `name`.
    pub fn constant(name: &str) -> Self {
        Term::Const(symbols::intern(name))
    }

    /// Convenience constructor: a variable named `name`.
    pub fn var(name: &str) -> Self {
        Term::Var(symbols::intern(name))
    }

    /// A globally fresh variable (used when renaming TGDs apart).
    pub fn fresh_var() -> Self {
        Term::Var(symbols::fresh("V"))
    }

    #[inline]
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    #[inline]
    pub fn is_func(&self) -> bool {
        matches!(self, Term::Func(..))
    }

    /// The variable symbol if this term is a variable.
    #[inline]
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the term is a constant or a null (a "ground value").
    #[inline]
    pub fn is_ground_value(&self) -> bool {
        matches!(self, Term::Const(_) | Term::Null(_))
    }

    /// True if no variable occurs anywhere in the term.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Const(_) | Term::Null(_) => true,
            Term::Var(_) => false,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Append every variable occurring in this term (with repetitions, in
    /// left-to-right order) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Func(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            Term::Const(_) | Term::Null(_) => {}
        }
    }

    /// Does variable `v` occur anywhere in this term?
    pub fn contains_var(&self, v: Symbol) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::Func(_, args) => args.iter().any(|a| a.contains_var(v)),
            Term::Const(_) | Term::Null(_) => false,
        }
    }

    /// Process-independent total order on terms.
    ///
    /// The derived `Ord` compares interner indices and therefore depends on
    /// intern order, which changes between process runs. This order compares
    /// by name instead (numerically for integer-named constants, see
    /// [`symbols::cmp_values`]), so sorted index postings rebuilt after a
    /// restart — or decoded from a ledger segment — land in the same order,
    /// and ORDER BY results are stable across processes. Variant rank matches
    /// the derived order: `Const < Var < Null < Func`. `Equal` implies the
    /// terms are equal.
    pub fn canonical_cmp(&self, other: &Term) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Const(_) => 0,
                Term::Var(_) => 1,
                Term::Null(_) => 2,
                Term::Func(..) => 3,
            }
        }
        match (self, other) {
            (Term::Const(a), Term::Const(b)) => symbols::cmp_values(*a, *b),
            (Term::Var(a), Term::Var(b)) => symbols::cmp_names(*a, *b),
            (Term::Null(a), Term::Null(b)) => a.cmp(b),
            (Term::Func(f, fa), Term::Func(g, ga)) => symbols::cmp_names(*f, *g)
                .then_with(|| fa.len().cmp(&ga.len()))
                .then_with(|| {
                    fa.iter()
                        .zip(ga.iter())
                        .map(|(x, y)| x.canonical_cmp(y))
                        .find(|o| o.is_ne())
                        .unwrap_or(Ordering::Equal)
                }),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Compare two rows position-wise under [`Term::canonical_cmp`], shorter
/// rows first on a shared prefix. The row order used for canonical answer
/// output and sorted segment encoding.
pub fn canonical_cmp_rows(a: &[Term], b: &[Term]) -> std::cmp::Ordering {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.canonical_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or_else(|| a.len().cmp(&b.len()))
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Null(n) => write!(f, "z{n}"),
            Term::Func(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groundness() {
        assert!(Term::constant("a").is_ground());
        assert!(Term::Null(3).is_ground());
        assert!(!Term::var("X").is_ground());
        let f = Term::Func(
            symbols::intern("f"),
            vec![Term::constant("a"), Term::var("X")].into_boxed_slice(),
        );
        assert!(!f.is_ground());
        assert!(f.contains_var(symbols::intern("X")));
        assert!(!f.contains_var(symbols::intern("Y")));
    }

    #[test]
    fn collect_vars_preserves_repetitions() {
        let f = Term::Func(
            symbols::intern("f"),
            vec![Term::var("X"), Term::var("Y"), Term::var("X")].into_boxed_slice(),
        );
        let mut vars = Vec::new();
        f.collect_vars(&mut vars);
        assert_eq!(
            vars,
            vec![
                symbols::intern("X"),
                symbols::intern("Y"),
                symbols::intern("X")
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("nasdaq").to_string(), "nasdaq");
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::Null(7).to_string(), "z7");
    }

    #[test]
    fn fresh_vars_are_distinct() {
        assert_ne!(Term::fresh_var(), Term::fresh_var());
    }

    #[test]
    fn canonical_order_is_name_based_and_numeric_aware() {
        use std::cmp::Ordering;
        // Intern in "wrong" order: derived Ord would put zebra < apple here.
        let z = Term::constant("zebra");
        let a = Term::constant("apple");
        assert_eq!(a.canonical_cmp(&z), Ordering::Less);
        // Numeric constants compare by value, not byte order.
        assert_eq!(
            Term::constant("9").canonical_cmp(&Term::constant("10")),
            Ordering::Less
        );
        assert_eq!(
            Term::constant("-3").canonical_cmp(&Term::constant("2")),
            Ordering::Less
        );
        // Numbers sort before non-numeric names; variant rank Const < Null.
        assert_eq!(
            Term::constant("7").canonical_cmp(&Term::constant("apple")),
            Ordering::Less
        );
        assert_eq!(a.canonical_cmp(&Term::Null(0)), Ordering::Less);
        assert_eq!(a.canonical_cmp(&Term::constant("apple")), Ordering::Equal);
    }

    #[test]
    fn canonical_row_order_breaks_length_ties_last() {
        use std::cmp::Ordering;
        let short = vec![Term::constant("a")];
        let long = vec![Term::constant("a"), Term::constant("b")];
        assert_eq!(canonical_cmp_rows(&short, &long), Ordering::Less);
        assert_eq!(canonical_cmp_rows(&long, &long), Ordering::Equal);
    }
}
