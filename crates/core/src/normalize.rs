//! Normalization of TGDs per Lemmas 1 and 2: every TGD is transformed into
//! an equivalent (for query answering) set of single-head TGDs with at most
//! one existential variable that occurs exactly once.
//!
//! The transformation introduces auxiliary predicates; the paper's UX, AX
//! and P5X ontologies are exactly U, A and P5 with those auxiliary
//! predicates "considered part of the schema".

use std::collections::HashSet;

use crate::atom::{Atom, Predicate};
use crate::symbols::{self, Symbol};
use crate::term::Term;
use crate::tgd::Tgd;

/// The result of normalizing a set of TGDs.
#[derive(Clone)]
pub struct Normalization {
    /// Normalized TGDs: single head atom, at most one existential variable,
    /// occurring exactly once.
    pub tgds: Vec<Tgd>,
    /// Auxiliary predicates introduced by the transformation.
    pub aux_predicates: HashSet<Predicate>,
}

impl Normalization {
    /// Is `pred` one of the introduced auxiliary predicates?
    pub fn is_aux(&self, pred: Predicate) -> bool {
        self.aux_predicates.contains(&pred)
    }
}

/// Normalize a set of TGDs (Lemmas 1 and 2). TGDs already in normal form
/// are passed through untouched, so normalization is idempotent.
pub fn normalize(tgds: &[Tgd]) -> Normalization {
    let mut out = Vec::with_capacity(tgds.len());
    let mut aux = HashSet::new();
    for tgd in tgds {
        if tgd.is_normal() {
            out.push(tgd.clone());
            continue;
        }
        let singles = split_multi_head(tgd, &mut aux);
        for single in singles {
            if single.is_normal() {
                out.push(single);
            } else {
                out.extend(split_existentials(&single, &mut aux));
            }
        }
    }
    Normalization {
        tgds: out,
        aux_predicates: aux,
    }
}

/// Lemma 1: replace a multi-head TGD `body → a1, …, ak` by
/// `body → r_σ(X)` and `r_σ(X) → a_i`, where `X` is the set of variables
/// occurring in the head.
fn split_multi_head(tgd: &Tgd, aux: &mut HashSet<Predicate>) -> Vec<Tgd> {
    if tgd.head.len() == 1 {
        return vec![tgd.clone()];
    }
    let head_vars: Vec<Symbol> = tgd.head_vars();
    let r = aux_predicate(tgd.label, head_vars.len(), aux);
    let r_atom = Atom::new(r, head_vars.iter().map(|v| Term::Var(*v)).collect());
    let mut out = Vec::with_capacity(tgd.head.len() + 1);
    out.push(Tgd {
        label: tgd.label,
        body: tgd.body.clone(),
        head: vec![r_atom.clone()],
    });
    for a in &tgd.head {
        out.push(Tgd {
            label: tgd.label,
            body: vec![r_atom.clone()],
            head: vec![a.clone()],
        });
    }
    out
}

/// Lemma 2: replace a single-head TGD whose head has `m` existential
/// variables (or one occurring several times) by a chain of TGDs each
/// introducing exactly one existential variable exactly once:
///
/// ```text
/// body                     → ∃Z1 r¹(X, Z1)
/// r¹(X, Z1)                → ∃Z2 r²(X, Z1, Z2)
/// …
/// rᵐ(X, Z1, …, Zm)         → head(σ)
/// ```
fn split_existentials(tgd: &Tgd, aux: &mut HashSet<Predicate>) -> Vec<Tgd> {
    debug_assert_eq!(tgd.head.len(), 1);
    let frontier: Vec<Symbol> = tgd.frontier();
    let existentials: Vec<Symbol> = tgd.existential_vars();
    debug_assert!(!existentials.is_empty());

    let mut out = Vec::with_capacity(existentials.len() + 1);
    let mut carried: Vec<Symbol> = frontier.clone();
    let mut prev_atom: Option<Atom> = None;
    for z in &existentials {
        carried.push(*z);
        let r = aux_predicate(tgd.label, carried.len(), aux);
        let atom = Atom::new(r, carried.iter().map(|v| Term::Var(*v)).collect());
        let body = match &prev_atom {
            None => tgd.body.clone(),
            Some(prev) => vec![prev.clone()],
        };
        out.push(Tgd {
            label: tgd.label,
            body,
            head: vec![atom.clone()],
        });
        prev_atom = Some(atom);
    }
    out.push(Tgd {
        label: tgd.label,
        body: vec![prev_atom.expect("at least one existential")],
        head: tgd.head.clone(),
    });
    out
}

fn aux_predicate(label: Option<Symbol>, arity: usize, aux: &mut HashSet<Predicate>) -> Predicate {
    let base = match label {
        Some(l) => format!("aux_{l}_"),
        None => "aux_".to_owned(),
    };
    let sym = symbols::fresh(&base);
    let pred = Predicate { sym, arity };
    aux.insert(pred);
    pred
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tgd(body: &[(&str, &[&str])], head: &[(&str, &[&str])]) -> Tgd {
        let mk = |spec: &[(&str, &[&str])]| {
            spec.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args
                        .iter()
                        .map(|a| {
                            if a.chars().next().unwrap().is_uppercase() {
                                Term::var(a)
                            } else {
                                Term::constant(a)
                            }
                        })
                        .collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect::<Vec<_>>()
        };
        Tgd::new(mk(body), mk(head))
    }

    #[test]
    fn normal_tgds_pass_through() {
        let t = tgd(&[("s", &["X"])], &[("t", &["X", "Z"])]);
        let n = normalize(std::slice::from_ref(&t));
        assert_eq!(n.tgds.len(), 1);
        assert!(n.aux_predicates.is_empty());
        assert_eq!(n.tgds[0], t);
    }

    #[test]
    fn multi_head_split_lemma1() {
        // p(X) → ∃Y r(X,Y), q(Y): two head atoms sharing existential Y.
        let t = tgd(&[("p", &["X"])], &[("r", &["X", "Y"]), ("q", &["Y"])]);
        let n = normalize(&[t]);
        // body → r_σ(X,Y) [one existential], r_σ → r(X,Y), r_σ → q(Y)
        assert_eq!(n.tgds.len(), 3);
        assert_eq!(n.aux_predicates.len(), 1);
        for t in &n.tgds {
            assert!(t.is_normal(), "non-normal output: {t}");
        }
        // First TGD introduces the aux predicate with both head variables.
        let first = &n.tgds[0];
        assert!(n.is_aux(first.head[0].pred));
        assert_eq!(first.head[0].pred.arity, 2);
    }

    #[test]
    fn multi_existential_split_lemma2() {
        // list_comp(X,Y) → ∃Z∃W fin_idx(Y,Z,W)  (σ3 of the running example)
        let t = tgd(
            &[("list_comp", &["X", "Y"])],
            &[("fin_idx", &["Y", "Z", "W"])],
        );
        let n = normalize(&[t]);
        // body → ∃Z r1(Y,Z); r1(Y,Z) → ∃W r2(Y,Z,W); r2(Y,Z,W) → head.
        assert_eq!(n.tgds.len(), 3);
        assert_eq!(n.aux_predicates.len(), 2);
        for t in &n.tgds {
            assert!(t.is_normal(), "non-normal output: {t}");
        }
        // Last TGD is full and re-derives the original head.
        let last = n.tgds.last().unwrap();
        assert!(last.is_full());
        assert_eq!(last.head[0].pred, Predicate::new("fin_idx", 3));
    }

    #[test]
    fn repeated_existential_in_head_is_normalized() {
        // s(X) → ∃Z t(X,Z,Z): single existential occurring twice.
        let t = tgd(&[("s", &["X"])], &[("t", &["X", "Z", "Z"])]);
        assert!(!t.is_normal());
        let n = normalize(&[t]);
        assert_eq!(n.tgds.len(), 2);
        for t in &n.tgds {
            assert!(t.is_normal(), "non-normal output: {t}");
        }
        // The chain's last rule places Z at both positions.
        let last = n.tgds.last().unwrap();
        assert_eq!(last.head[0].args[1], last.head[0].args[2]);
    }

    #[test]
    fn normalization_is_idempotent() {
        let t = tgd(
            &[("stock_portf", &["X", "Y", "Z"])],
            &[("company", &["X", "V", "W"])],
        );
        let n1 = normalize(&[t]);
        let n2 = normalize(&n1.tgds);
        assert_eq!(n1.tgds.len(), n2.tgds.len());
        assert!(n2.aux_predicates.is_empty());
    }

    #[test]
    fn normalization_preserves_language_classes() {
        // The paper notes the transformations preserve linearity/stickiness.
        let tgds = vec![
            tgd(
                &[("stock_portf", &["X", "Y", "Z"])],
                &[("company", &["X", "V", "W"])],
            ),
            tgd(&[("p", &["X"])], &[("r", &["X", "Y"]), ("q", &["Y"])]),
        ];
        assert!(crate::classes::is_linear(&tgds));
        let n = normalize(&tgds);
        assert!(crate::classes::is_linear(&n.tgds));
    }
}
