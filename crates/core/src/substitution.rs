//! Substitutions: finite maps from variables to terms.

use std::collections::HashMap;
use std::fmt;

use crate::atom::Atom;
use crate::symbols::Symbol;
use crate::term::Term;

/// A substitution `h : vars → terms`.
///
/// Internally triangular (bindings may map variables to other bound
/// variables); [`Substitution::apply_term`] resolves chains on the fly, so
/// callers always observe the fully-applied substitution.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: HashMap<Symbol, Term>,
}

impl Substitution {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Bind `var` to `term`. Panics if `var` is already bound to a different
    /// term (bindings are decided once during unification / matching).
    pub fn bind(&mut self, var: Symbol, term: Term) {
        let prev = self.map.insert(var, term);
        debug_assert!(
            prev.is_none(),
            "variable {var} bound twice in one substitution"
        );
    }

    /// Raw (un-walked) binding lookup.
    pub fn get(&self, var: Symbol) -> Option<&Term> {
        self.map.get(&var)
    }

    pub fn contains(&self, var: Symbol) -> bool {
        self.map.contains_key(&var)
    }

    /// Iterate over the raw bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }

    /// Follow variable-to-variable chains: the representative term of `t`
    /// (one step at a time, without descending into function terms).
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        let mut steps = 0usize;
        while let Term::Var(v) = cur {
            match self.map.get(v) {
                Some(next) => {
                    cur = next;
                    steps += 1;
                    // A substitution built with occurs checks is acyclic;
                    // guard against accidental cycles in debug builds.
                    debug_assert!(steps <= self.map.len() + 1, "cyclic substitution");
                    if steps > self.map.len() + 1 {
                        break;
                    }
                }
                None => break,
            }
        }
        cur
    }

    /// Apply the substitution exhaustively to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        let walked = self.walk(t);
        match walked {
            Term::Func(f, args) => Term::Func(
                *f,
                args.iter()
                    .map(|a| self.apply_term(a))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            ),
            other => other.clone(),
        }
    }

    /// Apply the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|t| self.apply_term(t)).collect(),
        }
    }

    /// Apply the substitution to a slice of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// The composition `other ∘ self` (apply `self` first, then `other`).
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (v, t) in &self.map {
            out.map.insert(*v, other.apply_term(&self.apply_term(t)));
        }
        for (v, t) in &other.map {
            out.map.entry(*v).or_insert_with(|| other.apply_term(t));
        }
        out
    }

    /// Restrict the substitution to bindings whose variable satisfies `keep`.
    pub fn restrict(&self, keep: impl Fn(Symbol) -> bool) -> Substitution {
        let mut out = Substitution::new();
        for (v, t) in &self.map {
            if keep(*v) {
                out.map.insert(*v, self.apply_term(t));
            }
        }
        out
    }

    /// Is the substitution idempotent after full application (no bound
    /// variable occurs in any fully-applied right-hand side)?
    pub fn is_idempotent(&self) -> bool {
        self.map.keys().all(|v| {
            self.map
                .values()
                .all(|t| !self.apply_term(t).contains_var(*v))
        })
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<String> = self
            .map
            .iter()
            .map(|(v, t)| format!("{v}→{}", self.apply_term(t)))
            .collect();
        entries.sort();
        write!(f, "{{{}}}", entries.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::intern;

    #[test]
    fn walk_follows_chains() {
        let mut s = Substitution::new();
        s.bind(intern("X"), Term::var("Y"));
        s.bind(intern("Y"), Term::constant("a"));
        assert_eq!(s.apply_term(&Term::var("X")), Term::constant("a"));
    }

    #[test]
    fn apply_descends_into_functions() {
        let mut s = Substitution::new();
        s.bind(intern("X"), Term::constant("a"));
        let f = Term::Func(
            intern("f"),
            vec![Term::var("X"), Term::var("Z")].into_boxed_slice(),
        );
        let applied = s.apply_term(&f);
        assert_eq!(applied.to_string(), "f(a,Z)");
    }

    #[test]
    fn compose_applies_left_then_right() {
        let mut s1 = Substitution::new();
        s1.bind(intern("X"), Term::var("Y"));
        let mut s2 = Substitution::new();
        s2.bind(intern("Y"), Term::constant("c"));
        let c = s1.compose(&s2);
        assert_eq!(c.apply_term(&Term::var("X")), Term::constant("c"));
        assert_eq!(c.apply_term(&Term::var("Y")), Term::constant("c"));
    }

    #[test]
    fn restrict_keeps_only_selected() {
        let mut s = Substitution::new();
        s.bind(intern("X"), Term::constant("a"));
        s.bind(intern("Y"), Term::constant("b"));
        let r = s.restrict(|v| v == intern("X"));
        assert!(r.contains(intern("X")));
        assert!(!r.contains(intern("Y")));
    }

    #[test]
    fn idempotence_detection() {
        let mut s = Substitution::new();
        s.bind(intern("X"), Term::var("Y"));
        s.bind(intern("Y"), Term::constant("a"));
        // After full application X→a, Y→a: idempotent.
        assert!(s.is_idempotent());
    }
}
