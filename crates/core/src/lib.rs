//! # nyaya-core
//!
//! Logical data model for Datalog± ontological query processing — the
//! foundation of a reproduction of *Gottlob, Orsi, Pieris: "Ontological
//! Queries: Rewriting and Optimization"* (ICDE 2011, extended version
//! arXiv:1112.0343).
//!
//! This crate provides:
//!
//! - interned [`symbols`], [`term::Term`]s, [`atom::Atom`]s;
//! - [`substitution::Substitution`]s, first-order [`unify`]cation with MGUs
//!   of atom sets, and [`homomorphism`] search;
//! - [`query::ConjunctiveQuery`] / [`query::UnionQuery`] with the paper's
//!   evaluation metrics (size / length / width) and CQ containment;
//! - exact [`canonical`] forms modulo bijective variable renaming (the
//!   dedup relation used by Algorithm 1);
//! - cheap predicate [`signature`]s for containment pruning and frontier
//!   sharding in the rewriting compiler;
//! - [`tgd::Tgd`]s, negative constraints, key dependencies and
//!   [`tgd::Ontology`];
//! - the syntactic Datalog± language [`classes`] (linear, guarded,
//!   weakly-acyclic, sticky, sticky-join);
//! - [`normalize()`]: the Lemma 1/2 transformation to single-head,
//!   single-existential TGDs.

pub mod affected;
pub mod atom;
pub mod canonical;
pub mod classes;
pub mod components;
pub mod datalog;
pub mod homomorphism;
pub mod minimize;
pub mod normalize;
pub mod query;
pub mod select;
pub mod signature;
pub mod substitution;
pub mod symbols;
pub mod term;
pub mod tgd;
pub mod unify;

pub use affected::{affected_positions, is_weakly_guarded};
pub use atom::{Atom, Position, Predicate};
pub use canonical::{canonical_key, canonicalize, canonicalize_keyed, CanonicalKey};
pub use classes::{classify, Classification};
pub use components::{connected_components, split_boolean_query};
pub use datalog::{DatalogProgram, DatalogRule};
pub use homomorphism::{exists_homomorphism, find_homomorphism, HomSearch};
pub use minimize::{is_minimal, minimize_cq, minimize_union_bodies};
pub use normalize::{normalize, Normalization};
pub use query::{ConjunctiveQuery, UnionQuery};
pub use select::{
    apply_select, AggFunc, Aggregate, ColumnFilter, FilterOp, SelectOptions, SortDir,
};
pub use signature::QuerySignature;
pub use substitution::Substitution;
pub use symbols::Symbol;
pub use term::Term;
pub use tgd::{KeyDependency, NegativeConstraint, Ontology, Tgd};
pub use unify::{mgu_pair, mgu_set, unifiable, unify_terms};
