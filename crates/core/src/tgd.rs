//! Tuple-generating dependencies, negative constraints and key dependencies
//! (paper, Sections 3.2 and 4.2).

use std::collections::HashSet;
use std::fmt;

use crate::atom::{Atom, Predicate};
use crate::substitution::Substitution;
use crate::symbols::{self, Symbol};
use crate::term::Term;

/// A tuple-generating dependency `∀X∀Y φ(X,Y) → ∃Z ψ(X,Z)`.
///
/// Quantifiers are implicit: every variable occurring in the body is
/// universally quantified; every head-only variable is existentially
/// quantified.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tgd {
    /// Optional rule name (`σ1`, …) used in diagnostics and the dependency
    /// graph display.
    pub label: Option<Symbol>,
    pub body: Vec<Atom>,
    pub head: Vec<Atom>,
}

impl Tgd {
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "TGD body must be non-empty");
        assert!(!head.is_empty(), "TGD head must be non-empty");
        Tgd {
            label: None,
            body,
            head,
        }
    }

    pub fn labeled(label: &str, body: Vec<Atom>, head: Vec<Atom>) -> Self {
        let mut t = Tgd::new(body, head);
        t.label = Some(symbols::intern(label));
        t
    }

    /// Distinct variables occurring in the body, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<Symbol> {
        distinct_vars(&self.body)
    }

    /// Distinct variables occurring in the head, in first-occurrence order.
    pub fn head_vars(&self) -> Vec<Symbol> {
        distinct_vars(&self.head)
    }

    /// Existentially quantified variables: head variables not in the body.
    pub fn existential_vars(&self) -> Vec<Symbol> {
        let body: HashSet<Symbol> = self.body_vars().into_iter().collect();
        self.head_vars()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Frontier: variables shared between body and head.
    pub fn frontier(&self) -> Vec<Symbol> {
        let head: HashSet<Symbol> = self.head_vars().into_iter().collect();
        self.body_vars()
            .into_iter()
            .filter(|v| head.contains(v))
            .collect()
    }

    /// A TGD is *linear* iff its body is a single atom (Section 4.1).
    pub fn is_linear(&self) -> bool {
        self.body.len() == 1
    }

    /// A TGD is *full* iff it has no existentially quantified variable.
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// A TGD is *guarded* iff some body atom (the guard) contains all
    /// universally quantified variables (Section 4.1).
    pub fn is_guarded(&self) -> bool {
        let vars = self.body_vars();
        self.body
            .iter()
            .any(|a| vars.iter().all(|v| a.contains_var(*v)))
    }

    /// Is the TGD in the normal form assumed from Section 5 on: a single
    /// head atom with at most one existential variable occurring exactly
    /// once?
    pub fn is_normal(&self) -> bool {
        if self.head.len() != 1 {
            return false;
        }
        let ex = self.existential_vars();
        match ex.len() {
            0 => true,
            1 => {
                let mut occ = Vec::new();
                self.head[0].collect_vars(&mut occ);
                occ.iter().filter(|v| **v == ex[0]).count() == 1
            }
            _ => false,
        }
    }

    /// The single head atom of a normal TGD.
    pub fn head_atom(&self) -> &Atom {
        debug_assert_eq!(self.head.len(), 1, "head_atom on multi-head TGD");
        &self.head[0]
    }

    /// `π_σ`: the argument index of the head atom at which the existential
    /// variable occurs (normal TGDs only). `None` for full TGDs.
    pub fn existential_position(&self) -> Option<usize> {
        debug_assert!(self.is_normal(), "existential_position on non-normal TGD");
        let ex = self.existential_vars();
        let z = *ex.first()?;
        self.head[0].args.iter().position(|t| t.as_var() == Some(z))
    }

    /// Rename every variable of the TGD to a globally fresh one, so it shares
    /// no variable with any query (the rewriting step's standing assumption).
    pub fn rename_apart(&self) -> Tgd {
        let mut s = Substitution::new();
        for v in self.all_vars() {
            s.bind(v, Term::fresh_var());
        }
        Tgd {
            label: self.label,
            body: s.apply_atoms(&self.body),
            head: s.apply_atoms(&self.head),
        }
    }

    /// Distinct variables of body and head, in first-occurrence order.
    pub fn all_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut occ = Vec::new();
        for a in self.body.iter().chain(self.head.iter()) {
            a.collect_vars(&mut occ);
        }
        for v in occ {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Every predicate mentioned by the TGD.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.body.iter().chain(self.head.iter()).map(|a| a.pred)
    }
}

impl fmt::Debug for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.label {
            write!(f, "{l}: ")?;
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> ")?;
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

fn distinct_vars(atoms: &[Atom]) -> Vec<Symbol> {
    let mut occ = Vec::new();
    for a in atoms {
        a.collect_vars(&mut occ);
    }
    let mut out = Vec::new();
    for v in occ {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// A negative constraint `∀X φ(X) → ⊥` (Section 4.2).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NegativeConstraint {
    pub label: Option<Symbol>,
    pub body: Vec<Atom>,
}

impl NegativeConstraint {
    pub fn new(body: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "NC body must be non-empty");
        NegativeConstraint { label: None, body }
    }

    pub fn labeled(label: &str, body: Vec<Atom>) -> Self {
        let mut nc = NegativeConstraint::new(body);
        nc.label = Some(symbols::intern(label));
        nc
    }
}

impl fmt::Debug for NegativeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for NegativeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.label {
            write!(f, "{l}: ")?;
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> false")
    }
}

/// A key dependency `key(r) = {i1, …, ik}` (0-based positions).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct KeyDependency {
    pub pred: Predicate,
    /// 0-based key positions, strictly increasing.
    pub key: Vec<usize>,
}

impl KeyDependency {
    pub fn new(pred: Predicate, mut key: Vec<usize>) -> Self {
        key.sort_unstable();
        key.dedup();
        assert!(
            key.iter().all(|i| *i < pred.arity),
            "key position out of range for {pred:?}"
        );
        assert!(!key.is_empty(), "empty key");
        KeyDependency { pred, key }
    }

    /// The `neq` encoding of Section 4.2: one negative constraint per
    /// non-key position `j`, of the form
    /// `r(..X..Yj..), r(..X..Y'j..), neq(Yj, Y'j) → ⊥`
    /// where the key positions carry the same variables in both atoms.
    pub fn to_negative_constraints(&self, neq: Predicate) -> Vec<NegativeConstraint> {
        assert_eq!(neq.arity, 2, "neq predicate must be binary");
        let mut out = Vec::new();
        for j in 0..self.pred.arity {
            if self.key.contains(&j) {
                continue;
            }
            let mut a1 = Vec::with_capacity(self.pred.arity);
            let mut a2 = Vec::with_capacity(self.pred.arity);
            for i in 0..self.pred.arity {
                if self.key.contains(&i) {
                    let v = Term::var(&format!("K{i}"));
                    a1.push(v.clone());
                    a2.push(v);
                } else if i == j {
                    a1.push(Term::var(&format!("Y{i}")));
                    a2.push(Term::var(&format!("Yp{i}")));
                } else {
                    a1.push(Term::var(&format!("U{i}")));
                    a2.push(Term::var(&format!("Up{i}")));
                }
            }
            let neq_atom = Atom::new(
                neq,
                vec![Term::var(&format!("Y{j}")), Term::var(&format!("Yp{j}"))],
            );
            out.push(NegativeConstraint::new(vec![
                Atom::new(self.pred, a1),
                Atom::new(self.pred, a2),
                neq_atom,
            ]));
        }
        out
    }
}

impl fmt::Debug for KeyDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ones: Vec<String> = self.key.iter().map(|i| (i + 1).to_string()).collect();
        write!(f, "key({}) = {{{}}}", self.pred.sym, ones.join(","))
    }
}

/// A Datalog± ontology: TGDs plus (optional) negative constraints and key
/// dependencies.
#[derive(Clone, Debug, Default)]
pub struct Ontology {
    pub tgds: Vec<Tgd>,
    pub ncs: Vec<NegativeConstraint>,
    pub kds: Vec<KeyDependency>,
}

impl Ontology {
    pub fn from_tgds(tgds: Vec<Tgd>) -> Self {
        Ontology {
            tgds,
            ncs: Vec::new(),
            kds: Vec::new(),
        }
    }

    /// Every predicate mentioned anywhere in the ontology.
    pub fn predicates(&self) -> HashSet<Predicate> {
        let mut out = HashSet::new();
        for t in &self.tgds {
            out.extend(t.predicates());
        }
        for nc in &self.ncs {
            out.extend(nc.body.iter().map(|a| a.pred));
        }
        for kd in &self.kds {
            out.insert(kd.pred);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tgd(body: &[(&str, &[&str])], head: &[(&str, &[&str])]) -> Tgd {
        let mk = |spec: &[(&str, &[&str])]| {
            spec.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args
                        .iter()
                        .map(|a| {
                            if a.chars().next().unwrap().is_uppercase() {
                                Term::var(a)
                            } else {
                                Term::constant(a)
                            }
                        })
                        .collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect::<Vec<_>>()
        };
        Tgd::new(mk(body), mk(head))
    }

    #[test]
    fn quantifier_classification() {
        // stock_portf(X,Y,Z) → ∃V∃W company(X,V,W)   (σ1 of the paper)
        let s1 = tgd(
            &[("stock_portf", &["X", "Y", "Z"])],
            &[("company", &["X", "V", "W"])],
        );
        assert!(s1.is_linear());
        assert!(s1.is_guarded());
        assert!(!s1.is_full());
        assert_eq!(s1.existential_vars().len(), 2);
        assert_eq!(s1.frontier(), vec![symbols::intern("X")]);
        assert!(!s1.is_normal()); // two existential variables
    }

    #[test]
    fn guardedness_examples_from_paper() {
        // r(X,Y), s(X,Y,Z) → ∃W s(Z,X,W) is guarded via s(X,Y,Z)
        let guarded = tgd(
            &[("r", &["X", "Y"]), ("s", &["X", "Y", "Z"])],
            &[("s", &["Z", "X", "W"])],
        );
        assert!(guarded.is_guarded());
        // r(X,Y), r(Y,Z) → r(X,Z) is not guarded
        let unguarded = tgd(
            &[("r", &["X", "Y"]), ("r", &["Y", "Z"])],
            &[("r", &["X", "Z"])],
        );
        assert!(!unguarded.is_guarded());
        assert!(unguarded.is_full());
    }

    #[test]
    fn normal_form_and_existential_position() {
        // s(X) → ∃Z t(X,X,Z): normal, π_σ = t[3] (index 2)
        let s = tgd(&[("s", &["X"])], &[("t", &["X", "X", "Z"])]);
        assert!(s.is_normal());
        assert_eq!(s.existential_position(), Some(2));
        // full TGD has no existential position
        let f = tgd(&[("t", &["X", "Y", "Z"])], &[("r", &["Y", "Z"])]);
        assert!(f.is_normal());
        assert_eq!(f.existential_position(), None);
        // existential occurring twice is not normal
        let d = tgd(&[("s", &["X"])], &[("t", &["X", "Z", "Z"])]);
        assert!(!d.is_normal());
    }

    #[test]
    fn rename_apart_preserves_structure() {
        let s = tgd(&[("s", &["X"])], &[("t", &["X", "Z"])]);
        let r = s.rename_apart();
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.head.len(), 1);
        assert_eq!(r.body[0].pred, s.body[0].pred);
        // variables are fresh
        assert_ne!(r.body[0].args[0], s.body[0].args[0]);
        // and the frontier link X is preserved
        assert_eq!(r.body[0].args[0], r.head[0].args[0]);
    }

    #[test]
    fn kd_to_ncs_produces_one_nc_per_nonkey_position() {
        let r = Predicate::new("r", 3);
        let kd = KeyDependency::new(r, vec![0]);
        let neq = Predicate::new("neq", 2);
        let ncs = kd.to_negative_constraints(neq);
        assert_eq!(ncs.len(), 2);
        for nc in &ncs {
            assert_eq!(nc.body.len(), 3);
            assert_eq!(nc.body[2].pred, neq);
            // key position carries the same variable in both r-atoms
            assert_eq!(nc.body[0].args[0], nc.body[1].args[0]);
        }
    }

    #[test]
    fn display_round_trip_shape() {
        let s = Tgd::labeled(
            "sigma6",
            vec![Atom::make("has_stock", ["X", "Y"])],
            vec![Atom::make("stock_portf", ["Y", "X", "Z"])],
        );
        assert_eq!(
            s.to_string(),
            "sigma6: has_stock(X,Y) -> stock_portf(Y,X,Z)"
        );
    }
}
