//! Non-recursive Datalog programs as an alternative rewriting target.
//!
//! Section 2 of the paper contrasts UCQ rewritings with the non-recursive
//! Datalog programs produced by Presto \[20\]: a program can "hide" the
//! exponential disjunctive normal form inside intermediate rules, at the
//! price of being harder to distribute and less amenable to existing UCQ
//! optimizers. Section 8 lists rewriting into non-recursive Datalog as
//! future work. This module provides the shared *representation*: rules,
//! programs, stratification, size metrics, and the unfolding back into a
//! [`UnionQuery`] used to prove a program equivalent to a UCQ rewriting.
//!
//! The construction of programs from a query and a TGD set lives in
//! `nyaya-rewrite` (`nr_datalog_rewrite`); bottom-up evaluation over a
//! database lives in `nyaya-sql` (`execute_program`).

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::atom::{Atom, Predicate};
use crate::canonical::canonical_key;
use crate::query::{ConjunctiveQuery, UnionQuery};
use crate::substitution::Substitution;
use crate::symbols;
use crate::term::Term;
use crate::unify::unify_atoms_into;

/// A single (plain, positive) Datalog rule `head :- body`.
#[derive(Clone, PartialEq, Eq)]
pub struct DatalogRule {
    pub head: Atom,
    pub body: Vec<Atom>,
}

impl DatalogRule {
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "Datalog rule body must be non-empty");
        DatalogRule { head, body }
    }

    /// Is the rule range-restricted (every head variable occurs in the
    /// body)? Rules produced by the rewriter always are; the check guards
    /// hand-constructed programs.
    pub fn is_safe(&self) -> bool {
        let mut head_vars = Vec::new();
        self.head.collect_vars(&mut head_vars);
        head_vars
            .iter()
            .all(|v| self.body.iter().any(|a| a.contains_var(*v)))
    }
}

impl fmt::Display for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

impl fmt::Debug for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A non-recursive Datalog program with a distinguished goal atom.
///
/// Predicates appearing in some rule head are *defined* (intensional);
/// all others are *base* (extensional, i.e. database relations). The goal
/// atom's predicate must be defined.
#[derive(Clone)]
pub struct DatalogProgram {
    /// The answer atom `q(X̄)`; its predicate is defined by the program.
    pub goal: Atom,
    pub rules: Vec<DatalogRule>,
}

impl DatalogProgram {
    pub fn new(goal: Atom, rules: Vec<DatalogRule>) -> Self {
        DatalogProgram { goal, rules }
    }

    /// An unsatisfiable program (no rule ever derives the goal) — produced
    /// when negative-constraint pruning empties a rewriting.
    pub fn unsatisfiable(goal: Atom) -> Self {
        DatalogProgram {
            goal,
            rules: Vec::new(),
        }
    }

    /// Predicates defined by some rule head.
    pub fn defined_predicates(&self) -> HashSet<Predicate> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// Base (extensional) predicates: those used in rule bodies but never
    /// defined.
    pub fn base_predicates(&self) -> HashSet<Predicate> {
        let defined = self.defined_predicates();
        let mut base = HashSet::new();
        for r in &self.rules {
            for a in &r.body {
                if !defined.contains(&a.pred) {
                    base.insert(a.pred);
                }
            }
        }
        base
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Total number of body atoms over all rules — the program-size
    /// analogue of the UCQ `length` metric.
    pub fn total_atoms(&self) -> usize {
        self.rules.iter().map(|r| r.body.len()).sum()
    }

    /// Defined predicates in dependency order (a predicate appears after
    /// every defined predicate its rules use), or `None` if the program is
    /// recursive.
    pub fn stratum_order(&self) -> Option<Vec<Predicate>> {
        let defined = self.defined_predicates();
        // deps[p] = defined predicates used by rules with head p.
        let mut deps: HashMap<Predicate, HashSet<Predicate>> = HashMap::new();
        for r in &self.rules {
            let entry = deps.entry(r.head.pred).or_default();
            for a in &r.body {
                if defined.contains(&a.pred) {
                    entry.insert(a.pred);
                }
            }
        }
        // Kahn's algorithm over the defined-predicate graph.
        let mut order = Vec::with_capacity(deps.len());
        let mut placed: HashSet<Predicate> = HashSet::new();
        while placed.len() < deps.len() {
            let mut progressed = false;
            let mut ready: Vec<Predicate> = deps
                .iter()
                .filter(|(p, ds)| !placed.contains(*p) && ds.iter().all(|d| placed.contains(d)))
                .map(|(p, _)| *p)
                .collect();
            ready.sort();
            for p in ready {
                placed.insert(p);
                order.push(p);
                progressed = true;
            }
            if !progressed {
                return None; // cycle
            }
        }
        Some(order)
    }

    /// Is the program non-recursive (the defined-predicate dependency graph
    /// is acyclic)?
    pub fn is_nonrecursive(&self) -> bool {
        self.stratum_order().is_some()
    }

    /// Defined predicates grouped into evaluation *levels*: a predicate at
    /// level `k` depends only on base predicates and defined predicates of
    /// levels `< k`, so all predicates of one level can be materialized in
    /// parallel once every lower level is done. `None` if the program is
    /// recursive. Levels are sorted internally for determinism.
    pub fn strata(&self) -> Option<Vec<Vec<Predicate>>> {
        // stratum_order does the cycle detection; walking its order, every
        // defined body predicate of `p`'s rules already has a level.
        let order = self.stratum_order()?;
        let mut level: HashMap<Predicate, usize> = HashMap::new();
        let mut levels: Vec<Vec<Predicate>> = Vec::new();
        for p in order {
            let l = self
                .rules
                .iter()
                .filter(|r| r.head.pred == p)
                .flat_map(|r| r.body.iter())
                .filter_map(|a| level.get(&a.pred).map(|d| d + 1))
                .max()
                .unwrap_or(0);
            level.insert(p, l);
            if levels.len() <= l {
                levels.resize_with(l + 1, Vec::new);
            }
            levels[l].push(p);
        }
        for l in &mut levels {
            l.sort();
        }
        Some(levels)
    }

    /// Deterministic rendering for program comparison: defined predicates
    /// are renamed `d0, d1, …` in first-occurrence order over the goal
    /// atom and the rules, so two programs that differ only in the
    /// globally-fresh names minted for their intensional predicates (e.g.
    /// a sequential and a parallel run of the clustered rewriter) print
    /// identically iff they are the same program.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let defined = self.defined_predicates();
        let mut names: HashMap<Predicate, String> = HashMap::new();
        let rename = |names: &mut HashMap<Predicate, String>, p: Predicate| -> String {
            if !defined.contains(&p) {
                return p.sym.to_string();
            }
            let next = names.len();
            names.entry(p).or_insert_with(|| format!("d{next}")).clone()
        };
        let atom_text = |names: &mut HashMap<Predicate, String>, a: &Atom| -> String {
            let name = rename(names, a.pred);
            let args: Vec<String> = a.args.iter().map(|t| t.to_string()).collect();
            format!("{name}({})", args.join(", "))
        };
        let mut out = String::new();
        let _ = writeln!(out, "goal: {}", atom_text(&mut names, &self.goal));
        for r in &self.rules {
            let head = atom_text(&mut names, &r.head);
            let body: Vec<String> = r.body.iter().map(|a| atom_text(&mut names, a)).collect();
            let _ = writeln!(out, "{head} :- {}.", body.join(", "));
        }
        out
    }

    /// Unfold the program into the equivalent union of conjunctive queries
    /// (the disjunctive normal form the program "hides", Section 2).
    ///
    /// Every defined predicate is expanded bottom-up into a set of
    /// base-only bodies; the goal atom's expansions become the CQs of the
    /// union. Panics on recursive programs.
    pub fn expand(&self) -> UnionQuery {
        let order = self
            .stratum_order()
            .expect("expand() requires a non-recursive program");
        if !self.defined_predicates().contains(&self.goal.pred) {
            // No rule ever derives the goal: the empty union (false).
            return UnionQuery::default();
        }
        // For each defined predicate: (head-argument pattern, base-only body).
        let mut expansions: Expansions = HashMap::new();
        for p in order {
            let mut entries: Vec<(Vec<Term>, Vec<Atom>)> = Vec::new();
            let mut seen: HashSet<String> = HashSet::new();
            for rule in self.rules.iter().filter(|r| r.head.pred == p) {
                for (body, s) in unfold_body(&rule.body, &expansions) {
                    let head: Vec<Term> = rule.head.args.iter().map(|t| s.apply_term(t)).collect();
                    // Dedup modulo bijective renaming via the CQ canonical key.
                    let key = canonical_key(&ConjunctiveQuery::new(head.clone(), body.clone()));
                    if seen.insert(key.as_str().to_owned()) {
                        entries.push((head, body));
                    }
                }
            }
            expansions.insert(p, entries);
        }
        let mut cqs = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        for (body, s) in unfold_body(std::slice::from_ref(&self.goal), &expansions) {
            let head: Vec<Term> = self.goal.args.iter().map(|t| s.apply_term(t)).collect();
            let cq = ConjunctiveQuery::new(head, body);
            let key = canonical_key(&cq);
            if seen.insert(key.as_str().to_owned()) {
                cqs.push(cq);
            }
        }
        UnionQuery::new(cqs)
    }
}

/// The fully-unfolded alternatives of a defined predicate: one
/// (head-argument pattern, base-only body) entry per derivation.
type Expansions = HashMap<Predicate, Vec<(Vec<Term>, Vec<Atom>)>>;

/// All ways of replacing defined-predicate atoms in `body` by their
/// (renamed-apart) expansions; atoms over base predicates stay. Each
/// alternative carries the substitution accumulated by call-site
/// unification, which the caller must also apply to the rule head.
fn unfold_body(body: &[Atom], expansions: &Expansions) -> Vec<(Vec<Atom>, Substitution)> {
    let mut alts: Vec<(Vec<Atom>, Substitution)> = vec![(Vec::new(), Substitution::new())];
    for atom in body {
        match expansions.get(&atom.pred) {
            None => {
                for (b, _) in &mut alts {
                    b.push(atom.clone());
                }
            }
            Some(entries) => {
                let mut next = Vec::new();
                for (args, exp_body) in entries {
                    let (r_args, r_body) = rename_apart(args, exp_body);
                    let call = Atom::new(atom.pred, r_args);
                    for (b, s) in &alts {
                        let mut s2 = s.clone();
                        if !unify_atoms_into(atom, &call, &mut s2) {
                            continue; // constant clash — this disjunct is dead
                        }
                        let mut nb = b.clone();
                        nb.extend(r_body.iter().cloned());
                        next.push((nb, s2));
                    }
                }
                alts = next;
            }
        }
    }
    // Apply each alternative's final substitution and deduplicate atoms
    // (unification may have collapsed previously distinct ones).
    alts.into_iter()
        .filter_map(|(atoms, s)| {
            let mut out: Vec<Atom> = Vec::with_capacity(atoms.len());
            for a in &atoms {
                let a = s.apply_atom(a);
                if !out.contains(&a) {
                    out.push(a);
                }
            }
            (!out.is_empty()).then_some((out, s))
        })
        .collect()
}

/// Rename the variables of an expansion entry apart from everything else.
fn rename_apart(args: &[Term], body: &[Atom]) -> (Vec<Term>, Vec<Atom>) {
    let mut vars = Vec::new();
    for t in args {
        t.collect_vars(&mut vars);
    }
    for a in body {
        a.collect_vars(&mut vars);
    }
    let mut s = Substitution::new();
    for v in vars {
        if !s.contains(v) {
            s.bind(v, Term::Var(symbols::fresh("U")));
        }
    }
    (
        args.iter().map(|t| s.apply_term(t)).collect(),
        body.iter().map(|a| s.apply_atom(a)).collect(),
    )
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "goal: {}", self.goal)?;
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, args: &[&str]) -> Atom {
        let terms: Vec<Term> = args
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        Atom::new(Predicate::new(p, terms.len()), terms)
    }

    fn simple_program() -> DatalogProgram {
        // q(X) :- d1(X,Y), d2(Y).   d1(X,Y) :- r(X,Y).  d1(X,Y) :- s(X,Y).
        // d2(Y) :- t(Y).            d2(Y) :- u(Y).
        DatalogProgram::new(
            atom("q", &["X"]),
            vec![
                DatalogRule::new(
                    atom("q", &["X"]),
                    vec![atom("d1", &["X", "Y"]), atom("d2", &["Y"])],
                ),
                DatalogRule::new(atom("d1", &["X", "Y"]), vec![atom("r", &["X", "Y"])]),
                DatalogRule::new(atom("d1", &["X", "Y"]), vec![atom("s", &["X", "Y"])]),
                DatalogRule::new(atom("d2", &["Y"]), vec![atom("t", &["Y"])]),
                DatalogRule::new(atom("d2", &["Y"]), vec![atom("u", &["Y"])]),
            ],
        )
    }

    #[test]
    fn base_and_defined_predicates() {
        let p = simple_program();
        let defined = p.defined_predicates();
        assert_eq!(defined.len(), 3);
        assert!(defined.contains(&Predicate::new("q", 1)));
        let base = p.base_predicates();
        assert_eq!(base.len(), 4);
        assert!(base.contains(&Predicate::new("r", 2)));
    }

    #[test]
    fn stratum_order_is_dependency_respecting() {
        let p = simple_program();
        let order = p.stratum_order().unwrap();
        let pos = |name: &str, ar: usize| {
            order
                .iter()
                .position(|q| *q == Predicate::new(name, ar))
                .unwrap()
        };
        assert!(pos("d1", 2) < pos("q", 1));
        assert!(pos("d2", 1) < pos("q", 1));
    }

    #[test]
    fn strata_group_independent_predicates() {
        // d1 and d2 are independent (level 0); q joins them (level 1).
        let p = simple_program();
        let levels = p.strata().unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2, "{levels:?}");
        assert_eq!(levels[1], vec![Predicate::new("q", 1)]);
        // A recursive program has no strata.
        let rec = DatalogProgram::new(
            atom("q", &["X"]),
            vec![
                DatalogRule::new(atom("q", &["X"]), vec![atom("p", &["X"])]),
                DatalogRule::new(atom("p", &["X"]), vec![atom("q", &["X"])]),
            ],
        );
        assert!(rec.strata().is_none());
    }

    #[test]
    fn canonical_text_erases_intensional_names_only() {
        // Two copies of the same program with differently-named defs must
        // print identically; base predicates keep their names.
        let build = |d1: &str, d2: &str| {
            DatalogProgram::new(
                atom("q", &["X"]),
                vec![
                    DatalogRule::new(
                        atom("q", &["X"]),
                        vec![atom(d1, &["X", "Y"]), atom(d2, &["Y"])],
                    ),
                    DatalogRule::new(atom(d1, &["X", "Y"]), vec![atom("r", &["X", "Y"])]),
                    DatalogRule::new(atom(d2, &["Y"]), vec![atom("t", &["Y"])]),
                ],
            )
        };
        let a = build("_def7", "_def8");
        let b = build("_def91", "_def92");
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert!(a.canonical_text().contains("r(X, Y)"), "base names kept");
        // Swapping rule content must still be visible.
        let c = build("_def7", "_def8");
        let mut d = c.clone();
        d.rules[2] = DatalogRule::new(atom("_def8", &["Y"]), vec![atom("u", &["Y"])]);
        assert_ne!(c.canonical_text(), d.canonical_text());
    }

    #[test]
    fn recursion_is_detected() {
        let p = DatalogProgram::new(
            atom("q", &["X"]),
            vec![
                DatalogRule::new(atom("q", &["X"]), vec![atom("p", &["X"])]),
                DatalogRule::new(atom("p", &["X"]), vec![atom("q", &["X"])]),
            ],
        );
        assert!(!p.is_nonrecursive());
        assert!(p.stratum_order().is_none());
    }

    #[test]
    fn expansion_is_the_cross_product() {
        // 2 alternatives × 2 alternatives = 4 CQs in DNF, while the program
        // itself has 5 rules / 6 atoms — the "hiding" of Section 2.
        let p = simple_program();
        let u = p.expand();
        assert_eq!(u.size(), 4);
        assert_eq!(u.length(), 8); // each CQ has 2 atoms
        assert!(p.total_atoms() < u.length());
    }

    #[test]
    fn expansion_unifies_call_sites() {
        // q(X) :- d(X,X) forces both def arguments equal.
        let p = DatalogProgram::new(
            atom("q", &["X"]),
            vec![
                DatalogRule::new(atom("q", &["X"]), vec![atom("d", &["X", "X"])]),
                DatalogRule::new(atom("d", &["A", "B"]), vec![atom("r", &["A", "B"])]),
            ],
        );
        let u = p.expand();
        assert_eq!(u.size(), 1);
        let cq = &u.cqs[0];
        assert_eq!(cq.body.len(), 1);
        assert_eq!(cq.body[0].args[0], cq.body[0].args[1]);
    }

    #[test]
    fn expansion_drops_constant_clashes() {
        // d is only defined for the constant `a`; calling it with `b` kills
        // the disjunct.
        let p = DatalogProgram::new(
            atom("q", &["X"]),
            vec![
                DatalogRule::new(
                    atom("q", &["X"]),
                    vec![atom("r", &["X"]), atom("d", &["b"])],
                ),
                DatalogRule::new(atom("d", &["a"]), vec![atom("s", &["a"])]),
            ],
        );
        assert!(p.expand().is_empty());
    }

    #[test]
    fn unsatisfiable_program_expands_to_empty_union() {
        let p = DatalogProgram::unsatisfiable(atom("q", &["X"]));
        assert!(p.expand().is_empty());
        assert!(p.is_nonrecursive());
    }

    #[test]
    fn safety_check() {
        let safe = DatalogRule::new(atom("q", &["X"]), vec![atom("r", &["X", "Y"])]);
        assert!(safe.is_safe());
        let unsafe_rule = DatalogRule::new(atom("q", &["Z"]), vec![atom("r", &["X", "Y"])]);
        assert!(!unsafe_rule.is_safe());
    }

    #[test]
    fn nested_definitions_expand_transitively() {
        // q(X) :- d1(X);  d1(X) :- d2(X), w(X);  d2(X) :- r(X) | s(X).
        let p = DatalogProgram::new(
            atom("q", &["X"]),
            vec![
                DatalogRule::new(atom("q", &["X"]), vec![atom("d1", &["X"])]),
                DatalogRule::new(
                    atom("d1", &["X"]),
                    vec![atom("d2", &["X"]), atom("w", &["X"])],
                ),
                DatalogRule::new(atom("d2", &["X"]), vec![atom("r", &["X"])]),
                DatalogRule::new(atom("d2", &["X"]), vec![atom("s", &["X"])]),
            ],
        );
        let u = p.expand();
        assert_eq!(u.size(), 2);
        for cq in u.iter() {
            assert_eq!(cq.body.len(), 2);
        }
    }
}
