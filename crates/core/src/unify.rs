//! First-order unification and most general unifiers (MGUs) for atom sets.
//!
//! The rewriting algorithm (Section 5) needs MGUs of sets of atoms
//! `A ∪ {head(σ)}`; the Requiem-style baseline additionally unifies function
//! terms, so we implement full Robinson unification with an occurs check.

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::Term;

/// Unify two terms under the current bindings in `subst`, extending it.
///
/// Returns `false` (leaving `subst` in a partially-extended state — callers
/// discard it on failure) if the terms are not unifiable.
pub fn unify_terms(a: &Term, b: &Term, subst: &mut Substitution) -> bool {
    let ra = subst.walk(a).clone();
    let rb = subst.walk(b).clone();
    match (ra, rb) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) => {
            if occurs(x, &t, subst) {
                return false;
            }
            subst.bind(x, t);
            true
        }
        (t, Term::Var(y)) => {
            if occurs(y, &t, subst) {
                return false;
            }
            subst.bind(y, t);
            true
        }
        (Term::Const(c), Term::Const(d)) => c == d,
        (Term::Null(m), Term::Null(n)) => m == n,
        (Term::Func(f, fa), Term::Func(g, ga)) => {
            if f != g || fa.len() != ga.len() {
                return false;
            }
            fa.iter()
                .zip(ga.iter())
                .all(|(x, y)| unify_terms(x, y, subst))
        }
        _ => false,
    }
}

/// Occurs check: does `v` occur in `t` once bindings are resolved?
fn occurs(v: crate::symbols::Symbol, t: &Term, subst: &Substitution) -> bool {
    match subst.walk(t) {
        Term::Var(w) => *w == v,
        Term::Func(_, args) => args.iter().any(|a| occurs(v, a, subst)),
        _ => false,
    }
}

/// Unify two atoms, extending `subst`. Fails fast on predicate mismatch.
pub fn unify_atoms_into(a: &Atom, b: &Atom, subst: &mut Substitution) -> bool {
    if a.pred != b.pred {
        return false;
    }
    a.args
        .iter()
        .zip(b.args.iter())
        .all(|(x, y)| unify_terms(x, y, subst))
}

/// The MGU of a pair of atoms, if it exists.
pub fn mgu_pair(a: &Atom, b: &Atom) -> Option<Substitution> {
    let mut s = Substitution::new();
    unify_atoms_into(a, b, &mut s).then_some(s)
}

/// The MGU of a set of atoms (`γ_A` in the paper): a substitution `γ` with
/// `γ(a_1) = … = γ(a_n)`. For a singleton set this is the identity.
///
/// The MGU is unique modulo variable renaming (paper, Section 5).
pub fn mgu_set(atoms: &[&Atom]) -> Option<Substitution> {
    let mut s = Substitution::new();
    if atoms.len() < 2 {
        return Some(s);
    }
    let first = atoms[0];
    for other in &atoms[1..] {
        if !unify_atoms_into(first, other, &mut s) {
            return None;
        }
    }
    Some(s)
}

/// Do the atoms in the set unify (paper: "a set of atoms A unifies")?
pub fn unifiable(atoms: &[&Atom]) -> bool {
    mgu_set(atoms).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::intern;

    fn atom(s: &str) -> Atom {
        // tiny helper: "p(X,a)" — single-letter-ish args, no nesting
        let open = s.find('(').unwrap();
        let pred = &s[..open];
        let inner = &s[open + 1..s.len() - 1];
        let args: Vec<&str> = if inner.is_empty() {
            vec![]
        } else {
            inner.split(',').collect()
        };
        let terms: Vec<Term> = args
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        Atom::new(crate::atom::Predicate::new(pred, terms.len()), terms)
    }

    #[test]
    fn unifies_var_with_constant() {
        let a = atom("p(X,a)");
        let b = atom("p(b,Y)");
        let s = mgu_pair(&a, &b).unwrap();
        assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
        assert_eq!(s.apply_atom(&a).to_string(), "p(b,a)");
    }

    #[test]
    fn constant_clash_fails() {
        assert!(mgu_pair(&atom("p(a)"), &atom("p(b)")).is_none());
    }

    #[test]
    fn predicate_mismatch_fails() {
        assert!(mgu_pair(&atom("p(X)"), &atom("q(X)")).is_none());
    }

    #[test]
    fn repeated_vars_propagate() {
        // p(X,X) with p(a,Y) forces Y=a.
        let a = atom("p(X,X)");
        let b = atom("p(a,Y)");
        let s = mgu_pair(&a, &b).unwrap();
        assert_eq!(s.apply_term(&Term::var("Y")), Term::constant("a"));
    }

    #[test]
    fn occurs_check_blocks_cyclic_unifier() {
        let x = Term::var("X");
        let f = Term::Func(intern("f"), vec![Term::var("X")].into_boxed_slice());
        let mut s = Substitution::new();
        assert!(!unify_terms(&x, &f, &mut s));
    }

    #[test]
    fn mgu_of_three_atoms() {
        // Example 1 of the paper unifies t(A,B,C), t(A,E,C) via {E→B}.
        let a1 = atom("t(A,B,C)");
        let a2 = atom("t(A,E,C)");
        let s = mgu_set(&[&a1, &a2]).unwrap();
        assert_eq!(s.apply_atom(&a1), s.apply_atom(&a2));
        // Triple set with a constant.
        let b1 = atom("r(X,a)");
        let b2 = atom("r(Y,Z)");
        let b3 = atom("r(W,W)");
        let s = mgu_set(&[&b1, &b2, &b3]).unwrap();
        let u1 = s.apply_atom(&b1);
        assert_eq!(u1, s.apply_atom(&b2));
        assert_eq!(u1, s.apply_atom(&b3));
        assert_eq!(u1.args[0], Term::constant("a"));
    }

    #[test]
    fn function_terms_unify_structurally() {
        let f1 = Term::Func(intern("f"), vec![Term::var("X")].into_boxed_slice());
        let f2 = Term::Func(intern("f"), vec![Term::constant("c")].into_boxed_slice());
        let mut s = Substitution::new();
        assert!(unify_terms(&f1, &f2, &mut s));
        assert_eq!(s.apply_term(&Term::var("X")), Term::constant("c"));
        let g = Term::Func(intern("g"), vec![Term::var("X")].into_boxed_slice());
        let mut s2 = Substitution::new();
        assert!(!unify_terms(&f1, &g, &mut s2));
    }

    #[test]
    fn mgu_is_most_general_on_examples() {
        // For p(X,Y) and p(Y,X), the MGU maps one variable to the other and
        // leaves everything else open: applying it twice changes nothing.
        let a = atom("p(X,Y)");
        let b = atom("p(Y,X)");
        let s = mgu_pair(&a, &b).unwrap();
        let once = s.apply_atom(&a);
        let twice = s.apply_atom(&once);
        assert_eq!(once, twice);
        assert!(s.is_idempotent());
    }
}
