//! Affected positions and weakly-guarded sets of TGDs (Section 4.1, \[25\]).
//!
//! A position is *affected* if a labeled null can appear there during the
//! chase: either an existential variable occurs at it in some head, or a
//! body variable occurring **only** at affected positions propagates to it.
//! A set of TGDs is *weakly guarded* iff every TGD has a body atom (the
//! weak guard) containing all universally quantified variables that occur
//! only at affected positions — the variables that may be bound to nulls.

use std::collections::HashSet;

use crate::atom::Position;
use crate::symbols::Symbol;
use crate::tgd::Tgd;

/// Compute the set of affected positions of a TGD set (least fixpoint).
pub fn affected_positions(tgds: &[Tgd]) -> HashSet<Position> {
    let mut affected: HashSet<Position> = HashSet::new();

    // Base: positions of existential variables in heads.
    for tgd in tgds {
        let ex: HashSet<Symbol> = tgd.existential_vars().into_iter().collect();
        for h in &tgd.head {
            for (i, t) in h.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    if ex.contains(&v) {
                        affected.insert(Position {
                            pred: h.pred,
                            index: i,
                        });
                    }
                }
            }
        }
    }

    // Induction: a frontier variable occurring in the body only at affected
    // positions contaminates its head positions.
    loop {
        let mut changed = false;
        for tgd in tgds {
            let head_vars: HashSet<Symbol> = tgd.head_vars().into_iter().collect();
            for v in tgd.body_vars() {
                if !head_vars.contains(&v) {
                    continue;
                }
                if !occurs_only_at_affected(tgd, v, &affected) {
                    continue;
                }
                for h in &tgd.head {
                    for (i, t) in h.args.iter().enumerate() {
                        if t.as_var() == Some(v)
                            && affected.insert(Position {
                                pred: h.pred,
                                index: i,
                            })
                        {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return affected;
        }
    }
}

/// Does `v` occur in `tgd`'s body only at affected positions?
fn occurs_only_at_affected(tgd: &Tgd, v: Symbol, affected: &HashSet<Position>) -> bool {
    let mut occurs = false;
    for b in &tgd.body {
        for (i, t) in b.args.iter().enumerate() {
            if t.as_var() == Some(v) {
                occurs = true;
                if !affected.contains(&Position {
                    pred: b.pred,
                    index: i,
                }) {
                    return false;
                }
            }
        }
    }
    occurs
}

/// Is the set weakly guarded (\[25\])? Every TGD needs a body atom containing
/// all universally quantified variables that occur only at affected
/// positions. Query answering under weakly-guarded sets is
/// EXPTIME-complete in data complexity — decidable but not FO-rewritable.
pub fn is_weakly_guarded(tgds: &[Tgd]) -> bool {
    let affected = affected_positions(tgds);
    tgds.iter().all(|tgd| {
        let dangerous: Vec<Symbol> = tgd
            .body_vars()
            .into_iter()
            .filter(|v| occurs_only_at_affected(tgd, *v, &affected))
            .collect();
        if dangerous.is_empty() {
            return true;
        }
        tgd.body
            .iter()
            .any(|a| dangerous.iter().all(|v| a.contains_var(*v)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Predicate};
    use crate::term::Term;

    fn tgd(body: &[(&str, &[&str])], head: &[(&str, &[&str])]) -> Tgd {
        let mk = |spec: &[(&str, &[&str])]| {
            spec.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args
                        .iter()
                        .map(|a| {
                            if a.chars().next().unwrap().is_uppercase() {
                                Term::var(a)
                            } else {
                                Term::constant(a)
                            }
                        })
                        .collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect::<Vec<_>>()
        };
        Tgd::new(mk(body), mk(head))
    }

    #[test]
    fn existential_positions_are_affected() {
        // p(X) → ∃Y r(X,Y): r[2] affected, r[1] not, p[1] not.
        let tgds = vec![tgd(&[("p", &["X"])], &[("r", &["X", "Y"])])];
        let aff = affected_positions(&tgds);
        assert!(aff.contains(&Position {
            pred: Predicate::new("r", 2),
            index: 1
        }));
        assert!(!aff.contains(&Position {
            pred: Predicate::new("r", 2),
            index: 0
        }));
        assert!(!aff.contains(&Position {
            pred: Predicate::new("p", 1),
            index: 0
        }));
    }

    #[test]
    fn affectedness_propagates_through_frontiers() {
        // p(X) → ∃Y r(X,Y);  r(X,Y) → s(Y): the null at r[2] flows to s[1].
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("r", &["X", "Y"])]),
            tgd(&[("r", &["X", "Y"])], &[("s", &["Y"])]),
        ];
        let aff = affected_positions(&tgds);
        assert!(aff.contains(&Position {
            pred: Predicate::new("s", 1),
            index: 0
        }));
    }

    #[test]
    fn mixed_occurrence_blocks_propagation() {
        // r(X,Y), p(Y) → s(Y): Y occurs at r[2] (affected) AND p[1] (not
        // affected) → only non-null values bind Y → s[1] not affected.
        let tgds = vec![
            tgd(&[("p0", &["X"])], &[("r", &["X", "Y"])]),
            tgd(&[("r", &["X", "Y"]), ("p", &["Y"])], &[("s", &["Y"])]),
        ];
        let aff = affected_positions(&tgds);
        assert!(!aff.contains(&Position {
            pred: Predicate::new("s", 1),
            index: 0
        }));
    }

    #[test]
    fn guarded_implies_weakly_guarded() {
        let tgds = vec![tgd(
            &[("r", &["X", "Y"]), ("s", &["X", "Y", "Z"])],
            &[("s", &["Z", "X", "W"])],
        )];
        assert!(crate::classes::is_guarded(&tgds));
        assert!(is_weakly_guarded(&tgds));
    }

    #[test]
    fn weakly_guarded_but_not_guarded() {
        // Classic example: the join variables never see nulls, so no weak
        // guard is needed even though no atom contains all body variables.
        // r(X,Y), r(Y,Z) → r(X,Z) with no existential rules: no affected
        // positions at all → weakly guarded, not guarded.
        let tgds = vec![tgd(
            &[("r", &["X", "Y"]), ("r", &["Y", "Z"])],
            &[("r", &["X", "Z"])],
        )];
        assert!(!crate::classes::is_guarded(&tgds));
        assert!(is_weakly_guarded(&tgds));
    }

    #[test]
    fn unguarded_nulls_break_weak_guardedness() {
        // p(X) → ∃Y r(X,Y);  r(X,Y), r(Z,Y) → q(X,Z): Y occurs only at the
        // affected position r[2] in both atoms, but no single atom contains
        // … it does: each atom contains Y. Dangerous vars = {Y}; the weak
        // guard only needs to cover Y → weakly guarded.
        let tgds = vec![
            tgd(&[("p", &["X"])], &[("r", &["X", "Y"])]),
            tgd(
                &[("r", &["X", "Y"]), ("r", &["Z", "Y"])],
                &[("q", &["X", "Z"])],
            ),
        ];
        assert!(is_weakly_guarded(&tgds));

        // Two distinct dangerous variables in different atoms: not WG.
        // p(X) → ∃Y r(X,Y); r(X,Y), r(Y2,W) … make Y and W both dangerous
        // and never co-occur:
        let tgds2 = vec![
            tgd(&[("p", &["X"])], &[("r", &["X", "Y"])]),
            tgd(&[("p2", &["X"])], &[("r2", &["X", "Y"])]),
            tgd(
                &[("r", &["X", "Y"]), ("r2", &["Z", "W"])],
                &[("q", &["X", "Z"])],
            ),
        ];
        // Dangerous: Y (only at r[2], affected), W (only at r2[2], affected).
        // No body atom contains both → not weakly guarded.
        assert!(!is_weakly_guarded(&tgds2));
    }
}
