//! Atoms and predicates.

use std::fmt;

use crate::symbols::{self, Symbol};
use crate::term::Term;

/// A predicate symbol with its arity.
///
/// Two predicates are the same only if both name and arity agree; the paper's
/// positions `r[i]` are pairs of a predicate and an argument index.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    pub sym: Symbol,
    pub arity: usize,
}

impl Predicate {
    pub fn new(name: &str, arity: usize) -> Self {
        Predicate {
            sym: symbols::intern(name),
            arity,
        }
    }

    /// All positions `self[0] … self[arity-1]` of this predicate.
    pub fn positions(self) -> impl Iterator<Item = Position> {
        (0..self.arity).map(move |i| Position {
            pred: self,
            index: i,
        })
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.sym, self.arity)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sym)
    }
}

/// A position `r[i]`: the `i`-th argument slot (0-based) of predicate `r`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Position {
    pub pred: Predicate,
    pub index: usize,
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper writes positions 1-based: r[1] is the first argument.
        write!(f, "{}[{}]", self.pred.sym, self.index + 1)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An atomic formula `r(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pub pred: Predicate,
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom, checking that the argument count matches the arity.
    pub fn new(pred: Predicate, args: Vec<Term>) -> Self {
        assert_eq!(
            pred.arity,
            args.len(),
            "arity mismatch constructing atom for {:?}",
            pred
        );
        Atom { pred, args }
    }

    /// Parse-free convenience constructor: `Atom::make("stock", ["X","Y"])`
    /// where lowercase-initial names become constants and uppercase-initial
    /// names become variables (Prolog convention, same as the text syntax).
    pub fn make<const N: usize>(pred: &str, args: [&str; N]) -> Self {
        let terms = args
            .iter()
            .map(|a| {
                let first = a.chars().next().expect("empty term name");
                if first.is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        Atom::new(Predicate::new(pred, N), terms)
    }

    /// Append every variable occurrence (with repetitions) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        for t in &self.args {
            t.collect_vars(out);
        }
    }

    /// The set-like list of distinct variables, in first-occurrence order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut occ = Vec::new();
        self.collect_vars(&mut occ);
        let mut seen = Vec::new();
        for v in occ {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Does variable `v` occur in this atom?
    pub fn contains_var(&self, v: Symbol) -> bool {
        self.args.iter().any(|t| t.contains_var(v))
    }

    /// The (0-based) argument indices at which variable `v` occurs as a
    /// direct argument.
    pub fn positions_of_var(&self, v: Symbol) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i))
            .collect()
    }

    /// True if no variable occurs in the atom (a fact).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// True if some argument is a function term.
    pub fn has_function_term(&self) -> bool {
        self.args.iter().any(|t| matches!(t, Term::Func(..)))
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred.sym)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_uses_case_convention() {
        let a = Atom::make("list_comp", ["X", "nasdaq"]);
        assert!(a.args[0].is_var());
        assert!(a.args[1].is_const());
        assert_eq!(a.to_string(), "list_comp(X,nasdaq)");
    }

    #[test]
    fn predicate_identity_includes_arity() {
        assert_ne!(Predicate::new("p", 1), Predicate::new("p", 2));
        assert_eq!(Predicate::new("p", 2), Predicate::new("p", 2));
    }

    #[test]
    fn positions_of_var_finds_all() {
        let a = Atom::make("t", ["X", "Y", "X"]);
        let x = symbols::intern("X");
        assert_eq!(a.positions_of_var(x), vec![0, 2]);
        assert_eq!(a.variables().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        Atom::new(Predicate::new("p", 2), vec![Term::var("X")]);
    }

    #[test]
    fn position_display_is_one_based() {
        let p = Predicate::new("r", 3);
        let pos: Vec<Position> = p.positions().collect();
        assert_eq!(pos.len(), 3);
        assert_eq!(pos[0].to_string(), "r[1]");
        assert_eq!(pos[2].to_string(), "r[3]");
    }
}
