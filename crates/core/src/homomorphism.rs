//! Homomorphisms between sets of atoms (paper, Section 3.1).
//!
//! A homomorphism maps variables to arbitrary terms of the target while
//! fixing constants; nulls and function terms on the source side must match
//! structurally. Variables occurring in the *target* are treated as frozen
//! values (this is exactly what containment mappings and NC pruning need).

use std::collections::HashMap;

use crate::atom::{Atom, Predicate};
use crate::substitution::Substitution;
use crate::symbols::Symbol;
use crate::term::Term;

/// A reusable homomorphism search over a fixed target atom set.
pub struct HomSearch<'a> {
    index: HashMap<Predicate, Vec<&'a Atom>>,
}

impl<'a> HomSearch<'a> {
    pub fn new(target: &'a [Atom]) -> Self {
        let mut index: HashMap<Predicate, Vec<&'a Atom>> = HashMap::new();
        for a in target {
            index.entry(a.pred).or_default().push(a);
        }
        HomSearch { index }
    }

    /// Find one homomorphism from `from` into the target extending `init`.
    pub fn find(&self, from: &[Atom], init: &Substitution) -> Option<Substitution> {
        let mut found = None;
        self.search(from, init, &mut |s| {
            found = Some(s.clone());
            false // stop at the first one
        });
        found
    }

    /// Is there any homomorphism from `from` into the target extending
    /// `init`?
    pub fn exists(&self, from: &[Atom], init: &Substitution) -> bool {
        let mut any = false;
        self.search(from, init, &mut |_| {
            any = true;
            false
        });
        any
    }

    /// Enumerate homomorphisms; the callback returns `false` to stop early.
    pub fn search(
        &self,
        from: &[Atom],
        init: &Substitution,
        visit: &mut dyn FnMut(&Substitution) -> bool,
    ) {
        let mut bindings: HashMap<Symbol, Term> = HashMap::new();
        for (v, t) in init.iter() {
            bindings.insert(v, init.apply_term(t));
        }
        // Order atoms so that ones constrained by already-bound variables
        // come early: simple static heuristic — most distinct variables last.
        let mut order: Vec<&Atom> = from.iter().collect();
        order.sort_by_key(|a| a.variables().len());
        let mut trail: Vec<Symbol> = Vec::new();
        self.backtrack(&order, 0, &mut bindings, &mut trail, visit);
    }

    fn backtrack(
        &self,
        from: &[&Atom],
        depth: usize,
        bindings: &mut HashMap<Symbol, Term>,
        trail: &mut Vec<Symbol>,
        visit: &mut dyn FnMut(&Substitution) -> bool,
    ) -> bool {
        if depth == from.len() {
            let mut s = Substitution::new();
            for (v, t) in bindings.iter() {
                s.bind(*v, t.clone());
            }
            return visit(&s);
        }
        let atom = from[depth];
        let Some(candidates) = self.index.get(&atom.pred) else {
            return true; // no candidates: this branch fails, keep searching elsewhere
        };
        for cand in candidates {
            let mark = trail.len();
            if match_atom(atom, cand, bindings, trail)
                && !self.backtrack(from, depth + 1, bindings, trail, visit)
            {
                undo(bindings, trail, mark);
                return false;
            }
            undo(bindings, trail, mark);
        }
        true
    }
}

fn undo(bindings: &mut HashMap<Symbol, Term>, trail: &mut Vec<Symbol>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().expect("trail underflow");
        bindings.remove(&v);
    }
}

fn match_atom(
    from: &Atom,
    to: &Atom,
    bindings: &mut HashMap<Symbol, Term>,
    trail: &mut Vec<Symbol>,
) -> bool {
    debug_assert_eq!(from.pred, to.pred);
    from.args
        .iter()
        .zip(to.args.iter())
        .all(|(s, t)| match_term(s, t, bindings, trail))
}

/// Match source term `s` against fixed target term `t`.
fn match_term(
    s: &Term,
    t: &Term,
    bindings: &mut HashMap<Symbol, Term>,
    trail: &mut Vec<Symbol>,
) -> bool {
    match s {
        Term::Var(v) => match bindings.get(v) {
            Some(bound) => bound == t,
            None => {
                bindings.insert(*v, t.clone());
                trail.push(*v);
                true
            }
        },
        Term::Const(c) => matches!(t, Term::Const(d) if d == c),
        Term::Null(n) => matches!(t, Term::Null(m) if m == n),
        Term::Func(f, fargs) => match t {
            Term::Func(g, gargs) if g == f && gargs.len() == fargs.len() => fargs
                .iter()
                .zip(gargs.iter())
                .all(|(x, y)| match_term(x, y, bindings, trail)),
            _ => false,
        },
    }
}

/// One-shot convenience: is there a homomorphism `from → to`?
pub fn exists_homomorphism(from: &[Atom], to: &[Atom]) -> bool {
    HomSearch::new(to).exists(from, &Substitution::new())
}

/// One-shot convenience: find a homomorphism `from → to`.
pub fn find_homomorphism(from: &[Atom], to: &[Atom]) -> Option<Substitution> {
    HomSearch::new(to).find(from, &Substitution::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(spec: &[(&str, &[&str])]) -> Vec<Atom> {
        spec.iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect()
    }

    #[test]
    fn maps_variables_to_constants() {
        let from = atoms(&[("p", &["X", "Y"])]);
        let to = atoms(&[("p", &["a", "b"])]);
        let h = find_homomorphism(&from, &to).unwrap();
        assert_eq!(h.apply_atom(&from[0]).to_string(), "p(a,b)");
    }

    #[test]
    fn respects_constants() {
        let from = atoms(&[("p", &["a"])]);
        let to = atoms(&[("p", &["b"])]);
        assert!(!exists_homomorphism(&from, &to));
    }

    #[test]
    fn joins_must_agree() {
        // p(X), r(X) → target has p(a), r(b): no homomorphism.
        let from = atoms(&[("p", &["X"]), ("r", &["X"])]);
        let to_bad = atoms(&[("p", &["a"]), ("r", &["b"])]);
        let to_good = atoms(&[("p", &["a"]), ("r", &["a"]), ("r", &["b"])]);
        assert!(!exists_homomorphism(&from, &to_bad));
        assert!(exists_homomorphism(&from, &to_good));
    }

    #[test]
    fn target_variables_are_frozen() {
        // X can map to the frozen variable W of the target.
        let from = atoms(&[("p", &["X", "X"])]);
        let to = atoms(&[("p", &["W", "W"])]);
        assert!(exists_homomorphism(&from, &to));
        // but p(X,X) cannot map to p(W,U) with distinct frozen vars.
        let to2 = atoms(&[("p", &["W", "U"])]);
        assert!(!exists_homomorphism(&from, &to2));
    }

    #[test]
    fn initial_bindings_constrain_search() {
        let from = atoms(&[("p", &["X"])]);
        let to = atoms(&[("p", &["a"]), ("p", &["b"])]);
        let mut init = Substitution::new();
        init.bind(crate::symbols::intern("X"), Term::constant("b"));
        let h = HomSearch::new(&to).find(&from, &init).unwrap();
        assert_eq!(h.apply_term(&Term::var("X")), Term::constant("b"));
        let mut init_bad = Substitution::new();
        init_bad.bind(crate::symbols::intern("X"), Term::constant("c"));
        assert!(!HomSearch::new(&to).exists(&from, &init_bad));
    }

    #[test]
    fn enumerates_all_homomorphisms() {
        let from = atoms(&[("p", &["X"])]);
        let to = atoms(&[("p", &["a"]), ("p", &["b"]), ("p", &["c"])]);
        let mut images = Vec::new();
        HomSearch::new(&to).search(&from, &Substitution::new(), &mut |s| {
            images.push(s.apply_term(&Term::var("X")).to_string());
            true
        });
        images.sort();
        assert_eq!(images, vec!["a", "b", "c"]);
    }

    #[test]
    fn function_terms_match_structurally() {
        use crate::symbols::intern;
        let f_x = Term::Func(intern("f"), vec![Term::var("X")].into_boxed_slice());
        let f_a = Term::Func(intern("f"), vec![Term::constant("a")].into_boxed_slice());
        let from = vec![Atom::new(Predicate::new("p", 1), vec![f_x])];
        let to = vec![Atom::new(Predicate::new("p", 1), vec![f_a])];
        let h = find_homomorphism(&from, &to).unwrap();
        assert_eq!(h.apply_term(&Term::var("X")), Term::constant("a"));
    }
}
