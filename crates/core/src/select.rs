//! Query modifiers: comparison filters, ORDER BY / LIMIT, and aggregates.
//!
//! A [`SelectOptions`] decorates a (union of) conjunctive quer(y/ies) with
//! SQL-style result shaping. Every position in it refers to a **head column
//! index** of the query, which makes the modifiers sound under rewriting:
//! rewriting renames body variables and multiplies disjuncts but never
//! changes head positions, so the same decoration applies unchanged to the
//! rewritten union.
//!
//! [`apply_select`] is the *reference semantics*: a pure, index-free
//! function from an answer set to the shaped result. The executor's sorted
//! index fast paths (range scans, top-k early exit, aggregate pushdown) must
//! be bit-identical to it — `tests/planner_differential.rs` enforces that
//! over 300 seeded runs.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::term::{canonical_cmp_rows, Term};

/// A comparison operator for a column filter. Equality is deliberately
/// absent: equality selections are expressed as constants in the query body
/// and answered by the hash indexes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// Strictly less than, under canonical term order.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Not equal.
    Ne,
}

impl FilterOp {
    /// Does a comparison outcome (`row_value.canonical_cmp(&filter_value)`)
    /// satisfy this operator?
    #[inline]
    pub fn accepts(self, ord: Ordering) -> bool {
        match self {
            FilterOp::Lt => ord == Ordering::Less,
            FilterOp::Le => ord != Ordering::Greater,
            FilterOp::Gt => ord == Ordering::Greater,
            FilterOp::Ge => ord != Ordering::Less,
            FilterOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The operator's surface syntax (`<`, `<=`, `>`, `>=`, `!=`).
    pub fn symbol(self) -> &'static str {
        match self {
            FilterOp::Lt => "<",
            FilterOp::Le => "<=",
            FilterOp::Gt => ">",
            FilterOp::Ge => ">=",
            FilterOp::Ne => "!=",
        }
    }
}

/// A comparison filter on one head column: `column <op> value`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnFilter {
    /// Zero-based head column index.
    pub column: usize,
    /// Comparison operator.
    pub op: FilterOp,
    /// Ground comparison value.
    pub value: Term,
}

impl ColumnFilter {
    /// Does `row` satisfy this filter?
    #[inline]
    pub fn accepts(&self, row: &[Term]) -> bool {
        self.op.accepts(row[self.column].canonical_cmp(&self.value))
    }
}

/// Sort direction for an ORDER BY key.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (canonical order).
    Asc,
    /// Descending.
    Desc,
}

/// An aggregate function over the (distinct) answer rows.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of distinct answer rows (per group).
    Count,
    /// Minimum value of the given head column (per group).
    Min(usize),
    /// Maximum value of the given head column (per group).
    Max(usize),
}

/// An aggregate with optional grouping. Output rows are the group-by key
/// columns followed by one aggregate value column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aggregate {
    /// Head columns to group by (empty = one global group).
    pub group_by: Vec<usize>,
    /// The aggregate computed per group.
    pub func: AggFunc,
}

/// Result-shaping options applied on top of a query's answer set, in this
/// order: filters, then aggregation, then ORDER BY, then LIMIT. ORDER BY
/// column indices refer to the **output** rows (post-aggregation columns
/// when an aggregate is present).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectOptions {
    /// Conjunction of comparison filters on head columns.
    pub filters: Vec<ColumnFilter>,
    /// ORDER BY keys over output columns, applied left to right.
    pub order_by: Vec<(usize, SortDir)>,
    /// Keep at most this many output rows (after ordering).
    pub limit: Option<usize>,
    /// Optional aggregation replacing the raw answer rows.
    pub aggregate: Option<Aggregate>,
}

impl SelectOptions {
    /// True when no modifier is set: the query's raw answer set is the
    /// result.
    pub fn is_plain(&self) -> bool {
        self.filters.is_empty()
            && self.order_by.is_empty()
            && self.limit.is_none()
            && self.aggregate.is_none()
    }

    /// Number of columns in the shaped output, given the query head arity.
    pub fn output_arity(&self, head_arity: usize) -> usize {
        match &self.aggregate {
            Some(agg) => agg.group_by.len() + 1,
            None => head_arity,
        }
    }

    /// Check every column index against the query head arity (and ORDER BY
    /// indices against the output arity). Returns a human-readable
    /// description of the first violation.
    pub fn validate(&self, head_arity: usize) -> Result<(), String> {
        for f in &self.filters {
            if f.column >= head_arity {
                return Err(format!(
                    "filter column {} out of range for head arity {head_arity}",
                    f.column + 1
                ));
            }
            if !f.value.is_ground() {
                return Err(format!("filter value {} is not ground", f.value));
            }
        }
        if let Some(agg) = &self.aggregate {
            for &c in &agg.group_by {
                if c >= head_arity {
                    return Err(format!(
                        "group-by column {} out of range for head arity {head_arity}",
                        c + 1
                    ));
                }
            }
            match agg.func {
                AggFunc::Min(c) | AggFunc::Max(c) if c >= head_arity => {
                    return Err(format!(
                        "aggregate column {} out of range for head arity {head_arity}",
                        c + 1
                    ));
                }
                _ => {}
            }
        }
        let out = self.output_arity(head_arity);
        for &(c, _) in &self.order_by {
            if c >= out {
                return Err(format!(
                    "order-by column {} out of range for output arity {out}",
                    c + 1
                ));
            }
        }
        Ok(())
    }
}

/// Sort `rows` by the ORDER BY keys (canonical term order per key), breaking
/// ties by whole-row canonical order so the result is deterministic across
/// processes.
pub fn sort_rows(rows: &mut [Vec<Term>], order_by: &[(usize, SortDir)]) {
    rows.sort_by(|a, b| {
        for &(col, dir) in order_by {
            let ord = a[col].canonical_cmp(&b[col]);
            let ord = match dir {
                SortDir::Asc => ord,
                SortDir::Desc => ord.reverse(),
            };
            if ord.is_ne() {
                return ord;
            }
        }
        canonical_cmp_rows(a, b)
    });
}

/// Reference semantics for [`SelectOptions`]: shape a distinct answer set
/// into the final ordered result. `rows` must not contain duplicates (answer
/// sets never do). Without ORDER BY the output is still sorted canonically,
/// so two engines producing the same answer *set* produce the same output
/// *sequence*.
pub fn apply_select<I>(rows: I, sel: &SelectOptions) -> Vec<Vec<Term>>
where
    I: IntoIterator<Item = Vec<Term>>,
{
    let filtered = rows
        .into_iter()
        .filter(|r| sel.filters.iter().all(|f| f.accepts(r)));
    let mut out: Vec<Vec<Term>> = match &sel.aggregate {
        None => filtered.collect(),
        Some(agg) => {
            // BTreeMap on the raw (derived-Ord) key is fine here: grouping
            // only needs key *equality*; the output order comes from the
            // canonical sort below.
            let mut groups: BTreeMap<Vec<Term>, (u64, Option<Term>)> = BTreeMap::new();
            let mut saw_rows = false;
            for row in filtered {
                saw_rows = true;
                let key: Vec<Term> = agg.group_by.iter().map(|&c| row[c].clone()).collect();
                let entry = groups.entry(key).or_insert((0, None));
                entry.0 += 1;
                match agg.func {
                    AggFunc::Count => {}
                    AggFunc::Min(c) => {
                        let v = &row[c];
                        if entry
                            .1
                            .as_ref()
                            .is_none_or(|cur| v.canonical_cmp(cur) == Ordering::Less)
                        {
                            entry.1 = Some(v.clone());
                        }
                    }
                    AggFunc::Max(c) => {
                        let v = &row[c];
                        if entry
                            .1
                            .as_ref()
                            .is_none_or(|cur| v.canonical_cmp(cur) == Ordering::Greater)
                        {
                            entry.1 = Some(v.clone());
                        }
                    }
                }
            }
            // COUNT over an empty, ungrouped input is 0, matching SQL;
            // MIN/MAX over no rows produce no rows.
            if !saw_rows && agg.group_by.is_empty() && agg.func == AggFunc::Count {
                groups.insert(Vec::new(), (0, None));
            }
            groups
                .into_iter()
                .map(|(mut key, (count, extreme))| {
                    let value = match agg.func {
                        AggFunc::Count => Term::constant(&count.to_string()),
                        AggFunc::Min(_) | AggFunc::Max(_) => {
                            extreme.expect("non-empty group has an extreme")
                        }
                    };
                    key.push(value);
                    key
                })
                .collect()
        }
    };
    sort_rows(&mut out, &sel.order_by);
    if let Some(k) = sel.limit {
        out.truncate(k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[&str]) -> Vec<Term> {
        vals.iter().map(|v| Term::constant(v)).collect()
    }

    fn sel() -> SelectOptions {
        SelectOptions::default()
    }

    #[test]
    fn plain_select_sorts_canonically() {
        let rows = vec![row(&["b"]), row(&["a"]), row(&["10"]), row(&["9"])];
        let out = apply_select(rows, &sel());
        assert_eq!(
            out,
            vec![row(&["9"]), row(&["10"]), row(&["a"]), row(&["b"])]
        );
    }

    #[test]
    fn filters_are_conjunctive() {
        let rows = vec![row(&["1"]), row(&["2"]), row(&["3"]), row(&["4"])];
        let s = SelectOptions {
            filters: vec![
                ColumnFilter {
                    column: 0,
                    op: FilterOp::Gt,
                    value: Term::constant("1"),
                },
                ColumnFilter {
                    column: 0,
                    op: FilterOp::Ne,
                    value: Term::constant("3"),
                },
            ],
            ..sel()
        };
        assert_eq!(apply_select(rows, &s), vec![row(&["2"]), row(&["4"])]);
    }

    #[test]
    fn order_by_desc_with_limit() {
        let rows = vec![row(&["1", "x"]), row(&["3", "y"]), row(&["2", "z"])];
        let s = SelectOptions {
            order_by: vec![(0, SortDir::Desc)],
            limit: Some(2),
            ..sel()
        };
        assert_eq!(
            apply_select(rows, &s),
            vec![row(&["3", "y"]), row(&["2", "z"])]
        );
    }

    #[test]
    fn grouped_count_and_global_extremes() {
        let rows = vec![
            row(&["a", "1"]),
            row(&["a", "5"]),
            row(&["b", "3"]),
            row(&["b", "4"]),
        ];
        let s = SelectOptions {
            aggregate: Some(Aggregate {
                group_by: vec![0],
                func: AggFunc::Count,
            }),
            ..sel()
        };
        assert_eq!(
            apply_select(rows.clone(), &s),
            vec![row(&["a", "2"]), row(&["b", "2"])]
        );
        let s = SelectOptions {
            aggregate: Some(Aggregate {
                group_by: vec![],
                func: AggFunc::Max(1),
            }),
            ..sel()
        };
        assert_eq!(apply_select(rows, &s), vec![row(&["5"])]);
    }

    #[test]
    fn global_count_of_nothing_is_zero() {
        let s = SelectOptions {
            aggregate: Some(Aggregate {
                group_by: vec![],
                func: AggFunc::Count,
            }),
            ..sel()
        };
        assert_eq!(apply_select(Vec::<Vec<Term>>::new(), &s), vec![row(&["0"])]);
        // But MIN over nothing yields no rows.
        let s = SelectOptions {
            aggregate: Some(Aggregate {
                group_by: vec![],
                func: AggFunc::Min(0),
            }),
            ..sel()
        };
        assert!(apply_select(Vec::<Vec<Term>>::new(), &s).is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range_columns() {
        let s = SelectOptions {
            filters: vec![ColumnFilter {
                column: 2,
                op: FilterOp::Lt,
                value: Term::constant("x"),
            }],
            ..sel()
        };
        assert!(s.validate(2).is_err());
        let s = SelectOptions {
            aggregate: Some(Aggregate {
                group_by: vec![0],
                func: AggFunc::Count,
            }),
            // Output arity is 2 (one key + count), so ordering by column 1 is
            // fine and column 2 is not.
            order_by: vec![(2, SortDir::Asc)],
            ..sel()
        };
        assert!(s.validate(3).is_err());
    }
}
