//! Predicate signatures of conjunctive queries: a cheap, renaming-invariant
//! fingerprint of *which* predicates a query's body mentions.
//!
//! Two places in the rewriting compiler are quadratic in the number of
//! queries and pay a full homomorphism search (or an exact canonical-key
//! computation) per pair:
//!
//! - **subsumption** (`minimize_union`): `q_j` can only contain `q_i` if
//!   every body predicate of `q_j` also occurs in the body of `q_i` (a
//!   containment mapping sends each atom of `q_j` onto *some* atom of the
//!   frozen `q_i`, so the container's predicate set must be a subset of the
//!   containee's) and the head arities match;
//! - **frontier sharding**: the parallel worklist partitions its canonical
//!   table by signature, so queries that could ever collide under
//!   α-renaming (equal signatures are a necessary condition for canonical-
//!   key equality) land in the same shard.
//!
//! The signature records the head arity, the sorted *set* of body
//! predicates (the multiset collapses — a containment mapping may send
//! several atoms onto one), and a 64-bit Bloom fingerprint of that set for
//! O(1) subset rejection before the exact merge-walk.

use crate::query::ConjunctiveQuery;

/// Renaming-invariant predicate signature of one conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QuerySignature {
    /// Head arity (containment requires equal arities).
    arity: usize,
    /// Number of body atoms (the multiset cardinality; kept for display
    /// and shard mixing, not for the subset test).
    atoms: usize,
    /// Sorted, deduplicated `(symbol index, arity)` pairs of the body.
    preds: Vec<(u32, u32)>,
    /// One bit per predicate (hashed); `a ⊆ b` implies
    /// `a.fingerprint & !b.fingerprint == 0`.
    fingerprint: u64,
}

/// Mix a predicate into a 0..64 bit position (splitmix-style multiply).
#[inline]
fn pred_bit(sym: u32, arity: u32) -> u64 {
    let x = ((sym as u64) << 32) | arity as u64;
    1u64 << (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

impl QuerySignature {
    /// Compute the signature of `q`.
    pub fn of(q: &ConjunctiveQuery) -> Self {
        let mut preds: Vec<(u32, u32)> = q
            .body
            .iter()
            .map(|a| (a.pred.sym.index(), a.pred.arity as u32))
            .collect();
        let atoms = preds.len();
        preds.sort_unstable();
        preds.dedup();
        let fingerprint = preds.iter().fold(0u64, |f, &(s, ar)| f | pred_bit(s, ar));
        QuerySignature {
            arity: q.head.len(),
            atoms,
            preds,
            fingerprint,
        }
    }

    /// The Bloom fingerprint of the body-predicate set.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of distinct body predicates.
    pub fn distinct_predicates(&self) -> usize {
        self.preds.len()
    }

    /// Number of body atoms.
    pub fn atoms(&self) -> usize {
        self.atoms
    }

    /// A stable shard index in `0..shards` for partitioned tables. Mixes
    /// the whole signature so single-bit fingerprints still spread.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        let mut h = self.fingerprint ^ (self.arity as u64).wrapping_mul(0x517C_C1B7_2722_0A95);
        for &(s, ar) in &self.preds {
            h = (h ^ (((s as u64) << 32) | ar as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        (h >> 32) as usize % shards
    }

    /// Necessary condition for "the query of `self` contains the query of
    /// `other`" (`other ⊆ self` — every answer of `other` is an answer of
    /// `self`). A containment mapping from `self` into frozen `other`
    /// requires equal head arities and `preds(self) ⊆ preds(other)`.
    ///
    /// Returns `false` only when containment is impossible; `true` means
    /// "run the homomorphism search".
    pub fn may_contain(&self, other: &QuerySignature) -> bool {
        if self.arity != other.arity {
            return false;
        }
        // O(1) Bloom rejection before the exact merge walk.
        if self.fingerprint & !other.fingerprint != 0 {
            return false;
        }
        // self.preds ⊆ other.preds — both sorted and deduplicated.
        let mut it = other.preds.iter();
        'outer: for p in &self.preds {
            for q in it.by_ref() {
                match q.cmp(p) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Predicate};
    use crate::term::Term;

    fn q(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head.iter().map(|a| Term::var(a)).collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    #[test]
    fn signature_is_renaming_invariant() {
        let a = q(&["A"], &[("p", &["A", "B"]), ("r", &["B"])]);
        let b = q(&["X"], &[("r", &["Y"]), ("p", &["X", "Y"])]);
        assert_eq!(QuerySignature::of(&a), QuerySignature::of(&b));
    }

    #[test]
    fn subset_signatures_may_contain() {
        // p(A,B) can contain p(A,B) ∧ r(B): preds {p} ⊆ {p, r}.
        let small = q(&["A"], &[("p", &["A", "B"])]);
        let big = q(&["A"], &[("p", &["A", "B"]), ("r", &["B"])]);
        let (ss, bs) = (QuerySignature::of(&small), QuerySignature::of(&big));
        assert!(ss.may_contain(&bs));
        // …but not the other way around: r is missing from `small`.
        assert!(!bs.may_contain(&ss));
    }

    #[test]
    fn arity_mismatch_rules_out_containment() {
        let a = q(&["A"], &[("p", &["A", "B"])]);
        let b = q(&[], &[("p", &["A", "B"])]);
        assert!(!QuerySignature::of(&a).may_contain(&QuerySignature::of(&b)));
    }

    #[test]
    fn disjoint_predicates_rule_out_containment() {
        let a = q(&[], &[("p", &["A"])]);
        let b = q(&[], &[("r", &["A"])]);
        assert!(!QuerySignature::of(&a).may_contain(&QuerySignature::of(&b)));
    }

    #[test]
    fn multiset_collapses_for_the_subset_test() {
        // p(A,B) ∧ p(B,C) contains p(A,A) — repeated predicates collapse.
        let twice = q(&[], &[("p", &["A", "B"]), ("p", &["B", "C"])]);
        let once = q(&[], &[("p", &["A", "A"])]);
        assert!(QuerySignature::of(&twice).may_contain(&QuerySignature::of(&once)));
        assert_eq!(QuerySignature::of(&twice).distinct_predicates(), 1);
        assert_eq!(QuerySignature::of(&twice).atoms(), 2);
    }

    #[test]
    fn may_contain_never_false_negative_vs_contains() {
        // Signature pruning must be sound: whenever contains() holds, the
        // signature test must pass.
        let queries = [
            q(&["A"], &[("p", &["A", "B"])]),
            q(&["A"], &[("p", &["A", "A"])]),
            q(&["A"], &[("p", &["A", "B"]), ("r", &["B"])]),
            q(&["A"], &[("r", &["A"])]),
            q(&["A"], &[("p", &["A", "c"])]),
        ];
        for a in &queries {
            for b in &queries {
                if a.contains(b) {
                    assert!(
                        QuerySignature::of(a).may_contain(&QuerySignature::of(b)),
                        "signature rejected a true containment: {a} ⊇ {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_is_stable_and_in_range() {
        let a = q(&["A"], &[("p", &["A", "B"])]);
        let s = QuerySignature::of(&a);
        for shards in [1usize, 2, 7, 16] {
            let idx = s.shard(shards);
            assert!(idx < shards);
            assert_eq!(idx, QuerySignature::of(&a).shard(shards));
        }
    }
}
