//! On-disk codec for ledger payloads: a compact binary encoding of a
//! [`Database`] snapshot (segment payloads) and of insert/retract atom
//! lists (WAL record payloads).
//!
//! Interned [`Symbol`](nyaya_core::Symbol) indices are process-run
//! specific, so everything on disk is encoded by *name*: constants,
//! variables, predicates, and function symbols are written as
//! length-prefixed UTF-8 strings and re-interned on decode. All integers
//! are little-endian.
//!
//! ```text
//! database payload := [version u32 = 3][n_tables u32] table*
//! table            := [name str][arity u32][n_rows u64] dict{arity} rowdata
//! dict             := [n_distinct u32] term*          (canonical value order)
//! rowdata          := [dictidx u32]{n_rows × arity}   (row-major, rows in
//!                                                      canonical row order)
//! batch payload    := [version u32 = 3] atoms(retracts) atoms(inserts)
//! atoms            := [n u64] atom*
//! atom             := [name str][arity u32] term{arity}
//! term             := 0x00 [str]                    constant
//!                   | 0x01 [u64]                    labeled null
//!                   | 0x02 [str]                    variable
//!                   | 0x03 [str][argc u32] term*    function term
//! str              := [len u32][utf8 bytes]
//! ```
//!
//! Version 3 (current) dictionary-encodes each table: every column's
//! distinct values are written once, in canonical value order (which is
//! exactly the columnar engine's sorted posting order), and rows become
//! fixed-width `u32` dictionary-index tuples sorted lexicographically —
//! the same canonical row order version 2 wrote, reachable here by a pure
//! integer sort with no interner locks. The same logical database always
//! encodes to the same bytes, regardless of insertion order or process
//! run. Version 2 wrote rows as full terms in canonical row order;
//! version 1 wrote them in insertion order; the decoder accepts all
//! three, so pre-existing ledgers keep replaying.
//!
//! Decoding is defensive — it is fed bytes that already passed a CRC
//! check, but it must never panic on arbitrary input (corruption tests
//! hand it garbage directly): every read is bounds-checked and structural
//! nonsense surfaces as a typed [`CodecError`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use nyaya_core::{Atom, Predicate, Term};

use crate::engine::Database;

const VERSION: u32 = 3;
/// Oldest payload version both decoders still accept.
const MIN_VERSION: u32 = 1;
/// Caps that keep adversarial length fields from triggering huge
/// allocations before the bounds checks catch them.
const MAX_STR: u32 = 1 << 24;
const MAX_ARITY: u32 = 1 << 12;

/// A structural failure while decoding a ledger payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "payload decode failed at byte {}: {}",
            self.offset, self.detail
        )
    }
}

impl Error for CodecError {}

/// Encode a full database snapshot into a segment payload.
pub fn encode_database(db: &Database) -> Vec<u8> {
    let mut preds: Vec<Predicate> = db.predicates().collect();
    preds.sort_by_key(|p| (p.sym.name(), p.arity));
    let mut out = Vec::new();
    push_u32(&mut out, VERSION);
    push_u32(&mut out, preds.len() as u32);
    for pred in preds {
        push_str(&mut out, &pred.sym.name());
        push_u32(&mut out, pred.arity as u32);
        let table = db.table(pred).expect("predicates() lists stored tables");
        push_u64(&mut out, table.len() as u64);
        // Per-column dictionaries: the sorted distinct cell lists decoded
        // to terms. A cell's dictionary index is its rank in canonical
        // value order, so the dictionaries themselves are process-stable.
        let mut ranks: Vec<HashMap<u32, u32>> = Vec::with_capacity(pred.arity);
        for col in 0..pred.arity {
            let sorted = table.sorted_cells(col);
            push_u32(&mut out, sorted.len() as u32);
            let mut rank = HashMap::with_capacity(sorted.len());
            for (i, &cell) in sorted.iter().enumerate() {
                push_term(&mut out, &table.term_of(cell));
                rank.insert(cell, i as u32);
            }
            ranks.push(rank);
        }
        // Rows as dictionary-index tuples, sorted lexicographically —
        // identical to canonical row order (per-column rank order *is*
        // canonical value order), but a pure u32 sort.
        let mut rows: Vec<Vec<u32>> = (0..table.len() as u32)
            .map(|id| {
                (0..pred.arity)
                    .map(|col| ranks[col][&table.cell_at(id, col)])
                    .collect()
            })
            .collect();
        rows.sort_unstable();
        for row in rows {
            for ix in row {
                push_u32(&mut out, ix);
            }
        }
    }
    out
}

/// Decode a segment payload back into a database (indexes are rebuilt).
pub fn decode_database(bytes: &[u8]) -> Result<Database, CodecError> {
    let mut cur = Cursor::new(bytes);
    let version = cur.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(cur.fail(format!("unsupported segment payload version {version}")));
    }
    let n_tables = cur.u32()?;
    let mut atoms: Vec<Atom> = Vec::new();
    for _ in 0..n_tables {
        let name = cur.str()?;
        let arity = cur.u32()?;
        if arity > MAX_ARITY {
            return Err(cur.fail(format!("implausible arity {arity}")));
        }
        let pred = Predicate::new(&name, arity as usize);
        let n_rows = cur.u64()?;
        if version >= 3 {
            // Dictionary-encoded table: per-column dictionaries first,
            // then fixed-width index tuples.
            if arity == 0 && n_rows > 1 {
                return Err(cur.fail(format!("arity-0 table claims {n_rows} rows")));
            }
            let mut dicts: Vec<Vec<Term>> = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                let n_distinct = cur.u32()?;
                // Every dictionary term occupies at least one byte.
                if n_distinct as usize > cur.remaining() {
                    return Err(cur.fail(format!("implausible dictionary size {n_distinct}")));
                }
                let mut terms = Vec::with_capacity(n_distinct as usize);
                for _ in 0..n_distinct {
                    terms.push(cur.term(0)?);
                }
                dicts.push(terms);
            }
            // Row data is exactly n_rows × arity u32s — check before the
            // loop so a corrupt count cannot spin through gigabytes.
            let need = n_rows
                .checked_mul(arity as u64)
                .and_then(|cells| cells.checked_mul(4));
            match need {
                Some(bytes) if bytes <= cur.remaining() as u64 => {}
                _ => return Err(cur.fail(format!("implausible row count {n_rows}"))),
            }
            for _ in 0..n_rows {
                let mut args = Vec::with_capacity(arity as usize);
                for dict in &dicts {
                    let ix = cur.u32()? as usize;
                    let term = dict
                        .get(ix)
                        .ok_or_else(|| cur.fail(format!("dictionary index {ix} out of range")))?;
                    args.push(term.clone());
                }
                let atom = Atom::new(pred, args);
                if !atom.is_ground() {
                    return Err(cur.fail(format!("non-ground fact {atom} in segment")));
                }
                atoms.push(atom);
            }
        } else {
            // Every row occupies at least one byte per argument; an
            // arity-0 table can hold at most its single empty row.
            if arity == 0 && n_rows > 1 {
                return Err(cur.fail(format!("arity-0 table claims {n_rows} rows")));
            }
            if arity > 0 && n_rows > cur.remaining() as u64 {
                return Err(cur.fail(format!("implausible row count {n_rows}")));
            }
            for _ in 0..n_rows {
                let mut args = Vec::with_capacity(arity as usize);
                for _ in 0..arity {
                    args.push(cur.term(0)?);
                }
                let atom = Atom::new(pred, args);
                if !atom.is_ground() {
                    return Err(cur.fail(format!("non-ground fact {atom} in segment")));
                }
                atoms.push(atom);
            }
        }
    }
    cur.finish()?;
    let mut db = Database::new();
    db.insert_all(atoms);
    Ok(db)
}

/// Encode an update batch (retracts first, then inserts) into a WAL
/// record payload.
pub fn encode_batch(retracts: &[Atom], inserts: &[Atom]) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, VERSION);
    push_atoms(&mut out, retracts);
    push_atoms(&mut out, inserts);
    out
}

/// Decode a WAL record payload back into `(retracts, inserts)`.
pub fn decode_batch(bytes: &[u8]) -> Result<(Vec<Atom>, Vec<Atom>), CodecError> {
    let mut cur = Cursor::new(bytes);
    let version = cur.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(cur.fail(format!("unsupported batch payload version {version}")));
    }
    let retracts = cur.atoms()?;
    let inserts = cur.atoms()?;
    cur.finish()?;
    Ok((retracts, inserts))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Const(sym) => {
            out.push(0);
            push_str(out, &sym.name());
        }
        Term::Null(id) => {
            out.push(1);
            push_u64(out, *id);
        }
        Term::Var(sym) => {
            out.push(2);
            push_str(out, &sym.name());
        }
        Term::Func(sym, args) => {
            out.push(3);
            push_str(out, &sym.name());
            push_u32(out, args.len() as u32);
            for arg in args.iter() {
                push_term(out, arg);
            }
        }
    }
}

fn push_atoms(out: &mut Vec<u8>, atoms: &[Atom]) {
    push_u64(out, atoms.len() as u64);
    for atom in atoms {
        push_str(out, &atom.pred.sym.name());
        push_u32(out, atom.pred.arity as u32);
        for term in &atom.args {
            push_term(out, term);
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn fail(&self, detail: String) -> CodecError {
        CodecError {
            offset: self.pos,
            detail,
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.fail(format!(
                "need {n} bytes, only {} remain",
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()?;
        if len > MAX_STR {
            return Err(self.fail(format!("implausible string length {len}")));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("invalid UTF-8".to_string()))
    }

    fn term(&mut self, depth: usize) -> Result<Term, CodecError> {
        if depth > 64 {
            return Err(self.fail("function term nesting too deep".to_string()));
        }
        let tag = self.take(1)?[0];
        match tag {
            0 => Ok(Term::constant(&self.str()?)),
            1 => Ok(Term::Null(self.u64()?)),
            2 => Ok(Term::var(&self.str()?)),
            3 => {
                let name = self.str()?;
                let argc = self.u32()?;
                if argc > MAX_ARITY {
                    return Err(self.fail(format!("implausible function arity {argc}")));
                }
                let mut args = Vec::with_capacity(argc as usize);
                for _ in 0..argc {
                    args.push(self.term(depth + 1)?);
                }
                Ok(Term::Func(
                    nyaya_core::symbols::intern(&name),
                    args.into_boxed_slice(),
                ))
            }
            other => Err(self.fail(format!("unknown term tag {other}"))),
        }
    }

    fn atoms(&mut self) -> Result<Vec<Atom>, CodecError> {
        let n = self.u64()?;
        // Each atom needs at least a name length + arity: 8 bytes.
        if n > (self.bytes.len() - self.pos) as u64 {
            return Err(self.fail(format!("implausible atom count {n}")));
        }
        let mut atoms = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = self.str()?;
            let arity = self.u32()?;
            if arity > MAX_ARITY {
                return Err(self.fail(format!("implausible arity {arity}")));
            }
            let pred = Predicate::new(&name, arity as usize);
            let mut args = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                args.push(self.term(0)?);
            }
            atoms.push(Atom::new(pred, args));
        }
        Ok(atoms)
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.pos != self.bytes.len() {
            return Err(CodecError {
                offset: self.pos,
                detail: format!(
                    "{} trailing bytes after payload",
                    self.bytes.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(pred: &str, args: &[&str]) -> Atom {
        Atom::new(
            Predicate::new(pred, args.len()),
            args.iter().map(|a| Term::constant(a)).collect(),
        )
    }

    #[test]
    fn database_round_trip() {
        let facts = vec![
            fact("person", &["alice"]),
            fact("person", &["bob"]),
            fact("knows", &["alice", "bob"]),
        ];
        let mut db = Database::from_facts(facts.clone());
        db.insert(Atom::new(
            Predicate::new("tagged", 2),
            vec![Term::constant("alice"), Term::Null(17)],
        ));
        let bytes = encode_database(&db);
        let decoded = decode_database(&bytes).expect("decode");
        assert_eq!(decoded.len(), db.len());
        for f in db.facts() {
            assert!(decoded.contains(&f), "missing {f}");
        }
        // Indexes were rebuilt: posting lookups work on the decoded side.
        let knows = Predicate::new("knows", 2);
        assert_eq!(decoded.posting(knows, 0, &Term::constant("alice")).len(), 1);
    }

    #[test]
    fn batch_round_trip() {
        let retracts = vec![fact("person", &["carol"])];
        let inserts = vec![fact("person", &["dave"]), fact("knows", &["dave", "alice"])];
        let bytes = encode_batch(&retracts, &inserts);
        let (r, i) = decode_batch(&bytes).expect("decode");
        assert_eq!(r, retracts);
        assert_eq!(i, inserts);
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert!(decode_database(b"").is_err());
        assert!(decode_database(&[1, 0, 0, 0]).is_err());
        assert!(decode_batch(&[9, 9, 9, 9, 1]).is_err());
        // A huge declared atom count must not allocate.
        let mut bytes = Vec::new();
        push_u32(&mut bytes, VERSION);
        push_u64(&mut bytes, u64::MAX);
        assert!(decode_batch(&bytes).is_err());
        // Truncating a valid payload anywhere must error, never panic.
        let valid = encode_batch(&[fact("p", &["a"])], &[fact("q", &["b", "c"])]);
        for cut in 0..valid.len() {
            assert!(decode_batch(&valid[..cut]).is_err(), "cut at {cut}");
        }
        // So must flipping any single byte... except inside string bodies
        // (a different constant name is still structurally valid — the CRC
        // layer above catches those).
        let db_bytes = encode_database(&Database::from_facts(vec![fact("p", &["a"])]));
        for cut in 0..db_bytes.len() {
            let _ = decode_database(&db_bytes[..cut]);
        }
    }

    #[test]
    fn segment_bytes_are_insertion_order_independent() {
        let facts = vec![
            fact("knows", &["bob", "alice"]),
            fact("person", &["alice"]),
            fact("knows", &["alice", "bob"]),
            fact("person", &["bob"]),
        ];
        let forward = Database::from_facts(facts.clone());
        let mut reversed_facts = facts;
        reversed_facts.reverse();
        let reversed = Database::from_facts(reversed_facts);
        assert_eq!(encode_database(&forward), encode_database(&reversed));
    }

    #[test]
    fn version_1_payloads_still_decode() {
        // Hand-encode a v1 segment: one table p/1 with a single row "a".
        let mut seg = Vec::new();
        push_u32(&mut seg, 1);
        push_u32(&mut seg, 1);
        push_str(&mut seg, "p");
        push_u32(&mut seg, 1);
        push_u64(&mut seg, 1);
        push_term(&mut seg, &Term::constant("a"));
        let db = decode_database(&seg).expect("v1 segment decodes");
        assert!(db.contains(&fact("p", &["a"])));
        // And a v1 batch: no retracts, one insert.
        let mut batch = Vec::new();
        push_u32(&mut batch, 1);
        push_atoms(&mut batch, &[]);
        push_atoms(&mut batch, &[fact("q", &["b", "c"])]);
        let (r, i) = decode_batch(&batch).expect("v1 batch decodes");
        assert!(r.is_empty());
        assert_eq!(i, vec![fact("q", &["b", "c"])]);
        // Version 4 does not exist yet and must be rejected.
        let mut future = Vec::new();
        push_u32(&mut future, 4);
        push_u32(&mut future, 0);
        assert!(decode_database(&future).is_err());
    }

    #[test]
    fn version_2_payloads_still_decode() {
        // Hand-encode a v2 segment: rows as full terms in canonical row
        // order — one table p/2 with two rows, one holding a null.
        let mut seg = Vec::new();
        push_u32(&mut seg, 2);
        push_u32(&mut seg, 1);
        push_str(&mut seg, "p");
        push_u32(&mut seg, 2);
        push_u64(&mut seg, 2);
        push_term(&mut seg, &Term::constant("a"));
        push_term(&mut seg, &Term::constant("b"));
        push_term(&mut seg, &Term::constant("c"));
        push_term(&mut seg, &Term::Null(7));
        let db = decode_database(&seg).expect("v2 segment decodes");
        assert_eq!(db.len(), 2);
        assert!(db.contains(&fact("p", &["a", "b"])));
        assert!(db.contains(&Atom::new(
            Predicate::new("p", 2),
            vec![Term::constant("c"), Term::Null(7)],
        )));
        // Re-encoding produces a v3 payload with identical contents.
        let rebuilt = decode_database(&encode_database(&db)).expect("v3 re-decode");
        assert_eq!(rebuilt.len(), db.len());
        for f in db.facts() {
            assert!(rebuilt.contains(&f), "missing {f}");
        }
    }

    #[test]
    fn function_terms_and_nulls_survive_the_trip() {
        let f = Atom::new(
            Predicate::new("holds", 2),
            vec![
                Term::Func(
                    nyaya_core::symbols::intern("sk0"),
                    vec![Term::constant("x"), Term::Null(3)].into_boxed_slice(),
                ),
                Term::constant("y"),
            ],
        );
        let bytes = encode_batch(&[], std::slice::from_ref(&f));
        let (_, inserts) = decode_batch(&bytes).expect("decode");
        assert_eq!(inserts, vec![f]);
    }
}
