//! Incremental view maintenance: support-counted materialization and
//! counting delta joins for nonrecursive Datalog programs.
//!
//! A [`MaterializedView`] holds, for every intensional predicate of a
//! delta program, a map from tuple to *support* — the number of (rule,
//! valuation) derivations producing it — plus an indexed [`Database`] of
//! the tuples whose support is positive (the set-level view higher strata
//! join against). [`MaterializedView::propagate`] consumes an update's
//! signed base-fact deltas and runs the program's delta rules level by
//! level:
//!
//! - each delta rule joins its delta atom's changed tuples with the
//!   *new* state to its left and the *old* state to its right
//!   (seminaive), counting every valuation with the delta tuple's sign;
//! - summed signed derivations adjust per-tuple support; support
//!   transitions (0 → positive, positive → 0) become the set-level ±1
//!   deltas fed to the next stratum;
//! - transitions of the goal predicate's tuples that match the goal atom
//!   (its constants and repeated variables) are the answer diff.
//!
//! The initial materialization is the same code path run against an
//! empty "old" state with every base fact as a +1 delta
//! ([`MaterializedView::seed`]), so seeding and maintenance cannot
//! disagree. Base-atom probes reuse the snapshots' persistent
//! [`BuildCache`]s; intensional probes use per-propagation caches over
//! the view overlay (lower strata are final before higher strata read
//! them, so those builds stay valid within a pass).
//!
//! The delta-rule *compiler* lives in `nyaya-rewrite` (next to the
//! program optimizer); this module only evaluates. The mirrored rule
//! types below keep the crate layering acyclic — `nyaya-rewrite`
//! dev-depends on this crate for its differential tests, so this crate
//! cannot depend back on it.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use nyaya_core::{Atom, Predicate, Symbol, Term};

use crate::engine::{Build, BuildCache, Database, PatternKey, Table};

/// One seminaive delta rule, mirrored from the compiler's output:
/// `head :- body`, reacting to changes of `body[delta_idx]`'s relation,
/// evaluated at stratum `level`.
#[derive(Clone, Debug)]
pub struct IvmRule {
    /// Head atom of the originating rule.
    pub head: Atom,
    /// Full body in original order.
    pub body: Vec<Atom>,
    /// Index of the delta atom within `body`.
    pub delta_idx: usize,
    /// Stratum level of the head predicate.
    pub level: usize,
}

/// A delta program in evaluation form.
#[derive(Clone, Debug)]
pub struct IvmProgram {
    /// The goal atom; answers are goal-relation tuples matching it.
    pub goal: Atom,
    /// Number of stratum levels.
    pub levels: usize,
    /// All delta rules, tagged with levels.
    pub rules: Vec<IvmRule>,
    /// Predicates defined by the program (resolved against the view).
    pub intensional: HashSet<Predicate>,
    /// Base predicates read by some rule body.
    pub base: HashSet<Predicate>,
}

/// Signed set-level deltas of base facts, per predicate: `+1` for a fact
/// absent before and present after the update, `-1` for the reverse.
/// Facts whose membership did not change (including a same-batch
/// retract-then-insert) must not appear.
pub type BaseDeltas = HashMap<Predicate, HashMap<Vec<Term>, i64>>;

/// The answer-set change produced by one propagation pass. Both sides
/// are sorted and disjoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnswerDelta {
    /// Tuples whose support became positive.
    pub added: Vec<Vec<Term>>,
    /// Tuples whose support reached zero.
    pub removed: Vec<Vec<Term>>,
}

impl AnswerDelta {
    /// No change?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Counters from one propagation pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IvmMetrics {
    /// Signed derivation events summed into support counts.
    pub derivations: u64,
    /// Delta rules whose delta relation actually changed.
    pub rules_fired: usize,
}

/// A support-counted materialization of one delta program.
pub struct MaterializedView {
    program: IvmProgram,
    /// Per-tuple derivation counts for every intensional predicate.
    counts: HashMap<Predicate, HashMap<Vec<Term>, i64>>,
    /// Indexed set-level view: exactly the tuples with positive support.
    view: Database,
    /// Current answers: goal-relation tuples matching the goal atom.
    answers: BTreeSet<Vec<Term>>,
    /// Metrics accumulated over the view's lifetime.
    metrics: IvmMetrics,
}

/// Where one pipeline atom reads from during a delta join.
struct Sources<'a> {
    old_db: &'a Database,
    old_cache: &'a BuildCache,
    new_db: &'a Database,
    new_cache: &'a BuildCache,
    old_view: &'a Database,
    old_view_cache: &'a BuildCache,
    new_view: &'a Database,
    new_view_cache: &'a BuildCache,
    intensional: &'a HashSet<Predicate>,
}

impl<'a> Sources<'a> {
    fn resolve(&self, pred: Predicate, new_side: bool) -> (&'a Database, &'a BuildCache) {
        match (self.intensional.contains(&pred), new_side) {
            (true, true) => (self.new_view, self.new_view_cache),
            (true, false) => (self.old_view, self.old_view_cache),
            (false, true) => (self.new_db, self.new_cache),
            (false, false) => (self.old_db, self.old_cache),
        }
    }
}

/// Slot classification for one pipeline atom (same roles as the engine's
/// private `Slot`, rebuilt here because delta joins classify against the
/// delta atom's binding rather than a query prefix).
enum DeltaSlot {
    /// Variable already bound: probes with the valuation index it holds.
    Bound(usize),
    /// First occurrence: extends the valuation.
    Fresh,
    /// Repeat of a fresh variable earlier in this atom — enforced by the
    /// build's filter, inert during extension.
    Repeat,
    /// Constant: folded into the build's filter.
    Constant,
}

/// One precompiled pipeline step of a delta rule: the build side is
/// fetched once per propagation and probed per delta tuple.
struct AtomStep<'a> {
    /// The atom's columnar table (`None` when the predicate has no facts
    /// on this side — the build is then empty and the step matches
    /// nothing).
    table: Option<&'a Table>,
    build: Arc<Build>,
    slots: Vec<DeltaSlot>,
    probe_indices: Vec<usize>,
}

/// How one head (or goal) argument projects out of a valuation.
enum Proj {
    Var(usize),
    Const(Term),
}

impl MaterializedView {
    /// An empty view of `program`; call [`seed`](Self::seed) to
    /// materialize it against a database.
    pub fn new(program: IvmProgram) -> Self {
        MaterializedView {
            program,
            counts: HashMap::new(),
            view: Database::new(),
            answers: BTreeSet::new(),
            metrics: IvmMetrics::default(),
        }
    }

    /// The compiled program this view maintains.
    pub fn program(&self) -> &IvmProgram {
        &self.program
    }

    /// Current answer set (tuples of the goal atom's arity).
    pub fn answers(&self) -> &BTreeSet<Vec<Term>> {
        &self.answers
    }

    /// Total supported tuples across all intensional relations.
    pub fn support_size(&self) -> usize {
        self.counts.values().map(HashMap::len).sum()
    }

    /// Lifetime propagation counters.
    pub fn metrics(&self) -> &IvmMetrics {
        &self.metrics
    }

    /// Initial materialization: propagate from the empty state with every
    /// base fact of `db` (restricted to predicates the program reads) as
    /// a +1 delta. Exactly the maintenance code path, so the seed and all
    /// later deltas agree by construction.
    pub fn seed(&mut self, db: &Database, cache: &BuildCache) -> AnswerDelta {
        debug_assert!(self.counts.is_empty(), "seed called on a non-empty view");
        let mut deltas: BaseDeltas = HashMap::new();
        for pred in &self.program.base {
            let mut rows = db.iter_rows(*pred).peekable();
            if rows.peek().is_none() {
                continue;
            }
            let entry = deltas.entry(*pred).or_default();
            for row in rows {
                entry.insert(row, 1);
            }
        }
        let empty_db = Database::new();
        let empty_cache = BuildCache::new();
        self.propagate((&empty_db, &empty_cache), (db, cache), &deltas)
    }

    /// Propagate one update's signed base deltas through the delta rules,
    /// level by level, and return the answer diff. `old` and `new` are
    /// the database states (with their persistent build caches) before
    /// and after the update.
    pub fn propagate(
        &mut self,
        old: (&Database, &BuildCache),
        new: (&Database, &BuildCache),
        base_deltas: &BaseDeltas,
    ) -> AnswerDelta {
        // Set-level deltas visible to rule bodies this pass: base-fact
        // deltas plus, as levels commit, intensional transitions.
        let mut deltas: HashMap<Predicate, HashMap<Vec<Term>, i64>> = HashMap::new();
        for (pred, facts) in base_deltas {
            if !self.program.base.contains(pred) {
                continue;
            }
            let live: HashMap<Vec<Term>, i64> = facts
                .iter()
                .filter(|(_, sign)| **sign != 0)
                .map(|(t, sign)| (t.clone(), *sign))
                .collect();
            if !live.is_empty() {
                deltas.insert(*pred, live);
            }
        }

        // OLD view = the state before this pass; committed level by
        // level, `self.view` becomes NEW. Cloning is O(#predicates)
        // (COW tables). Per-pass caches: lower strata are final before
        // higher strata read them, so builds stay valid within the pass.
        let old_view = self.view.clone();
        let old_view_cache = BuildCache::new();
        let new_view_cache = BuildCache::new();

        let mut diff = AnswerDelta::default();
        let goal_pred = self.program.goal.pred;
        let goal_proj = goal_filter(&self.program.goal);

        for level in 0..self.program.levels {
            // Evaluate every delta rule of this level against the deltas
            // accumulated so far (base + strata below this one).
            let mut head_acc: HashMap<Predicate, HashMap<Vec<Term>, i64>> = HashMap::new();
            for rule in self.program.rules.iter().filter(|r| r.level == level) {
                let dpred = rule.body[rule.delta_idx].pred;
                let Some(dmap) = deltas.get(&dpred) else {
                    continue;
                };
                if dmap.is_empty() {
                    continue;
                }
                let sources = Sources {
                    old_db: old.0,
                    old_cache: old.1,
                    new_db: new.0,
                    new_cache: new.1,
                    old_view: &old_view,
                    old_view_cache: &old_view_cache,
                    new_view: &self.view,
                    new_view_cache: &new_view_cache,
                    intensional: &self.program.intensional,
                };
                let acc = head_acc.entry(rule.head.pred).or_default();
                self.metrics.rules_fired += 1;
                self.metrics.derivations += eval_delta_rule(rule, dmap, &sources, acc);
            }

            // Commit this level's support changes (sorted for
            // determinism) and record set-level transitions for the
            // strata above.
            let mut preds: Vec<Predicate> = head_acc.keys().copied().collect();
            preds.sort();
            for pred in preds {
                let mut changes: Vec<(Vec<Term>, i64)> = head_acc
                    .remove(&pred)
                    .expect("predicate key vanished")
                    .into_iter()
                    .filter(|(_, d)| *d != 0)
                    .collect();
                changes.sort();
                if changes.is_empty() {
                    continue;
                }
                let support = self.counts.entry(pred).or_default();
                for (tuple, d) in changes {
                    let old_support = support.get(&tuple).copied().unwrap_or(0);
                    let new_support = old_support + d;
                    debug_assert!(
                        new_support >= 0,
                        "negative support for {pred:?} tuple {tuple:?}"
                    );
                    if new_support <= 0 {
                        support.remove(&tuple);
                    } else {
                        support.insert(tuple.clone(), new_support);
                    }
                    let was_in = old_support > 0;
                    let is_in = new_support > 0;
                    if was_in == is_in {
                        continue;
                    }
                    let sign = if is_in { 1 } else { -1 };
                    let atom = Atom::new(pred, tuple.clone());
                    if is_in {
                        self.view.insert(atom);
                    } else {
                        self.view.remove(&atom);
                    }
                    if pred == goal_pred && goal_proj.matches(&tuple) {
                        if is_in {
                            self.answers.insert(tuple.clone());
                            diff.added.push(tuple.clone());
                        } else {
                            self.answers.remove(&tuple);
                            diff.removed.push(tuple.clone());
                        }
                    }
                    *deltas.entry(pred).or_default().entry(tuple).or_insert(0) += sign;
                }
            }
        }

        diff.added.sort();
        diff.removed.sort();
        diff
    }
}

/// The goal atom's tuple filter: constant and repeated-variable
/// positions a goal-relation tuple must satisfy to be an answer.
struct GoalFilter {
    consts: Vec<(usize, Term)>,
    repeats: Vec<(usize, usize)>,
}

impl GoalFilter {
    fn matches(&self, tuple: &[Term]) -> bool {
        self.consts.iter().all(|(j, t)| &tuple[*j] == t)
            && self.repeats.iter().all(|(j, k)| tuple[*j] == tuple[*k])
    }
}

fn goal_filter(goal: &Atom) -> GoalFilter {
    let mut first: HashMap<Symbol, usize> = HashMap::new();
    let mut consts = Vec::new();
    let mut repeats = Vec::new();
    for (j, t) in goal.args.iter().enumerate() {
        match t {
            Term::Var(v) => match first.get(v) {
                Some(&k) => repeats.push((j, k)),
                None => {
                    first.insert(*v, j);
                }
            },
            other => consts.push((j, other.clone())),
        }
    }
    GoalFilter { consts, repeats }
}

/// Evaluate one delta rule over its delta relation's changed tuples,
/// adding each valuation's signed contribution to `acc` (keyed by head
/// tuple). Returns the number of derivation events.
fn eval_delta_rule(
    rule: &IvmRule,
    dmap: &HashMap<Vec<Term>, i64>,
    sources: &Sources<'_>,
    acc: &mut HashMap<Vec<Term>, i64>,
) -> u64 {
    let datom = &rule.body[rule.delta_idx];

    // Bind the delta atom: first variable occurrences become valuation
    // slots; constants and repeats become per-tuple checks.
    let mut var_index: HashMap<Symbol, usize> = HashMap::new();
    let mut bind_slots: Vec<DeltaSlot> = Vec::with_capacity(datom.args.len());
    for t in &datom.args {
        match t {
            Term::Var(v) => {
                if let Some(&i) = var_index.get(v) {
                    bind_slots.push(DeltaSlot::Bound(i));
                } else {
                    var_index.insert(*v, var_index.len());
                    bind_slots.push(DeltaSlot::Fresh);
                }
            }
            _ => bind_slots.push(DeltaSlot::Constant),
        }
    }

    // Order the remaining atoms greedily by bound-argument count — the
    // same "bound first" heuristic as the CQ planner, reduced to what is
    // known statically (which variables the prefix binds).
    let mut bound_vars: HashSet<Symbol> = var_index.keys().copied().collect();
    let mut remaining: Vec<usize> = (0..rule.body.len())
        .filter(|&j| j != rule.delta_idx)
        .collect();
    let mut order: Vec<usize> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &j)| {
                let atom = &rule.body[j];
                let bound = atom
                    .args
                    .iter()
                    .filter(|t| match t {
                        Term::Var(v) => bound_vars.contains(v),
                        _ => true,
                    })
                    .count();
                // Prefer more bound positions; tie-break toward original
                // order (stable via reverse index).
                (bound, usize::MAX - j)
            })
            .expect("remaining is non-empty");
        order.push(best);
        for v in rule.body[best].variables() {
            bound_vars.insert(v);
        }
        remaining.remove(pos);
    }

    // Precompile each pipeline step: classify slots against the evolving
    // variable index, derive the pattern, and fetch its build side once.
    let mut steps: Vec<AtomStep<'_>> = Vec::with_capacity(order.len());
    for &j in &order {
        let atom = &rule.body[j];
        let new_side = j < rule.delta_idx;
        let (db, cache) = sources.resolve(atom.pred, new_side);
        let mut slots: Vec<DeltaSlot> = Vec::with_capacity(atom.args.len());
        let mut fresh_positions: HashMap<Symbol, usize> = HashMap::new();
        let mut key_cols: Vec<usize> = Vec::new();
        let mut probe_indices: Vec<usize> = Vec::new();
        let mut consts: Vec<(usize, Term)> = Vec::new();
        let mut repeats: Vec<(usize, usize)> = Vec::new();
        for (col, t) in atom.args.iter().enumerate() {
            match t {
                Term::Var(v) => {
                    if let Some(&idx) = var_index.get(v) {
                        slots.push(DeltaSlot::Bound(idx));
                        key_cols.push(col);
                        probe_indices.push(idx);
                    } else if let Some(&k) = fresh_positions.get(v) {
                        slots.push(DeltaSlot::Repeat);
                        repeats.push((col, k));
                    } else {
                        fresh_positions.insert(*v, col);
                        slots.push(DeltaSlot::Fresh);
                    }
                }
                other => {
                    slots.push(DeltaSlot::Constant);
                    consts.push((col, other.clone()));
                }
            }
        }
        let mut fresh_sorted: Vec<(usize, Symbol)> =
            fresh_positions.iter().map(|(v, c)| (*c, *v)).collect();
        fresh_sorted.sort_unstable();
        for (_, v) in fresh_sorted {
            let idx = var_index.len();
            var_index.insert(v, idx);
        }
        let pattern = PatternKey::make(atom.pred, key_cols, consts, repeats);
        let (build, _) = cache.get_or_build(db, &pattern);
        steps.push(AtomStep {
            table: db.table(atom.pred),
            build,
            slots,
            probe_indices,
        });
    }

    // Head projection out of a complete valuation.
    let head_proj: Vec<Proj> = rule
        .head
        .args
        .iter()
        .map(|t| match t {
            Term::Var(v) => Proj::Var(var_index[v]),
            other => Proj::Const(other.clone()),
        })
        .collect();

    // Drive every changed tuple of the delta relation through the steps,
    // counting valuations (no dedup — multiplicity is the point).
    let mut events = 0u64;
    let mut dtuples: Vec<(&Vec<Term>, i64)> = dmap.iter().map(|(t, s)| (t, *s)).collect();
    dtuples.sort();
    'tuples: for (tuple, sign) in dtuples {
        if sign == 0 {
            continue;
        }
        let mut binding: Vec<Term> = Vec::with_capacity(var_index.len());
        for (j, slot) in bind_slots.iter().enumerate() {
            match slot {
                DeltaSlot::Fresh => binding.push(tuple[j].clone()),
                DeltaSlot::Bound(i) => {
                    if binding[*i] != tuple[j] {
                        continue 'tuples;
                    }
                }
                DeltaSlot::Constant => {
                    if datom.args[j] != tuple[j] {
                        continue 'tuples;
                    }
                }
                DeltaSlot::Repeat => unreachable!("delta binding uses Bound for repeats"),
            }
        }

        let mut current: Vec<Vec<Term>> = vec![binding];
        for step in &steps {
            if current.is_empty() {
                break;
            }
            let mut next: Vec<Vec<Term>> = Vec::new();
            if let Some(table) = step.table {
                let mut key_buf: Vec<u32> = Vec::with_capacity(step.probe_indices.len());
                'vals: for val in &current {
                    key_buf.clear();
                    for &idx in &step.probe_indices {
                        match table.cell_of(&val[idx]) {
                            Some(c) => key_buf.push(c),
                            // A probe value the table never stored joins
                            // with nothing.
                            None => continue 'vals,
                        }
                    }
                    for &id in step.build.group_cells(&key_buf) {
                        let mut extended = val.clone();
                        for (col, slot) in step.slots.iter().enumerate() {
                            if let DeltaSlot::Fresh = slot {
                                extended.push(table.term_at(id, col));
                            }
                        }
                        next.push(extended);
                    }
                }
            }
            current = next;
        }

        for val in current {
            let head_tuple: Vec<Term> = head_proj
                .iter()
                .map(|p| match p {
                    Proj::Var(i) => val[*i].clone(),
                    Proj::Const(t) => t.clone(),
                })
                .collect();
            *acc.entry(head_tuple).or_insert(0) += sign;
            events += 1;
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;

    fn program() -> IvmProgram {
        // goal: q(X,Y).
        //   q(X,Y) :- top(X), edge(X,Y), top(Y).   (level 1)
        //   top(X) :- c1(X).  top(X) :- c2(X).     (level 0)
        let q_rule = (
            Atom::make("q", ["X", "Y"]),
            vec![
                Atom::make("top", ["X"]),
                Atom::make("edge", ["X", "Y"]),
                Atom::make("top", ["Y"]),
            ],
            1,
        );
        let t1 = (Atom::make("top", ["X"]), vec![Atom::make("c1", ["X"])], 0);
        let t2 = (Atom::make("top", ["X"]), vec![Atom::make("c2", ["X"])], 0);
        let mut rules = Vec::new();
        for (head, body, level) in [q_rule, t1, t2] {
            for delta_idx in 0..body.len() {
                rules.push(IvmRule {
                    head: head.clone(),
                    body: body.clone(),
                    delta_idx,
                    level,
                });
            }
        }
        let intensional: HashSet<Predicate> =
            [Predicate::new("q", 2), Predicate::new("top", 1)].into();
        let base: HashSet<Predicate> = [
            Predicate::new("c1", 1),
            Predicate::new("c2", 1),
            Predicate::new("edge", 2),
        ]
        .into();
        IvmProgram {
            goal: Atom::make("q", ["X", "Y"]),
            levels: 2,
            rules,
            intensional,
            base,
        }
    }

    fn facts(names: &[(&str, &[&str])]) -> Database {
        Database::from_facts(names.iter().map(|(p, args)| {
            Atom::new(
                Predicate::new(p, args.len()),
                args.iter().map(|a| Term::constant(a)).collect(),
            )
        }))
    }

    fn delta(pred: &str, args: &[&str], sign: i64) -> BaseDeltas {
        let mut d = BaseDeltas::new();
        d.entry(Predicate::new(pred, args.len()))
            .or_default()
            .insert(args.iter().map(|a| Term::constant(a)).collect(), sign);
        d
    }

    fn tup(args: &[&str]) -> Vec<Term> {
        args.iter().map(|a| Term::constant(a)).collect()
    }

    #[test]
    fn seed_then_insert_then_retract() {
        let db = facts(&[
            ("c1", &["a"]),
            ("c2", &["b"]),
            ("edge", &["a", "b"]),
            ("edge", &["b", "a"]),
        ]);
        let cache = BuildCache::new();
        let mut view = MaterializedView::new(program());
        let diff = view.seed(&db, &cache);
        assert_eq!(diff.added, vec![tup(&["a", "b"]), tup(&["b", "a"])]);
        assert!(diff.removed.is_empty());

        // Insert c1(b): b now reachable through two classes — support
        // rises but the answer set is unchanged.
        let mut db2 = db.clone();
        db2.insert(Atom::make("c1", ["b"]));
        let cache2 = BuildCache::new();
        let diff = view.propagate((&db, &cache), (&db2, &cache2), &delta("c1", &["b"], 1));
        assert!(diff.is_empty(), "support-only change must not diff");

        // Retract c2(b): still supported via c1(b) — no change.
        let mut db3 = db2.clone();
        db3.remove(&Atom::make("c2", ["b"]));
        let cache3 = BuildCache::new();
        let diff = view.propagate((&db2, &cache2), (&db3, &cache3), &delta("c2", &["b"], -1));
        assert!(diff.is_empty(), "counting maintenance keeps b supported");

        // Retract c1(b): b loses top membership; both answers vanish.
        let mut db4 = db3.clone();
        db4.remove(&Atom::make("c1", ["b"]));
        let cache4 = BuildCache::new();
        let diff = view.propagate((&db3, &cache3), (&db4, &cache4), &delta("c1", &["b"], -1));
        assert!(diff.added.is_empty());
        assert_eq!(diff.removed, vec![tup(&["a", "b"]), tup(&["b", "a"])]);
        assert!(view.answers().is_empty());
    }

    #[test]
    fn goal_constants_and_repeats_filter_answers() {
        // goal q(X, X): only self-loops are answers.
        let mut p = program();
        p.goal = Atom::make("q", ["X", "X"]);
        let db = facts(&[
            ("c1", &["a"]),
            ("c1", &["b"]),
            ("edge", &["a", "a"]),
            ("edge", &["a", "b"]),
        ]);
        let cache = BuildCache::new();
        let mut view = MaterializedView::new(p);
        let diff = view.seed(&db, &cache);
        assert_eq!(diff.added, vec![tup(&["a", "a"])]);
    }

    #[test]
    fn seed_matches_incremental_arrival() {
        // Materializing everything at once equals arriving fact by fact.
        let all = [
            ("c1", vec!["a"]),
            ("c2", vec!["b"]),
            ("c1", vec!["c"]),
            ("edge", vec!["a", "b"]),
            ("edge", vec!["b", "c"]),
            ("edge", vec!["c", "a"]),
        ];
        let full_db = Database::from_facts(all.iter().map(|(p, args)| {
            Atom::new(
                Predicate::new(p, args.len()),
                args.iter().map(|a| Term::constant(a)).collect(),
            )
        }));
        let cache = BuildCache::new();
        let mut seeded = MaterializedView::new(program());
        seeded.seed(&full_db, &cache);

        let mut incremental = MaterializedView::new(program());
        let mut db = Database::new();
        incremental.seed(&db, &BuildCache::new());
        for (p, args) in &all {
            let atom = Atom::new(
                Predicate::new(p, args.len()),
                args.iter().map(|a| Term::constant(a)).collect(),
            );
            let mut next = db.clone();
            next.insert(atom.clone());
            let mut d = BaseDeltas::new();
            d.entry(atom.pred).or_default().insert(atom.args.clone(), 1);
            incremental.propagate((&db, &BuildCache::new()), (&next, &BuildCache::new()), &d);
            db = next;
        }
        assert_eq!(seeded.answers(), incremental.answers());
        assert_eq!(seeded.support_size(), incremental.support_size());
    }
}
