//! Bottom-up evaluation of non-recursive Datalog programs, and their
//! translation to SQL.
//!
//! Section 2 contrasts UCQ rewritings with the non-recursive Datalog
//! programs of Presto: the program avoids materializing the disjunctive
//! normal form. This module is the execution-side counterpart, built on
//! the same indexed machinery as UCQ execution:
//!
//! - intensional predicates are materialized **stratum by stratum**
//!   ([`DatalogProgram::strata`]), the rules of one stratum across worker
//!   threads, each rule through the planned, indexed join pipeline;
//! - derived tuples live in an **overlay database layered over the base**
//!   (the engine's layered `DataSource`) — the pinned snapshot is never
//!   cloned or written, and base-atom build sides are served from (and
//!   left behind in) the caller's persistent [`BuildCache`];
//! - SQL emission produces one `WITH`-CTE per intensional predicate with
//!   a goal `SELECT` joining them ([`program_to_sql`]), so the program
//!   ships to a DBMS without unfolding into the flat UCQ text.
//!
//! Failure modes (recursive program, unsafe rule, unregistered predicate,
//! untranslatable term) are typed [`ProgramError`]s, not panics.

use std::collections::{BTreeSet, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use nyaya_core::{Atom, ConjunctiveQuery, DatalogProgram, DatalogRule, Predicate, Term};

use crate::catalog::Catalog;
use crate::engine::{BuildCache, CacheTally, DataSource, Database};
use crate::plan::plan_cq_cost_with;
use crate::translate::{cq_to_sql, sql_ident};

/// Why a Datalog program could not be evaluated or translated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The defined-predicate dependency graph has a cycle; bottom-up
    /// stratified evaluation is undefined. The rewriters never produce
    /// recursive programs — this guards hand-constructed ones.
    Recursive,
    /// A rule is not range-restricted (some head variable never occurs in
    /// the body), so its derived tuples would be unbounded.
    UnsafeRule {
        /// The offending rule, rendered in Datalog syntax.
        rule: String,
    },
    /// SQL translation met a base predicate with no table in the catalog.
    UnregisteredPredicate {
        /// The predicate with no registered table.
        predicate: String,
    },
    /// A rule contains terms SQL cannot express (labeled nulls or function
    /// terms).
    Untranslatable {
        /// The offending rule, rendered in Datalog syntax.
        rule: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Recursive => {
                write!(
                    f,
                    "program is recursive; bottom-up evaluation requires a stratification"
                )
            }
            ProgramError::UnsafeRule { rule } => {
                write!(f, "unsafe rule (head variable unbound by the body): {rule}")
            }
            ProgramError::UnregisteredPredicate { predicate } => {
                write!(f, "predicate `{predicate}` has no registered table")
            }
            ProgramError::Untranslatable { rule } => {
                write!(f, "rule contains terms SQL cannot express: {rule}")
            }
        }
    }
}

impl Error for ProgramError {}

/// Counters from one program execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramMetrics {
    /// Rules evaluated (every rule of the program).
    pub rules: usize,
    /// Stratum levels the materialization ran in.
    pub strata: usize,
    /// Intensional tuples materialized into the overlay (goal included).
    pub materialized_tuples: usize,
    /// Answer tuples returned.
    pub rows: usize,
    /// Worker threads actually used (1 = sequential).
    pub threads: usize,
    /// Build sides served from a cache (base or overlay).
    pub build_cache_hits: u64,
    /// Build sides constructed.
    pub build_cache_misses: u64,
    /// Merge-join steps executed through the sorted indexes (base tables
    /// and overlay tables both maintain them).
    pub merge_joins: u64,
    /// Probe morsels the join kernels drove (see
    /// [`ExecMetrics::morsel_tasks`](crate::ExecMetrics::morsel_tasks)).
    pub morsel_tasks: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Validate a program for bottom-up evaluation: a stratification must
/// exist and every rule must be safe.
fn validated_strata(program: &DatalogProgram) -> Result<Vec<Vec<Predicate>>, ProgramError> {
    let strata = program.strata().ok_or(ProgramError::Recursive)?;
    for rule in &program.rules {
        if !rule.is_safe() {
            return Err(ProgramError::UnsafeRule {
                rule: rule.to_string(),
            });
        }
    }
    Ok(strata)
}

/// Evaluate a non-recursive Datalog program bottom-up over `db`.
///
/// Sequential convenience wrapper over [`execute_program_shared`] with a
/// private build cache.
pub fn execute_program(
    db: &Database,
    program: &DatalogProgram,
) -> Result<BTreeSet<Vec<Term>>, ProgramError> {
    execute_program_shared(db, program, 1, &BuildCache::new()).map(|(tuples, _)| tuples)
}

/// Evaluate a non-recursive Datalog program bottom-up over `base`,
/// layering the derived intensional tables in an overlay — the base is
/// never cloned or written, so program evaluation shares the pinned
/// snapshot like any other reader.
///
/// Strata are materialized in dependency order; within one stratum the
/// rules are independent (a stratification never puts a predicate in the
/// same level as one it reads) and run across up to `threads` workers.
/// Base-atom build sides are served from the caller's `base_cache` —
/// typically a snapshot's persistent cache, shared with UCQ executions —
/// while overlay atoms use a private per-run cache (derived tables exist
/// only for the duration of this call).
pub fn execute_program_shared(
    base: &Database,
    program: &DatalogProgram,
    threads: usize,
    base_cache: &BuildCache,
) -> Result<(BTreeSet<Vec<Term>>, ProgramMetrics), ProgramError> {
    let start = Instant::now();
    let strata = validated_strata(program)?;
    let intensional = program.defined_predicates();
    let mut metrics = ProgramMetrics {
        rules: program.rules.len(),
        strata: strata.len(),
        threads: 1,
        ..ProgramMetrics::default()
    };
    if !intensional.contains(&program.goal.pred) {
        // Unsatisfiable program: no rule ever derives the goal.
        metrics.elapsed = start.elapsed();
        return Ok((BTreeSet::new(), metrics));
    }

    let overlay_cache = BuildCache::new();
    let tally = CacheTally::default();
    let mut overlay = Database::new();
    let threads = threads.max(1);

    for level in &strata {
        // The overlay is frozen for the duration of one stratum: rules of
        // this level only read strictly lower levels (and the base), so
        // evaluating them concurrently against the same view is sound and
        // deterministic.
        let rules: Vec<(usize, &DatalogRule)> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| level.binary_search(&r.head.pred).is_ok())
            .collect();
        let src = DataSource::Layered {
            base,
            base_cache,
            overlay: &overlay,
            overlay_cache: &overlay_cache,
            intensional: &intensional,
        };
        let run_rule = |rule: &DatalogRule| -> BTreeSet<Vec<Term>> {
            let q = ConjunctiveQuery::new(rule.head.args.clone(), rule.body.clone());
            let plan = plan_cq_cost_with(
                &q,
                |pred| {
                    let (db, _) = src.resolve(pred);
                    (
                        db.table_len(pred),
                        (0..pred.arity)
                            .map(|j| db.distinct(pred, j).max(1))
                            .collect(),
                    )
                },
                1.0,
            );
            crate::engine::execute_cq_ordered(&src, &q, &plan.order, Some(&plan.ops), &tally)
        };
        let workers = threads.min(rules.len()).max(1);
        let results: Vec<(usize, Predicate, BTreeSet<Vec<Term>>)> = if workers <= 1 {
            rules
                .iter()
                .map(|(i, rule)| (*i, rule.head.pred, run_rule(rule)))
                .collect()
        } else {
            metrics.threads = metrics.threads.max(workers);
            let chunk = rules.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let run_rule = &run_rule;
                let handles: Vec<_> = rules
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|(i, rule)| (*i, rule.head.pred, run_rule(rule)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("program worker panicked"))
                    .collect()
            })
        };
        // Merge in rule order (the spawn order above preserves it), so the
        // overlay's row numbering — and therefore every downstream join —
        // is identical whether one worker materialized the stratum or many.
        for (_, pred, rows) in results {
            for row in rows {
                if overlay.insert(Atom::new(pred, row)) {
                    metrics.materialized_tuples += 1;
                }
            }
        }
    }

    // The goal answers are the goal predicate's derived table, projected
    // through the goal atom (which may repeat variables or hold constants).
    let goal_q = ConjunctiveQuery::new(program.goal.args.clone(), vec![program.goal.clone()]);
    let src = DataSource::Layered {
        base,
        base_cache,
        overlay: &overlay,
        overlay_cache: &overlay_cache,
        intensional: &intensional,
    };
    let answers = crate::engine::execute_cq_ordered(&src, &goal_q, &[0], None, &tally);
    metrics.rows = answers.len();
    metrics.build_cache_hits = tally.hits.load(Ordering::Relaxed);
    metrics.build_cache_misses = tally.misses.load(Ordering::Relaxed);
    metrics.merge_joins = tally.merges.load(Ordering::Relaxed);
    metrics.morsel_tasks = tally.morsels.load(Ordering::Relaxed);
    metrics.elapsed = start.elapsed();
    Ok((answers, metrics))
}

/// Evaluate a program and shape its goal answers with [`SelectOptions`](nyaya_core::select::SelectOptions)
/// (filters, ORDER BY / LIMIT, aggregates) — the program-executor
/// counterpart of [`execute_ucq_select`](crate::engine::execute_ucq_select).
/// The shaping follows the reference semantics
/// ([`nyaya_core::apply_select`]) over the materialized goal answers;
/// modifier columns refer to goal-head positions, which rewriting into a
/// program preserves. Invalid column indices are a typed
/// [`ProgramSelectError::InvalidSelect`].
#[allow(clippy::type_complexity)]
pub fn execute_program_select(
    base: &Database,
    program: &DatalogProgram,
    sel: &nyaya_core::SelectOptions,
    threads: usize,
    base_cache: &BuildCache,
) -> Result<(Vec<Vec<Term>>, ProgramMetrics), ProgramSelectError> {
    let head_arity = program.goal.args.len();
    sel.validate(head_arity)
        .map_err(ProgramSelectError::InvalidSelect)?;
    let (answers, mut metrics) = execute_program_shared(base, program, threads, base_cache)
        .map_err(ProgramSelectError::Program)?;
    let rows = nyaya_core::apply_select(answers, sel);
    metrics.rows = rows.len();
    Ok((rows, metrics))
}

/// Why a shaped program execution failed: either the select options are
/// invalid for the goal arity, or the program itself could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramSelectError {
    /// The [`SelectOptions`](nyaya_core::SelectOptions) reference columns
    /// outside the goal head.
    InvalidSelect(String),
    /// Program evaluation failed.
    Program(ProgramError),
}

impl fmt::Display for ProgramSelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramSelectError::InvalidSelect(detail) => {
                write!(f, "invalid select options: {detail}")
            }
            ProgramSelectError::Program(e) => e.fmt(f),
        }
    }
}

impl Error for ProgramSelectError {}

/// Pre-flight for SQL emission: reject rules with terms SQL cannot
/// express, and name the first unregistered base predicate.
fn check_translatable(
    program: &DatalogProgram,
    catalog: &Catalog,
    intensional: &HashSet<Predicate>,
) -> Result<(), ProgramError> {
    for rule in &program.rules {
        let has_bad_term = rule
            .body
            .iter()
            .chain(std::iter::once(&rule.head))
            .flat_map(|a| a.args.iter())
            .any(|t| matches!(t, Term::Null(_) | Term::Func(..)));
        if has_bad_term {
            return Err(ProgramError::Untranslatable {
                rule: rule.to_string(),
            });
        }
        for atom in &rule.body {
            if !intensional.contains(&atom.pred) && catalog.table(atom.pred).is_none() {
                return Err(ProgramError::UnregisteredPredicate {
                    predicate: atom.pred.to_string(),
                });
            }
        }
    }
    Ok(())
}

/// A scratch catalog extending `catalog` with one table schema per
/// intensional predicate (columns `a1..an`, matching the `SELECT … AS a{i}`
/// aliases [`cq_to_sql`] emits), so rules over intensional predicates
/// translate like any other.
fn extended_catalog(catalog: &Catalog, order: &[Predicate]) -> Catalog {
    let mut cat = catalog.clone();
    for p in order {
        let columns = (0..p.arity).map(|i| format!("a{}", i + 1)).collect();
        cat.register(*p, &format!("{}", p.sym), columns);
    }
    cat
}

/// The `SELECT` blocks of one defined predicate's rules, joined with
/// `UNION` (set semantics — bottom-up materialization deduplicates).
fn predicate_union(
    program: &DatalogProgram,
    p: Predicate,
    cat: &Catalog,
) -> Result<String, ProgramError> {
    let branches: Vec<String> = program
        .rules
        .iter()
        .filter(|r| r.head.pred == p)
        .map(|rule| {
            let q = ConjunctiveQuery::new(rule.head.args.clone(), rule.body.clone());
            cq_to_sql(&q, cat).ok_or_else(|| ProgramError::Untranslatable {
                rule: rule.to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    if branches.is_empty() {
        // A defined predicate can lose every rule to the optimizer's
        // dead-rule pass only if it is itself dead; emit the empty relation
        // for robustness against hand-built programs.
        let cols: Vec<String> = (1..=p.arity).map(|i| format!("NULL AS a{i}")).collect();
        return Ok(format!("SELECT {} WHERE 1 = 0", cols.join(", ")));
    }
    Ok(branches.join("\nUNION\n"))
}

/// Translate a non-recursive Datalog program into a single SQL statement:
/// one `WITH`-CTE per non-goal intensional predicate (in dependency
/// order), with the goal rules as the final `SELECT` joining them — the
/// program-shaped alternative to unfolding into the flat UCQ `UNION` text.
pub fn program_to_sql(program: &DatalogProgram, catalog: &Catalog) -> Result<String, ProgramError> {
    let (ctes, goal_select) = program_sql_parts(program, catalog)?;
    if ctes.is_empty() {
        return Ok(goal_select);
    }
    Ok(format!("WITH {}\n{goal_select}", ctes.join(",\n")))
}

/// Translate a program plus result modifiers into SQL: the `WITH` prologue
/// stays first (SQL requires it at statement start) and only the goal
/// union is wrapped by [`select_to_sql`](crate::translate::select_to_sql),
/// so filters, `ORDER BY`/`LIMIT` and aggregates apply to the goal answers
/// exactly as [`execute_program_select`] computes them.
pub fn program_to_sql_select(
    program: &DatalogProgram,
    catalog: &Catalog,
    sel: &nyaya_core::SelectOptions,
) -> Result<String, ProgramSelectError> {
    sel.validate(program.goal.args.len())
        .map_err(ProgramSelectError::InvalidSelect)?;
    let (ctes, goal_select) =
        program_sql_parts(program, catalog).map_err(ProgramSelectError::Program)?;
    let wrapped = crate::translate::select_to_sql(&goal_select, sel);
    if ctes.is_empty() {
        return Ok(wrapped);
    }
    Ok(format!("WITH {}\n{wrapped}", ctes.join(",\n")))
}

/// Shared translation core: the CTE definitions (one per non-goal
/// intensional predicate, dependency order) and the goal union. Both are
/// statement *fragments* like [`cq_to_sql`] output — no trailing
/// semicolon, so callers embed or terminate them uniformly.
fn program_sql_parts(
    program: &DatalogProgram,
    catalog: &Catalog,
) -> Result<(Vec<String>, String), ProgramError> {
    let _ = validated_strata(program)?;
    let order = program
        .stratum_order()
        .expect("validated_strata checked acyclicity");
    let intensional = program.defined_predicates();
    if !intensional.contains(&program.goal.pred) {
        return Ok((Vec::new(), "SELECT NULL WHERE 1 = 0".to_owned()));
    }
    check_translatable(program, catalog, &intensional)?;
    let cat = extended_catalog(catalog, &order);
    let mut ctes: Vec<String> = Vec::new();
    for p in order.iter().filter(|p| **p != program.goal.pred) {
        let columns: Vec<String> = (1..=p.arity).map(|i| format!("a{i}")).collect();
        let body = predicate_union(program, *p, &cat)?;
        let name = sql_ident(&cat.table(*p).expect("registered above").name);
        ctes.push(format!("{name}({}) AS (\n{body}\n)", columns.join(", ")));
    }
    let goal_select = predicate_union(program, program.goal.pred, &cat)?;
    Ok((ctes, goal_select))
}

/// Translate a non-recursive Datalog program into SQL `CREATE VIEW`
/// statements, one view per intensional predicate (rule bodies become
/// `UNION` branches), ending with a `SELECT` from the goal view — for
/// DBMSs where installing views beats shipping one large statement.
pub fn program_to_sql_views(
    program: &DatalogProgram,
    catalog: &Catalog,
) -> Result<String, ProgramError> {
    let _ = validated_strata(program)?;
    let order = program
        .stratum_order()
        .expect("validated_strata checked acyclicity");
    let intensional = program.defined_predicates();
    if !intensional.contains(&program.goal.pred) {
        return Ok("SELECT NULL WHERE 1 = 0; -- unsatisfiable".to_owned());
    }
    check_translatable(program, catalog, &intensional)?;
    let cat = extended_catalog(catalog, &order);
    let mut out = String::new();
    for p in order {
        let body = predicate_union(program, p, &cat)?;
        let name = sql_ident(&cat.table(p).expect("registered above").name);
        out.push_str(&format!("CREATE VIEW {name} AS\n{body};\n\n"));
    }
    out.push_str(&format!(
        "SELECT * FROM {};\n",
        sql_ident(&cat.table(program.goal.pred).expect("goal is defined").name)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_ucq;

    fn atom(p: &str, args: &[&str]) -> Atom {
        let terms: Vec<Term> = args
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        Atom::new(Predicate::new(p, terms.len()), terms)
    }

    fn sample_program() -> DatalogProgram {
        // q(X) :- d1(X,Y), d2(Y);  d1 = r ∪ s;  d2 = t ∪ u.
        DatalogProgram::new(
            atom("ans", &["X"]),
            vec![
                DatalogRule::new(
                    atom("ans", &["X"]),
                    vec![atom("d1", &["X", "Y"]), atom("d2", &["Y"])],
                ),
                DatalogRule::new(atom("d1", &["X", "Y"]), vec![atom("r", &["X", "Y"])]),
                DatalogRule::new(atom("d1", &["X", "Y"]), vec![atom("s", &["X", "Y"])]),
                DatalogRule::new(atom("d2", &["Y"]), vec![atom("t", &["Y"])]),
                DatalogRule::new(atom("d2", &["Y"]), vec![atom("u", &["Y"])]),
            ],
        )
    }

    fn sample_db() -> Database {
        Database::from_facts([
            Atom::make("r", ["a", "b"]),
            Atom::make("s", ["c", "d"]),
            Atom::make("t", ["b"]),
            Atom::make("u", ["e"]),
        ])
    }

    #[test]
    fn program_evaluation_matches_expansion() {
        let program = sample_program();
        let db = sample_db();
        let direct = execute_program(&db, &program).unwrap();
        let expanded = execute_ucq(&db, &program.expand());
        assert_eq!(direct, expanded);
        assert_eq!(direct.len(), 1); // only r(a,b) joins t(b)
        assert!(direct.contains(&vec![Term::constant("a")]));
    }

    #[test]
    fn evaluation_never_copies_the_base_database() {
        let db = sample_db();
        let before = db.len();
        let reference = db.clone();
        let _ = execute_program(&db, &sample_program()).unwrap();
        assert_eq!(db.len(), before, "input database must stay untouched");
        // Stronger than "same length": the base tables are still the very
        // same Arcs — evaluation never triggered a copy-on-write.
        for pred in reference.predicates() {
            assert!(
                db.shares_table(&reference, pred),
                "{pred:?} was copied during program evaluation"
            );
        }
    }

    #[test]
    fn parallel_strata_match_sequential_and_share_the_base_cache() {
        let program = sample_program();
        let db = sample_db();
        let cache = BuildCache::new();
        let (seq, m1) = execute_program_shared(&db, &program, 1, &cache).unwrap();
        let (par, m4) = execute_program_shared(&db, &program, 4, &cache).unwrap();
        assert_eq!(seq, par);
        assert!(m4.threads > 1, "{m4:?}");
        assert_eq!(m1.strata, 2);
        assert_eq!(m1.rules, 5);
        assert_eq!(m1.materialized_tuples, 5); // d1: 2, d2: 2, ans: 1
                                               // The second run reuses the base-atom build sides left in `cache`.
        assert!(m4.build_cache_hits > 0, "{m4:?}");
    }

    #[test]
    fn unsatisfiable_program_yields_no_answers() {
        let program = DatalogProgram::unsatisfiable(atom("ans", &["X"]));
        assert!(execute_program(&sample_db(), &program).unwrap().is_empty());
    }

    #[test]
    fn recursive_program_is_a_typed_error() {
        let program = DatalogProgram::new(
            atom("p", &["X"]),
            vec![
                DatalogRule::new(atom("p", &["X"]), vec![atom("p0", &["X"])]),
                DatalogRule::new(atom("p0", &["X"]), vec![atom("p", &["X"])]),
            ],
        );
        assert_eq!(
            execute_program(&sample_db(), &program).unwrap_err(),
            ProgramError::Recursive
        );
        assert_eq!(
            program_to_sql(&program, &Catalog::new()).unwrap_err(),
            ProgramError::Recursive
        );
    }

    #[test]
    fn unsafe_rule_is_a_typed_error() {
        // Head variable Z never occurs in the body.
        let program = DatalogProgram::new(
            atom("p", &["Z"]),
            vec![DatalogRule::new(atom("p", &["Z"]), vec![atom("t", &["X"])])],
        );
        match execute_program(&sample_db(), &program) {
            Err(ProgramError::UnsafeRule { rule }) => assert!(rule.contains("p(Z)"), "{rule}"),
            other => panic!("expected UnsafeRule, got {other:?}"),
        }
    }

    #[test]
    fn unregistered_predicate_is_named_not_silently_none() {
        let program = sample_program();
        let mut catalog = Catalog::new();
        // r/2 registered, s/2 (and t, u) missing.
        catalog.register_defaults([Predicate::new("r", 2)]);
        match program_to_sql(&program, &catalog) {
            Err(ProgramError::UnregisteredPredicate { predicate }) => {
                assert!(["s", "t", "u"].contains(&predicate.as_str()), "{predicate}")
            }
            other => panic!("expected UnregisteredPredicate, got {other:?}"),
        }
    }

    #[test]
    fn untranslatable_terms_are_a_typed_error() {
        // A labeled null in a rule body: SQL has no spelling for it. The
        // Boolean head keeps the rule safe, isolating the error path.
        let program = DatalogProgram::new(
            atom("p", &[]),
            vec![DatalogRule::new(
                atom("p", &[]),
                vec![Atom::new(Predicate::new("t", 1), vec![Term::Null(1)])],
            )],
        );
        let mut catalog = Catalog::new();
        catalog.register_defaults([Predicate::new("t", 1)]);
        match program_to_sql(&program, &catalog) {
            Err(ProgramError::Untranslatable { rule }) => assert!(rule.contains("t("), "{rule}"),
            other => panic!("expected Untranslatable, got {other:?}"),
        }
    }

    #[test]
    fn goal_with_constant_argument_filters() {
        // ans2(X, k) :- d(X): the goal projects a constant column.
        let program = DatalogProgram::new(
            atom("ans2", &["X", "k"]),
            vec![DatalogRule::new(
                atom("ans2", &["X", "k"]),
                vec![atom("t", &["X"])],
            )],
        );
        let ans = execute_program(&sample_db(), &program).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::constant("b"), Term::constant("k")]));
    }

    #[test]
    fn base_facts_of_a_defined_predicate_are_shadowed() {
        // Defined predicates are exactly their rules (expand() semantics):
        // a stray base fact under the same name must not leak into answers.
        let mut db = sample_db();
        db.insert(Atom::make("d1", ["z", "b"]));
        let program = sample_program();
        let direct = execute_program(&db, &program).unwrap();
        let expanded = execute_ucq(&db, &program.expand());
        assert_eq!(direct, expanded);
        assert!(!direct.contains(&vec![Term::constant("z")]));
    }

    #[test]
    fn sql_views_cover_every_defined_predicate() {
        let program = sample_program();
        let mut catalog = Catalog::new();
        catalog.register_defaults(
            ["r", "s"]
                .map(|n| Predicate::new(n, 2))
                .into_iter()
                .chain(["t", "u"].map(|n| Predicate::new(n, 1))),
        );
        let sql = program_to_sql_views(&program, &catalog).unwrap();
        assert_eq!(sql.matches("CREATE VIEW").count(), 3); // d1, d2, ans
        assert!(sql.contains("UNION"));
        assert!(sql.trim_end().ends_with("FROM ans;"));
    }

    #[test]
    fn cte_emission_defines_every_intensional_predicate_once() {
        let program = sample_program();
        let mut catalog = Catalog::new();
        catalog.register_defaults(
            ["r", "s"]
                .map(|n| Predicate::new(n, 2))
                .into_iter()
                .chain(["t", "u"].map(|n| Predicate::new(n, 1))),
        );
        let sql = program_to_sql(&program, &catalog).unwrap();
        assert!(sql.starts_with("WITH "), "{sql}");
        assert!(sql.contains("d1(a1, a2) AS ("), "{sql}");
        assert!(sql.contains("d2(a1) AS ("), "{sql}");
        // The goal is the final SELECT joining the CTEs, not a CTE itself.
        assert_eq!(sql.matches(" AS (").count(), 2, "{sql}");
        assert!(sql.contains("FROM d1 AS r0, d2 AS r1"), "{sql}");
        // A statement fragment, like ucq_to_sql: no trailing semicolon.
        assert!(!sql.trim_end().ends_with(';'), "{sql}");
    }

    #[test]
    fn sql_emissions_report_unsatisfiable() {
        let program = DatalogProgram::unsatisfiable(atom("ans", &["X"]));
        for sql in [
            program_to_sql_views(&program, &Catalog::new()).unwrap(),
            program_to_sql(&program, &Catalog::new()).unwrap(),
        ] {
            assert!(sql.contains("1 = 0"));
        }
    }
}
