//! Bottom-up evaluation of non-recursive Datalog programs, and their
//! translation to SQL views.
//!
//! Section 2 contrasts UCQ rewritings with the non-recursive Datalog
//! programs of Presto: the program avoids materializing the disjunctive
//! normal form. This module is the execution-side counterpart — each
//! intensional predicate is materialized once (bottom-up, in dependency
//! order), so a shared sub-rewriting is computed a single time instead of
//! once per DNF disjunct.

use std::collections::BTreeSet;

use nyaya_core::{Atom, ConjunctiveQuery, DatalogProgram, Term};

use crate::catalog::Catalog;
use crate::engine::{execute_cq, Database};
use crate::translate::cq_to_sql;

/// Evaluate a non-recursive Datalog program bottom-up over `db`.
///
/// Intensional predicates are materialized in dependency order
/// ([`DatalogProgram::stratum_order`]); the answers are the tuples derived
/// for the goal atom. Panics on recursive or unsafe programs (the
/// rewriters never produce either).
pub fn execute_program(db: &Database, program: &DatalogProgram) -> BTreeSet<Vec<Term>> {
    let order = program
        .stratum_order()
        .expect("execute_program requires a non-recursive program");
    if !program.defined_predicates().contains(&program.goal.pred) {
        return BTreeSet::new(); // unsatisfiable program
    }
    let mut work = db.clone();
    for p in order {
        let mut derived: Vec<Atom> = Vec::new();
        for rule in program.rules.iter().filter(|r| r.head.pred == p) {
            assert!(rule.is_safe(), "unsafe rule: {rule}");
            let q = ConjunctiveQuery::new(rule.head.args.clone(), rule.body.clone());
            for row in execute_cq(&work, &q) {
                derived.push(Atom::new(p, row));
            }
        }
        for a in derived {
            work.insert(a);
        }
    }
    let goal_q = ConjunctiveQuery::new(program.goal.args.clone(), vec![program.goal.clone()]);
    execute_cq(&work, &goal_q)
}

/// Translate a non-recursive Datalog program into SQL `CREATE VIEW`
/// statements, one view per intensional predicate (rule bodies become
/// `UNION ALL` branches), ending with a `SELECT` from the goal view.
///
/// Returns `None` if some base predicate is missing from the catalog or a
/// rule cannot be translated (e.g. contains labeled nulls).
pub fn program_to_sql_views(program: &DatalogProgram, catalog: &Catalog) -> Option<String> {
    let order = program.stratum_order()?;
    if !program.defined_predicates().contains(&program.goal.pred) {
        return Some("SELECT NULL WHERE 1 = 0; -- unsatisfiable".to_owned());
    }
    // Extend a scratch catalog with one table schema per defined predicate
    // so that rules over intensional predicates translate like any other.
    let mut cat = catalog.clone();
    for p in &order {
        let columns = (0..p.arity).map(|i| format!("a{}", i + 1)).collect();
        cat.register(*p, &format!("{}", p.sym), columns);
    }
    let mut out = String::new();
    for p in order {
        let branches: Vec<String> = program
            .rules
            .iter()
            .filter(|r| r.head.pred == p)
            .map(|rule| {
                let q = ConjunctiveQuery::new(rule.head.args.clone(), rule.body.clone());
                cq_to_sql(&q, &cat)
            })
            .collect::<Option<Vec<_>>>()?;
        out.push_str(&format!(
            "CREATE VIEW {} AS\n{};\n\n",
            cat.table(p)?.name,
            branches.join("\nUNION ALL\n")
        ));
    }
    out.push_str(&format!(
        "SELECT * FROM {};\n",
        cat.table(program.goal.pred)?.name
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_ucq;
    use nyaya_core::{DatalogRule, Predicate};

    fn atom(p: &str, args: &[&str]) -> Atom {
        let terms: Vec<Term> = args
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        Atom::new(Predicate::new(p, terms.len()), terms)
    }

    fn sample_program() -> DatalogProgram {
        // q(X) :- d1(X,Y), d2(Y);  d1 = r ∪ s;  d2 = t ∪ u.
        DatalogProgram::new(
            atom("ans", &["X"]),
            vec![
                DatalogRule::new(
                    atom("ans", &["X"]),
                    vec![atom("d1", &["X", "Y"]), atom("d2", &["Y"])],
                ),
                DatalogRule::new(atom("d1", &["X", "Y"]), vec![atom("r", &["X", "Y"])]),
                DatalogRule::new(atom("d1", &["X", "Y"]), vec![atom("s", &["X", "Y"])]),
                DatalogRule::new(atom("d2", &["Y"]), vec![atom("t", &["Y"])]),
                DatalogRule::new(atom("d2", &["Y"]), vec![atom("u", &["Y"])]),
            ],
        )
    }

    fn sample_db() -> Database {
        Database::from_facts([
            Atom::make("r", ["a", "b"]),
            Atom::make("s", ["c", "d"]),
            Atom::make("t", ["b"]),
            Atom::make("u", ["e"]),
        ])
    }

    #[test]
    fn program_evaluation_matches_expansion() {
        let program = sample_program();
        let db = sample_db();
        let direct = execute_program(&db, &program);
        let expanded = execute_ucq(&db, &program.expand());
        assert_eq!(direct, expanded);
        assert_eq!(direct.len(), 1); // only r(a,b) joins t(b)
        assert!(direct.contains(&vec![Term::constant("a")]));
    }

    #[test]
    fn materialization_does_not_pollute_the_input() {
        let db = sample_db();
        let before = db.len();
        let _ = execute_program(&db, &sample_program());
        assert_eq!(db.len(), before, "input database must stay untouched");
    }

    #[test]
    fn unsatisfiable_program_yields_no_answers() {
        let program = DatalogProgram::unsatisfiable(atom("ans", &["X"]));
        assert!(execute_program(&sample_db(), &program).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-recursive")]
    fn recursive_program_panics() {
        let program = DatalogProgram::new(
            atom("p", &["X"]),
            vec![
                DatalogRule::new(atom("p", &["X"]), vec![atom("p0", &["X"])]),
                DatalogRule::new(atom("p0", &["X"]), vec![atom("p", &["X"])]),
            ],
        );
        let _ = execute_program(&sample_db(), &program);
    }

    #[test]
    fn goal_with_constant_argument_filters() {
        // ans2(X, k) :- d(X): the goal projects a constant column.
        let program = DatalogProgram::new(
            atom("ans2", &["X", "k"]),
            vec![DatalogRule::new(
                atom("ans2", &["X", "k"]),
                vec![atom("t", &["X"])],
            )],
        );
        let ans = execute_program(&sample_db(), &program);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::constant("b"), Term::constant("k")]));
    }

    #[test]
    fn sql_views_cover_every_defined_predicate() {
        let program = sample_program();
        let mut catalog = Catalog::new();
        catalog.register_defaults(
            ["r", "s"]
                .map(|n| Predicate::new(n, 2))
                .into_iter()
                .chain(["t", "u"].map(|n| Predicate::new(n, 1))),
        );
        let sql = program_to_sql_views(&program, &catalog).unwrap();
        assert_eq!(sql.matches("CREATE VIEW").count(), 3); // d1, d2, ans
        assert!(sql.contains("UNION ALL"));
        assert!(sql.trim_end().ends_with("FROM ans;"));
    }

    #[test]
    fn sql_views_report_unsatisfiable() {
        let program = DatalogProgram::unsatisfiable(atom("ans", &["X"]));
        let sql = program_to_sql_views(&program, &Catalog::new()).unwrap();
        assert!(sql.contains("1 = 0"));
    }
}
