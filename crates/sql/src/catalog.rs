//! Relational catalog: maps predicates to table/column names for SQL
//! generation.

use std::collections::HashMap;

use nyaya_core::Predicate;

/// Table metadata for one predicate.
#[derive(Clone, Debug)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<String>,
}

/// A catalog of table schemas, one per predicate.
#[derive(Clone, Default)]
pub struct Catalog {
    tables: HashMap<Predicate, TableSchema>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table with explicit column names.
    pub fn register(&mut self, pred: Predicate, name: &str, columns: Vec<String>) {
        assert_eq!(
            columns.len(),
            pred.arity,
            "column count must match arity of {pred:?}"
        );
        self.tables.insert(
            pred,
            TableSchema {
                name: name.to_owned(),
                columns,
            },
        );
    }

    /// Register predicates with default naming: table = predicate name,
    /// columns `c1..cn`.
    pub fn register_defaults(&mut self, preds: impl IntoIterator<Item = Predicate>) {
        for p in preds {
            if self.tables.contains_key(&p) {
                continue;
            }
            let columns = (1..=p.arity).map(|i| format!("c{i}")).collect();
            self.tables.insert(
                p,
                TableSchema {
                    name: p.sym.name(),
                    columns,
                },
            );
        }
    }

    /// Register default schemas for every predicate that holds data in an
    /// in-memory [`Database`](crate::engine::Database) — keeps SQL emission
    /// possible for rewritings over data-only predicates no TGD mentions.
    pub fn register_from_database(&mut self, db: &crate::engine::Database) {
        let mut preds: Vec<Predicate> = db.predicates().collect();
        preds.sort_by_key(|p| (p.sym.index(), p.arity));
        self.register_defaults(preds);
    }

    /// Look up a table schema; `None` for unregistered predicates.
    pub fn table(&self, pred: Predicate) -> Option<&TableSchema> {
        self.tables.get(&pred)
    }

    /// Schema of the paper's running example (Section 1), with its
    /// documented column names.
    pub fn stock_exchange() -> Catalog {
        let mut c = Catalog::new();
        let cols = |names: &[&str]| names.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        c.register(
            Predicate::new("stock", 3),
            "stock",
            cols(&["id", "name", "unit_price"]),
        );
        c.register(
            Predicate::new("company", 3),
            "company",
            cols(&["name", "country", "segment"]),
        );
        c.register(
            Predicate::new("list_comp", 2),
            "list_comp",
            cols(&["stock", "list"]),
        );
        c.register(
            Predicate::new("fin_idx", 3),
            "fin_idx",
            cols(&["name", "type", "ref_mkt"]),
        );
        c.register(
            Predicate::new("stock_portf", 3),
            "stock_portf",
            cols(&["company", "stock", "qty"]),
        );
        c.register(
            Predicate::new("has_stock", 2),
            "has_stock",
            cols(&["stock", "company"]),
        );
        c.register(Predicate::new("fin_ins", 1), "fin_ins", cols(&["id"]));
        c.register(
            Predicate::new("legal_person", 1),
            "legal_person",
            cols(&["name"]),
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_predicate_names() {
        let mut c = Catalog::new();
        c.register_defaults([Predicate::new("edge", 2)]);
        let t = c.table(Predicate::new("edge", 2)).unwrap();
        assert_eq!(t.name, "edge");
        assert_eq!(t.columns, vec!["c1", "c2"]);
    }

    #[test]
    fn explicit_registration_wins() {
        let mut c = Catalog::new();
        let p = Predicate::new("stock", 3);
        c.register(p, "stocks_tbl", vec!["a".into(), "b".into(), "c".into()]);
        c.register_defaults([p]);
        assert_eq!(c.table(p).unwrap().name, "stocks_tbl");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn arity_mismatch_panics() {
        let mut c = Catalog::new();
        c.register(Predicate::new("p", 2), "p", vec!["only_one".into()]);
    }

    #[test]
    fn stock_exchange_catalog_is_complete() {
        let c = Catalog::stock_exchange();
        assert!(c.table(Predicate::new("stock_portf", 3)).is_some());
        assert_eq!(
            c.table(Predicate::new("stock", 3)).unwrap().columns,
            vec!["id", "name", "unit_price"]
        );
    }
}
