//! # nyaya-sql
//!
//! The OBDA back end (paper, Section 1): once a query is compiled to a UCQ
//! over the relational schema, it is "submitted as a standard SQL query to
//! the DBMS holding D". This crate provides both halves of that story:
//!
//! - [`translate`]: UCQ → SQL text (`SELECT`/`WHERE`/`UNION`) against a
//!   [`catalog::Catalog`] of table schemas;
//! - [`engine`]: an indexed in-memory relational engine (persistent
//!   per-column hash indexes, planned join orders, a cross-disjunct
//!   build-side cache and a parallel union path) so the whole OBDA stack
//!   runs end-to-end without an external database.

pub mod catalog;
pub mod ddl;
pub mod engine;
pub mod ivm;
pub mod plan;
pub mod program;
pub mod segment;
pub mod shard;
pub mod translate;

pub use catalog::{Catalog, TableSchema};
pub use ddl::{create_tables, export_database, insert_statements};
pub use engine::{
    execute_bcq, execute_cq, execute_cq_greedy, execute_cq_with, execute_ucq,
    execute_ucq_corrected, execute_ucq_greedy, execute_ucq_instrumented, execute_ucq_intra,
    execute_ucq_parallel, execute_ucq_select, execute_ucq_select_corrected, execute_ucq_shared,
    reference, BuildCache, Database, DbMemory, ExecMetrics, TableMemory,
};
pub use ivm::{AnswerDelta, BaseDeltas, IvmMetrics, IvmProgram, IvmRule, MaterializedView};
pub use plan::{
    execute_cq_planned, execute_ucq_planned, explain_cq, join_order, plan_cq, plan_cq_cost,
    plan_cq_cost_corrected, CostPlan, JoinPlan, StepOp,
};
pub use program::{
    execute_program, execute_program_select, execute_program_shared, program_to_sql,
    program_to_sql_select, program_to_sql_views, ProgramError, ProgramMetrics, ProgramSelectError,
};
pub use segment::{decode_batch, decode_database, encode_batch, encode_database, CodecError};
pub use shard::{execute_ucq_sharded, home_shard, shard_of, shard_views, DEFAULT_SHARDS};
pub use translate::{
    cq_to_sql, select_to_sql, sql_ident, sql_literal, ucq_to_sql, ucq_to_sql_select,
};
