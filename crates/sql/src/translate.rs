//! UCQ → SQL translation (Section 1: the perfect rewriting "is evaluated
//! and optimized in the usual way" by the DBMS — this module produces that
//! SQL).

use std::collections::HashMap;

use nyaya_core::{
    AggFunc, ConjunctiveQuery, FilterOp, SelectOptions, SortDir, Symbol, Term, UnionQuery,
};

use crate::catalog::Catalog;

/// Render a constant as a SQL string literal, doubling embedded single
/// quotes (`o'brien` → `'o''brien'`). Constants come from user programs
/// and ad-hoc queries, so interpolating them unescaped would let a value
/// terminate the literal and inject trailing SQL.
pub fn sql_literal(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('\'');
    for c in value.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

/// SQL keywords that would be misparsed as syntax if a table or column
/// carried one as its bare name (the common core across DBMS dialects).
const SQL_KEYWORDS: &[&str] = &[
    "all",
    "alter",
    "and",
    "as",
    "asc",
    "between",
    "by",
    "case",
    "create",
    "cross",
    "delete",
    "desc",
    "distinct",
    "drop",
    "else",
    "end",
    "except",
    "exists",
    "from",
    "group",
    "having",
    "in",
    "index",
    "inner",
    "insert",
    "intersect",
    "into",
    "is",
    "join",
    "left",
    "like",
    "limit",
    "not",
    "null",
    "offset",
    "on",
    "or",
    "order",
    "outer",
    "right",
    "select",
    "set",
    "table",
    "then",
    "union",
    "update",
    "values",
    "view",
    "when",
    "where",
    "with",
];

/// Quote an identifier unless it is a bare-safe name (`[A-Za-z_]` then
/// `[A-Za-z0-9_]*`, and not a reserved keyword). Quoted identifiers use
/// double quotes with embedded double quotes doubled, so catalog-supplied
/// table/column names can never escape their position in the statement.
pub fn sql_ident(name: &str) -> String {
    let mut chars = name.chars();
    let bare_safe = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !SQL_KEYWORDS.contains(&name.to_ascii_lowercase().as_str())
        }
        _ => false,
    };
    if bare_safe {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// Translate one CQ into a `SELECT DISTINCT … FROM … WHERE …` block.
///
/// Each body atom becomes a `FROM` entry aliased `r0, r1, …`; repeated
/// variables become equality predicates; constants become literal filters.
/// Returns `None` if some predicate is not registered in the catalog.
pub fn cq_to_sql(q: &ConjunctiveQuery, catalog: &Catalog) -> Option<String> {
    let mut first_occurrence: HashMap<Symbol, String> = HashMap::new();
    let mut conditions: Vec<String> = Vec::new();

    for (i, atom) in q.body.iter().enumerate() {
        let table = catalog.table(atom.pred)?;
        for (j, t) in atom.args.iter().enumerate() {
            let column = format!("r{i}.{}", sql_ident(&table.columns[j]));
            match t {
                Term::Var(v) => match first_occurrence.get(v) {
                    Some(prev) => conditions.push(format!("{prev} = {column}")),
                    None => {
                        first_occurrence.insert(*v, column);
                    }
                },
                Term::Const(c) => {
                    conditions.push(format!("{column} = {}", sql_literal(&c.to_string())));
                }
                Term::Null(_) | Term::Func(..) => {
                    // Nulls/function terms never appear in final rewritings.
                    return None;
                }
            }
        }
    }

    let select: Vec<String> = if q.head.is_empty() {
        vec!["1".to_owned()]
    } else {
        q.head
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let expr = match t {
                    Term::Var(v) => first_occurrence
                        .get(v)
                        .cloned()
                        .unwrap_or_else(|| "NULL".to_owned()),
                    Term::Const(c) => sql_literal(&c.to_string()),
                    _ => "NULL".to_owned(),
                };
                format!("{expr} AS a{}", i + 1)
            })
            .collect()
    };

    let from: Vec<String> = q
        .body
        .iter()
        .enumerate()
        .map(|(i, atom)| {
            let table = catalog.table(atom.pred).expect("checked above");
            format!("{} AS r{i}", sql_ident(&table.name))
        })
        .collect();

    let mut sql = format!(
        "SELECT DISTINCT {}\nFROM {}",
        select.join(", "),
        from.join(", ")
    );
    if !conditions.is_empty() {
        sql.push_str("\nWHERE ");
        sql.push_str(&conditions.join("\n  AND "));
    }
    Some(sql)
}

/// Translate a UCQ into a `UNION` of SELECT blocks (set semantics — the
/// answer to a UCQ is a set of tuples, Section 3.1).
pub fn ucq_to_sql(u: &UnionQuery, catalog: &Catalog) -> Option<String> {
    if u.is_empty() {
        return Some("SELECT NULL WHERE 1 = 0".to_owned());
    }
    let blocks: Option<Vec<String>> = u.iter().map(|q| cq_to_sql(q, catalog)).collect();
    Some(blocks?.join("\nUNION\n"))
}

/// Wrap a query block whose output columns are named `a1..aN` in an outer
/// `SELECT` applying [`SelectOptions`]: comparison filters (`WHERE`),
/// aggregation (`COUNT`/`MIN`/`MAX` with `GROUP BY`), `ORDER BY` (by
/// output-column ordinal, matching the engine's post-aggregation column
/// indexing) and `LIMIT`. Plain options return `inner` unchanged.
pub fn select_to_sql(inner: &str, sel: &SelectOptions) -> String {
    if sel.is_plain() {
        return inner.to_owned();
    }
    let projection = match &sel.aggregate {
        None => "*".to_owned(),
        Some(agg) => {
            let mut cols: Vec<String> =
                agg.group_by.iter().map(|c| format!("a{}", c + 1)).collect();
            cols.push(match agg.func {
                AggFunc::Count => "COUNT(*) AS agg".to_owned(),
                AggFunc::Min(c) => format!("MIN(a{}) AS agg", c + 1),
                AggFunc::Max(c) => format!("MAX(a{}) AS agg", c + 1),
            });
            cols.join(", ")
        }
    };
    let mut sql = format!("SELECT {projection}\nFROM (\n{inner}\n) AS q");
    if !sel.filters.is_empty() {
        let conds: Vec<String> = sel
            .filters
            .iter()
            .map(|f| {
                // `<>` is the standard SQL spelling of our `!=`.
                let op = match f.op {
                    FilterOp::Ne => "<>",
                    other => other.symbol(),
                };
                format!(
                    "a{} {op} {}",
                    f.column + 1,
                    sql_literal(&f.value.to_string())
                )
            })
            .collect();
        sql.push_str("\nWHERE ");
        sql.push_str(&conds.join("\n  AND "));
    }
    if let Some(agg) = &sel.aggregate {
        if !agg.group_by.is_empty() {
            let keys: Vec<String> = agg.group_by.iter().map(|c| format!("a{}", c + 1)).collect();
            sql.push_str("\nGROUP BY ");
            sql.push_str(&keys.join(", "));
        }
    }
    if !sel.order_by.is_empty() {
        let keys: Vec<String> = sel
            .order_by
            .iter()
            .map(|(c, dir)| {
                let dir = match dir {
                    SortDir::Asc => "ASC",
                    SortDir::Desc => "DESC",
                };
                format!("{} {dir}", c + 1)
            })
            .collect();
        sql.push_str("\nORDER BY ");
        sql.push_str(&keys.join(", "));
    }
    if let Some(n) = sel.limit {
        sql.push_str(&format!("\nLIMIT {n}"));
    }
    sql
}

/// Translate a UCQ plus result modifiers into SQL: the union from
/// [`ucq_to_sql`] wrapped by [`select_to_sql`]. Returns `None` if some
/// predicate is missing from the catalog or the options do not fit the
/// query's head arity.
pub fn ucq_to_sql_select(u: &UnionQuery, catalog: &Catalog, sel: &SelectOptions) -> Option<String> {
    if let Some(q) = u.iter().next() {
        sel.validate(q.head.len()).ok()?;
    }
    let inner = ucq_to_sql(u, catalog)?;
    Some(select_to_sql(&inner, sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nyaya_core::{Aggregate, Atom, ColumnFilter, Predicate};

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    #[test]
    fn single_atom_select() {
        let catalog = Catalog::stock_exchange();
        let q = cq(&["A"], &[("fin_ins", &["A"])]);
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert_eq!(sql, "SELECT DISTINCT r0.id AS a1\nFROM fin_ins AS r0");
    }

    #[test]
    fn join_condition_from_shared_variable() {
        let catalog = Catalog::stock_exchange();
        // q(A,B) ← list_comp(A,C), stock_portf(B,A,D): join on A.
        let q = cq(
            &["A", "B"],
            &[
                ("list_comp", &["A", "C"]),
                ("stock_portf", &["B", "A", "D"]),
            ],
        );
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(sql.contains("r0.stock = r1.stock"), "{sql}");
        assert!(
            sql.contains("FROM list_comp AS r0, stock_portf AS r1"),
            "{sql}"
        );
    }

    #[test]
    fn constants_become_literal_filters() {
        let catalog = Catalog::stock_exchange();
        let q = cq(&["A"], &[("list_comp", &["A", "nasdaq"])]);
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(sql.contains("r0.list = 'nasdaq'"), "{sql}");
    }

    #[test]
    fn boolean_query_selects_one() {
        let catalog = Catalog::stock_exchange();
        let q = cq(&[], &[("fin_ins", &["A"])]);
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(sql.starts_with("SELECT DISTINCT 1"), "{sql}");
    }

    #[test]
    fn ucq_becomes_union() {
        let catalog = Catalog::stock_exchange();
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("fin_ins", &["A"])]),
            cq(&["A"], &[("stock", &["A", "B", "C"])]),
        ]);
        let sql = ucq_to_sql(&u, &catalog).unwrap();
        assert_eq!(sql.matches("SELECT DISTINCT").count(), 2);
        assert!(sql.contains("UNION"), "{sql}");
    }

    #[test]
    fn unknown_predicate_is_rejected() {
        let catalog = Catalog::stock_exchange();
        let q = cq(&["A"], &[("unknown_pred", &["A"])]);
        assert!(cq_to_sql(&q, &catalog).is_none());
    }

    #[test]
    fn empty_ucq_selects_nothing() {
        let catalog = Catalog::new();
        let sql = ucq_to_sql(&UnionQuery::default(), &catalog).unwrap();
        assert!(sql.contains("1 = 0"));
    }

    #[test]
    fn quoted_constants_cannot_escape_their_literal() {
        // Regression: `Term::Const(c)` used to be interpolated as '{c}'
        // verbatim, so a constant holding a single quote terminated the
        // literal and injected trailing SQL.
        let mut catalog = Catalog::new();
        catalog.register_defaults([Predicate::new("person", 2)]);
        let q = ConjunctiveQuery::new(
            vec![Term::var("A")],
            vec![Atom::new(
                Predicate::new("person", 2),
                vec![
                    Term::var("A"),
                    Term::constant("o'brien'; DROP TABLE person; --"),
                ],
            )],
        );
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(
            sql.contains("r0.c2 = 'o''brien''; DROP TABLE person; --'"),
            "{sql}"
        );
        // Nothing after the (escaped) literal leaks out as a statement.
        assert!(!sql.contains("--'\n"), "{sql}");
        // Constants projected in the head are escaped the same way.
        let q = ConjunctiveQuery::new(
            vec![Term::constant("it's")],
            vec![Atom::new(
                Predicate::new("person", 2),
                vec![Term::var("A"), Term::var("B")],
            )],
        );
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(sql.contains("'it''s' AS a1"), "{sql}");
    }

    #[test]
    fn unsafe_identifiers_are_quoted() {
        assert_eq!(sql_ident("fin_ins"), "fin_ins");
        assert_eq!(sql_ident("_def12"), "_def12");
        assert_eq!(sql_ident("weird name"), "\"weird name\"");
        assert_eq!(sql_ident("a\"b"), "\"a\"\"b\"");
        assert_eq!(sql_ident("1st"), "\"1st\"");
        // Reserved keywords must be quoted even though they look bare-safe.
        assert_eq!(sql_ident("order"), "\"order\"");
        assert_eq!(sql_ident("Select"), "\"Select\"");
        assert_eq!(sql_ident("grouping"), "grouping", "prefixes stay bare");
        let mut catalog = Catalog::new();
        let p = Predicate::new("t", 1);
        catalog.register(p, "drop table; x", vec!["se\"lect".into()]);
        let q = ConjunctiveQuery::new(
            vec![Term::var("A")],
            vec![Atom::new(p, vec![Term::var("A")])],
        );
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(sql.contains("FROM \"drop table; x\" AS r0"), "{sql}");
        assert!(sql.contains("r0.\"se\"\"lect\" AS a1"), "{sql}");
    }

    #[test]
    fn select_modifiers_wrap_the_union() {
        let catalog = Catalog::stock_exchange();
        let u = UnionQuery::new(vec![cq(&["A", "B"], &[("list_comp", &["A", "B"])])]);
        let sel = SelectOptions {
            filters: vec![ColumnFilter {
                column: 0,
                op: FilterOp::Ge,
                value: Term::constant("m"),
            }],
            order_by: vec![(1, SortDir::Desc), (0, SortDir::Asc)],
            limit: Some(5),
            aggregate: None,
        };
        let sql = ucq_to_sql_select(&u, &catalog, &sel).unwrap();
        assert!(sql.starts_with("SELECT *\nFROM (\n"), "{sql}");
        assert!(sql.contains("WHERE a1 >= 'm'"), "{sql}");
        assert!(sql.contains("ORDER BY 2 DESC, 1 ASC"), "{sql}");
        assert!(sql.ends_with("LIMIT 5"), "{sql}");
    }

    #[test]
    fn aggregates_become_group_by() {
        let catalog = Catalog::stock_exchange();
        let u = UnionQuery::new(vec![cq(&["A", "B"], &[("list_comp", &["A", "B"])])]);
        let sel = SelectOptions {
            aggregate: Some(Aggregate {
                group_by: vec![1],
                func: AggFunc::Count,
            }),
            ..SelectOptions::default()
        };
        let sql = ucq_to_sql_select(&u, &catalog, &sel).unwrap();
        assert!(sql.starts_with("SELECT a2, COUNT(*) AS agg"), "{sql}");
        assert!(sql.contains("GROUP BY a2"), "{sql}");
        // != is emitted in its standard SQL spelling.
        let sel = SelectOptions {
            filters: vec![ColumnFilter {
                column: 1,
                op: FilterOp::Ne,
                value: Term::constant("nyse"),
            }],
            aggregate: Some(Aggregate {
                group_by: vec![],
                func: AggFunc::Min(0),
            }),
            ..SelectOptions::default()
        };
        let sql = ucq_to_sql_select(&u, &catalog, &sel).unwrap();
        assert!(sql.starts_with("SELECT MIN(a1) AS agg"), "{sql}");
        assert!(sql.contains("WHERE a2 <> 'nyse'"), "{sql}");
        // Options that do not fit the head arity are rejected.
        let bad = SelectOptions {
            filters: vec![ColumnFilter {
                column: 7,
                op: FilterOp::Lt,
                value: Term::constant("x"),
            }],
            ..SelectOptions::default()
        };
        assert!(ucq_to_sql_select(&u, &catalog, &bad).is_none());
        // Plain options pass the union through untouched.
        let plain = ucq_to_sql_select(&u, &catalog, &SelectOptions::default()).unwrap();
        assert_eq!(plain, ucq_to_sql(&u, &catalog).unwrap());
    }

    #[test]
    fn intra_atom_repeats_produce_self_condition() {
        let mut catalog = Catalog::new();
        catalog.register_defaults([Predicate::new("t", 3)]);
        let q = cq(&[], &[("t", &["A", "B", "B"])]);
        let sql = cq_to_sql(&q, &catalog).unwrap();
        assert!(sql.contains("r0.c2 = r0.c3"), "{sql}");
    }
}
