//! Predicate-hash sharding and scatter-gather UCQ execution.
//!
//! The ABox is partitioned into `n` shards by a stable hash of each
//! predicate's **name and arity** (FNV-1a over the name bytes, then the
//! arity folded in). Hashing the name rather than the process-local
//! [`Symbol`](nyaya_core::Symbol) index keeps routing identical across
//! process runs — the same predicate always lands on the same shard, so
//! a recovered ledger or a restarted server re-shards identically.
//!
//! A shard *view* is an ordinary [`Database`] holding the subset of
//! tables routed to that shard. Tables live behind `Arc`s, so carving a
//! view is O(#predicates) pointer clones: the per-column hash indexes
//! and sorted postings carry over untouched, and the view stays
//! COW-shared with the full database (no row is ever copied).
//!
//! Scatter-gather execution groups the UCQ's disjuncts by *home shard*:
//! a disjunct whose body predicates all route to one shard executes
//! against that shard's view; a disjunct spanning shards executes
//! against the full database (which is definitionally the union of the
//! views). Every disjunct therefore sees exactly the rows, index
//! statistics and postings it would see unsharded — the cost planner
//! prices the same plan, the pipeline produces the same tuples — and
//! the gather step is a `BTreeSet` union, which is commutative and
//! idempotent. Bit-exactness versus the single-shard path follows
//! structurally; `tests/sharded_scatter.rs` checks it on 300 seeds and
//! all eight paper suites anyway.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use nyaya_core::{ConjunctiveQuery, Predicate, Term, UnionQuery};

use crate::engine::{
    execute_cq_ordered, BuildCache, CacheTally, DataSource, Database, ExecMetrics,
};
use crate::plan::plan_cq_cost_corrected;

/// Default shard count for sharded execution (the acceptance bar tests
/// ≥ 4; per-core servers may pass their core count instead).
pub const DEFAULT_SHARDS: usize = 4;

/// The shard a predicate routes to, for a given shard count.
///
/// FNV-1a over the predicate's textual name, with the arity folded in as
/// one extra round — stable across process runs (unlike `Symbol`
/// indices, which depend on intern order).
pub fn shard_of(pred: Predicate, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in pred.sym.name().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= pred.arity as u64;
    h = h.wrapping_mul(FNV_PRIME);
    (h % shards as u64) as usize
}

/// Carve a database into `shards` per-shard views. View `i` holds
/// exactly the tables with `shard_of(pred, shards) == i`, Arc-shared
/// with `db` (zero row copies; indexes carry over).
pub fn shard_views(db: &Database, shards: usize) -> Vec<Database> {
    let n = shards.max(1);
    let mut views = vec![Database::new(); n];
    for pred in db.predicates() {
        views[shard_of(pred, n)].adopt_table_from(db, pred);
    }
    views
}

/// The home shard of a disjunct: `Some(s)` when every body predicate
/// routes to shard `s`, `None` when the disjunct spans shards (or has an
/// empty body) and must read the full database.
pub fn home_shard(q: &ConjunctiveQuery, shards: usize) -> Option<usize> {
    let mut home = None;
    for atom in &q.body {
        let s = shard_of(atom.pred, shards);
        match home {
            None => home = Some(s),
            Some(h) if h != s => return None,
            Some(_) => {}
        }
    }
    home
}

/// Scatter-gather UCQ execution over `shards` predicate-hash shards.
///
/// Disjuncts are grouped by [`home_shard`]; each group executes against
/// its shard view (cross-shard disjuncts against the full database),
/// all sharing one [`BuildCache`] and one cost-correction factor, and
/// the per-group answer sets are unioned. The result — tuples and
/// planner behaviour — is bit-identical to
/// [`execute_ucq_corrected`](crate::execute_ucq_corrected); the metrics
/// additionally report one `shard_scatter_ops` per non-empty group.
///
/// `threads` is the same whole-union worker budget as the unsharded
/// path: groups are flattened into per-disjunct work items and chunked
/// across workers, so a union dominated by one shard still parallelizes.
pub fn execute_ucq_sharded(
    db: &Database,
    u: &UnionQuery,
    shards: usize,
    threads: usize,
    cache: &BuildCache,
    correction: f64,
) -> (BTreeSet<Vec<Term>>, ExecMetrics) {
    let start = Instant::now();
    let n = shards.max(1);
    let tally = CacheTally::default();
    let estimated = AtomicU64::new(0);

    // Scatter: route every disjunct to its home shard (usize::MAX keys
    // the cross-shard group). Views are carved only for shards that
    // actually received a disjunct.
    let mut groups: HashMap<usize, Vec<&ConjunctiveQuery>> = HashMap::new();
    for q in u.iter() {
        let key = match home_shard(q, n) {
            Some(s) if n > 1 => s,
            _ => usize::MAX,
        };
        groups.entry(key).or_default().push(q);
    }
    let scatter_ops = if n > 1 { groups.len() as u64 } else { 0 };
    let views: HashMap<usize, Database> = groups
        .keys()
        .filter(|&&k| k != usize::MAX)
        .map(|&k| {
            let mut view = Database::new();
            for pred in db.predicates() {
                if shard_of(pred, n) == k {
                    view.adopt_table_from(db, pred);
                }
            }
            (k, view)
        })
        .collect();

    // Flatten back to (disjunct, source-database) work items so the
    // worker chunking matches the unsharded path's granularity.
    let items: Vec<(&ConjunctiveQuery, &Database)> = groups
        .iter()
        .flat_map(|(&k, qs)| {
            let source = views.get(&k).unwrap_or(db);
            qs.iter().map(move |q| (*q, source))
        })
        .collect();

    let requested = threads.clamp(1, items.len().max(1));
    let chunk_size = items.len().div_ceil(requested.max(1)).max(1);
    let threads_used = if requested <= 1 {
        1
    } else {
        items.len().div_ceil(chunk_size)
    };
    let run_item = |(q, source): &(&ConjunctiveQuery, &Database)| {
        let plan = plan_cq_cost_corrected(source, q, correction);
        estimated.fetch_add(plan.result_estimate().round() as u64, Ordering::Relaxed);
        execute_cq_ordered(
            &DataSource::Single { db: source, cache },
            q,
            &plan.order,
            Some(&plan.ops),
            &tally,
        )
    };
    let mut out = BTreeSet::new();
    if threads_used <= 1 {
        for item in &items {
            out.extend(run_item(item));
        }
    } else {
        std::thread::scope(|scope| {
            let run_item = &run_item;
            let handles: Vec<_> = items
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut local = BTreeSet::new();
                        for item in chunk {
                            local.extend(run_item(item));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("shard worker panicked"));
            }
        });
    }
    let metrics = ExecMetrics {
        disjuncts: u.cqs.len(),
        threads: threads_used,
        rows: out.len(),
        build_cache_hits: tally.hits.load(Ordering::Relaxed),
        build_cache_misses: tally.misses.load(Ordering::Relaxed),
        merge_joins: tally.merges.load(Ordering::Relaxed),
        morsel_tasks: tally.morsels.load(Ordering::Relaxed),
        estimated_rows: estimated.load(Ordering::Relaxed),
        shard_scatter_ops: scatter_ops,
        elapsed: start.elapsed(),
        ..ExecMetrics::default()
    };
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nyaya_core::Atom;

    fn db3() -> Database {
        Database::from_facts([
            Atom::make("p", ["a", "b"]),
            Atom::make("p", ["b", "c"]),
            Atom::make("q", ["b"]),
            Atom::make("r", ["c", "d"]),
        ])
    }

    #[test]
    fn routing_is_stable_and_total() {
        let p = Predicate::new("person", 1);
        for n in 1..=8 {
            let s = shard_of(p, n);
            assert!(s < n);
            assert_eq!(s, shard_of(p, n), "routing must be deterministic");
        }
        assert_eq!(shard_of(p, 1), 0);
        // Same name, different arity must be allowed to differ — and the
        // pair must route consistently on repeat calls.
        let p2 = Predicate::new("person", 2);
        assert_eq!(shard_of(p2, 5), shard_of(p2, 5));
    }

    #[test]
    fn views_partition_without_copying() {
        let db = db3();
        let views = shard_views(&db, 4);
        let total: usize = views.iter().map(Database::len).sum();
        assert_eq!(total, db.len(), "views must partition every row");
        for pred in db.predicates() {
            let home = shard_of(pred, 4);
            for (i, v) in views.iter().enumerate() {
                if i == home {
                    assert!(v.shares_table(&db, pred), "view must COW-share {pred:?}");
                } else {
                    assert_eq!(v.table_len(pred), 0);
                }
            }
        }
    }

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let term = |a: &&str| {
            if a.chars().next().unwrap().is_uppercase() {
                Term::var(a)
            } else {
                Term::constant(a)
            }
        };
        ConjunctiveQuery::new(
            head.iter().map(term).collect(),
            body.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args.iter().map(term).collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect(),
        )
    }

    #[test]
    fn sharded_execution_matches_unsharded() {
        let db = db3();
        // q(X,Z) :- p(X,Y), p(Y,Z).  q(X,X) :- q(X).  q(X,Y) :- r(X,Y).
        let ucq = UnionQuery::new(vec![
            cq(&["X", "Z"], &[("p", &["X", "Y"]), ("p", &["Y", "Z"])]),
            cq(&["X", "X"], &[("q", &["X"])]),
            cq(&["X", "Y"], &[("r", &["X", "Y"])]),
        ]);
        let cache = BuildCache::new();
        let (plain, _) = crate::execute_ucq_corrected(&db, &ucq, 1, &cache, 1.0);
        for shards in [1, 2, 4, 8] {
            for threads in [1, 3] {
                let (sharded, m) =
                    execute_ucq_sharded(&db, &ucq, shards, threads, &BuildCache::new(), 1.0);
                assert_eq!(sharded, plain, "shards={shards} threads={threads}");
                if shards > 1 {
                    assert!(m.shard_scatter_ops >= 1, "{m:?}");
                }
            }
        }
    }
}
