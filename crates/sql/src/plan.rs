//! A cost-based join planner for conjunctive queries.
//!
//! Section 1 motivates FO-rewritability precisely because the produced SQL
//! "is evaluated and optimized in the usual way" by the DBMS. Our
//! in-memory engine joins body atoms left to right, so atom order *is* the
//! physical plan. Two planners live here:
//!
//! - The original **greedy** cardinality-only planner ([`plan_cq`] /
//!   [`join_order`]): pick, at every step, the atom with the smallest
//!   estimated output cardinality given the variables already bound. It is
//!   preserved verbatim as the differential-testing oracle
//!   (`tests/planner_differential.rs` proves the cost-based plans
//!   answer-identical to it on 300 seeds).
//! - The **cost-based** planner ([`plan_cq_cost`]): the same greedy
//!   skeleton, but every candidate step is priced per physical operator —
//!   a hash join pays for building the table-sized hash side, a merge join
//!   over the sorted column index pays only for its probes and the sorted
//!   walk — and the cheaper operator is recorded in the plan
//!   ([`StepOp`]). A runtime cardinality-feedback factor (learned by the
//!   `KnowledgeBase` from estimated-vs-actual row counts per prepared
//!   query) scales the join estimates, so a plan that mispredicted badly
//!   is re-priced — and possibly re-shaped — on the next execution.
//!
//! Neither planner changes results — [`execute_cq`] is order-insensitive
//! set semantics — only intermediate sizes and per-step operator work.
//!
//! Statistics are read off the [`Database`]'s persistent per-column
//! indexes in O(1) — planning a CQ never scans a table, so planning all
//! few-hundred disjuncts of a UCQ rewriting is essentially free.

use std::collections::{BTreeSet, HashMap, HashSet};

use nyaya_core::{ConjunctiveQuery, Predicate, Symbol, Term, UnionQuery};

use crate::engine::{execute_cq, Database};

/// Per-table column statistics: row count and per-position distinct counts.
#[derive(Clone, Debug)]
struct TableStats {
    rows: usize,
    distinct: Vec<usize>,
}

/// Collected statistics for every predicate used by a query — O(1) per
/// column, served by the database's persistent indexes.
fn collect_stats(
    db: &Database,
    preds: impl IntoIterator<Item = Predicate>,
) -> HashMap<Predicate, TableStats> {
    collect_stats_with(preds, |pred| {
        (
            db.table_len(pred),
            (0..pred.arity)
                .map(|j| db.distinct(pred, j).max(1))
                .collect(),
        )
    })
}

/// [`collect_stats`] with caller-resolved statistics — program evaluation
/// reads an atom's (rows, per-column distinct) off the derived overlay for
/// intensional predicates and off the base snapshot for everything else.
fn collect_stats_with(
    preds: impl IntoIterator<Item = Predicate>,
    mut stat_of: impl FnMut(Predicate) -> (usize, Vec<usize>),
) -> HashMap<Predicate, TableStats> {
    let mut stats = HashMap::new();
    for pred in preds {
        stats.entry(pred).or_insert_with(|| {
            let (rows, distinct) = stat_of(pred);
            TableStats { rows, distinct }
        });
    }
    stats
}

/// A join order for one CQ, with the planner's cost estimates.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// Permutation of body-atom indices, in execution order.
    pub order: Vec<usize>,
    /// Estimated intermediate cardinality after each step.
    pub estimates: Vec<f64>,
    /// Sum of the intermediate cardinalities — the planner's objective.
    pub cost: f64,
}

/// Estimated result size of joining `atom` into an intermediate of size
/// `card` with `bound` variables already bound.
fn step_estimate(
    atom: &nyaya_core::Atom,
    stats: &TableStats,
    bound: &HashSet<Symbol>,
    card: f64,
) -> f64 {
    let mut rows = stats.rows as f64;
    let mut seen_here: HashSet<Symbol> = HashSet::new();
    for (j, t) in atom.args.iter().enumerate() {
        let d = stats.distinct[j] as f64;
        match t {
            // A constant keeps ~rows/d of the table.
            Term::Const(_) | Term::Null(_) | Term::Func(..) => rows /= d,
            Term::Var(v) => {
                if bound.contains(v) || seen_here.contains(v) {
                    // Equi-join / intra-atom repeat: selectivity 1/d.
                    rows /= d;
                } else {
                    seen_here.insert(*v);
                }
            }
        }
    }
    card * rows.max(0.0)
}

/// Plan a CQ greedily against the database statistics.
pub fn plan_cq(db: &Database, q: &ConjunctiveQuery) -> JoinPlan {
    plan_from_stats(q, collect_stats(db, q.body.iter().map(|a| a.pred)))
}

fn plan_from_stats(q: &ConjunctiveQuery, stats: HashMap<Predicate, TableStats>) -> JoinPlan {
    let n = q.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut order = Vec::with_capacity(n);
    let mut estimates = Vec::with_capacity(n);
    let mut card = 1.0f64;
    let mut cost = 0.0f64;
    while !remaining.is_empty() {
        // Prefer atoms connected to the bound variables (avoid Cartesian
        // products), then the smallest estimate, then input order.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &i), (_, &j)| {
                let disconnected = |k: usize| {
                    !bound.is_empty() && !q.body[k].variables().iter().any(|v| bound.contains(v))
                };
                let (ci, cj) = (disconnected(i), disconnected(j));
                let ei = step_estimate(&q.body[i], &stats[&q.body[i].pred], &bound, card);
                let ej = step_estimate(&q.body[j], &stats[&q.body[j].pred], &bound, card);
                ci.cmp(&cj).then(ei.total_cmp(&ej)).then(i.cmp(&j))
            })
            .map(|(pos, &i)| (pos, i))
            .expect("remaining is non-empty");
        let i = remaining.remove(pos);
        card = step_estimate(&q.body[i], &stats[&q.body[i].pred], &bound, card);
        cost += card;
        order.push(i);
        estimates.push(card);
        for v in q.body[i].variables() {
            bound.insert(v);
        }
    }
    JoinPlan {
        order,
        estimates,
        cost,
    }
}

/// The greedy join order for one CQ — the preserved oracle planner's
/// order, executed by
/// [`execute_ucq_greedy`](crate::engine::execute_ucq_greedy).
pub fn join_order(db: &Database, q: &ConjunctiveQuery) -> Vec<usize> {
    plan_cq(db, q).order
}

// ---------------------------------------------------------------------
// The cost-based planner: operator pricing over the same greedy skeleton
// ---------------------------------------------------------------------

/// The physical operator chosen for one join step of a [`CostPlan`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StepOp {
    /// Table access with no bound join key (the leading atom of a
    /// pipeline, or a Cartesian step): constant filters drive the most
    /// selective posting list, otherwise the table is enumerated.
    Scan,
    /// Hash join: the atom's filtered rows are hashed by the join-key
    /// columns (a [`BuildCache`](crate::engine::BuildCache)-shared build
    /// side) and probed per intermediate tuple.
    Hash,
    /// Merge join over the sorted column index: intermediate tuples are
    /// sorted by their join-key value canonically and matched against the
    /// column's sorted distinct-value list in one lockstep pass, seeking
    /// each matching value's posting list. No build side is constructed.
    Merge {
        /// The atom column joined through the sorted index.
        key_col: usize,
    },
}

impl StepOp {
    /// Short operator name for `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            StepOp::Scan => "scan",
            StepOp::Hash => "hash",
            StepOp::Merge { .. } => "merge",
        }
    }
}

/// A join order with per-step physical operators and the planner's cost
/// estimates — the cost-based counterpart of [`JoinPlan`].
#[derive(Clone, Debug)]
pub struct CostPlan {
    /// Permutation of body-atom indices, in execution order.
    pub order: Vec<usize>,
    /// Physical operator per step (parallel to `order`).
    pub ops: Vec<StepOp>,
    /// Estimated intermediate cardinality after each step.
    pub estimates: Vec<f64>,
    /// Total priced work: per-step operator cost plus intermediate sizes.
    pub cost: f64,
}

impl CostPlan {
    /// The planner's estimate of the final result cardinality.
    pub fn result_estimate(&self) -> f64 {
        self.estimates.last().copied().unwrap_or(0.0)
    }
}

/// Is `atom` joinable through the sorted column index given the variables
/// bound so far? Eligibility: exactly one argument is a bound variable
/// (the join key) and every other argument is a distinct fresh variable —
/// no constants, no repeats — so the key column's posting lists are
/// exactly the matching rows. Returns the key column.
fn merge_key_col(atom: &nyaya_core::Atom, bound: &HashSet<Symbol>) -> Option<usize> {
    let mut key = None;
    let mut seen: HashSet<Symbol> = HashSet::new();
    for (j, t) in atom.args.iter().enumerate() {
        let Term::Var(v) = t else { return None };
        if !seen.insert(*v) {
            return None;
        }
        if bound.contains(v) {
            if key.is_some() {
                return None;
            }
            key = Some(j);
        }
    }
    key
}

/// Price one candidate step: estimated output cardinality, the chosen
/// operator, and the operator's work. A hash join pays for scanning the
/// table into a build side plus one probe per intermediate tuple; a merge
/// join pays for its probes and at most one sorted-index walk; a scan
/// pays for the rows it reads.
fn price_step(
    atom: &nyaya_core::Atom,
    stats: &TableStats,
    bound: &HashSet<Symbol>,
    card: f64,
    correction: f64,
) -> (f64, StepOp, f64) {
    let raw = step_estimate(atom, stats, bound, card);
    let joins_bound = atom.variables().iter().any(|v| bound.contains(v));
    // The feedback factor corrects *join* selectivity misestimates; the
    // leading scan's cardinality is exact (it is read off the index).
    let est = if joins_bound { raw * correction } else { raw };
    // The columnar kernels price operator *work* (rows scanned into a
    // build side, probes, sorted-index sweeps) at half a unit per row:
    // builds scan flat u32 columns, probes hash short integer keys, and
    // sweeps compare raw cells — about half the per-row cost of the old
    // term-materializing row engine. Output materialization (`est`) still
    // decodes cells back to terms, so it stays at full price. The
    // discount applies to every operator alike, which preserves the
    // hash-vs-merge choice while letting cheap-work/large-output steps
    // trade off honestly against expensive-work/small-output ones.
    const COLUMNAR_WORK_DISCOUNT: f64 = 0.5;
    if !joins_bound {
        return (
            est,
            StepOp::Scan,
            COLUMNAR_WORK_DISCOUNT * stats.rows as f64 + est,
        );
    }
    let hash_cost = COLUMNAR_WORK_DISCOUNT * (stats.rows as f64 + card) + est;
    match merge_key_col(atom, bound) {
        Some(key_col) => {
            let merge_cost =
                COLUMNAR_WORK_DISCOUNT * (card + (stats.distinct[key_col] as f64).min(card)) + est;
            if merge_cost < hash_cost {
                (est, StepOp::Merge { key_col }, merge_cost)
            } else {
                (est, StepOp::Hash, hash_cost)
            }
        }
        None => (est, StepOp::Hash, hash_cost),
    }
}

/// Plan a CQ with the cost-based planner against database statistics.
pub fn plan_cq_cost(db: &Database, q: &ConjunctiveQuery) -> CostPlan {
    plan_cq_cost_corrected(db, q, 1.0)
}

/// [`plan_cq_cost`] with a runtime cardinality-feedback factor: join
/// estimates are multiplied by `correction` (learned from
/// estimated-vs-actual row counts of earlier executions), which can flip
/// operator choices and join order on re-planning.
pub fn plan_cq_cost_corrected(db: &Database, q: &ConjunctiveQuery, correction: f64) -> CostPlan {
    plan_cost_from_stats(
        q,
        collect_stats(db, q.body.iter().map(|a| a.pred)),
        correction,
    )
}

/// Cost-based planning with caller-resolved per-predicate statistics (the
/// layered entry used by program evaluation over overlay tables).
pub(crate) fn plan_cq_cost_with(
    q: &ConjunctiveQuery,
    stat_of: impl FnMut(Predicate) -> (usize, Vec<usize>),
    correction: f64,
) -> CostPlan {
    plan_cost_from_stats(
        q,
        collect_stats_with(q.body.iter().map(|a| a.pred), stat_of),
        correction,
    )
}

fn plan_cost_from_stats(
    q: &ConjunctiveQuery,
    stats: HashMap<Predicate, TableStats>,
    correction: f64,
) -> CostPlan {
    let n = q.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut order = Vec::with_capacity(n);
    let mut ops = Vec::with_capacity(n);
    let mut estimates = Vec::with_capacity(n);
    let mut card = 1.0f64;
    let mut cost = 0.0f64;
    while !remaining.is_empty() {
        // Same greedy skeleton as `plan_from_stats`, but candidates are
        // compared by priced operator work instead of raw cardinality:
        // connected atoms first, then the cheapest priced step, then
        // input order.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &i), (_, &j)| {
                let disconnected = |k: usize| {
                    !bound.is_empty() && !q.body[k].variables().iter().any(|v| bound.contains(v))
                };
                let price = |k: usize| {
                    price_step(
                        &q.body[k],
                        &stats[&q.body[k].pred],
                        &bound,
                        card,
                        correction,
                    )
                };
                let ((ei, _, wi), (ej, _, wj)) = (price(i), price(j));
                disconnected(i)
                    .cmp(&disconnected(j))
                    .then(wi.total_cmp(&wj))
                    .then(ei.total_cmp(&ej))
                    .then(i.cmp(&j))
            })
            .map(|(pos, &i)| (pos, i))
            .expect("remaining is non-empty");
        let i = remaining.remove(pos);
        let (est, op, work) = price_step(
            &q.body[i],
            &stats[&q.body[i].pred],
            &bound,
            card,
            correction,
        );
        card = est;
        cost += work;
        order.push(i);
        ops.push(op);
        estimates.push(est);
        for v in q.body[i].variables() {
            bound.insert(v);
        }
    }
    CostPlan {
        order,
        ops,
        estimates,
        cost,
    }
}

/// Execute a CQ with the greedy join order. Since the engine now plans
/// by default this is an alias for [`execute_cq`], kept for callers (and
/// benchmarks) that name the planned path explicitly.
pub fn execute_cq_planned(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
    execute_cq(db, q)
}

/// Execute a union of CQs, planning each member.
pub fn execute_ucq_planned(db: &Database, u: &UnionQuery) -> BTreeSet<Vec<Term>> {
    crate::engine::execute_ucq(db, u)
}

/// Human-readable plan (an `EXPLAIN` for the in-memory engine): the
/// cost-based join order with the physical operator chosen per step.
pub fn explain_cq(db: &Database, q: &ConjunctiveQuery) -> String {
    let plan = plan_cq_cost(db, q);
    let mut out = String::new();
    out.push_str(&format!("plan for {q}\n"));
    for (step, ((&i, est), op)) in plan
        .order
        .iter()
        .zip(&plan.estimates)
        .zip(&plan.ops)
        .enumerate()
    {
        let operand = match op {
            StepOp::Merge { key_col } => format!("{} [col {key_col}]", q.body[i]),
            _ => q.body[i].to_string(),
        };
        out.push_str(&format!(
            "  {step}: {:<5} {:<30} est. rows {:.1}\n",
            op.name(),
            operand,
            est
        ));
    }
    out.push_str(&format!("  total estimated cost {:.1}\n", plan.cost));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nyaya_core::Atom;

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let conv = |a: &&str| {
            if a.chars().next().unwrap().is_uppercase() {
                Term::var(a)
            } else {
                Term::constant(a)
            }
        };
        ConjunctiveQuery::new(
            head.iter().map(conv).collect(),
            body.iter()
                .map(|(p, args)| {
                    let terms: Vec<Term> = args.iter().map(conv).collect();
                    Atom::new(Predicate::new(p, terms.len()), terms)
                })
                .collect(),
        )
    }

    /// big(X,Y): 1000 rows; small(X): 2 rows; the planner must start small.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        for i in 0..1000 {
            db.insert(Atom::new(
                Predicate::new("big", 2),
                vec![
                    Term::constant(&format!("v{i}")),
                    Term::constant(&format!("w{}", i % 10)),
                ],
            ));
        }
        db.insert(Atom::make("small", ["v1"]));
        db.insert(Atom::make("small", ["v2"]));
        db
    }

    #[test]
    fn planner_starts_with_the_selective_atom() {
        let db = skewed_db();
        let q = cq(&["X"], &[("big", &["X", "Y"]), ("small", &["X"])]);
        let plan = plan_cq(&db, &q);
        assert_eq!(plan.order[0], 1, "small/1 first: {plan:?}");
    }

    #[test]
    fn planned_execution_matches_naive() {
        let db = skewed_db();
        for q in [
            cq(&["X"], &[("big", &["X", "Y"]), ("small", &["X"])]),
            cq(&["Y"], &[("big", &["X", "Y"]), ("big", &["Y", "Z"])]),
            cq(&["X"], &[("small", &["X"]), ("big", &["X", "w1"])]),
        ] {
            assert_eq!(
                execute_cq_planned(&db, &q),
                crate::engine::reference::execute_cq_reference(&db, &q),
                "{q}"
            );
        }
    }

    #[test]
    fn constants_increase_selectivity() {
        let db = skewed_db();
        // big(X, w1) filters on a 10-value column: estimate ≈ 100 rows,
        // far below the 1000-row scan.
        let filtered = cq(&["X"], &[("big", &["X", "w1"])]);
        let scan = cq(&["X"], &[("big", &["X", "Y"])]);
        let pf = plan_cq(&db, &filtered);
        let ps = plan_cq(&db, &scan);
        assert!(pf.cost < ps.cost);
    }

    #[test]
    fn connected_atoms_preferred_over_cartesian_products() {
        let mut db = skewed_db();
        for i in 0..5 {
            db.insert(Atom::new(
                Predicate::new("other", 1),
                vec![Term::constant(&format!("o{i}"))],
            ));
        }
        // After small(X), joining big(X,Y) (connected) must precede
        // other(Z) (Cartesian) even though other/1 is tiny.
        let q = cq(
            &["X", "Z"],
            &[("big", &["X", "Y"]), ("other", &["Z"]), ("small", &["X"])],
        );
        let plan = plan_cq(&db, &q);
        assert_eq!(plan.order[0], 2, "{plan:?}");
        assert_eq!(plan.order[1], 0, "{plan:?}");
        assert_eq!(
            execute_cq_planned(&db, &q),
            crate::engine::reference::execute_cq_reference(&db, &q)
        );
    }

    #[test]
    fn explain_mentions_every_atom() {
        let db = skewed_db();
        let q = cq(&["X"], &[("big", &["X", "Y"]), ("small", &["X"])]);
        let text = explain_cq(&db, &q);
        assert!(text.contains("big("));
        assert!(text.contains("small("));
        assert!(text.contains("total estimated cost"));
    }

    #[test]
    fn planned_union_matches_naive_union() {
        let db = skewed_db();
        let u = UnionQuery::new(vec![
            cq(&["X"], &[("big", &["X", "Y"]), ("small", &["X"])]),
            cq(&["X"], &[("small", &["X"])]),
        ]);
        assert_eq!(
            execute_ucq_planned(&db, &u),
            crate::engine::reference::execute_ucq_reference(&db, &u)
        );
    }

    #[test]
    fn empty_tables_plan_cheaply() {
        let db = Database::new();
        let q = cq(&["X"], &[("big", &["X", "Y"]), ("small", &["X"])]);
        let plan = plan_cq(&db, &q);
        assert_eq!(plan.order.len(), 2);
        assert!(execute_cq_planned(&db, &q).is_empty());
    }
}
