//! An indexed in-memory relational engine for (unions of) conjunctive
//! queries.
//!
//! This is the "underlying relational database" substrate of the OBDA
//! architecture (Section 1): rewritings produced by `nyaya-rewrite` are
//! executed here without any ontological reasoning — that is the whole
//! point of FO-rewritability. Because perfect rewritings routinely blow up
//! to hundreds of disjuncts, the engine is built around three ideas:
//!
//! - **Persistent indexes** ([`Database`]): every table keeps one hash
//!   index per column, maintained incrementally on insert. Constant
//!   filters probe an index instead of scanning, and the planner reads
//!   row/distinct counts in O(1).
//! - **Planned join orders** ([`execute_cq`] routes through
//!   [`plan_cq`](crate::plan::plan_cq)): body atoms are evaluated
//!   greedily by estimated output cardinality — constants and
//!   already-bound variables first — instead of textual order.
//! - **A shared build-side cache** ([`BuildCache`]): the disjuncts of a
//!   UCQ rewriting overwhelmingly share access patterns (same predicate,
//!   same join-key positions, same constant filters). The hashed build
//!   side for a pattern is constructed once and reused by every disjunct
//!   — and by every worker thread of [`execute_ucq_parallel`] — the
//!   execution-side analogue of the paper's factorization.
//! - **Cheap snapshots** ([`Database`] is copy-on-write): tables are held
//!   behind [`Arc`]s, so cloning a database is O(#predicates), not
//!   O(#facts). A writer clones, mutates its private copies of only the
//!   touched tables ([`Database::insert`] / [`Database::remove`] maintain
//!   the per-column indexes incrementally, including on retraction), and
//!   publishes the clone — readers holding the old value never observe a
//!   partial batch. [`BuildCache::carried_over`] transplants the build
//!   sides of untouched predicates into the next snapshot's cache.
//!
//! The seed engine (textual order, no indexes, one fresh hash table per
//! atom per disjunct) is preserved verbatim in [`mod@reference`] as the
//! differential-testing oracle and benchmark baseline.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

use nyaya_core::{Atom, ConjunctiveQuery, Predicate, SelectOptions, Symbol, Term, UnionQuery};

use crate::plan::{join_order, plan_cq_cost_corrected, StepOp};

/// One relation: rows plus a hash index per column, a sorted value list
/// per column, and a dedup map.
#[derive(Clone, Default)]
struct Table {
    rows: Vec<Vec<Term>>,
    /// Exact-duplicate guard and row-id lookup, keyed by a 64-bit row
    /// hash instead of a cloned row (the old `HashMap<Vec<Term>, u32>`
    /// duplicated every fact a second time — gigabytes at 10M rows).
    /// Candidates are verified against the stored row, so a hash
    /// collision can never merge two distinct facts; the rare second
    /// row sharing a hash lives in `spill`.
    seen: HashMap<u64, u32>,
    /// Overflow for rows whose hash collides with an occupant of
    /// `seen`: `(row_hash, row_id)` pairs, scanned linearly (a 64-bit
    /// collision among even 10M rows is a handful of entries).
    spill: Vec<(u64, u32)>,
    /// `columns[j][t]` = ids of rows whose `j`-th argument is `t`.
    columns: Vec<HashMap<Term, Vec<u32>>>,
    /// `sorted[j]` = the distinct values of column `j` in canonical order
    /// ([`Term::canonical_cmp`] — name-based, so the order is identical
    /// across process runs and segment reloads). Each entry has a posting
    /// list in `columns[j]`; together they form the sorted index that
    /// answers range filters, ORDER BY / top-k, MIN/MAX, and merge joins.
    sorted: Vec<Vec<Term>>,
}

impl Table {
    fn with_arity(arity: usize) -> Self {
        Table {
            rows: Vec::new(),
            seen: HashMap::new(),
            spill: Vec::new(),
            columns: vec![HashMap::new(); arity],
            sorted: vec![Vec::new(); arity],
        }
    }

    /// Deterministic 64-bit hash of a row (SipHash with fixed keys —
    /// stable within a process; never persisted).
    fn row_hash(args: &[Term]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        args.hash(&mut h);
        h.finish()
    }

    /// The id of the row equal to `args`, if present: probe `seen` by
    /// hash, then verify the candidate against the stored row (and the
    /// spill list on collision).
    fn find_hashed(&self, h: u64, args: &[Term]) -> Option<u32> {
        if let Some(&id) = self.seen.get(&h) {
            if self.rows[id as usize] == args {
                return Some(id);
            }
        }
        self.spill
            .iter()
            .find(|&&(sh, id)| sh == h && self.rows[id as usize] == args)
            .map(|&(_, id)| id)
    }

    /// Register `id` under hash `h`; a second row with the same hash
    /// goes to the spill list.
    fn seen_insert(&mut self, h: u64, id: u32) {
        match self.seen.entry(h) {
            std::collections::hash_map::Entry::Occupied(_) => self.spill.push((h, id)),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
        }
    }

    /// Unregister `(h, id)`, promoting a spilled collision into the
    /// primary map so lookups keep their one-probe fast path.
    fn seen_remove(&mut self, h: u64, id: u32) {
        if self.seen.get(&h) == Some(&id) {
            self.seen.remove(&h);
            if let Some(pos) = self.spill.iter().position(|&(sh, _)| sh == h) {
                let (_, promoted) = self.spill.swap_remove(pos);
                self.seen.insert(h, promoted);
            }
        } else {
            let pos = self
                .spill
                .iter()
                .position(|&(sh, sid)| sh == h && sid == id)
                .expect("row is registered in the dedup set");
            self.spill.swap_remove(pos);
        }
    }

    /// Re-point the dedup entry for hash `h` from row `old` to `new`
    /// (swap-remove renumbering).
    fn seen_reid(&mut self, h: u64, old: u32, new: u32) {
        if self.seen.get(&h) == Some(&old) {
            self.seen.insert(h, new);
            return;
        }
        for entry in &mut self.spill {
            if entry.0 == h && entry.1 == old {
                entry.1 = new;
                return;
            }
        }
        panic!("moved row is registered in the dedup set");
    }

    fn contains(&self, args: &[Term]) -> bool {
        self.find_hashed(Self::row_hash(args), args).is_some()
    }

    fn insert(&mut self, args: Vec<Term>) -> bool {
        let h = Self::row_hash(&args);
        if self.find_hashed(h, &args).is_some() {
            return false;
        }
        let id = u32::try_from(self.rows.len()).expect("table exceeds u32 rows");
        for (j, t) in args.iter().enumerate() {
            match self.columns[j].entry(t.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(vec![id]);
                    // First occurrence of this value in the column: splice
                    // it into the sorted list at its canonical position.
                    let pos = self.sorted[j]
                        .partition_point(|x| x.canonical_cmp(t) == std::cmp::Ordering::Less);
                    self.sorted[j].insert(pos, t.clone());
                }
            }
        }
        self.seen_insert(h, id);
        self.rows.push(args);
        true
    }

    /// Remove one row, keeping every index exact: the removed id is
    /// unlinked from its posting lists (empty lists are dropped so
    /// distinct counts stay truthful, and the value leaves the sorted
    /// list), and the swap-removed last row is re-pointed at its new id
    /// everywhere it is indexed.
    fn remove(&mut self, args: &[Term]) -> bool {
        let h = Self::row_hash(args);
        let Some(id) = self.find_hashed(h, args) else {
            return false;
        };
        self.seen_remove(h, id);
        let last = u32::try_from(self.rows.len() - 1).expect("table exceeds u32 rows");
        let removed = std::mem::take(&mut self.rows[id as usize]);
        for (j, t) in removed.iter().enumerate() {
            if let Some(posting) = self.columns[j].get_mut(t) {
                posting.retain(|&x| x != id);
                if posting.is_empty() {
                    self.columns[j].remove(t);
                    let pos = self.sorted[j]
                        .partition_point(|x| x.canonical_cmp(t) == std::cmp::Ordering::Less);
                    debug_assert!(self.sorted[j][pos] == *t, "sorted list tracks the index");
                    self.sorted[j].remove(pos);
                }
            }
        }
        if id != last {
            for (j, t) in self.rows[last as usize].iter().enumerate() {
                if let Some(posting) = self.columns[j].get_mut(t) {
                    for x in posting.iter_mut() {
                        if *x == last {
                            *x = id;
                        }
                    }
                }
            }
            let moved_hash = Self::row_hash(&self.rows[last as usize]);
            self.seen_reid(moved_hash, last, id);
        }
        self.rows.swap_remove(id as usize);
        true
    }
}

/// An in-memory database: one indexed table of ground tuples per predicate.
///
/// Tables live behind [`Arc`]s, so `Database` is **copy-on-write**:
/// cloning is O(#predicates) and shares every table with the original;
/// the first [`insert`](Self::insert) or [`remove`](Self::remove) into a
/// shared table makes that one table private to the writer. This is the
/// snapshot primitive of the incremental knowledge base — a writer clones
/// the current database, applies a batch, and publishes the clone while
/// readers keep the old value.
#[derive(Clone, Default)]
pub struct Database {
    tables: HashMap<Predicate, Arc<Table>>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a database from ground atoms (deduplicating).
    pub fn from_facts(facts: impl IntoIterator<Item = Atom>) -> Self {
        let mut db = Database::new();
        for f in facts {
            db.insert(f);
        }
        db
    }

    /// Insert a fact, maintaining the per-column indexes incrementally.
    /// Returns `true` if the fact was new. Panics on non-ground atoms.
    pub fn insert(&mut self, fact: Atom) -> bool {
        assert!(fact.is_ground(), "facts must be ground, got {fact}");
        // Duplicate probe first: a no-op insert must not copy a table
        // that is COW-shared with other snapshots.
        if let Some(table) = self.tables.get(&fact.pred) {
            if table.contains(&fact.args) {
                return false;
            }
        }
        let table = self
            .tables
            .entry(fact.pred)
            .or_insert_with(|| Arc::new(Table::with_arity(fact.pred.arity)));
        Arc::make_mut(table).insert(fact.args)
    }

    /// Retract a fact, maintaining the per-column indexes incrementally
    /// (no table rebuild). Returns `true` if the fact was present. A
    /// table emptied by its last retraction is dropped, so
    /// [`predicates`](Self::predicates) keeps its "has at least one
    /// fact" contract.
    pub fn remove(&mut self, fact: &Atom) -> bool {
        let Some(table) = self.tables.get_mut(&fact.pred) else {
            return false;
        };
        // Same COW guard as insert: missing facts must not force a copy.
        if !table.contains(&fact.args) {
            return false;
        }
        let removed = Arc::make_mut(table).remove(&fact.args);
        if table.rows.is_empty() {
            self.tables.remove(&fact.pred);
        }
        removed
    }

    pub fn rows(&self, pred: Predicate) -> &[Vec<Term>] {
        self.tables
            .get(&pred)
            .map(|t| t.rows.as_slice())
            .unwrap_or(&[])
    }

    /// Row ids whose `col`-th argument equals `term` (index lookup).
    pub fn posting(&self, pred: Predicate, col: usize, term: &Term) -> &[u32] {
        self.tables
            .get(&pred)
            .and_then(|t| t.columns.get(col))
            .and_then(|ix| ix.get(term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The distinct values of a column in canonical order — the sorted
    /// index. Each value has a non-empty posting list reachable through
    /// [`posting`](Self::posting). Empty for unknown predicates/columns.
    pub fn sorted_values(&self, pred: Predicate, col: usize) -> &[Term] {
        self.tables
            .get(&pred)
            .and_then(|t| t.sorted.get(col))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct values in a column — O(1), read off the index.
    pub fn distinct(&self, pred: Predicate, col: usize) -> usize {
        self.tables
            .get(&pred)
            .and_then(|t| t.columns.get(col))
            .map(HashMap::len)
            .unwrap_or(0)
    }

    /// Number of rows in one table — O(1).
    pub fn table_len(&self, pred: Predicate) -> usize {
        self.tables.get(&pred).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// Predicates that have at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.tables.keys().copied()
    }

    /// Every stored fact, reconstituted as ground atoms. Iteration order
    /// is unspecified across predicates (stable within one).
    pub fn facts(&self) -> impl Iterator<Item = Atom> + '_ {
        self.tables
            .iter()
            .flat_map(|(p, t)| t.rows.iter().map(move |row| Atom::new(*p, row.clone())))
    }

    /// Does the database contain this exact fact?
    pub fn contains(&self, fact: &Atom) -> bool {
        self.tables
            .get(&fact.pred)
            .is_some_and(|t| t.contains(&fact.args))
    }

    /// Is this predicate's table physically shared (COW) with `other`?
    /// Diagnostic for snapshot tests: untouched tables must stay shared.
    pub fn shares_table(&self, other: &Database, pred: Predicate) -> bool {
        match (self.tables.get(&pred), other.tables.get(&pred)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Adopt `pred`'s table from `other`, Arc-shared (zero row copies;
    /// indexes carry over). No-op when `other` has no such table. The
    /// shard module carves per-shard views with this.
    pub(crate) fn adopt_table_from(&mut self, other: &Database, pred: Predicate) {
        if let Some(table) = other.tables.get(&pred) {
            self.tables.insert(pred, Arc::clone(table));
        }
    }

    pub fn len(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Access patterns and the shared build-side cache
// ---------------------------------------------------------------------

/// The database-wide identity of an atom's access pattern: which
/// predicate is read, which columns form the hash-join key, and which
/// constant/equality filters restrict the rows. Two atoms from different
/// disjuncts with the same pattern can share one hashed build side.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PatternKey {
    pred: Predicate,
    /// Columns hashed as the join key, ascending.
    key_cols: Vec<usize>,
    /// Constant filters `row[col] == term`, sorted by column.
    consts: Vec<(usize, Term)>,
    /// Intra-atom equalities `row[col] == row[earlier_col]`.
    repeats: Vec<(usize, usize)>,
}

impl PatternKey {
    /// Construct a pattern identity directly (used by the IVM delta
    /// joins, which classify slots outside [`execute_cq_ordered`]).
    pub(crate) fn make(
        pred: Predicate,
        key_cols: Vec<usize>,
        consts: Vec<(usize, Term)>,
        repeats: Vec<(usize, usize)>,
    ) -> Self {
        PatternKey {
            pred,
            key_cols,
            consts,
            repeats,
        }
    }
}

/// A hashed build side: row ids of the filtered table, grouped by their
/// join-key tuple (in `key_cols` order). With no key columns there is a
/// single group under the empty key — a cached filtered scan.
pub struct Build {
    groups: HashMap<Vec<Term>, Vec<u32>>,
}

impl Build {
    /// Row ids grouped under `key` (empty slice when the group is absent).
    pub(crate) fn group(&self, key: &[Term]) -> &[u32] {
        self.groups.get(key).map_or(&[], Vec::as_slice)
    }

    fn construct(db: &Database, key: &PatternKey) -> Build {
        let rows = db.rows(key.pred);
        let mut groups: HashMap<Vec<Term>, Vec<u32>> = HashMap::new();
        let mut insert = |id: u32| {
            let row = &rows[id as usize];
            for (col, term) in &key.consts {
                if &row[*col] != term {
                    return;
                }
            }
            for (col, earlier) in &key.repeats {
                if row[*col] != row[*earlier] {
                    return;
                }
            }
            let key_tuple: Vec<Term> = key.key_cols.iter().map(|c| row[*c].clone()).collect();
            groups.entry(key_tuple).or_default().push(id);
        };
        // Drive the scan from the most selective constant's posting list
        // when there is one; otherwise enumerate the table.
        let driver = key
            .consts
            .iter()
            .min_by_key(|(col, term)| db.posting(key.pred, *col, term).len());
        match driver {
            Some((col, term)) => {
                for &id in db.posting(key.pred, *col, term) {
                    insert(id);
                }
            }
            None => {
                for id in 0..rows.len() as u32 {
                    insert(id);
                }
            }
        }
        Build { groups }
    }
}

/// Upper bound on cached build sides per [`BuildCache`]. Serving
/// workloads with unbounded ad-hoc constants (a fresh pattern per
/// constant) would otherwise grow a long-lived snapshot's cache without
/// limit; past the cap, builds are still constructed and used but not
/// retained.
pub const MAX_CACHED_BUILDS: usize = 4096;

/// A concurrent cache of hashed build sides, keyed by [`PatternKey`].
/// One cache is shared across all disjuncts of a UCQ execution (and all
/// worker threads of the parallel path); since PR 3 a cache also
/// persists on each published snapshot, shared by every execution over
/// that epoch. Bounded by [`MAX_CACHED_BUILDS`].
#[derive(Default)]
pub struct BuildCache {
    builds: RwLock<HashMap<PatternKey, Arc<Build>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BuildCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the build side and whether it was served from the cache
    /// — the flag is what makes per-call hit/miss attribution exact
    /// even when many executions share this cache concurrently.
    pub(crate) fn get_or_build(&self, db: &Database, key: &PatternKey) -> (Arc<Build>, bool) {
        // A cache is advisory state: entries are immutable `Arc<Build>`s
        // and a panic mid-insert leaves the map valid, so a poisoned lock
        // is recovered rather than propagated — one panicking reader must
        // not wedge every later execution.
        if let Some(build) = self
            .builds
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(build), true);
        }
        // Built outside the lock: a racing thread may build the same
        // pattern twice; both results are identical and the last insert
        // wins, which is benign.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let build = Arc::new(Build::construct(db, key));
        let mut builds = self.builds.write().unwrap_or_else(PoisonError::into_inner);
        if builds.len() < MAX_CACHED_BUILDS {
            builds.insert(key.clone(), Arc::clone(&build));
        }
        (build, false)
    }

    /// Times a disjunct found its build side already hashed.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Times a build side was constructed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached build sides.
    pub fn len(&self) -> usize {
        self.builds
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The successor cache after a write touching `touched`: entries over
    /// untouched predicates are carried over (their hashed build sides
    /// stay valid — the underlying tables are COW-shared with the new
    /// snapshot), entries over touched predicates are evicted. Returns
    /// the new cache and the eviction count; hit/miss counters start at
    /// zero.
    pub fn carried_over(&self, touched: &HashSet<Predicate>) -> (BuildCache, u64) {
        let builds = self.builds.read().unwrap_or_else(PoisonError::into_inner);
        let mut kept: HashMap<PatternKey, Arc<Build>> = HashMap::with_capacity(builds.len());
        let mut evicted = 0u64;
        for (key, build) in builds.iter() {
            if touched.contains(&key.pred) {
                evicted += 1;
            } else {
                kept.insert(key.clone(), Arc::clone(build));
            }
        }
        (
            BuildCache {
                builds: RwLock::new(kept),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            },
            evicted,
        )
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Per-call hit/miss counters for one (U)CQ execution. Distinct from the
/// [`BuildCache`]'s own lifetime counters: when several executions share
/// one persistent cache concurrently, each execution's tally counts only
/// its own probes, so summing tallies never double-counts.
#[derive(Default)]
pub(crate) struct CacheTally {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    /// Merge-join steps executed (no build side constructed).
    pub(crate) merges: AtomicU64,
}

/// Per-atom table resolution for the join pipeline.
///
/// Ordinary (U)CQ execution reads one database with one build cache.
/// Program evaluation ([`crate::execute_program`]) instead *layers* the
/// derived intensional tables (with their own per-run cache) over the
/// pinned snapshot: atoms over intensional predicates resolve to the
/// overlay — exclusively, matching [`DatalogProgram::expand`] semantics,
/// where a defined predicate is exactly its rules — and every other atom
/// reads the base. The base is never cloned or written.
///
/// [`DatalogProgram::expand`]: nyaya_core::DatalogProgram::expand
pub(crate) enum DataSource<'a> {
    /// One database, one cache: plain (U)CQ execution.
    Single {
        db: &'a Database,
        cache: &'a BuildCache,
    },
    /// Derived intensional tables stacked over a read-only base.
    Layered {
        base: &'a Database,
        base_cache: &'a BuildCache,
        overlay: &'a Database,
        overlay_cache: &'a BuildCache,
        /// Predicates that resolve to the overlay (the program's defined
        /// predicates — even when their derived table is still empty).
        intensional: &'a HashSet<Predicate>,
    },
}

impl<'a> DataSource<'a> {
    pub(crate) fn resolve(&self, pred: Predicate) -> (&'a Database, &'a BuildCache) {
        match self {
            DataSource::Single { db, cache } => (db, cache),
            DataSource::Layered {
                base,
                base_cache,
                overlay,
                overlay_cache,
                intensional,
            } => {
                if intensional.contains(&pred) {
                    (overlay, overlay_cache)
                } else {
                    (base, base_cache)
                }
            }
        }
    }
}

/// Classification of one atom argument slot during pipeline construction.
enum Slot {
    /// Variable already bound: join key (holds the intermediate-tuple
    /// index it probes with).
    Bound(usize),
    /// First occurrence of a variable in this pipeline: extends tuples.
    Fresh,
    /// Non-variable term: equality filter, folded into the build.
    Constant(Term),
    /// Repeat of a fresh variable earlier in this atom (earlier column).
    Repeat(usize),
}

/// Execute one CQ with atoms in `order`, resolving each atom's table and
/// build cache through `src` (single database or layered program view).
///
/// `ops` optionally carries the cost planner's per-step operator choice
/// (parallel to `order`): a [`StepOp::Merge`] step joins through the
/// sorted column index instead of a hashed build side. With `ops == None`
/// every step hash-joins — the preserved greedy execution mode.
pub(crate) fn execute_cq_ordered(
    src: &DataSource<'_>,
    q: &ConjunctiveQuery,
    order: &[usize],
    ops: Option<&[StepOp]>,
    tally: &CacheTally,
) -> BTreeSet<Vec<Term>> {
    debug_assert_eq!(order.len(), q.body.len());
    let mut var_index: HashMap<Symbol, usize> = HashMap::new();
    let mut current: Vec<Vec<Term>> = vec![Vec::new()];

    for (step, &atom_idx) in order.iter().enumerate() {
        let atom = &q.body[atom_idx];
        let (db, cache) = src.resolve(atom.pred);
        if current.is_empty() {
            return BTreeSet::new();
        }

        // Classify slots against the variables bound so far.
        let mut slots: Vec<Slot> = Vec::with_capacity(atom.args.len());
        let mut fresh_positions: HashMap<Symbol, usize> = HashMap::new();
        for (j, t) in atom.args.iter().enumerate() {
            match t {
                Term::Var(v) => {
                    if let Some(&idx) = var_index.get(v) {
                        slots.push(Slot::Bound(idx));
                    } else if let Some(&k) = fresh_positions.get(v) {
                        slots.push(Slot::Repeat(k));
                    } else {
                        fresh_positions.insert(*v, j);
                        slots.push(Slot::Fresh);
                    }
                }
                other => slots.push(Slot::Constant(other.clone())),
            }
        }

        // Derive the pattern identity and fetch/build its hashed side.
        let mut key_cols: Vec<usize> = Vec::new();
        let mut probe_indices: Vec<usize> = Vec::new();
        let mut consts: Vec<(usize, Term)> = Vec::new();
        let mut repeats: Vec<(usize, usize)> = Vec::new();
        for (j, s) in slots.iter().enumerate() {
            match s {
                Slot::Bound(idx) => {
                    key_cols.push(j);
                    probe_indices.push(*idx);
                }
                Slot::Constant(c) => consts.push((j, c.clone())),
                Slot::Repeat(k) => repeats.push((j, *k)),
                Slot::Fresh => {}
            }
        }
        // A planner-chosen merge step is only honored when the executor's
        // own slot classification confirms eligibility (single bound key,
        // no constants, no repeats) — a mismatch falls back to hash.
        let merge_col = match ops.and_then(|o| o.get(step)) {
            Some(StepOp::Merge { key_col })
                if key_cols == [*key_col] && consts.is_empty() && repeats.is_empty() =>
            {
                Some(*key_col)
            }
            _ => None,
        };

        let rows = db.rows(atom.pred);
        let mut next: Vec<Vec<Term>> = Vec::new();
        let extend = |tuple: &Vec<Term>, row: &Vec<Term>, next: &mut Vec<Vec<Term>>| {
            let mut extended = tuple.clone();
            for (j, s) in slots.iter().enumerate() {
                if let Slot::Fresh = s {
                    extended.push(row[j].clone());
                }
            }
            next.push(extended);
        };
        if let Some(key_col) = merge_col {
            // Merge join: sort the intermediate tuples by their key value
            // canonically and sweep the column's sorted distinct list once
            // in lockstep; each matching value's posting list is exactly
            // the joining rows. No build side is constructed or cached.
            tally.merges.fetch_add(1, Ordering::Relaxed);
            let probe_idx = probe_indices[0];
            let sorted = db.sorted_values(atom.pred, key_col);
            let mut probe_order: Vec<usize> = (0..current.len()).collect();
            probe_order
                .sort_by(|&a, &b| current[a][probe_idx].canonical_cmp(&current[b][probe_idx]));
            let mut si = 0usize;
            for &ti in &probe_order {
                let v = &current[ti][probe_idx];
                while si < sorted.len() && sorted[si].canonical_cmp(v) == std::cmp::Ordering::Less {
                    si += 1;
                }
                if si < sorted.len() && sorted[si] == *v {
                    for &id in db.posting(atom.pred, key_col, v) {
                        extend(&current[ti], &rows[id as usize], &mut next);
                    }
                }
            }
        } else {
            let pattern = PatternKey {
                pred: atom.pred,
                key_cols,
                consts,
                repeats,
            };
            let (build, was_hit) = cache.get_or_build(db, &pattern);
            if was_hit {
                tally.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                tally.misses.fetch_add(1, Ordering::Relaxed);
            }
            for tuple in &current {
                let probe_key: Vec<Term> = probe_indices
                    .iter()
                    .map(|idx| tuple[*idx].clone())
                    .collect();
                if let Some(ids) = build.groups.get(&probe_key) {
                    for &id in ids {
                        extend(tuple, &rows[id as usize], &mut next);
                    }
                }
            }
        }
        // Register fresh variables in first-position order (matches the
        // push order above).
        let mut fresh_sorted: Vec<(usize, Symbol)> =
            fresh_positions.iter().map(|(v, j)| (*j, *v)).collect();
        fresh_sorted.sort_unstable();
        for (_, v) in fresh_sorted {
            let idx = var_index.len();
            var_index.insert(v, idx);
        }
        current = next;
    }

    // Project the head.
    let mut out = BTreeSet::new();
    for tuple in current {
        let projected: Vec<Term> = q
            .head
            .iter()
            .map(|t| match t {
                Term::Var(v) => tuple[var_index[v]].clone(),
                other => other.clone(),
            })
            .collect();
        out.insert(projected);
    }
    out
}

/// Execute a CQ with a cost-planned join order and per-step operators.
///
/// Atoms are ordered and priced by the cost-based planner
/// ([`plan_cq_cost`](crate::plan::plan_cq_cost)), which picks hash or
/// merge per join; set semantics make the result order-insensitive, so
/// planning only changes intermediate sizes and per-step work.
pub fn execute_cq(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
    execute_cq_with(db, q, &BuildCache::new())
}

/// [`execute_cq`] with a caller-supplied build cache — the entry point
/// for executing many CQs that share access patterns.
pub fn execute_cq_with(
    db: &Database,
    q: &ConjunctiveQuery,
    cache: &BuildCache,
) -> BTreeSet<Vec<Term>> {
    let plan = plan_cq_cost_corrected(db, q, 1.0);
    execute_cq_ordered(
        &DataSource::Single { db, cache },
        q,
        &plan.order,
        Some(&plan.ops),
        &CacheTally::default(),
    )
}

/// Execute a CQ with the preserved greedy planner's join order and
/// hash-only operators — the pre-cost-model execution mode, kept as the
/// differential oracle for `tests/planner_differential.rs`.
pub fn execute_cq_greedy(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
    let order = join_order(db, q);
    execute_cq_ordered(
        &DataSource::Single {
            db,
            cache: &BuildCache::new(),
        },
        q,
        &order,
        None,
        &CacheTally::default(),
    )
}

/// Execute a union with the preserved greedy planner (hash joins only,
/// one private build cache) — the differential oracle execution mode.
pub fn execute_ucq_greedy(db: &Database, u: &UnionQuery) -> BTreeSet<Vec<Term>> {
    let cache = BuildCache::new();
    let tally = CacheTally::default();
    let mut out = BTreeSet::new();
    for q in u.iter() {
        let order = join_order(db, q);
        out.extend(execute_cq_ordered(
            &DataSource::Single { db, cache: &cache },
            q,
            &order,
            None,
            &tally,
        ));
    }
    out
}

/// Counters from one (U)CQ execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Disjuncts evaluated.
    pub disjuncts: usize,
    /// Worker threads actually used (1 = sequential).
    pub threads: usize,
    /// Answer tuples produced (after union-level dedup).
    pub rows: usize,
    /// Build sides served from the shared cache.
    pub build_cache_hits: u64,
    /// Build sides constructed.
    pub build_cache_misses: u64,
    /// Merge-join steps executed through the sorted index.
    pub merge_joins: u64,
    /// The cost planner's summed result-cardinality estimate across
    /// disjuncts (rounded) — compared against `rows` by the knowledge
    /// base's cardinality-feedback loop.
    pub estimated_rows: u64,
    /// Range filters answered by a sorted-index scan.
    pub range_index_scans: u64,
    /// ORDER BY / LIMIT queries answered by a top-k early-exit walk.
    pub topk_early_exits: u64,
    /// Aggregates answered in O(1) off the index (COUNT / MIN / MAX).
    pub aggregate_pushdowns: u64,
    /// Disjuncts whose filters could not use an index and were applied
    /// as a planned row-by-row post-filter over the disjunct's answers.
    pub filter_fallback_scans: u64,
    /// Per-shard disjunct groups executed by the scatter-gather path
    /// (0 when execution was unsharded).
    pub shard_scatter_ops: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Execute a union of CQs (set semantics) with one shared build cache.
pub fn execute_ucq(db: &Database, u: &UnionQuery) -> BTreeSet<Vec<Term>> {
    execute_ucq_instrumented(db, u, 1).0
}

/// Execute a union of CQs across `threads` worker threads.
///
/// Section 2 observes that the CQs of a UCQ rewriting "are independent
/// from each other, and thus they can be easily executed in parallel
/// threads". Workers evaluate contiguous chunks of the union and share
/// one [`BuildCache`], so a build side hashed by any worker is reused by
/// all of them; results are merged under set semantics.
pub fn execute_ucq_parallel(db: &Database, u: &UnionQuery, threads: usize) -> BTreeSet<Vec<Term>> {
    execute_ucq_instrumented(db, u, threads).0
}

/// Execute a union with an explicit thread budget, returning counters.
/// Uses a private [`BuildCache`] scoped to this one execution; serving
/// workloads that re-execute over an unchanged database should pass a
/// persistent cache to [`execute_ucq_shared`] instead.
pub fn execute_ucq_instrumented(
    db: &Database,
    u: &UnionQuery,
    threads: usize,
) -> (BTreeSet<Vec<Term>>, ExecMetrics) {
    execute_ucq_shared(db, u, threads, &BuildCache::new())
}

/// Execute a union against a caller-owned [`BuildCache`] that outlives
/// the call — build sides hashed by any earlier execution over the same
/// database state are reused here, and the ones this call constructs are
/// left behind for the next.
///
/// The returned [`ExecMetrics`] report this call's own hit/miss counts,
/// tallied per probe rather than diffed off the shared counters, so the
/// attribution stays exact even when many executions share one cache
/// concurrently.
pub fn execute_ucq_shared(
    db: &Database,
    u: &UnionQuery,
    threads: usize,
    cache: &BuildCache,
) -> (BTreeSet<Vec<Term>>, ExecMetrics) {
    execute_ucq_corrected(db, u, threads, cache, 1.0)
}

/// [`execute_ucq_shared`] with a cardinality-feedback factor applied to
/// the cost planner's join estimates (see
/// [`plan_cq_cost_corrected`]).
pub fn execute_ucq_corrected(
    db: &Database,
    u: &UnionQuery,
    threads: usize,
    cache: &BuildCache,
    correction: f64,
) -> (BTreeSet<Vec<Term>>, ExecMetrics) {
    let start = Instant::now();
    let tally = CacheTally::default();
    let estimated = AtomicU64::new(0);
    // Clamp to the union size, then to the number of workers chunking
    // actually produces: ceil-division can leave fewer (non-empty) chunks
    // than the requested budget, and the metrics must report the workers
    // that really ran.
    let requested = threads.clamp(1, u.cqs.len().max(1));
    let chunk_size = u.cqs.len().div_ceil(requested.max(1)).max(1);
    let threads = if requested <= 1 {
        1
    } else {
        u.cqs.len().div_ceil(chunk_size)
    };
    let mut out = BTreeSet::new();
    let run_cq = |q: &ConjunctiveQuery| {
        let plan = plan_cq_cost_corrected(db, q, correction);
        estimated.fetch_add(plan.result_estimate().round() as u64, Ordering::Relaxed);
        execute_cq_ordered(
            &DataSource::Single { db, cache },
            q,
            &plan.order,
            Some(&plan.ops),
            &tally,
        )
    };
    if threads <= 1 {
        for q in u.iter() {
            out.extend(run_cq(q));
        }
    } else {
        std::thread::scope(|scope| {
            let run_cq = &run_cq;
            let handles: Vec<_> = u
                .cqs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut local = BTreeSet::new();
                        for q in chunk {
                            local.extend(run_cq(q));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("UCQ worker panicked"));
            }
        });
    }
    let metrics = ExecMetrics {
        disjuncts: u.cqs.len(),
        threads,
        rows: out.len(),
        build_cache_hits: tally.hits.load(Ordering::Relaxed),
        build_cache_misses: tally.misses.load(Ordering::Relaxed),
        merge_joins: tally.merges.load(Ordering::Relaxed),
        estimated_rows: estimated.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        ..ExecMetrics::default()
    };
    (out, metrics)
}

/// Does a Boolean (U)CQ hold over the database?
pub fn execute_bcq(db: &Database, q: &ConjunctiveQuery) -> bool {
    !execute_cq(db, q).is_empty()
}

// ---------------------------------------------------------------------
// Shaped execution: filters, ORDER BY / LIMIT, aggregates
// ---------------------------------------------------------------------

/// Head-to-column mapping for a single-atom disjunct whose atom arguments
/// are pairwise-distinct variables and whose head terms are all variables
/// of that atom. Such a disjunct's answers are a pure projection of the
/// table, which lets filters, ORDER BY / top-k, and aggregates run
/// directly off the sorted column indexes.
struct DirectAccess {
    pred: Predicate,
    /// `cols[i]` = the atom column that head position `i` projects.
    cols: Vec<usize>,
    /// The head is a permutation of all atom columns, so the answer count
    /// equals the row count (needed for COUNT pushdown).
    bijective: bool,
}

fn direct_access(q: &ConjunctiveQuery) -> Option<DirectAccess> {
    let [atom] = q.body.as_slice() else {
        return None;
    };
    let mut pos: HashMap<Symbol, usize> = HashMap::new();
    for (j, t) in atom.args.iter().enumerate() {
        if pos.insert(t.as_var()?, j).is_some() {
            return None;
        }
    }
    let cols = q
        .head
        .iter()
        .map(|t| t.as_var().and_then(|v| pos.get(&v).copied()))
        .collect::<Option<Vec<usize>>>()?;
    let distinct: HashSet<usize> = cols.iter().copied().collect();
    let bijective = cols.len() == atom.args.len() && distinct.len() == cols.len();
    Some(DirectAccess {
        pred: atom.pred,
        cols,
        bijective,
    })
}

/// Execute a union with [`SelectOptions`] result shaping — filters, ORDER
/// BY / LIMIT, aggregates — returning the ordered result rows.
///
/// Bit-identical to [`apply_select`](nyaya_core::select::apply_select) over the query's answer set (the
/// reference semantics), but routed through the sorted column indexes
/// whenever the query shape allows:
///
/// - **aggregate pushdown**: unfiltered global COUNT / MIN / MAX over a
///   projection disjunct read off the index in O(1);
/// - **top-k early exit**: `ORDER BY col LIMIT k` walks the sorted value
///   list from the right end and stops after `k` rows;
/// - **range index scan**: a `<`/`<=`/`>`/`>=` filter binary-searches the
///   sorted value list and touches only qualifying postings.
///
/// Anything else executes normally and applies the filters as a *planned*
/// row-by-row post-filter, reported in
/// [`ExecMetrics::filter_fallback_scans`] — the stat that closes the old
/// silent-fallback gap. Errors on out-of-range column indices.
pub fn execute_ucq_select(
    db: &Database,
    u: &UnionQuery,
    sel: &SelectOptions,
    threads: usize,
    cache: &BuildCache,
) -> Result<(Vec<Vec<Term>>, ExecMetrics), String> {
    execute_ucq_select_corrected(db, u, sel, threads, cache, 1.0)
}

/// [`execute_ucq_select`] with a cardinality-feedback factor for the cost
/// planner (see [`plan_cq_cost_corrected`]).
pub fn execute_ucq_select_corrected(
    db: &Database,
    u: &UnionQuery,
    sel: &SelectOptions,
    threads: usize,
    cache: &BuildCache,
    correction: f64,
) -> Result<(Vec<Vec<Term>>, ExecMetrics), String> {
    use nyaya_core::select::{apply_select, sort_rows, AggFunc, FilterOp};
    use nyaya_core::term::canonical_cmp_rows;

    let head_arity = u.cqs.first().map(|q| q.head.len()).unwrap_or(0);
    sel.validate(head_arity)?;
    let start = Instant::now();
    if sel.is_plain() {
        let (set, mut metrics) = execute_ucq_corrected(db, u, threads, cache, correction);
        let mut rows: Vec<Vec<Term>> = set.into_iter().collect();
        rows.sort_by(|a, b| canonical_cmp_rows(a, b));
        metrics.elapsed = start.elapsed();
        return Ok((rows, metrics));
    }

    // Index fast paths: one disjunct reading one table as a projection.
    if let [q] = u.cqs.as_slice() {
        if let Some(da) = direct_access(q) {
            // Aggregate pushdown: global COUNT/MIN/MAX with no filters is
            // answered off the index without touching a row.
            if let Some(agg) = &sel.aggregate {
                if sel.filters.is_empty() && agg.group_by.is_empty() {
                    let pushed: Option<Vec<Vec<Term>>> = match agg.func {
                        AggFunc::Count if da.bijective => Some(vec![vec![Term::constant(
                            &db.table_len(da.pred).to_string(),
                        )]]),
                        AggFunc::Min(c) => Some(
                            db.sorted_values(da.pred, da.cols[c])
                                .first()
                                .map(|v| vec![v.clone()])
                                .into_iter()
                                .collect(),
                        ),
                        AggFunc::Max(c) => Some(
                            db.sorted_values(da.pred, da.cols[c])
                                .last()
                                .map(|v| vec![v.clone()])
                                .into_iter()
                                .collect(),
                        ),
                        _ => None,
                    };
                    if let Some(mut out) = pushed {
                        sort_rows(&mut out, &sel.order_by);
                        if let Some(k) = sel.limit {
                            out.truncate(k);
                        }
                        let metrics = ExecMetrics {
                            disjuncts: 1,
                            threads: 1,
                            rows: out.len(),
                            aggregate_pushdowns: 1,
                            elapsed: start.elapsed(),
                            ..ExecMetrics::default()
                        };
                        return Ok((out, metrics));
                    }
                }
            }
            // Top-k early exit: ORDER BY one column with a LIMIT walks the
            // sorted value list in key order and stops at k rows. Filters
            // (all on head columns) are checked per projected row, which
            // keeps the walk exact.
            if let (None, &[(_, _)], Some(k)) = (&sel.aggregate, sel.order_by.as_slice(), sel.limit)
            {
                let (oc, dir) = sel.order_by[0];
                let col = da.cols[oc];
                let sorted = db.sorted_values(da.pred, col);
                let rows = db.rows(da.pred);
                let values: Box<dyn Iterator<Item = &Term>> = match dir {
                    nyaya_core::select::SortDir::Asc => Box::new(sorted.iter()),
                    nyaya_core::select::SortDir::Desc => Box::new(sorted.iter().rev()),
                };
                let mut out: Vec<Vec<Term>> = Vec::new();
                for v in values {
                    if out.len() >= k {
                        break;
                    }
                    // Rows within one key value tie-break by whole-row
                    // canonical order — the reference semantics' tiebreak.
                    let mut group: Vec<Vec<Term>> = db
                        .posting(da.pred, col, v)
                        .iter()
                        .map(|&id| {
                            let row = &rows[id as usize];
                            da.cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>()
                        })
                        .filter(|r| sel.filters.iter().all(|f| f.accepts(r)))
                        .collect();
                    group.sort_by(|a, b| canonical_cmp_rows(a, b));
                    group.dedup();
                    out.extend(group);
                }
                out.truncate(k);
                let metrics = ExecMetrics {
                    disjuncts: 1,
                    threads: 1,
                    rows: out.len(),
                    topk_early_exits: 1,
                    elapsed: start.elapsed(),
                    ..ExecMetrics::default()
                };
                return Ok((out, metrics));
            }
            // Range index scan: drive the first range filter through a
            // binary search on the sorted value list; only qualifying
            // postings are touched. Remaining filters are checked per row;
            // ordering/limit/aggregation finish on the filtered set.
            if let Some(f) = sel.filters.iter().find(|f| f.op != FilterOp::Ne) {
                let col = da.cols[f.column];
                let sorted = db.sorted_values(da.pred, col);
                let rows = db.rows(da.pred);
                let lo = match f.op {
                    FilterOp::Gt => sorted.partition_point(|x| {
                        x.canonical_cmp(&f.value) != std::cmp::Ordering::Greater
                    }),
                    FilterOp::Ge => sorted
                        .partition_point(|x| x.canonical_cmp(&f.value) == std::cmp::Ordering::Less),
                    _ => 0,
                };
                let hi = match f.op {
                    FilterOp::Lt => sorted
                        .partition_point(|x| x.canonical_cmp(&f.value) == std::cmp::Ordering::Less),
                    FilterOp::Le => sorted.partition_point(|x| {
                        x.canonical_cmp(&f.value) != std::cmp::Ordering::Greater
                    }),
                    _ => sorted.len(),
                };
                let mut set: BTreeSet<Vec<Term>> = BTreeSet::new();
                for v in &sorted[lo..hi] {
                    for &id in db.posting(da.pred, col, v) {
                        let row = &rows[id as usize];
                        let projected: Vec<Term> =
                            da.cols.iter().map(|&c| row[c].clone()).collect();
                        if sel.filters.iter().all(|f| f.accepts(&projected)) {
                            set.insert(projected);
                        }
                    }
                }
                let rest = SelectOptions {
                    filters: Vec::new(),
                    ..sel.clone()
                };
                let out = apply_select(set, &rest);
                let metrics = ExecMetrics {
                    disjuncts: 1,
                    threads: 1,
                    rows: out.len(),
                    range_index_scans: 1,
                    elapsed: start.elapsed(),
                    ..ExecMetrics::default()
                };
                return Ok((out, metrics));
            }
        }
    }

    // General path: execute each disjunct with the cost planner, applying
    // filters per disjunct — statically when the head term at the filtered
    // column is ground (the whole disjunct is pruned without executing),
    // row-by-row otherwise. The row-by-row case is a *planned* post-filter
    // and is counted in `filter_fallback_scans`.
    let tally = CacheTally::default();
    let estimated = AtomicU64::new(0);
    let fallback_scans = AtomicU64::new(0);
    let requested = threads.clamp(1, u.cqs.len().max(1));
    let chunk_size = u.cqs.len().div_ceil(requested.max(1)).max(1);
    let threads_used = if requested <= 1 {
        1
    } else {
        u.cqs.len().div_ceil(chunk_size)
    };
    let run_cq = |q: &ConjunctiveQuery| -> BTreeSet<Vec<Term>> {
        let mut dynamic: Vec<&nyaya_core::select::ColumnFilter> = Vec::new();
        for f in &sel.filters {
            let head_term = &q.head[f.column];
            if head_term.is_ground() {
                if !f.op.accepts(head_term.canonical_cmp(&f.value)) {
                    // Statically refuted: this disjunct cannot contribute.
                    return BTreeSet::new();
                }
            } else {
                dynamic.push(f);
            }
        }
        if !dynamic.is_empty() {
            fallback_scans.fetch_add(1, Ordering::Relaxed);
        }
        let plan = plan_cq_cost_corrected(db, q, correction);
        estimated.fetch_add(plan.result_estimate().round() as u64, Ordering::Relaxed);
        let answers = execute_cq_ordered(
            &DataSource::Single { db, cache },
            q,
            &plan.order,
            Some(&plan.ops),
            &tally,
        );
        if dynamic.is_empty() {
            answers
        } else {
            answers
                .into_iter()
                .filter(|r| dynamic.iter().all(|f| f.accepts(r)))
                .collect()
        }
    };
    let mut set = BTreeSet::new();
    if threads_used <= 1 {
        for q in u.iter() {
            set.extend(run_cq(q));
        }
    } else {
        std::thread::scope(|scope| {
            let run_cq = &run_cq;
            let handles: Vec<_> = u
                .cqs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut local = BTreeSet::new();
                        for q in chunk {
                            local.extend(run_cq(q));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                set.extend(handle.join().expect("UCQ worker panicked"));
            }
        });
    }
    let rest = SelectOptions {
        filters: Vec::new(),
        ..sel.clone()
    };
    let out = apply_select(set, &rest);
    let metrics = ExecMetrics {
        disjuncts: u.cqs.len(),
        threads: threads_used,
        rows: out.len(),
        build_cache_hits: tally.hits.load(Ordering::Relaxed),
        build_cache_misses: tally.misses.load(Ordering::Relaxed),
        merge_joins: tally.merges.load(Ordering::Relaxed),
        estimated_rows: estimated.load(Ordering::Relaxed),
        filter_fallback_scans: fallback_scans.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        ..ExecMetrics::default()
    };
    Ok((out, metrics))
}

// ---------------------------------------------------------------------
// The seed engine, kept as differential oracle and benchmark baseline
// ---------------------------------------------------------------------

/// The pre-optimization engine: textual atom order, no persistent
/// indexes, and a fresh hash table over the full relation for every atom
/// of every disjunct. Kept verbatim as the known-good oracle for the
/// differential harness and as the baseline the execution benchmark
/// measures against.
pub mod reference {
    use super::*;

    /// Seed-semantics CQ evaluation (left-to-right hash-join pipeline).
    pub fn execute_cq_reference(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
        let mut var_index: HashMap<Symbol, usize> = HashMap::new();
        let mut current: Vec<Vec<Term>> = vec![Vec::new()];

        for atom in &q.body {
            if current.is_empty() {
                return BTreeSet::new();
            }
            let rows = db.rows(atom.pred);

            let mut slots: Vec<Slot> = Vec::with_capacity(atom.args.len());
            let mut fresh_positions: HashMap<Symbol, usize> = HashMap::new();
            for (j, t) in atom.args.iter().enumerate() {
                match t {
                    Term::Var(v) => {
                        if let Some(&idx) = var_index.get(v) {
                            slots.push(Slot::Bound(idx));
                        } else if let Some(&k) = fresh_positions.get(v) {
                            slots.push(Slot::Repeat(k));
                        } else {
                            fresh_positions.insert(*v, j);
                            slots.push(Slot::Fresh);
                        }
                    }
                    other => slots.push(Slot::Constant(other.clone())),
                }
            }

            let key_positions: Vec<(usize, usize)> = slots
                .iter()
                .enumerate()
                .filter_map(|(j, s)| match s {
                    Slot::Bound(idx) => Some((j, *idx)),
                    _ => None,
                })
                .collect();
            let mut hashed: HashMap<Vec<&Term>, Vec<&Vec<Term>>> = HashMap::new();
            'rows: for row in rows {
                for (j, s) in slots.iter().enumerate() {
                    match s {
                        Slot::Constant(c) if &row[j] != c => continue 'rows,
                        Slot::Repeat(k) if row[j] != row[*k] => continue 'rows,
                        _ => {}
                    }
                }
                let key: Vec<&Term> = key_positions.iter().map(|(j, _)| &row[*j]).collect();
                hashed.entry(key).or_default().push(row);
            }

            let mut next: Vec<Vec<Term>> = Vec::new();
            for tuple in &current {
                let key: Vec<&Term> = key_positions.iter().map(|(_, idx)| &tuple[*idx]).collect();
                if let Some(matches) = hashed.get(&key) {
                    for row in matches {
                        let mut extended = tuple.clone();
                        for (j, s) in slots.iter().enumerate() {
                            if let Slot::Fresh = s {
                                extended.push(row[j].clone());
                            }
                        }
                        next.push(extended);
                    }
                }
            }
            let mut fresh_sorted: Vec<(usize, Symbol)> =
                fresh_positions.iter().map(|(v, j)| (*j, *v)).collect();
            fresh_sorted.sort_unstable();
            for (_, v) in fresh_sorted {
                let idx = var_index.len();
                var_index.insert(v, idx);
            }
            current = next;
        }

        let mut out = BTreeSet::new();
        for tuple in current {
            let projected: Vec<Term> = q
                .head
                .iter()
                .map(|t| match t {
                    Term::Var(v) => tuple[var_index[v]].clone(),
                    other => other.clone(),
                })
                .collect();
            out.insert(projected);
        }
        out
    }

    /// Seed-semantics UCQ evaluation: one disjunct at a time, no sharing.
    pub fn execute_ucq_reference(db: &Database, u: &UnionQuery) -> BTreeSet<Vec<Term>> {
        let mut out = BTreeSet::new();
        for q in u.iter() {
            out.extend(execute_cq_reference(db, q));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dedup set must stay exact even when distinct rows share a
    /// 64-bit hash: candidates are verified against the stored rows and
    /// collisions spill. Forced here by registering three rows under one
    /// artificial hash — a real SipHash collision is not constructible
    /// in a test.
    #[test]
    fn dedup_spill_survives_hash_collisions() {
        let mut t = Table::with_arity(1);
        assert!(t.insert(vec![Term::constant("a")]));
        assert!(t.insert(vec![Term::constant("b")]));
        assert!(t.insert(vec![Term::constant("c")]));
        t.seen.clear();
        t.spill.clear();
        for id in 0..3 {
            t.seen_insert(0x42, id);
        }
        assert_eq!(t.seen.len(), 1, "one primary occupant per hash");
        assert_eq!(t.spill.len(), 2, "collisions spill");
        assert_eq!(t.find_hashed(0x42, &[Term::constant("a")]), Some(0));
        assert_eq!(t.find_hashed(0x42, &[Term::constant("b")]), Some(1));
        assert_eq!(t.find_hashed(0x42, &[Term::constant("c")]), Some(2));
        assert_eq!(t.find_hashed(0x42, &[Term::constant("d")]), None);
        // Removing the primary occupant promotes a spilled entry so the
        // fast path stays populated.
        t.seen_remove(0x42, 0);
        assert_eq!(t.seen.get(&0x42), Some(&1));
        assert_eq!(t.spill.len(), 1);
        assert_eq!(t.find_hashed(0x42, &[Term::constant("c")]), Some(2));
        // Removing a spilled entry leaves the primary untouched.
        t.seen_remove(0x42, 2);
        assert!(t.spill.is_empty());
        assert_eq!(t.find_hashed(0x42, &[Term::constant("b")]), Some(1));
        // Swap-remove renumbering rewrites whichever slot holds the id.
        t.seen_reid(0x42, 1, 0);
        assert_eq!(t.seen.get(&0x42), Some(&0));
    }

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    fn sample_db() -> Database {
        Database::from_facts([
            Atom::make("list_comp", ["ibm_s", "nasdaq"]),
            Atom::make("list_comp", ["sap_s", "dax"]),
            Atom::make("stock_portf", ["fund1", "ibm_s", "q10"]),
            Atom::make("stock_portf", ["fund2", "sap_s", "q20"]),
            Atom::make("has_stock", ["ibm_s", "fund3"]),
        ])
    }

    #[test]
    fn single_table_scan() {
        let db = sample_db();
        let q = cq(&["A"], &[("list_comp", &["A", "B"])]);
        let ans = execute_cq(&db, &q);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn hash_join_on_shared_variable() {
        let db = sample_db();
        // q(A,B) ← list_comp(A,C), stock_portf(B,A,D)
        let q = cq(
            &["A", "B"],
            &[
                ("list_comp", &["A", "C"]),
                ("stock_portf", &["B", "A", "D"]),
            ],
        );
        let ans = execute_cq(&db, &q);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Term::constant("ibm_s"), Term::constant("fund1")]));
    }

    #[test]
    fn constant_filters() {
        let db = sample_db();
        let q = cq(&["A"], &[("list_comp", &["A", "nasdaq"])]);
        let ans = execute_cq(&db, &q);
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut db = Database::new();
        db.insert(Atom::make("t", ["a", "a"]));
        db.insert(Atom::make("t", ["a", "b"]));
        let q = cq(&["A"], &[("t", &["A", "A"])]);
        assert_eq!(execute_cq(&db, &q).len(), 1);
    }

    #[test]
    fn empty_result_on_failed_join() {
        let db = sample_db();
        let q = cq(
            &["A"],
            &[("list_comp", &["A", "B"]), ("has_stock", &["B", "C"])],
        );
        assert!(execute_cq(&db, &q).is_empty());
        assert!(!execute_bcq(
            &db,
            &cq(
                &[],
                &[("list_comp", &["A", "B"]), ("has_stock", &["B", "C"])]
            )
        ));
    }

    #[test]
    fn union_accumulates_and_dedups() {
        let db = sample_db();
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(&["A"], &[("stock_portf", &["C", "A", "D"])]),
            cq(&["A"], &[("list_comp", &["A", "nasdaq"])]), // subset of first
        ]);
        let ans = execute_ucq(&db, &u);
        assert_eq!(ans.len(), 2); // ibm_s, sap_s
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let mut db = Database::new();
        for _ in 0..3 {
            db.insert(Atom::make("p", ["a", "b"]));
        }
        assert_eq!(db.len(), 1);
        assert_eq!(
            db.posting(Predicate::new("p", 2), 0, &Term::constant("a")),
            &[0]
        );
    }

    #[test]
    fn indexes_answer_postings_and_distinct_counts() {
        let db = sample_db();
        let lc = Predicate::new("list_comp", 2);
        assert_eq!(db.table_len(lc), 2);
        assert_eq!(db.distinct(lc, 0), 2);
        assert_eq!(db.posting(lc, 1, &Term::constant("nasdaq")).len(), 1);
        // Unknown predicate/column/value: empty, not a panic.
        assert_eq!(
            db.posting(Predicate::new("nope", 1), 0, &Term::constant("x")),
            &[] as &[u32]
        );
        assert_eq!(db.distinct(lc, 7), 0);
    }

    #[test]
    fn build_cache_is_shared_across_disjuncts() {
        let db = sample_db();
        // Three disjuncts with the same access pattern on list_comp: one
        // build, two hits.
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(&["C"], &[("list_comp", &["C", "D"])]),
            cq(&["X"], &[("list_comp", &["X", "Y"])]),
        ]);
        let (ans, metrics) = execute_ucq_instrumented(&db, &u, 1);
        assert_eq!(ans.len(), 2);
        assert_eq!(metrics.build_cache_misses, 1, "{metrics:?}");
        assert_eq!(metrics.build_cache_hits, 2, "{metrics:?}");
        assert_eq!(metrics.disjuncts, 3);
        assert_eq!(metrics.rows, 2);
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let db = sample_db();
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(&["A"], &[("stock_portf", &["C", "A", "D"])]),
            cq(&["A"], &[("has_stock", &["A", "B"])]),
        ]);
        let seq = execute_ucq(&db, &u);
        for threads in [1, 2, 3, 8] {
            assert_eq!(execute_ucq_parallel(&db, &u, threads), seq);
        }
        // Degenerate cases: empty union, more threads than CQs.
        let empty = UnionQuery::default();
        assert!(execute_ucq_parallel(&db, &empty, 4).is_empty());
    }

    #[test]
    fn planned_engine_agrees_with_reference_engine() {
        let db = sample_db();
        for q in [
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(
                &["A", "B"],
                &[
                    ("list_comp", &["A", "C"]),
                    ("stock_portf", &["B", "A", "D"]),
                ],
            ),
            cq(&["A"], &[("list_comp", &["A", "nasdaq"])]),
            cq(
                &["A"],
                &[("list_comp", &["A", "B"]), ("has_stock", &["B", "C"])],
            ),
        ] {
            assert_eq!(
                execute_cq(&db, &q),
                reference::execute_cq_reference(&db, &q),
                "{q}"
            );
        }
    }

    #[test]
    fn retraction_updates_postings_and_distinct_counts() {
        let mut db = sample_db();
        let lc = Predicate::new("list_comp", 2);
        assert_eq!(db.table_len(lc), 2);
        assert_eq!(db.distinct(lc, 1), 2);
        assert!(db.remove(&Atom::make("list_comp", ["ibm_s", "nasdaq"])));
        assert_eq!(db.table_len(lc), 1);
        assert_eq!(db.distinct(lc, 0), 1, "ibm_s gone from the column index");
        assert_eq!(db.distinct(lc, 1), 1, "nasdaq gone from the column index");
        assert!(
            db.posting(lc, 1, &Term::constant("nasdaq")).is_empty(),
            "posting list for the retracted value is dropped"
        );
        // The surviving row is still reachable through its (renumbered) id.
        let posting = db.posting(lc, 0, &Term::constant("sap_s"));
        assert_eq!(posting.len(), 1);
        assert_eq!(db.rows(lc)[posting[0] as usize][1], Term::constant("dax"));
        // Retracting what is not there is a no-op, not a panic.
        assert!(!db.remove(&Atom::make("list_comp", ["ibm_s", "nasdaq"])));
        assert!(!db.remove(&Atom::make("nope", ["x"])));
    }

    #[test]
    fn retraction_renumbers_the_swapped_row_everywhere() {
        // Three rows; removing the first swap-moves the last into id 0.
        let mut db = Database::new();
        db.insert(Atom::make("t", ["a", "x"]));
        db.insert(Atom::make("t", ["b", "x"]));
        db.insert(Atom::make("t", ["c", "x"]));
        assert!(db.remove(&Atom::make("t", ["a", "x"])));
        let t = Predicate::new("t", 2);
        // Every posting must point at a live row holding the right value.
        for val in ["b", "c"] {
            let posting = db.posting(t, 0, &Term::constant(val));
            assert_eq!(posting.len(), 1, "{val}");
            assert_eq!(db.rows(t)[posting[0] as usize][0], Term::constant(val));
        }
        assert_eq!(db.posting(t, 1, &Term::constant("x")).len(), 2);
        // Queries over the repaired indexes agree with a rebuild.
        let q = cq(&["A"], &[("t", &["A", "x"])]);
        let rebuilt = Database::from_facts(db.facts());
        assert_eq!(execute_cq(&db, &q), execute_cq(&rebuilt, &q));
        // Re-inserting the retracted fact round-trips.
        assert!(db.insert(Atom::make("t", ["a", "x"])));
        assert_eq!(db.table_len(t), 3);
        assert!(!db.insert(Atom::make("t", ["a", "x"])), "now a duplicate");
    }

    #[test]
    fn emptied_tables_are_dropped() {
        let mut db = Database::new();
        db.insert(Atom::make("p", ["a"]));
        assert!(db.remove(&Atom::make("p", ["a"])));
        assert_eq!(db.predicates().count(), 0);
        assert!(db.is_empty());
    }

    #[test]
    fn clones_are_copy_on_write_snapshots() {
        let db = sample_db();
        let lc = Predicate::new("list_comp", 2);
        let hs = Predicate::new("has_stock", 2);
        let mut writer = db.clone();
        assert!(writer.shares_table(&db, lc), "clone shares every table");
        writer.insert(Atom::make("list_comp", ["aapl_s", "nasdaq"]));
        assert!(!writer.shares_table(&db, lc), "written table went private");
        assert!(writer.shares_table(&db, hs), "untouched table still shared");
        assert_eq!(db.table_len(lc), 2, "reader's snapshot is unchanged");
        assert_eq!(writer.table_len(lc), 3);
        // No-op writes must not unshare either.
        let mut noop = db.clone();
        assert!(!noop.insert(Atom::make("list_comp", ["ibm_s", "nasdaq"])));
        assert!(!noop.remove(&Atom::make("list_comp", ["ibm_s", "zzz"])));
        assert!(noop.shares_table(&db, lc));
    }

    #[test]
    fn facts_round_trip_through_the_iterator() {
        let db = sample_db();
        let rebuilt = Database::from_facts(db.facts());
        assert_eq!(rebuilt.len(), db.len());
        for fact in db.facts() {
            assert!(rebuilt.contains(&fact));
        }
    }

    #[test]
    fn carried_over_evicts_exactly_the_touched_predicates() {
        let db = sample_db();
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(&["A"], &[("has_stock", &["A", "B"])]),
        ]);
        let cache = BuildCache::new();
        execute_ucq_shared(&db, &u, 1, &cache);
        assert_eq!(cache.len(), 2);

        let touched: HashSet<Predicate> = [Predicate::new("list_comp", 2)].into();
        let (next, evicted) = cache.carried_over(&touched);
        assert_eq!(evicted, 1);
        assert_eq!(next.len(), 1);
        // Re-running over the successor cache: has_stock hits, list_comp
        // rebuilds.
        let (_, metrics) = execute_ucq_shared(&db, &u, 1, &next);
        assert_eq!(metrics.build_cache_hits, 1, "{metrics:?}");
        assert_eq!(metrics.build_cache_misses, 1, "{metrics:?}");
    }

    #[test]
    fn shared_cache_metrics_report_per_call_deltas() {
        let db = sample_db();
        let u = UnionQuery::new(vec![cq(&["A"], &[("list_comp", &["A", "B"])])]);
        let cache = BuildCache::new();
        let (_, first) = execute_ucq_shared(&db, &u, 1, &cache);
        assert_eq!((first.build_cache_hits, first.build_cache_misses), (0, 1));
        let (_, second) = execute_ucq_shared(&db, &u, 1, &cache);
        assert_eq!(
            (second.build_cache_hits, second.build_cache_misses),
            (1, 0),
            "the second execution reuses the persistent build side"
        );
    }

    #[test]
    fn poisoned_build_cache_recovers_instead_of_wedging() {
        let db = sample_db();
        let u = UnionQuery::new(vec![cq(&["A"], &[("list_comp", &["A", "B"])])]);
        let cache = BuildCache::new();
        let (expected, _) = execute_ucq_shared(&db, &u, 1, &cache);
        // A reader that panics while holding the cache's write lock (the
        // worst case) poisons it; every later execution must recover.
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = cache.builds.write().unwrap();
                panic!("poisoning the build cache");
            });
            assert!(handle.join().is_err());
        });
        let (answers, metrics) = execute_ucq_shared(&db, &u, 1, &cache);
        assert_eq!(answers, expected);
        assert_eq!(metrics.build_cache_hits, 1, "the warm entry survived");
        assert_eq!(cache.len(), 1);
        let (next, _) = cache.carried_over(&HashSet::new());
        assert_eq!(next.len(), 1);
    }

    #[test]
    fn matches_homomorphism_semantics() {
        // Cross-check the join pipeline against the naive homomorphism
        // evaluator from nyaya-chase on a triangle query.
        let facts = [
            Atom::make("e", ["a", "b"]),
            Atom::make("e", ["b", "c"]),
            Atom::make("e", ["c", "a"]),
            Atom::make("e", ["b", "a"]),
        ];
        let db = Database::from_facts(facts.clone());
        let q = cq(
            &["X"],
            &[("e", &["X", "Y"]), ("e", &["Y", "Z"]), ("e", &["Z", "X"])],
        );
        let ans = execute_cq(&db, &q);
        let instance = nyaya_chase::Instance::from_atoms(facts);
        let oracle = nyaya_chase::answers(&instance, &q);
        let oracle_set: BTreeSet<Vec<Term>> = oracle.into_iter().collect();
        assert_eq!(ans, oracle_set);
        assert!(!ans.is_empty());
    }
}
