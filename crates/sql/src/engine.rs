//! A small in-memory relational engine: tables of ground tuples and a
//! hash-join pipeline for (unions of) conjunctive queries.
//!
//! This is the "underlying relational database" substrate of the OBDA
//! architecture (Section 1): rewritings produced by `nyaya-rewrite` are
//! executed here without any ontological reasoning — that is the whole
//! point of FO-rewritability.

use std::collections::{BTreeSet, HashMap};

use nyaya_core::{Atom, ConjunctiveQuery, Predicate, Symbol, Term, UnionQuery};

/// An in-memory database: one table of ground tuples per predicate.
#[derive(Clone, Default)]
pub struct Database {
    tables: HashMap<Predicate, Vec<Vec<Term>>>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a database from ground atoms (deduplicating).
    pub fn from_facts(facts: impl IntoIterator<Item = Atom>) -> Self {
        let mut db = Database::new();
        for f in facts {
            db.insert(f);
        }
        db
    }

    /// Insert a fact. Panics on non-ground atoms.
    pub fn insert(&mut self, fact: Atom) {
        assert!(fact.is_ground(), "facts must be ground, got {fact}");
        let rows = self.tables.entry(fact.pred).or_default();
        if !rows.contains(&fact.args) {
            rows.push(fact.args);
        }
    }

    pub fn rows(&self, pred: Predicate) -> &[Vec<Term>] {
        self.tables.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execute a CQ with a left-to-right hash-join pipeline.
///
/// Intermediate results are tuples over the variables bound so far; each
/// atom is joined in by hashing the table rows on the positions of already
/// bound variables.
pub fn execute_cq(db: &Database, q: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
    // var → index into intermediate tuples
    let mut var_index: HashMap<Symbol, usize> = HashMap::new();
    let mut current: Vec<Vec<Term>> = vec![Vec::new()];

    for atom in &q.body {
        if current.is_empty() {
            return BTreeSet::new();
        }
        let rows = db.rows(atom.pred);

        // Classify atom argument slots.
        enum Slot {
            Bound(usize),   // variable already bound: join key
            Fresh,          // first occurrence in this pipeline
            Constant(Term), // literal filter
            Repeat(usize),  // same fresh variable earlier in this atom
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(atom.args.len());
        let mut fresh_positions: HashMap<Symbol, usize> = HashMap::new();
        for (j, t) in atom.args.iter().enumerate() {
            match t {
                Term::Var(v) => {
                    if let Some(&idx) = var_index.get(v) {
                        slots.push(Slot::Bound(idx));
                    } else if let Some(&k) = fresh_positions.get(v) {
                        slots.push(Slot::Repeat(k));
                    } else {
                        fresh_positions.insert(*v, j);
                        slots.push(Slot::Fresh);
                    }
                }
                other => slots.push(Slot::Constant(other.clone())),
            }
        }

        // Hash table rows on (bound-variable positions + constant checks).
        let key_positions: Vec<(usize, usize)> = slots
            .iter()
            .enumerate()
            .filter_map(|(j, s)| match s {
                Slot::Bound(idx) => Some((j, *idx)),
                _ => None,
            })
            .collect();
        let mut hashed: HashMap<Vec<&Term>, Vec<&Vec<Term>>> = HashMap::new();
        'rows: for row in rows {
            for (j, s) in slots.iter().enumerate() {
                match s {
                    Slot::Constant(c) if &row[j] != c => continue 'rows,
                    Slot::Repeat(k) if row[j] != row[*k] => continue 'rows,
                    _ => {}
                }
            }
            let key: Vec<&Term> = key_positions.iter().map(|(j, _)| &row[*j]).collect();
            hashed.entry(key).or_default().push(row);
        }

        // Probe.
        let mut next: Vec<Vec<Term>> = Vec::new();
        for tuple in &current {
            let key: Vec<&Term> = key_positions.iter().map(|(_, idx)| &tuple[*idx]).collect();
            if let Some(matches) = hashed.get(&key) {
                for row in matches {
                    let mut extended = tuple.clone();
                    for (j, s) in slots.iter().enumerate() {
                        if let Slot::Fresh = s {
                            extended.push(row[j].clone());
                        }
                    }
                    next.push(extended);
                }
            }
        }
        // Register fresh variables in first-position order.
        let mut fresh_sorted: Vec<(usize, Symbol)> =
            fresh_positions.iter().map(|(v, j)| (*j, *v)).collect();
        fresh_sorted.sort_unstable();
        for (_, v) in fresh_sorted {
            let idx = var_index.len();
            var_index.insert(v, idx);
        }
        current = next;
    }

    // Project the head.
    let mut out = BTreeSet::new();
    for tuple in current {
        let projected: Vec<Term> = q
            .head
            .iter()
            .map(|t| match t {
                Term::Var(v) => tuple[var_index[v]].clone(),
                other => other.clone(),
            })
            .collect();
        out.insert(projected);
    }
    out
}

/// Execute a union of CQs (set semantics).
pub fn execute_ucq(db: &Database, u: &UnionQuery) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    for q in u.iter() {
        out.extend(execute_cq(db, q));
    }
    out
}

/// Execute a union of CQs across `threads` worker threads.
///
/// Section 2 observes that the CQs of a UCQ rewriting "are independent from
/// each other, and thus they can be easily executed in parallel threads" —
/// one of the arguments for UCQ over non-recursive Datalog output. Each
/// worker evaluates a contiguous chunk of the union; results are merged.
pub fn execute_ucq_parallel(db: &Database, u: &UnionQuery, threads: usize) -> BTreeSet<Vec<Term>> {
    let threads = threads.max(1).min(u.cqs.len().max(1));
    if threads <= 1 || u.cqs.len() <= 1 {
        return execute_ucq(db, u);
    }
    let chunk_size = u.cqs.len().div_ceil(threads);
    let chunks: Vec<&[ConjunctiveQuery]> = u.cqs.chunks(chunk_size).collect();
    let mut out = BTreeSet::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local = BTreeSet::new();
                    for q in chunk {
                        local.extend(execute_cq(db, q));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("UCQ worker panicked"));
        }
    });
    out
}

/// Does a Boolean (U)CQ hold over the database?
pub fn execute_bcq(db: &Database, q: &ConjunctiveQuery) -> bool {
    !execute_cq(db, q).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cq(head: &[&str], body: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let head_terms = head
            .iter()
            .map(|a| {
                if a.chars().next().unwrap().is_uppercase() {
                    Term::var(a)
                } else {
                    Term::constant(a)
                }
            })
            .collect();
        let atoms = body
            .iter()
            .map(|(p, args)| {
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| {
                        if a.chars().next().unwrap().is_uppercase() {
                            Term::var(a)
                        } else {
                            Term::constant(a)
                        }
                    })
                    .collect();
                Atom::new(Predicate::new(p, terms.len()), terms)
            })
            .collect();
        ConjunctiveQuery::new(head_terms, atoms)
    }

    fn sample_db() -> Database {
        Database::from_facts([
            Atom::make("list_comp", ["ibm_s", "nasdaq"]),
            Atom::make("list_comp", ["sap_s", "dax"]),
            Atom::make("stock_portf", ["fund1", "ibm_s", "q10"]),
            Atom::make("stock_portf", ["fund2", "sap_s", "q20"]),
            Atom::make("has_stock", ["ibm_s", "fund3"]),
        ])
    }

    #[test]
    fn single_table_scan() {
        let db = sample_db();
        let q = cq(&["A"], &[("list_comp", &["A", "B"])]);
        let ans = execute_cq(&db, &q);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn hash_join_on_shared_variable() {
        let db = sample_db();
        // q(A,B) ← list_comp(A,C), stock_portf(B,A,D)
        let q = cq(
            &["A", "B"],
            &[
                ("list_comp", &["A", "C"]),
                ("stock_portf", &["B", "A", "D"]),
            ],
        );
        let ans = execute_cq(&db, &q);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Term::constant("ibm_s"), Term::constant("fund1")]));
    }

    #[test]
    fn constant_filters() {
        let db = sample_db();
        let q = cq(&["A"], &[("list_comp", &["A", "nasdaq"])]);
        let ans = execute_cq(&db, &q);
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut db = Database::new();
        db.insert(Atom::make("t", ["a", "a"]));
        db.insert(Atom::make("t", ["a", "b"]));
        let q = cq(&["A"], &[("t", &["A", "A"])]);
        assert_eq!(execute_cq(&db, &q).len(), 1);
    }

    #[test]
    fn empty_result_on_failed_join() {
        let db = sample_db();
        let q = cq(
            &["A"],
            &[("list_comp", &["A", "B"]), ("has_stock", &["B", "C"])],
        );
        assert!(execute_cq(&db, &q).is_empty());
        assert!(!execute_bcq(
            &db,
            &cq(
                &[],
                &[("list_comp", &["A", "B"]), ("has_stock", &["B", "C"])]
            )
        ));
    }

    #[test]
    fn union_accumulates_and_dedups() {
        let db = sample_db();
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(&["A"], &[("stock_portf", &["C", "A", "D"])]),
            cq(&["A"], &[("list_comp", &["A", "nasdaq"])]), // subset of first
        ]);
        let ans = execute_ucq(&db, &u);
        assert_eq!(ans.len(), 2); // ibm_s, sap_s
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let db = sample_db();
        let u = UnionQuery::new(vec![
            cq(&["A"], &[("list_comp", &["A", "B"])]),
            cq(&["A"], &[("stock_portf", &["C", "A", "D"])]),
            cq(&["A"], &[("has_stock", &["A", "B"])]),
        ]);
        let seq = execute_ucq(&db, &u);
        for threads in [1, 2, 3, 8] {
            assert_eq!(execute_ucq_parallel(&db, &u, threads), seq);
        }
        // Degenerate cases: empty union, more threads than CQs.
        let empty = UnionQuery::default();
        assert!(execute_ucq_parallel(&db, &empty, 4).is_empty());
    }

    #[test]
    fn matches_homomorphism_semantics() {
        // Cross-check the join pipeline against the naive homomorphism
        // evaluator from nyaya-chase on a triangle query.
        let facts = [
            Atom::make("e", ["a", "b"]),
            Atom::make("e", ["b", "c"]),
            Atom::make("e", ["c", "a"]),
            Atom::make("e", ["b", "a"]),
        ];
        let db = Database::from_facts(facts.clone());
        let q = cq(
            &["X"],
            &[("e", &["X", "Y"]), ("e", &["Y", "Z"]), ("e", &["Z", "X"])],
        );
        let ans = execute_cq(&db, &q);
        // Triangle a→b→c→a plus a→b→a→? (needs e(a,X)=e(a,b): b→a→b triangle
        // via a,b only if e(b,a) and e(a,b) and X=Y cycle of length 3 — check
        // against the oracle instead of reasoning by hand:
        let instance = nyaya_chase::Instance::from_atoms(facts);
        let oracle = nyaya_chase::answers(&instance, &q);
        let oracle_set: BTreeSet<Vec<Term>> = oracle.into_iter().collect();
        assert_eq!(ans, oracle_set);
        assert!(!ans.is_empty());
    }
}
